// SubSpace restriction benchmark: predicate pushdown vs packed-column scan
// vs a full re-solve with the restriction added as a constraint, on the
// real-world gemm and hotspot spaces.  Emitted as BENCH_query.json.
//
// The paper's point is that the space is constructed *once*; tune-time
// restrictions (hardware caps discovered at runtime, pinned parameters)
// should then cost index work, not another solve.  For every scenario the
// harness (1) resolves the parent space, (2) builds the restricted SubSpace
// through the posting-list pushdown path and through the scan fallback,
// (3) re-solves the spec with an equivalent constraint expression appended,
// and (4) verifies the three agree: pushdown and scan row-for-row, and both
// equal to the re-solved space as a configuration set (a re-solve may
// enumerate in a different order because the added constraint shifts the
// solver's variable ordering) plus row-for-row against a brute-force filter
// of the parent.  Any disagreement is a hard failure regardless of flags.
//
// CI gate:  bench_query --min-speedup <x>
// exits non-zero when (total re-solve seconds) / (total pushdown seconds)
// across the scenarios drops below <x> — restriction must stay at least <x>
// times faster than re-solving.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "tunespace/searchspace/view.hpp"
#include "tunespace/spaces/realworld.hpp"
#include "tunespace/util/table.hpp"
#include "tunespace/util/timer.hpp"

using namespace tunespace;
using searchspace::SubSpace;
namespace query = tunespace::searchspace::query;

namespace {

struct Scenario {
  std::string name;
  std::string space;           ///< realworld space name
  query::Predicate predicate;  ///< the restriction under test
  std::string expression;      ///< equivalent constraint expression (re-solve)
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> all;
  all.push_back({"pin-MWG-MDIMC", "GEMM",
                 query::eq("MWG", 64) && query::in_set("MDIMC", {8, 16}),
                 "MWG == 64 and MDIMC in (8, 16)"});
  all.push_back({"range-KWG", "GEMM", query::between("KWG", 16, 32),
                 "16 <= KWG <= 32"});
  all.push_back({"pin-bsx-tsx", "Hotspot",
                 query::eq("block_size_x", 32) && query::between("tile_size_x", 1, 3),
                 "block_size_x == 32 and 1 <= tile_size_x <= 3"});
  all.push_back({"smem-cap", "Hotspot",
                 query::eq("sh_power", 1) && query::between("blocks_per_sm", 1, 4),
                 "sh_power == 1 and 1 <= blocks_per_sm <= 4"});
  return all;
}

/// Sorted canonical config renderings, for order-insensitive comparison
/// against a re-solved space.
std::vector<std::string> sorted_configs(const SubSpace& view) {
  std::vector<std::string> out;
  out.reserve(view.size());
  for (std::size_t r = 0; r < view.size(); ++r) {
    out.push_back(view.problem().config_to_string(view.config(r)));
  }
  std::sort(out.begin(), out.end());
  return out;
}
std::vector<std::string> sorted_configs(const searchspace::SearchSpace& space) {
  return sorted_configs(SubSpace(space));
}

/// Row-for-row agreement of two views over the same parent.
bool same_rows(const SubSpace& a, const SubSpace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t r = 0; r < a.size(); ++r) {
    if (a.parent_row(r) != b.parent_row(r)) return false;
  }
  return true;
}

/// Brute-force reference: parent rows matching the compiled predicate, by a
/// full packed-column sweep outside the view machinery.
std::vector<std::size_t> brute_force_rows(const searchspace::SearchSpace& space,
                                          const query::Predicate& pred) {
  const query::CompiledPredicate compiled = query::compile(pred, space.problem());
  std::vector<std::size_t> rows;
  for (std::size_t r = 0; r < space.size(); ++r) {
    bool keep = true;
    for (const query::ParamMask& mask : compiled.masks) {
      const std::uint32_t vi = space.value_index(r, mask.param);
      if (!std::binary_search(mask.allowed.begin(), mask.allowed.end(), vi)) {
        keep = false;
        break;
      }
    }
    if (keep) rows.push_back(r);
  }
  return rows;
}

struct CaseReport {
  std::string name;
  std::string space;
  std::size_t rows_parent = 0;
  std::size_t rows_out = 0;
  double pushdown_seconds = 0;
  double scan_seconds = 0;
  double resolve_seconds = 0;
  std::string exec_auto;  ///< strategy the planner picks on its own
  bool identical = true;
  double pushdown_speedup() const {
    return pushdown_seconds > 0 ? resolve_seconds / pushdown_seconds : 0;
  }
  double scan_speedup() const {
    return scan_seconds > 0 ? resolve_seconds / scan_seconds : 0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  double gate_speedup = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      gate_speedup = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--min-speedup <x>]\n", argv[0]);
      return 2;
    }
  }

  const int repeats = 5;
  bench::section("SubSpace restriction: pushdown vs scan vs full re-solve");

  // Resolve each parent space once (the construct-once premise).
  std::vector<spaces::RealWorldSpace> worlds;
  std::vector<searchspace::SearchSpace> parents;
  for (auto& rw : spaces::all_realworld()) {
    if (rw.name == "GEMM" || rw.name == "Hotspot") {
      util::WallTimer timer;
      parents.emplace_back(rw.spec);
      std::fprintf(stderr, "[query] %s resolved in %s\n", rw.name.c_str(),
                   util::fmt_seconds(timer.seconds()).c_str());
      worlds.push_back(std::move(rw));
    }
  }

  std::vector<CaseReport> reports;
  bool all_identical = true;
  util::Table table({"case", "space", "rows", "pushdown", "scan", "re-solve",
                     "speedup", "auto", "identical"});
  for (const Scenario& sc : scenarios()) {
    std::size_t world = 0;
    while (worlds[world].name != sc.space) ++world;
    const searchspace::SearchSpace& parent = parents[world];

    CaseReport report;
    report.name = sc.name;
    report.space = sc.space;
    report.rows_parent = parent.size();

    SubSpace pushdown_view(parent);
    SubSpace scan_view(parent);
    for (int rep = 0; rep < repeats; ++rep) {
      query::QueryStats stats;
      util::WallTimer timer;
      SubSpace view = SubSpace::filter(parent, sc.predicate,
                                       {query::Exec::kPushdown}, &stats);
      const double seconds = timer.seconds();
      if (rep == 0 || seconds < report.pushdown_seconds) {
        report.pushdown_seconds = seconds;
      }
      if (rep == 0) pushdown_view = view;

      timer.reset();
      view = SubSpace::filter(parent, sc.predicate, {query::Exec::kScan}, &stats);
      const double sseconds = timer.seconds();
      if (rep == 0 || sseconds < report.scan_seconds) report.scan_seconds = sseconds;
      if (rep == 0) scan_view = view;
    }
    report.rows_out = pushdown_view.size();
    {
      query::QueryStats stats;
      SubSpace::filter(parent, sc.predicate, {query::Exec::kAuto}, &stats);
      report.exec_auto =
          stats.exec_used == query::Exec::kPushdown ? "pushdown" : "scan";
    }

    // Full re-solve with the equivalent constraint appended.  Also a min
    // over repeats: a single noisy re-solve would inflate the gated
    // speedup ratio and could mask a pushdown regression.
    tuner::TuningProblem restricted_spec = worlds[world].spec;
    restricted_spec.add_constraint(sc.expression);
    const int resolve_repeats = 3;
    util::WallTimer timer;
    searchspace::SearchSpace resolved(restricted_spec);
    report.resolve_seconds = timer.seconds();
    for (int rep = 1; rep < resolve_repeats; ++rep) {
      timer.reset();
      searchspace::SearchSpace again(restricted_spec);
      const double seconds = timer.seconds();
      if (seconds < report.resolve_seconds) report.resolve_seconds = seconds;
    }

    // Identity: pushdown == scan row-for-row, both == brute force
    // row-for-row, and == the re-solved space as a configuration set.
    report.identical = same_rows(pushdown_view, scan_view);
    const auto brute = brute_force_rows(parent, sc.predicate);
    report.identical = report.identical && brute.size() == pushdown_view.size();
    for (std::size_t r = 0; report.identical && r < brute.size(); ++r) {
      report.identical = brute[r] == pushdown_view.parent_row(r);
    }
    report.identical =
        report.identical && sorted_configs(pushdown_view) == sorted_configs(resolved);
    all_identical = all_identical && report.identical;

    table.add_row({report.name, report.space, std::to_string(report.rows_out),
                   util::fmt_seconds(report.pushdown_seconds),
                   util::fmt_seconds(report.scan_seconds),
                   util::fmt_seconds(report.resolve_seconds),
                   util::fmt_double(report.pushdown_speedup(), 1) + "x",
                   report.exec_auto, report.identical ? "yes" : "NO"});
    std::fprintf(stderr, "[query] %s/%s done\n", sc.space.c_str(), sc.name.c_str());
    reports.push_back(std::move(report));
  }
  table.print(std::cout);

  double total_pushdown = 0, total_scan = 0, total_resolve = 0;
  for (const auto& r : reports) {
    total_pushdown += r.pushdown_seconds;
    total_scan += r.scan_seconds;
    total_resolve += r.resolve_seconds;
  }
  const double pushdown_speedup =
      total_pushdown > 0 ? total_resolve / total_pushdown : 0;
  const double scan_speedup = total_scan > 0 ? total_resolve / total_scan : 0;
  std::printf(
      "suite total: re-solve %.4fs, pushdown %.6fs (%.0fx), scan %.6fs (%.0fx)\n",
      total_resolve, total_pushdown, pushdown_speedup, total_scan, scan_speedup);

  if (std::FILE* f = std::fopen("BENCH_query.json", "w")) {
    std::fprintf(f, "{\n  \"bench\": \"query\",\n");
    std::fprintf(f, "  \"fast_mode\": %s,\n", bench::fast_mode() ? "true" : "false");
    std::fprintf(f, "  \"total_resolve_seconds\": %.6f,\n", total_resolve);
    std::fprintf(f, "  \"total_pushdown_seconds\": %.6f,\n", total_pushdown);
    std::fprintf(f, "  \"total_scan_seconds\": %.6f,\n", total_scan);
    std::fprintf(f, "  \"pushdown_speedup\": %.2f,\n", pushdown_speedup);
    std::fprintf(f, "  \"scan_speedup\": %.2f,\n", scan_speedup);
    std::fprintf(f, "  \"cases\": [\n");
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const CaseReport& r = reports[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"space\": \"%s\", \"rows_parent\": %zu, "
                   "\"rows_out\": %zu, \"pushdown_seconds\": %.6f, "
                   "\"scan_seconds\": %.6f, \"resolve_seconds\": %.6f, "
                   "\"pushdown_speedup\": %.2f, \"scan_speedup\": %.2f, "
                   "\"exec_auto\": \"%s\", \"identical\": %s}%s\n",
                   r.name.c_str(), r.space.c_str(), r.rows_parent, r.rows_out,
                   r.pushdown_seconds, r.scan_seconds, r.resolve_seconds,
                   r.pushdown_speedup(), r.scan_speedup(), r.exec_auto.c_str(),
                   r.identical ? "true" : "false",
                   i + 1 < reports.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_query.json\n");
  } else {
    std::fprintf(stderr, "could not write BENCH_query.json\n");
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: a restricted view diverged from its re-solved or "
                 "brute-force reference (see table above)\n");
    return 1;
  }
  if (gate_speedup > 0 && pushdown_speedup < gate_speedup) {
    std::fprintf(stderr,
                 "FAIL: pushdown/re-solve speedup %.1fx below the %.1fx gate\n",
                 pushdown_speedup, gate_speedup);
    return 1;
  }
  return 0;
}
