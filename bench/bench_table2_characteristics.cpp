// Table 2: characteristics of the eight real-world search spaces, printed
// side-by-side with the paper's reported values.  The "avg. constraint
// evaluations" column uses the paper's formula
//   |S_i| + |S_i|*|S_c|/2 + |S_v|
// over the measured invalid/valid counts.
#include <iostream>

#include "bench_common.hpp"
#include "tunespace/expr/analysis.hpp"
#include "tunespace/expr/parser.hpp"
#include "tunespace/spaces/realworld.hpp"
#include "tunespace/util/table.hpp"

using namespace tunespace;

int main() {
  auto spaces = spaces::all_realworld();
  auto methods = tuner::construction_methods(false);
  const auto& optimized = methods[0];

  bench::section("Table 2: real-world search-space characteristics");
  util::Table table({"Name", "Cartesian size", "Valid (paper)", "Valid (measured)",
                     "#params", "#constraints", "avg vars/constraint",
                     "values/param", "% valid (paper)", "% valid (measured)",
                     "avg constraint evals"});

  for (const auto& rw : spaces) {
    auto run = bench::timed_construct(rw.spec, optimized);

    // Average number of unique parameters per (user-level) constraint.
    double scope_sum = 0;
    for (const auto& text : rw.spec.constraints()) {
      scope_sum += static_cast<double>(expr::variable_count(*expr::parse(text)));
    }
    const double avg_scope =
        scope_sum / static_cast<double>(rw.spec.constraints().size());

    std::size_t min_vals = SIZE_MAX, max_vals = 0;
    for (const auto& p : rw.spec.params()) {
      min_vals = std::min(min_vals, p.values.size());
      max_vals = std::max(max_vals, p.values.size());
    }

    const double cart = static_cast<double>(rw.spec.cartesian_size());
    const double valid = static_cast<double>(run.solutions);
    const double invalid = cart - valid;
    const double n_constraints = static_cast<double>(rw.spec.constraints().size());
    // Paper formula: |S_i| + |S_i|*|S_c|/2 + |S_v|... the text gives
    // |S_i| + |S_i|*|S_c| all over 2, plus |S_v|; we follow the rendered
    // formula (|S_i| + |S_i|*|S_c|)/2 + |S_v|.
    const double avg_evals = (invalid + invalid * n_constraints) / 2.0 + valid;

    table.add_row({rw.name, util::fmt_count(rw.spec.cartesian_size()),
                   util::fmt_count(rw.paper.valid_size),
                   util::fmt_count(run.solutions),
                   std::to_string(rw.spec.num_params()),
                   std::to_string(rw.spec.constraints().size()),
                   util::fmt_double(avg_scope, 4),
                   std::to_string(min_vals) + " - " + std::to_string(max_vals),
                   util::fmt_double(rw.paper.percent_valid, 4),
                   util::fmt_double(100.0 * valid / cart, 4),
                   util::fmt_count(static_cast<unsigned long long>(avg_evals))});
  }
  table.print(std::cout);
  std::cout << "\nNote: Cartesian size, #params and #constraints match the paper "
               "exactly; valid counts are calibrated approximations (see "
               "EXPERIMENTS.md).\n";
  return 0;
}
