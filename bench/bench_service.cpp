// Tuning-service benchmark: ask/tell request throughput of the TuningService
// front end, in-process and over the loopback wire protocol, emitted as
// BENCH_service.json.
//
// Every session is replayed three ways with identical options — the plain
// run_tuning closed loop, the in-process TuningService ask/tell surface, and
// a TCP client against a loopback ServiceServer — and all three TuningRuns
// must be *bit-identical*; an identity mismatch is a hard failure regardless
// of flags.  The throughput numbers (service requests per second for both
// transports, plus the wire amplification factor) are informational.
//
// CI gate:  bench_service --min-rps <x>
// exits non-zero when the in-process request throughput drops below <x>.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "tunespace/tuner/server.hpp"
#include "tunespace/tuner/service.hpp"
#include "tunespace/tuner/service_client.hpp"
#include "tunespace/util/timer.hpp"

using namespace tunespace;

namespace {

constexpr std::size_t kSessions = 8;
const char* kOptimizers[] = {"random-sampling", "genetic-algorithm",
                             "simulated-annealing", "hill-climbing",
                             "differential-evolution"};

tuner::OpenSessionRequest session_request(std::size_t i) {
  tuner::OpenSessionRequest request;
  request.kernel = "hotspot";
  request.optimizer = kOptimizers[i % 5];
  request.seed = i + 1;
  request.budget_seconds = 120.0;
  // Fixed construction charge: the identity check compares virtual
  // timelines bit-for-bit across transports.
  request.fixed_construction_seconds = 5.0;
  return request;
}

tuner::RunSummary summarize(const tuner::TuningRun& run) {
  tuner::RunSummary summary;
  summary.method_name = run.method_name;
  summary.construction_seconds = run.construction_seconds;
  summary.budget_seconds = run.budget_seconds;
  summary.best_gflops = run.best_gflops;
  summary.evaluations = run.evaluations;
  for (const auto& point : run.trajectory) {
    summary.trajectory.push_back({point.time_seconds, point.best_gflops,
                                  static_cast<std::uint64_t>(point.evaluations),
                                  point.measurement});
  }
  summary.objectives = run.objectives;
  summary.best_score = run.best_score;
  summary.best = run.best;
  summary.front = run.front;
  return summary;
}

/// Drive every session through any object exposing the service's ask/tell
/// calls (TuningService or ServiceClient); returns the closed runs and
/// counts each open/suggest/report/close as one request.
template <typename Api>
std::vector<tuner::RunSummary> drive_sessions(Api& api, std::uint64_t& requests) {
  const auto* kernel = tuner::find_service_kernel("hotspot");
  std::vector<tuner::RunSummary> runs;
  for (std::size_t i = 0; i < kSessions; ++i) {
    const auto opened = api.open(session_request(i));
    requests++;
    while (true) {
      const auto ask = api.suggest({opened.session_id});
      requests++;
      if (ask.finished) break;
      csp::Config config;
      config.reserve(ask.config.size());
      for (const auto& entry : ask.config) config.push_back(entry.value);
      api.report({opened.session_id,
                  kernel->model->gflops(opened.info.param_names, config), -1.0});
      requests++;
    }
    runs.push_back(api.close({opened.session_id}).run);
    requests++;
  }
  return runs;
}

/// ServiceClient adapter with the same call shapes as TuningService.
struct WireApi {
  tuner::ServiceClient& client;
  tuner::OpenSessionResponse open(const tuner::OpenSessionRequest& r) {
    return client.open(r);
  }
  tuner::SuggestResponse suggest(const tuner::SuggestRequest& r) {
    return client.suggest(r.session_id);
  }
  tuner::ReportResponse report(const tuner::ReportRequest& r) {
    return client.report(r);
  }
  tuner::CloseSessionResponse close(const tuner::CloseSessionRequest& r) {
    return client.close_session(r.session_id);
  }
};

/// Multi-objective leg: one two-objective session replayed through the
/// closed loop, the in-process service and the v2 wire (objective maps in
/// both directions), with the same bit-identity hard-fail as the scalar
/// legs.
struct MultiObjectiveReport {
  bool identical = true;
  std::size_t pareto_front_size = 0;
  double perf_per_watt_improvement = 0;  ///< vs the scalar session-0 incumbent
};

tuner::OpenSessionRequest multi_objective_request() {
  tuner::OpenSessionRequest request = session_request(0);  // seed 1, random
  request.objectives = tuner::ObjectiveSpec::perf_and_power(1.0, 1.0);
  return request;
}

/// Drive the two-objective session through any ask/tell api, answering
/// with the model's full measurement vector.
template <typename Api>
tuner::RunSummary drive_multi_objective(Api& api) {
  const auto* kernel = tuner::find_service_kernel("hotspot");
  const auto opened = api.open(multi_objective_request());
  while (true) {
    const auto ask = api.suggest({opened.session_id});
    if (ask.finished) break;
    csp::Config config;
    config.reserve(ask.config.size());
    for (const auto& entry : ask.config) config.push_back(entry.value);
    tuner::ReportRequest report;
    report.session_id = opened.session_id;
    report.measurement =
        kernel->model->measure(opened.info.param_names, config);
    report.gflops = report.measurement.gflops;
    api.report(report);
  }
  return api.close({opened.session_id}).run;
}

MultiObjectiveReport run_multi_objective_leg(
    const tuner::RunSummary& scalar_reference) {
  MultiObjectiveReport report;
  const auto* kernel = tuner::find_service_kernel("hotspot");
  const auto request = multi_objective_request();

  // Closed-loop reference.
  auto optimizer = tuner::make_optimizer(request.optimizer);
  tuner::TuningOptions options;
  options.budget_seconds = request.budget_seconds;
  options.seed = request.seed;
  options.overhead_per_request = request.overhead_per_request;
  options.fixed_construction_seconds = request.fixed_construction_seconds;
  options.objectives = request.objectives;
  const tuner::Method method = tuner::optimized_method();
  const auto reference_run = tuner::run_session(tuner::make_session_request(
      kernel->spec, method, *kernel->model, *optimizer, options));
  report.pareto_front_size = reference_run.pareto().size();
  const auto reference = summarize(reference_run);

  // In-process and wire replays.
  tuner::RunSummary inprocess;
  {
    tuner::TuningService service;
    inprocess = drive_multi_objective(service);
  }
  tuner::RunSummary over_wire;
  {
    tuner::TuningService service;
    tuner::ServiceServerOptions server_options;
    server_options.port = 0;
    tuner::ServiceServer server(service, server_options);
    server.start();
    tuner::ServiceClientOptions client_options;
    client_options.port = server.port();
    tuner::ServiceClient client(client_options);
    WireApi api{client};
    over_wire = drive_multi_objective(api);
    server.stop();
  }
  if (!(inprocess == reference) || !(over_wire == reference)) {
    report.identical = false;
    std::fprintf(stderr,
                 "[service] multi-objective session diverged: reference "
                 "score %.6f, in-process score %.6f, wire score %.6f\n",
                 reference.best_score, inprocess.best_score,
                 over_wire.best_score);
  }

  // Efficiency gain of power-aware tuning over the scalar incumbent of the
  // same (optimizer, seed) session; the scalar run masks watts, so its
  // incumbent is re-measured at its front row.
  if (!scalar_reference.front.empty() && !reference.front.empty() &&
      reference.best.watts > 0) {
    std::vector<std::string> names;
    names.reserve(kernel->spec.params().size());
    for (const auto& param : kernel->spec.params()) names.push_back(param.name);
    const searchspace::SearchSpace space(kernel->spec);
    const auto scalar_best = kernel->model->measure(
        names, space.config(static_cast<std::size_t>(
                   scalar_reference.front[0].parent_row)));
    if (scalar_best.watts > 0) {
      report.perf_per_watt_improvement =
          (reference.best.gflops / reference.best.watts) /
          (scalar_best.gflops / scalar_best.watts);
    }
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  double gate_rps = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-rps") == 0 && i + 1 < argc) {
      gate_rps = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--min-rps <x>]\n", argv[0]);
      return 2;
    }
  }

  bench::section("Tuning service: ask/tell throughput, in-process and wire");

  // Reference: the same sessions through the plain closed loop.
  const auto* kernel = tuner::find_service_kernel("hotspot");
  std::vector<tuner::RunSummary> reference;
  for (std::size_t i = 0; i < kSessions; ++i) {
    const auto request = session_request(i);
    auto optimizer = tuner::make_optimizer(request.optimizer);
    tuner::TuningOptions options;
    options.budget_seconds = request.budget_seconds;
    options.seed = request.seed;
    options.overhead_per_request = request.overhead_per_request;
    options.fixed_construction_seconds = request.fixed_construction_seconds;
    const tuner::Method method = tuner::optimized_method();
    reference.push_back(summarize(tuner::run_session(tuner::make_session_request(
        kernel->spec, method, *kernel->model, *optimizer, options))));
  }

  // In-process service.
  std::uint64_t inprocess_requests = 0;
  util::WallTimer timer;
  std::vector<tuner::RunSummary> inprocess;
  {
    tuner::TuningService service;
    inprocess = drive_sessions(service, inprocess_requests);
  }
  const double inprocess_seconds = timer.seconds();

  // The same sessions over loopback TCP.
  std::uint64_t wire_requests = 0;
  std::vector<tuner::RunSummary> wire;
  timer.reset();
  double wire_seconds = 0;
  {
    tuner::TuningService service;
    tuner::ServiceServerOptions server_options;
    server_options.port = 0;  // ephemeral
    tuner::ServiceServer server(service, server_options);
    server.start();
    tuner::ServiceClientOptions client_options;
    client_options.port = server.port();
    tuner::ServiceClient client(client_options);
    WireApi api{client};
    timer.reset();  // exclude server/client setup
    wire = drive_sessions(api, wire_requests);
    wire_seconds = timer.seconds();
    server.stop();
  }

  bool identical = true;
  std::uint64_t evaluations = 0;
  for (std::size_t i = 0; i < kSessions; ++i) {
    evaluations += reference[i].evaluations;
    if (!(inprocess[i] == reference[i]) || !(wire[i] == reference[i])) {
      identical = false;
      std::fprintf(stderr,
                   "[service] session %zu diverged: reference best %.4f "
                   "(%llu evals), in-process best %.4f (%llu evals), wire "
                   "best %.4f (%llu evals)\n",
                   i, reference[i].best_gflops,
                   static_cast<unsigned long long>(reference[i].evaluations),
                   inprocess[i].best_gflops,
                   static_cast<unsigned long long>(inprocess[i].evaluations),
                   wire[i].best_gflops,
                   static_cast<unsigned long long>(wire[i].evaluations));
    }
  }

  const double inprocess_rps =
      inprocess_seconds > 0 ? static_cast<double>(inprocess_requests) /
                                  inprocess_seconds
                            : 0;
  const double wire_rps =
      wire_seconds > 0 ? static_cast<double>(wire_requests) / wire_seconds : 0;
  const double wire_amplification =
      wire_rps > 0 ? inprocess_rps / wire_rps : 0;

  std::printf(
      "%zu sessions, %llu evaluations: in-process %llu requests in %.4fs "
      "(%.0f req/s), wire %llu requests in %.4fs (%.0f req/s, %.1fx "
      "amplification), identical %s\n",
      kSessions, static_cast<unsigned long long>(evaluations),
      static_cast<unsigned long long>(inprocess_requests), inprocess_seconds,
      inprocess_rps, static_cast<unsigned long long>(wire_requests),
      wire_seconds, wire_rps, wire_amplification, identical ? "yes" : "NO");

  const MultiObjectiveReport mo = run_multi_objective_leg(reference[0]);
  std::printf(
      "multi-objective: identical %s, Pareto front %zu points, "
      "perf-per-watt improvement %.3fx over throughput-only tuning\n",
      mo.identical ? "yes" : "NO", mo.pareto_front_size,
      mo.perf_per_watt_improvement);

  // Connection churn: sequential connect/ping/disconnect cycles against a
  // deliberately small worker pool.  This is the fd-recycling path — every
  // departed connection must be reclaimed by its close event, so the count
  // can exceed any fd budget; a leak shows up here as EMFILE long before
  // the loop ends.
  const std::size_t churn_connections = bench::fast_mode() ? 200 : 1000;
  double churn_seconds = 0;
  bool churn_ok = true;
  {
    tuner::TuningService service;
    tuner::ServiceServerOptions server_options;
    server_options.port = 0;
    server_options.workers = 2;
    tuner::ServiceServer server(service, server_options);
    server.start();
    tuner::ServiceClientOptions client_options;
    client_options.port = server.port();
    timer.reset();
    for (std::size_t i = 0; i < churn_connections && churn_ok; ++i) {
      try {
        tuner::ServiceClient client(client_options);
        churn_ok = client.ping();
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[service] churn connect %zu failed: %s\n", i,
                     e.what());
        churn_ok = false;
      }
    }
    churn_seconds = timer.seconds();
    server.stop();
  }
  const double churn_cps =
      churn_seconds > 0 ? static_cast<double>(churn_connections) / churn_seconds
                        : 0;
  std::printf("connection churn: %zu sequential connects in %.4fs "
              "(%.0f connects/s, 2 workers), %s\n",
              churn_connections, churn_seconds, churn_cps,
              churn_ok ? "all served" : "FAILED");

  if (std::FILE* f = std::fopen("BENCH_service.json", "w")) {
    std::fprintf(f, "{\n  \"bench\": \"service\",\n");
    std::fprintf(f, "  \"fast_mode\": %s,\n", bench::fast_mode() ? "true" : "false");
    std::fprintf(f, "  \"sessions\": %zu,\n", kSessions);
    std::fprintf(f, "  \"evaluations\": %llu,\n",
                 static_cast<unsigned long long>(evaluations));
    std::fprintf(f, "  \"inprocess_requests_per_second\": %.1f,\n", inprocess_rps);
    std::fprintf(f, "  \"wire_requests_per_second\": %.1f,\n", wire_rps);
    std::fprintf(f, "  \"wire_amplification\": %.2f,\n", wire_amplification);
    std::fprintf(f,
                 "  \"multi_objective\": {\"identical\": %s, "
                 "\"pareto_front_size\": %zu, "
                 "\"perf_per_watt_improvement\": %.4f},\n",
                 mo.identical ? "true" : "false", mo.pareto_front_size,
                 mo.perf_per_watt_improvement);
    std::fprintf(f, "  \"churn_connections\": %zu,\n", churn_connections);
    std::fprintf(f, "  \"churn_connects_per_second\": %.1f,\n", churn_cps);
    std::fprintf(f, "  \"identical\": %s\n", identical ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
  }

  if (!identical || !mo.identical) {
    std::fprintf(stderr, "[service] FAIL: transports are not bit-identical\n");
    return 1;
  }
  if (!churn_ok) {
    std::fprintf(stderr,
                 "[service] FAIL: connection churn leg did not survive %zu "
                 "sequential connects\n",
                 churn_connections);
    return 1;
  }
  if (gate_rps > 0 && inprocess_rps < gate_rps) {
    std::fprintf(stderr,
                 "[service] FAIL: in-process throughput %.0f req/s below the "
                 "--min-rps gate of %.0f\n",
                 inprocess_rps, gate_rps);
    return 1;
  }
  return 0;
}
