// Table 1: overview of constraint support and search-space construction
// methods in related work and this work.  Static content from the paper,
// with this repository's row verified live (the constraint API is exercised
// and the CSP solver is invoked on a miniature problem).
#include <iostream>

#include "bench_common.hpp"
#include "tunespace/util/table.hpp"

using namespace tunespace;

int main() {
  bench::section("Table 1: constraint support & construction methods");
  util::Table table(
      {"Tuner", "Open Source", "Actively developed", "Constraints API",
       "Search Space Construction"});
  table.add_row({"AUMA", "yes", "no", "n/a", "external"});
  table.add_row({"CLTune", "yes", "no", "C++", "brute-force"});
  table.add_row({"OpenTuner", "yes", "no", "n/a", "brute-force"});
  table.add_row({"ytopt", "yes", "yes*", "Python", "ConfigSpace"});
  table.add_row({"GPTune", "yes", "yes*", "Python", "scikit-optimize.space"});
  table.add_row({"KTT", "yes", "yes", "C++", "chain-of-trees"});
  table.add_row({"ATF", "yes", "yes", "C++", "chain-of-trees"});
  table.add_row({"BaCO", "yes", "no", "JSON", "chain-of-trees"});
  table.add_row({"PyATF", "yes", "yes", "Python", "chain-of-trees"});
  table.add_row({"Kernel Tuner (this work)", "yes", "yes", "Python-subset strings",
                 "CSP solver"});
  table.print(std::cout);
  std::cout << "* dependencies ConfigSpace / scikit-optimize are not actively "
               "maintained\n";

  // Verify this repository's row live: the string-constraint API feeds the
  // optimized CSP solver.
  tuner::TuningProblem probe("probe");
  probe.add_param("x", {1, 2, 4}).add_param("y", {1, 2, 4});
  probe.add_constraint("2 <= x * y <= 8");
  auto methods = tuner::construction_methods(false);
  auto run = bench::timed_construct(probe, methods[0]);
  std::cout << "\nlive check: 'CSP solver' row constructs a probe space of "
            << run.solutions << " configurations in "
            << util::fmt_seconds(run.seconds) << "\n";
  return 0;
}
