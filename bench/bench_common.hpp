#pragma once
// Shared helpers for the benchmark harnesses.
//
// Every bench binary is runnable with no arguments and prints the
// corresponding paper table / figure data to stdout.  Environment knobs:
//   TUNESPACE_BENCH_FAST=1   skip the slowest baseline runs (brute force on
//                            Cartesian products > 1e8) for quick iterations.

#include <string>
#include <vector>

#include "tunespace/solver/solver.hpp"
#include "tunespace/tuner/pipeline.hpp"

namespace bench {

/// True when TUNESPACE_BENCH_FAST=1 is set.
bool fast_mode();

/// Print a section header ("== title ==").
void section(const std::string& title);

/// One timed construction: lower the spec with the method's pipeline and
/// solve, returning (seconds, #solutions).  Timing includes pipeline build,
/// matching the paper's inclusion of search-space compile time (§5.1).
struct TimedRun {
  double seconds = 0;
  std::size_t solutions = 0;
};
TimedRun timed_construct(const tunespace::tuner::TuningProblem& spec,
                         const tunespace::tuner::Method& method);

/// Per-method series of per-space timings, used for the scaling fits.
struct MethodSeries {
  std::string name;
  std::vector<double> seconds;       ///< per space
  std::vector<double> valid_sizes;   ///< #solutions per space
  std::vector<double> cartesian;     ///< Cartesian size per space
  double total() const;
};

/// Print the log-log scaling fit (slope / intercept / r2 / p) of a series
/// against the chosen x-axis values.
void print_scaling_fits(const std::vector<MethodSeries>& series, bool vs_valid);

/// Print a KDE summary of log10(time) per method (the Fig. 3B / 5C view):
/// quantile table plus a unicode sparkline of the density curve.
void print_time_distributions(const std::vector<MethodSeries>& series);

/// Print the total-time bar view (Fig. 3C / 5F) with speedups vs a baseline
/// method (by name).
void print_totals(const std::vector<MethodSeries>& series,
                  const std::string& speedup_reference);

}  // namespace bench
