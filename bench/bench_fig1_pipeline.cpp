// Figure 1: the optimization of a constraint via the parsing pipeline.
// Prints every stage for the paper's running example:
//   2 <= block_size_y <= 32 <= block_size_x * block_size_y <= 1024
#include <iostream>

#include "bench_common.hpp"
#include "tunespace/expr/analysis.hpp"
#include "tunespace/expr/compiler.hpp"
#include "tunespace/expr/parser.hpp"
#include "tunespace/expr/recognizer.hpp"

using namespace tunespace;

int main() {
  const std::string source =
      "2 <= block_size_y <= 32 <= block_size_x * block_size_y <= 1024";

  bench::section("Fig. 1 Step 1: user constraint");
  std::cout << source << "\n";

  bench::section("Fig. 1 Step 2: parse + decompose into minimal scopes");
  const expr::AstPtr ast = expr::parse(source);
  const auto conjuncts = expr::decompose(expr::fold_constants(ast));
  for (const auto& c : conjuncts) {
    std::cout << "  " << c->to_string() << "   (vars:";
    for (const auto& v : expr::variables(*c)) std::cout << " " << v;
    std::cout << ")\n";
  }

  bench::section("Fig. 1 Step 3: recognize specific constraints");
  for (const auto& c : conjuncts) {
    auto recognized = expr::recognize(c);
    std::cout << "  " << c->to_string() << "  ->  " << recognized->describe()
              << "\n";
  }

  bench::section("appendix: runtime compilation of a generic constraint");
  const expr::AstPtr generic = expr::parse("block_size_x // block_size_y >= 2");
  std::cout << "constraint: " << generic->to_string() << "\nbytecode:\n"
            << expr::compile(generic).disassemble();
  return 0;
}
