// Figure 7: best configuration performance found over an auto-tuning run of
// the GEMM kernel, with the budget scaled by the valid-size ratio between
// GEMM and Hotspot (the paper's 10 minutes), random sampling, 10 reps.
#include <iostream>

#include "bench_common.hpp"
#include "tunespace/spaces/realworld.hpp"
#include "tunespace/tuner/runner.hpp"
#include "tunespace/tuner/session.hpp"
#include "tunespace/util/stats.hpp"
#include "tunespace/util/table.hpp"

using namespace tunespace;

int main() {
  const auto rw = spaces::gemm();
  tuner::GemmModel model;

  const double budget = 600.0;  // the paper's 10 minutes, in virtual seconds
  const int repetitions = bench::fast_mode() ? 3 : 10;
  const double construction_scale = 100.0;  // see bench_fig6 note

  auto all = tuner::construction_methods(false);
  std::vector<tuner::Method> methods;
  for (auto& m : all) {
    if (m.name == "optimized" || m.name == "original" || m.name == "pyATF" ||
        m.name == "brute-force") {
      methods.push_back(std::move(m));
    }
  }

  bench::section("Fig. 7: GEMM, random sampling, 10-minute virtual budget");
  util::Table table({"method", "construction (virtual)", "best @ 25%",
                     "best @ 50%", "best @ 100%", "evals (mean)"});
  for (const auto& method : methods) {
    std::vector<double> best25, best50, best100, evals, construction;
    for (int rep = 0; rep < repetitions; ++rep) {
      tuner::RandomSearch optimizer;
      tuner::TuningOptions options;
      options.budget_seconds = budget;
      options.seed = 200 + static_cast<std::uint64_t>(rep);
      options.construction_time_scale = construction_scale;
      auto run = tuner::run_session(
          tuner::make_session_request(rw.spec, method, model, optimizer, options));
      best25.push_back(run.best_at(0.25 * budget));
      best50.push_back(run.best_at(0.5 * budget));
      best100.push_back(run.best_at(budget));
      evals.push_back(static_cast<double>(run.evaluations));
      construction.push_back(run.construction_seconds * construction_scale);
    }
    table.add_row({method.name, util::fmt_seconds(util::mean(construction)),
                   util::fmt_double(util::mean(best25), 4),
                   util::fmt_double(util::mean(best50), 4),
                   util::fmt_double(util::mean(best100), 4),
                   util::fmt_double(util::mean(evals), 4)});
    std::cerr << "[fig7] finished " << method.name << "\n";
  }
  table.print(std::cout);

  bench::section("Fig. 7: best-found trajectory (seed 200)");
  for (const auto& method : methods) {
    tuner::RandomSearch optimizer;
    tuner::TuningOptions options;
    options.budget_seconds = budget;
    options.seed = 200;
    options.construction_time_scale = construction_scale;
    auto run = tuner::run_session(
          tuner::make_session_request(rw.spec, method, model, optimizer, options));
    std::vector<double> curve;
    for (int i = 1; i <= 24; ++i) curve.push_back(run.best_at(budget * i / 24.0));
    std::cout << "  " << method.name << std::string(12 - method.name.size(), ' ')
              << util::sparkline(curve) << "  best="
              << util::fmt_double(run.best_gflops, 4) << " GFLOP/s\n";
  }
  std::cout << "\n(paper: brute force fares substantially better than on "
               "Hotspot due to the smaller, denser space; orderings otherwise "
               "match Fig. 6)\n";
  return 0;
}
