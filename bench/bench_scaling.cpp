// Strong-scaling benchmark of the work-stealing parallel engine, emitted as
// BENCH_scaling.json (threads -> seconds/speedup per suite).
//
// Suites: synthetic dense (1 constraint, enumeration-bound), synthetic
// sparse (6 constraints, pruning-heavy and skew-prone — the work-stealing
// showcase), and the GEMM / Hotspot real-world spaces.  Every parallel run
// is verified byte-identical to the sequential enumeration; a mismatch is a
// hard failure regardless of flags.
//
// CI gate:  bench_scaling --min-speedup <threads> <x>
// exits non-zero when a *synthetic* suite's speedup at <threads> drops below
// <x> (the real-world suites are reported but not gated: they are small
// enough that scheduling overhead dominates on slow runners).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "tunespace/solver/optimized_backtracking.hpp"
#include "tunespace/spaces/realworld.hpp"
#include "tunespace/spaces/synthetic.hpp"
#include "tunespace/util/table.hpp"
#include "tunespace/util/timer.hpp"

using namespace tunespace;

namespace {

struct Suite {
  std::string name;
  bool gated = false;  // participates in the --min-speedup check
  std::vector<tuner::TuningProblem> specs;
};

std::vector<Suite> build_suites() {
  const bool fast = bench::fast_mode();
  std::vector<Suite> suites;

  Suite dense{"synthetic-dense", true, {}};
  // Dense spaces materialize ~40% of the Cartesian product; targets are
  // capped so reference + shards + merged result stay well under a GB.
  for (std::uint64_t target : fast
           ? std::vector<std::uint64_t>{5000000, 20000000}
           : std::vector<std::uint64_t>{20000000, 50000000}) {
    dense.specs.push_back(spaces::make_synthetic(4, target, 1, 11).spec);
  }
  suites.push_back(std::move(dense));

  Suite sparse{"synthetic-sparse", true, {}};
  for (std::uint64_t target : fast
           ? std::vector<std::uint64_t>{20000000, 50000000}
           : std::vector<std::uint64_t>{50000000, 100000000, 200000000}) {
    sparse.specs.push_back(spaces::make_synthetic(4, target, 6, 12).spec);
    sparse.specs.push_back(spaces::make_synthetic(5, target, 6, 13).spec);
  }
  suites.push_back(std::move(sparse));

  suites.push_back(Suite{"gemm", false, {spaces::gemm().spec}});
  suites.push_back(Suite{"hotspot", false, {spaces::hotspot().spec}});
  return suites;
}

std::vector<std::size_t> thread_counts() {
  std::vector<std::size_t> counts{1, 2, 4, 8};
  const std::size_t hw = std::thread::hardware_concurrency();
  if (hw > 8) counts.push_back(hw);
  return counts;
}

/// One suite run at a thread count: summed wall seconds (best of `repeats`
/// sweeps) and a byte-identity check of every space against the sequential
/// reference enumeration.
struct SuiteRun {
  double seconds = 0;
  std::size_t solutions = 0;
  bool deterministic = true;
};

bool identical(const solver::SolutionSet& a, const solver::SolutionSet& b) {
  if (a.num_vars() != b.num_vars() || a.size() != b.size()) return false;
  for (std::size_t v = 0; v < a.num_vars(); ++v) {
    if (a.column(v) != b.column(v)) return false;
  }
  return true;
}

SuiteRun run_suite(const Suite& suite, std::size_t threads,
                   const std::vector<solver::SolutionSet>& reference,
                   int repeats) {
  SuiteRun best;
  for (int rep = 0; rep < repeats; ++rep) {
    double total = 0;
    std::size_t solutions = 0;
    bool deterministic = true;
    for (std::size_t s = 0; s < suite.specs.size(); ++s) {
      solver::SolverOptions options;
      options.threads = threads;
      const auto method = tuner::parallel_method(options);
      util::WallTimer timer;
      auto problem = tuner::build_problem(suite.specs[s], method.pipeline);
      auto result = method.solver->solve(problem);
      total += timer.seconds();
      solutions += result.solutions.size();
      deterministic = deterministic && identical(result.solutions, reference[s]);
    }
    if (rep == 0 || total < best.seconds) best.seconds = total;
    best.solutions = solutions;
    best.deterministic = best.deterministic && deterministic;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t gate_threads = 0;
  double gate_speedup = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 2 < argc) {
      gate_threads = static_cast<std::size_t>(std::atoi(argv[i + 1]));
      gate_speedup = std::atof(argv[i + 2]);
      i += 2;
    } else {
      std::fprintf(stderr, "usage: %s [--min-speedup <threads> <x>]\n", argv[0]);
      return 2;
    }
  }

  const auto suites = build_suites();
  const auto counts = thread_counts();
  const int repeats = bench::fast_mode() ? 3 : 2;
  bool all_deterministic = true;
  bool gate_ok = true;
  bool gate_measured = false;

  // A speedup gate only makes sense when the hardware can actually run that
  // many workers; skip (loudly) on smaller machines instead of hard-failing.
  const std::size_t hw = std::thread::hardware_concurrency();
  if (gate_threads > 0 && hw > 0 && hw < gate_threads) {
    std::fprintf(stderr,
                 "WARNING: --min-speedup %zu requested but only %zu hardware "
                 "threads available; speedup gate disabled (determinism check "
                 "still enforced)\n",
                 gate_threads, hw);
    gate_threads = 0;
  }

  struct SuiteReport {
    std::string name;
    bool gated = false;
    std::size_t solutions = 0;
    std::vector<double> seconds;
    std::vector<double> speedup;
    bool deterministic = true;
  };
  std::vector<SuiteReport> reports;

  bench::section("Work-stealing parallel engine: strong scaling");
  util::Table table({"suite", "threads", "time", "speedup", "identical"});
  for (const Suite& suite : suites) {
    // Sequential reference enumeration (also the determinism baseline).
    std::vector<solver::SolutionSet> reference;
    for (const auto& spec : suite.specs) {
      auto problem = tuner::build_problem(spec, tuner::PipelineOptions::optimized());
      reference.push_back(solver::OptimizedBacktracking{}.solve(problem).solutions);
    }

    SuiteReport report;
    report.name = suite.name;
    report.gated = suite.gated;
    double base = 0;
    for (std::size_t threads : counts) {
      const SuiteRun run = run_suite(suite, threads, reference, repeats);
      if (threads == 1) base = run.seconds;
      const double speedup = run.seconds > 0 ? base / run.seconds : 0;
      report.solutions = run.solutions;
      report.seconds.push_back(run.seconds);
      report.speedup.push_back(speedup);
      report.deterministic = report.deterministic && run.deterministic;
      all_deterministic = all_deterministic && run.deterministic;
      table.add_row({suite.name, std::to_string(threads),
                     util::fmt_seconds(run.seconds),
                     util::fmt_double(speedup, 3) + "x",
                     run.deterministic ? "yes" : "NO"});
      if (suite.gated && gate_threads == threads) {
        gate_measured = true;
        if (speedup < gate_speedup) gate_ok = false;
      }
      std::fprintf(stderr, "[scaling] %s x%zu done\n", suite.name.c_str(), threads);
    }
    reports.push_back(std::move(report));
  }
  table.print(std::cout);

  if (std::FILE* f = std::fopen("BENCH_scaling.json", "w")) {
    std::fprintf(f, "{\n  \"bench\": \"scaling\",\n");
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"fast_mode\": %s,\n", bench::fast_mode() ? "true" : "false");
    std::fprintf(f, "  \"threads\": [");
    for (std::size_t i = 0; i < counts.size(); ++i) {
      std::fprintf(f, "%s%zu", i ? ", " : "", counts[i]);
    }
    std::fprintf(f, "],\n  \"suites\": [\n");
    for (std::size_t s = 0; s < reports.size(); ++s) {
      const SuiteReport& r = reports[s];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"gated\": %s, \"solutions\": %zu, "
                   "\"deterministic\": %s,\n     \"seconds\": [",
                   r.name.c_str(), r.gated ? "true" : "false", r.solutions,
                   r.deterministic ? "true" : "false");
      for (std::size_t i = 0; i < r.seconds.size(); ++i) {
        std::fprintf(f, "%s%.6f", i ? ", " : "", r.seconds[i]);
      }
      std::fprintf(f, "], \"speedup\": [");
      for (std::size_t i = 0; i < r.speedup.size(); ++i) {
        std::fprintf(f, "%s%.4f", i ? ", " : "", r.speedup[i]);
      }
      std::fprintf(f, "]}%s\n", s + 1 < reports.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_scaling.json\n");
  } else {
    std::fprintf(stderr, "could not write BENCH_scaling.json\n");
  }

  if (!all_deterministic) {
    std::fprintf(stderr,
                 "FAIL: parallel enumeration diverged from the sequential "
                 "solution order\n");
    return 1;
  }
  if (gate_threads > 0 && !gate_measured) {
    // Refuse to pass vacuously: a gate on an unmeasured thread count means
    // the regression check silently stopped gating.
    std::fprintf(stderr,
                 "FAIL: --min-speedup %zu requested but %zu threads was never "
                 "measured (thread counts: 1,2,4,8[,hw])\n",
                 gate_threads, gate_threads);
    return 2;
  }
  if (!gate_ok) {
    std::fprintf(stderr,
                 "FAIL: synthetic-suite speedup at %zu threads below %.2fx "
                 "(see table above)\n",
                 gate_threads, gate_speedup);
    return 1;
  }
  return 0;
}
