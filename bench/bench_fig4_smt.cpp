// Figure 4: construction performance of the blocking-clause SMT-style
// enumerator (PySMT + Z3 stand-in) versus brute force and the optimized
// solver, on the synthetic suite reduced by one order of magnitude
// (exactly the paper's setup: enumerating all solutions via repeated
// solve + blocking clause does not scale in the number of solutions).
#include <iostream>

#include "bench_common.hpp"
#include "tunespace/spaces/synthetic.hpp"
#include "tunespace/util/stats.hpp"
#include "tunespace/util/table.hpp"

using namespace tunespace;

int main() {
  spaces::SyntheticOptions options;
  options.size_scale = 0.1;  // the paper reduces the spaces by 10x for SMT
  auto suite = spaces::synthetic_suite(options);

  auto all = tuner::construction_methods(/*include_blocking=*/true);
  std::vector<tuner::Method> methods;
  for (auto& m : all) {
    if (m.name == "optimized" || m.name == "brute-force" || m.name == "blocking-smt") {
      methods.push_back(std::move(m));
    }
  }

  std::vector<bench::MethodSeries> series;
  for (const auto& method : methods) {
    bench::MethodSeries s;
    s.name = method.name;
    for (const auto& space : suite) {
      auto run = bench::timed_construct(space.spec, method);
      s.seconds.push_back(run.seconds);
      s.valid_sizes.push_back(static_cast<double>(run.solutions));
      s.cartesian.push_back(static_cast<double>(space.spec.cartesian_size()));
    }
    series.push_back(std::move(s));
    std::cerr << "[fig4] finished " << method.name << "\n";
  }

  bench::section("Fig. 4: scaling fits on 10x-reduced synthetic spaces");
  bench::print_scaling_fits(series, /*vs_valid=*/true);
  std::cout << "(paper: PySMT+Z3 slope 1.090 — superlinear; optimized 0.649)\n";

  bench::section("Fig. 4: per-method totals");
  bench::print_totals(series, "optimized");

  bench::section("Fig. 4: largest-space comparison");
  {
    util::Table table({"method", "time on largest space", "#valid"});
    for (const auto& s : series) {
      std::size_t largest = 0;
      for (std::size_t i = 1; i < s.valid_sizes.size(); ++i) {
        if (s.valid_sizes[i] > s.valid_sizes[largest]) largest = i;
      }
      table.add_row({s.name, util::fmt_seconds(s.seconds[largest]),
                     util::fmt_count(static_cast<unsigned long long>(
                         s.valid_sizes[largest]))});
    }
    table.print(std::cout);
  }
  return 0;
}
