#include "bench_common.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "tunespace/util/stats.hpp"
#include "tunespace/util/table.hpp"
#include "tunespace/util/timer.hpp"

namespace bench {

using namespace tunespace;

bool fast_mode() {
  const char* v = std::getenv("TUNESPACE_BENCH_FAST");
  return v != nullptr && std::string(v) == "1";
}

void section(const std::string& title) {
  std::cout << "\n== " << title << " ==\n";
}

TimedRun timed_construct(const tuner::TuningProblem& spec,
                         const tuner::Method& method) {
  util::WallTimer timer;
  auto result = tuner::construct(spec, method);
  return TimedRun{timer.seconds(), result.solutions.size()};
}

double MethodSeries::total() const {
  double t = 0;
  for (double s : seconds) t += s;
  return t;
}

void print_scaling_fits(const std::vector<MethodSeries>& series, bool vs_valid) {
  util::Table table({"method", vs_valid ? "x-axis" : "x-axis", "slope",
                     "intercept", "r^2", "p-value", "n"});
  for (const auto& s : series) {
    const auto& xs = vs_valid ? s.valid_sizes : s.cartesian;
    const auto fit = util::loglog_fit(xs, s.seconds);
    table.add_row({s.name, vs_valid ? "valid configs" : "Cartesian size",
                   util::fmt_double(fit.slope, 3), util::fmt_double(fit.intercept, 3),
                   util::fmt_double(fit.r2, 3), util::fmt_double(fit.p_value, 2),
                   std::to_string(fit.n)});
  }
  table.print(std::cout);
}

void print_time_distributions(const std::vector<MethodSeries>& series) {
  util::Table table({"method", "min", "q25", "median", "q75", "max",
                     "kde(log10 s)"});
  for (const auto& s : series) {
    if (s.seconds.empty()) continue;
    auto summary = util::summarize(s.seconds);
    std::vector<double> logs;
    for (double t : s.seconds) {
      if (t > 0) logs.push_back(std::log10(t));
    }
    const auto k = util::kde(logs, 32);
    table.add_row({s.name, util::fmt_seconds(summary.min),
                   util::fmt_seconds(summary.q25), util::fmt_seconds(summary.median),
                   util::fmt_seconds(summary.q75), util::fmt_seconds(summary.max),
                   util::sparkline(k.density)});
  }
  table.print(std::cout);
}

void print_totals(const std::vector<MethodSeries>& series,
                  const std::string& speedup_reference) {
  double ref_total = 0;
  for (const auto& s : series) {
    if (s.name == speedup_reference) ref_total = s.total();
  }
  util::Table table({"method", "total time", "speedup of '" + speedup_reference + "'"});
  for (const auto& s : series) {
    const double total = s.total();
    std::string speedup = "-";
    if (ref_total > 0 && s.name != speedup_reference && total > 0) {
      speedup = util::fmt_double(total / ref_total, 4) + "x";
    }
    table.add_row({s.name, util::fmt_seconds(total), speedup});
  }
  table.print(std::cout);
}

}  // namespace bench
