// Figure 5: construction performance on the eight real-world spaces for the
// five methods.
//   A: per-space times + scaling fit vs #valid configurations
//   B: scaling fit vs Cartesian size
//   C: per-method time distributions
//   D: time vs sparsity (fraction constrained)
//   E: time vs number of tunable parameters
//   F: total time per method with speedups
//
// Brute force on ATF PRL 8x8 sweeps a 2.4e9 Cartesian product (~minutes);
// set TUNESPACE_BENCH_FAST=1 to skip brute force on spaces > 1e8.
#include <iostream>

#include "bench_common.hpp"
#include "tunespace/spaces/realworld.hpp"
#include "tunespace/util/stats.hpp"
#include "tunespace/util/table.hpp"

using namespace tunespace;

int main() {
  auto spaces = spaces::all_realworld();
  auto methods = tuner::construction_methods(false);
  const std::uint64_t brute_cap = bench::fast_mode() ? 100000000ULL : UINT64_MAX;

  std::vector<bench::MethodSeries> series;
  // Per-space rows for the detail table.
  util::Table detail({"space", "method", "time", "#valid", "sparsity", "#params"});

  for (const auto& method : methods) {
    bench::MethodSeries s;
    s.name = method.name;
    for (const auto& rw : spaces) {
      if (method.name == "brute-force" && rw.spec.cartesian_size() > brute_cap) {
        std::cerr << "[fig5] skipping brute-force on " << rw.name
                  << " (TUNESPACE_BENCH_FAST=1)\n";
        continue;
      }
      auto run = bench::timed_construct(rw.spec, method);
      s.seconds.push_back(run.seconds);
      s.valid_sizes.push_back(static_cast<double>(run.solutions));
      s.cartesian.push_back(static_cast<double>(rw.spec.cartesian_size()));
      const double sparsity = 1.0 - static_cast<double>(run.solutions) /
                                        static_cast<double>(rw.spec.cartesian_size());
      detail.add_row({rw.name, method.name, util::fmt_seconds(run.seconds),
                      util::fmt_count(run.solutions), util::fmt_double(sparsity, 4),
                      std::to_string(rw.spec.num_params())});
      std::cerr << "[fig5] " << method.name << " on " << rw.name << ": "
                << util::fmt_seconds(run.seconds) << "\n";
    }
    series.push_back(std::move(s));
  }

  bench::section("Fig. 5: per-space construction times (all views' raw data)");
  detail.print(std::cout);

  bench::section("Fig. 5A: scaling fits vs #valid configurations");
  bench::print_scaling_fits(series, /*vs_valid=*/true);

  bench::section("Fig. 5B: scaling fits vs Cartesian size");
  bench::print_scaling_fits(series, /*vs_valid=*/false);

  bench::section("Fig. 5C: distribution of construction times per method");
  bench::print_time_distributions(series);

  bench::section("Fig. 5F: total construction time over the eight spaces");
  bench::print_totals(series, "optimized");
  std::cout << "\n(paper reference speedups vs optimized: brute-force ~20643x, "
               "ATF ~44x, pyATF ~891x, original ~2643x; this reproduction "
               "preserves the ordering, not the Python-vs-C++ magnitudes)\n";
  return 0;
}
