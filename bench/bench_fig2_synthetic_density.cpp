// Figure 2: density of three characteristics of the 78 synthetic search
// spaces: (A) Cartesian size, (B) number of valid configurations,
// (C) fraction of constrained (invalid) configurations.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "tunespace/spaces/synthetic.hpp"
#include "tunespace/util/stats.hpp"
#include "tunespace/util/table.hpp"

using namespace tunespace;

namespace {

void print_density(const std::string& title, const std::vector<double>& samples,
                   bool log_axis) {
  std::vector<double> axis;
  for (double s : samples) axis.push_back(log_axis ? std::log10(s) : s);
  const auto summary = util::summarize(axis);
  const auto k = util::kde(axis, 48);
  std::cout << title << (log_axis ? " (log10)" : "") << "\n";
  std::cout << "  density  " << util::sparkline(k.density) << "\n";
  std::cout << "  min=" << util::fmt_double(summary.min, 4)
            << " q25=" << util::fmt_double(summary.q25, 4)
            << " median=" << util::fmt_double(summary.median, 4)
            << " q75=" << util::fmt_double(summary.q75, 4)
            << " max=" << util::fmt_double(summary.max, 4) << "\n";
}

}  // namespace

int main() {
  auto suite = spaces::synthetic_suite();
  auto methods = tuner::construction_methods(false);
  const auto& optimized = methods[0];

  std::vector<double> cartesian, valid, sparsity;
  for (const auto& s : suite) {
    auto run = bench::timed_construct(s.spec, optimized);
    const double cart = static_cast<double>(s.spec.cartesian_size());
    cartesian.push_back(cart);
    valid.push_back(static_cast<double>(run.solutions));
    sparsity.push_back(1.0 - static_cast<double>(run.solutions) / cart);
  }

  bench::section("Fig. 2A: Cartesian size of the 78 synthetic search spaces");
  print_density("Cartesian size", cartesian, /*log_axis=*/true);

  bench::section("Fig. 2B: number of valid configurations");
  print_density("valid configurations", valid, /*log_axis=*/true);

  bench::section("Fig. 2C: fraction of constrained configurations (sparsity)");
  print_density("sparsity", sparsity, /*log_axis=*/false);

  // Paper observation: valid count is on average about one order of
  // magnitude below Cartesian size.
  double log_gap = 0;
  for (std::size_t i = 0; i < valid.size(); ++i) {
    log_gap += std::log10(cartesian[i]) - std::log10(std::max(valid[i], 1.0));
  }
  std::cout << "\naverage log10(Cartesian / valid) = "
            << util::fmt_double(log_gap / static_cast<double>(valid.size()), 3)
            << " (paper: ~1 order of magnitude)\n";
  return 0;
}
