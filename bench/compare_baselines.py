#!/usr/bin/env python3
"""Compare BENCH_*.json files against committed reference baselines.

Usage:
  compare_baselines.py --baseline-dir bench/baselines --current-dir build \
      [--threshold 0.75] [--warn-only] [--report compare_report.md]

For every BENCH_*.json present in *both* directories, walks the two JSON
trees in parallel (arrays of objects are joined by their "name" field) and
applies one rule per metric kind:

  *speedup*  (numbers)   gated at the top level of a file: current must
                         be >= threshold * baseline (the default threshold
                         0.75 = "fail on >25% regression"); improvements
                         always pass and are reported so a nightly refresh
                         can ratchet the baseline upward.  Per-entry
                         speedups nested inside "spaces"/"cases" arrays
                         measure individual microsecond-scale operations
                         and jitter far beyond 25%, so they are reported
                         but only the aggregates gate.
  identical / deterministic (booleans)
                         gated: a baseline of true must stay true.
  speedup arrays (per-thread scaling curves)
                         gated on their maximum: the best-threads speedup
                         must stay >= threshold * the baseline's best.
  rows / rows_out / solutions / file_bytes (integers)
                         gated: exact match — the resolved spaces are
                         deterministic, so any drift is a correctness bug,
                         not noise.
  *seconds*  (numbers)   informational only: absolute timings are
                         machine-dependent, so they are reported with their
                         relative delta but never gate.

A gated metric (or a whole BENCH file) present in the baseline but absent
from the current run is itself a failure — otherwise renaming a metric
would silently erase its gate.  The reverse direction is covered too: a
BENCH_*.json the current run produced with *no* committed baseline is a
failure (a new bench must arrive with its reference, otherwise its gates
never engage), except under --ratchet, which adopts the new file into the
baseline directory on first sight.  Everything else (names, thread lists,
fast_mode flags) is ignored.  Exits non-zero when any gated metric
regresses or disappears, unless --warn-only is given (used by per-PR CI,
where the report is uploaded as an artifact and the scheduled
bench-baseline workflow is the enforcing gate).

--ratchet additionally rewrites the baseline files in place as
max(baseline, current) per gated speedup (everything else from the current
run): the nightly refresh commit is therefore a monotonic ratchet, and a
regression that stays inside the threshold keeps being measured against
the old reference instead of compounding night over night.  An intentional
downward reset bypasses the ratchet by copying the raw JSONs (the
workflow_dispatch refresh=true path).
"""

import argparse
import json
import os
import shutil
import sys

GATED_EXACT_KEYS = {"rows", "rows_out", "solutions", "file_bytes", "rows_parent"}


def is_number(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def gated_missing(key, value, in_entry):
    """Is the absence of this baseline key a gate failure?  Scalar speedups
    nested inside named array entries are informational, so only their
    aggregate (top-level) and array (max-gated) forms protect their gate."""
    if key in ("identical", "deterministic") or key in GATED_EXACT_KEYS:
        return True
    if "speedup" in key:
        return not in_entry or isinstance(value, list)
    return False


def contains_gated(value, in_entry):
    """Does this baseline subtree hold anything whose absence erases a gate?"""
    if isinstance(value, dict):
        return any(gated_missing(k, v, in_entry) or contains_gated(v, in_entry)
                   for k, v in value.items())
    if isinstance(value, list):
        return any(contains_gated(e, True) for e in value
                   if isinstance(e, (dict, list)))
    return False


def walk(path, baseline, current, rows, in_entry=False):
    """Recursively compare `baseline` vs `current`, appending result rows."""
    if isinstance(baseline, dict) and isinstance(current, dict):
        for key in baseline:
            sub = f"{path}.{key}" if path else key
            if key in current:
                walk(sub, baseline[key], current[key], rows, in_entry)
            elif gated_missing(key, baseline[key], in_entry) \
                    or contains_gated(baseline[key], in_entry):
                rows.append(("missing", sub, baseline[key], None))
        return
    leaf = path.rsplit(".", 1)[-1].split("[", 1)[0]
    if isinstance(baseline, list) and isinstance(current, list):
        if all(isinstance(e, dict) and "name" in e for e in baseline + current):
            by_name = {e["name"]: e for e in current}
            for entry in baseline:
                if entry["name"] in by_name:
                    walk(f"{path}[{entry['name']}]", entry, by_name[entry["name"]],
                         rows, True)
                else:
                    rows.append(("missing", f"{path}[{entry['name']}]", entry, None))
        elif "speedup" in leaf and baseline and all(is_number(e) for e in baseline):
            if current and all(is_number(e) for e in current):
                # Per-thread scaling curve: gate its best point (a robust
                # aggregate; individual thread counts jitter).
                rows.append(("speedup", f"max({path})", max(baseline), max(current)))
            else:
                # Gated curve came back empty or non-numeric: gate erased.
                rows.append(("missing", path, baseline, None))
        return
    if isinstance(baseline, (dict, list)) or isinstance(current, (dict, list)):
        # Structure changed shape against the baseline (e.g. a gated list
        # became a scalar); treat a gated baseline as erased.
        if gated_missing(leaf, baseline, in_entry):
            rows.append(("missing", path, baseline, None))
        return

    if "speedup" in leaf and is_number(baseline):
        if is_number(current):
            rows.append(("speedup" if not in_entry else "info_speedup",
                         path, baseline, current))
        elif gated_missing(leaf, baseline, in_entry):
            rows.append(("missing", path, baseline, None))
    elif leaf in ("identical", "deterministic") and isinstance(baseline, bool) \
            and isinstance(current, bool):
        rows.append(("identical", path, baseline, current))
    elif leaf in GATED_EXACT_KEYS and is_number(baseline) and is_number(current):
        rows.append(("exact", path, baseline, current))
    elif "seconds" in leaf and is_number(baseline) and is_number(current):
        rows.append(("info", path, baseline, current))


def compare_file(name, baseline, current, threshold):
    """Returns (report lines, list of failure strings)."""
    rows = []
    walk("", baseline, current, rows)
    lines = [f"## {name}", "", "| metric | baseline | current | delta | status |",
             "|---|---|---|---|---|"]
    failures = []
    for kind, path, base, cur in rows:
        if kind == "speedup":
            ok = cur >= threshold * base
            delta = f"{(cur / base - 1) * 100:+.1f}%" if base else "n/a"
            status = "ok" if ok else f"REGRESSION (< {threshold:.2f}x baseline)"
            if not ok:
                failures.append(f"{name}: {path} = {cur:.2f} vs baseline "
                                f"{base:.2f} ({delta})")
            lines.append(f"| {path} | {base:.2f}x | {cur:.2f}x | {delta} | {status} |")
        elif kind == "identical":
            ok = cur or not base
            status = "ok" if ok else "IDENTITY/DETERMINISM LOST"
            if not ok:
                failures.append(f"{name}: {path} became false")
            lines.append(f"| {path} | {base} | {cur} | - | {status} |")
        elif kind == "exact":
            ok = base == cur
            status = "ok" if ok else "MISMATCH"
            if not ok:
                failures.append(f"{name}: {path} = {cur} vs baseline {base}")
            lines.append(f"| {path} | {base} | {cur} | - | {status} |")
        elif kind == "missing":
            failures.append(f"{name}: {path} present in baseline but missing "
                            f"from the current run")
            lines.append(f"| {path} | (present) | MISSING | - | GATE ERASED |")
        elif kind == "info_speedup":
            delta = f"{(cur / base - 1) * 100:+.1f}%" if base else "n/a"
            lines.append(f"| {path} | {base:.2f}x | {cur:.2f}x | {delta} | info |")
        else:  # info
            delta = f"{(cur / base - 1) * 100:+.1f}%" if base else "n/a"
            lines.append(f"| {path} | {base:.4f}s | {cur:.4f}s | {delta} | info |")
    lines.append("")
    return lines, failures


def ratchet(baseline, current, in_entry=False):
    """The current tree, with every *speedup* leaf raised to
    max(baseline, current) — numeric scalars directly, numeric arrays
    element-wise.  Everything else (timings, counts, flags) comes from the
    current run.  Writing the result back as the new baseline makes the
    nightly refresh a monotonic ratchet: a regression that stays inside the
    gate threshold keeps being measured against the old reference instead
    of compounding night over night.  Only *gated* speedups ratchet —
    per-entry scalar speedups are informational and simply track the
    current run."""
    if isinstance(baseline, dict) and isinstance(current, dict):
        merged = {}
        for key, value in current.items():
            base = baseline.get(key)
            if ("speedup" in key and not in_entry
                    and is_number(value) and is_number(base)):
                merged[key] = max(base, value)
            elif ("speedup" in key and isinstance(value, list)
                  and isinstance(base, list) and base and value
                  and all(is_number(e) for e in base + value)):
                if len(base) == len(value):
                    merged[key] = [max(b, c) for b, c in zip(base, value)]
                else:
                    # Curve reshaped (e.g. new thread counts): adopt it only
                    # if its gated best point does not drop, else keep the
                    # old curve — refresh=true is the downward path.
                    merged[key] = value if max(value) >= max(base) else base
            elif base is not None:
                merged[key] = ratchet(base, value, in_entry)
            else:
                merged[key] = value
        return merged
    if isinstance(baseline, list) and isinstance(current, list):
        if all(isinstance(e, dict) and "name" in e for e in baseline + current):
            by_name = {e["name"]: e for e in baseline}
            return [ratchet(by_name[e["name"]], e, True)
                    if e.get("name") in by_name else e for e in current]
    return current


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--current-dir", default="build")
    parser.add_argument("--threshold", type=float, default=0.75,
                        help="minimum allowed current/baseline speedup ratio")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit zero")
    parser.add_argument("--report", default="",
                        help="also write the markdown report to this file")
    parser.add_argument("--ratchet", action="store_true",
                        help="on success, rewrite the baseline files as "
                             "max(baseline, current) per speedup metric "
                             "(the nightly refresh path)")
    args = parser.parse_args()

    names = sorted(n for n in os.listdir(args.baseline_dir)
                   if n.startswith("BENCH_") and n.endswith(".json"))
    current_names = sorted(
        n for n in os.listdir(args.current_dir)
        if n.startswith("BENCH_") and n.endswith(".json")
    ) if os.path.isdir(args.current_dir) else []
    new_names = [n for n in current_names if n not in names]
    if not names and not new_names:
        print(f"no BENCH_*.json baselines under {args.baseline_dir}", file=sys.stderr)
        return 2

    report = [f"# Bench baseline comparison (threshold {args.threshold:.2f})", ""]
    failures = []
    compared = 0
    for name in names:
        current_path = os.path.join(args.current_dir, name)
        if not os.path.exists(current_path):
            report.append(f"## {name}\n\n*current run produced no {name}*\n")
            failures.append(f"{name}: baseline exists but the current run "
                            f"produced no such file")
            continue
        with open(os.path.join(args.baseline_dir, name)) as f:
            baseline = json.load(f)
        with open(current_path) as f:
            current = json.load(f)
        lines, file_failures = compare_file(name, baseline, current, args.threshold)
        report.extend(lines)
        failures.extend(file_failures)
        compared += 1

    # New bench outputs with no committed reference: a gate that never
    # engages is as bad as an erased one, so this fails unless --ratchet
    # adopts the file as its own first baseline below.
    for name in new_names:
        if args.ratchet:
            report.append(f"## {name}\n\n*new bench output: adopting as its "
                          f"first baseline*\n")
        else:
            report.append(f"## {name}\n\n*new bench output with no committed "
                          f"baseline*\n")
            failures.append(f"{name}: the current run produced {name} but no "
                            f"baseline is committed — run the baseline refresh "
                            f"(or --ratchet) to adopt it")

    if failures:
        report.append("## Result: FAIL")
        report.extend(f"- {f}" for f in failures)
    else:
        report.append(f"## Result: OK ({compared} file(s) compared)")

    text = "\n".join(report) + "\n"
    print(text)
    if args.report:
        with open(args.report, "w") as f:
            f.write(text)

    if compared == 0 and not new_names:
        print("no overlapping BENCH_*.json files to compare", file=sys.stderr)
        return 2
    if failures and not args.warn_only:
        return 1
    if args.ratchet and not failures:
        for name in new_names:
            baseline_path = os.path.join(args.baseline_dir, name)
            shutil.copyfile(os.path.join(args.current_dir, name), baseline_path)
            print(f"adopted {baseline_path}")
        for name in names:
            current_path = os.path.join(args.current_dir, name)
            if not os.path.exists(current_path):
                continue
            baseline_path = os.path.join(args.baseline_dir, name)
            with open(baseline_path) as f:
                baseline = json.load(f)
            with open(current_path) as f:
                current = json.load(f)
            with open(baseline_path, "w") as f:
                json.dump(ratchet(baseline, current), f, indent=2)
                f.write("\n")
            print(f"ratcheted {baseline_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
