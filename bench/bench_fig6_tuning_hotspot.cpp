// Figure 6: best configuration performance found over an auto-tuning run of
// the Hotspot kernel using the three Python-based construction methods
// (optimized, original, pyATF), random sampling, 10 repetitions.
//
// The paper uses a 30-minute wall-clock budget on an A100.  Here the kernel
// is a simulated performance surface, so the session replays on a virtual
// clock: the measured construction time is charged first (scaled so its
// share of the budget matches the paper's regime — pyATF's construction
// consumed ~2/3 of the paper's budget), then each simulated kernel
// evaluation advances the clock.  See EXPERIMENTS.md for the scaling note.
#include <iostream>

#include "bench_common.hpp"
#include "tunespace/spaces/realworld.hpp"
#include "tunespace/tuner/runner.hpp"
#include "tunespace/tuner/session.hpp"
#include "tunespace/util/stats.hpp"
#include "tunespace/util/table.hpp"

using namespace tunespace;

int main() {
  const auto rw = spaces::hotspot();
  tuner::HotspotModel model;

  const double budget = 1800.0;  // the paper's 30 minutes, in virtual seconds
  const int repetitions = bench::fast_mode() ? 3 : 10;

  // Construction-time scale: chosen so that the *relative* construction
  // latencies land in the paper's regime (brute force losing a large chunk
  // of the 30-minute budget, optimized near-instant).  The measured C++
  // construction times are orders of magnitude below the paper's
  // Python/A100 numbers, so the virtual clock charges them at 100x;
  // see EXPERIMENTS.md.
  const double construction_scale = 100.0;

  auto all = tuner::construction_methods(false);
  std::vector<tuner::Method> methods;
  for (auto& m : all) {
    if (m.name == "optimized" || m.name == "original" || m.name == "pyATF" ||
        m.name == "brute-force") {
      methods.push_back(std::move(m));
    }
  }

  bench::section("Fig. 6: Hotspot, random sampling, 30-minute virtual budget");
  util::Table table({"method", "construction (virtual)", "first eval at",
                     "best @ 25%", "best @ 50%", "best @ 100%", "evals (mean)"});

  std::vector<double> checkpoints = {0.25 * budget, 0.5 * budget, budget};
  for (const auto& method : methods) {
    std::vector<double> best25, best50, best100, evals, construction;
    double first_eval = 0;
    for (int rep = 0; rep < repetitions; ++rep) {
      tuner::RandomSearch optimizer;
      tuner::TuningOptions options;
      options.budget_seconds = budget;
      options.seed = 100 + static_cast<std::uint64_t>(rep);
      options.construction_time_scale = construction_scale;
      auto run = tuner::run_session(
          tuner::make_session_request(rw.spec, method, model, optimizer, options));
      best25.push_back(run.best_at(checkpoints[0]));
      best50.push_back(run.best_at(checkpoints[1]));
      best100.push_back(run.best_at(checkpoints[2]));
      evals.push_back(static_cast<double>(run.evaluations));
      construction.push_back(run.construction_seconds * construction_scale);
      if (!run.trajectory.empty()) first_eval = run.trajectory.front().time_seconds;
    }
    table.add_row({method.name, util::fmt_seconds(util::mean(construction)),
                   util::fmt_seconds(first_eval),
                   util::fmt_double(util::mean(best25), 4),
                   util::fmt_double(util::mean(best50), 4),
                   util::fmt_double(util::mean(best100), 4),
                   util::fmt_double(util::mean(evals), 4)});
    std::cerr << "[fig6] finished " << method.name << "\n";
  }
  table.print(std::cout);

  // Trajectory sparklines (best-so-far sampled at 24 points) for one seed.
  bench::section("Fig. 6: best-found trajectory (seed 100, higher is better)");
  for (const auto& method : methods) {
    tuner::RandomSearch optimizer;
    tuner::TuningOptions options;
    options.budget_seconds = budget;
    options.seed = 100;
    options.construction_time_scale = construction_scale;
    auto run = tuner::run_session(
          tuner::make_session_request(rw.spec, method, model, optimizer, options));
    std::vector<double> curve;
    for (int i = 1; i <= 24; ++i) {
      curve.push_back(run.best_at(budget * i / 24.0));
    }
    std::cout << "  " << method.name << std::string(12 - method.name.size(), ' ')
              << util::sparkline(curve) << "  best="
              << util::fmt_double(run.best_gflops, 4) << " GFLOP/s\n";
  }
  std::cout << "\n(paper: optimized starts tuning almost immediately; brute "
               "force loses ~8 min and pyATF >20 min to construction)\n";
  return 0;
}
