// Microbenchmarks (google-benchmark): the per-evaluation costs that drive
// the macro results — compiled vs interpreted constraint evaluation, the
// boxed vs int64 evaluator tiers, specific vs generic constraints, and
// SearchSpace lookup/neighbour operations.
//
// The custom main() additionally runs a self-timed boxed-vs-int64 comparison
// over an integer-only expression mix and writes machine-readable results to
// BENCH_eval.json (checks/sec and ns/check per tier), so the evaluation-cost
// trajectory is tracked across PRs.
#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "tunespace/csp/builtin_constraints.hpp"
#include "tunespace/expr/compiler.hpp"
#include "tunespace/expr/function_constraint.hpp"
#include "tunespace/expr/int_program.hpp"
#include "tunespace/expr/int_program_block.hpp"
#include "tunespace/expr/interpreter.hpp"
#include "tunespace/expr/parser.hpp"
#include "tunespace/expr/recognizer.hpp"
#include "tunespace/searchspace/neighbors.hpp"
#include "tunespace/searchspace/sampling.hpp"
#include "tunespace/spaces/realworld.hpp"

using namespace tunespace;
using csp::Value;

// Effective compiler/arch flags, stamped by CMake so the JSON result can be
// traced back to the codegen configuration that produced it.
#ifndef TUNESPACE_CODEGEN_SUMMARY
#define TUNESPACE_CODEGEN_SUMMARY "unknown"
#endif

namespace {

const char* kConstraint = "32 <= block_size_x * block_size_y <= 1024";

std::vector<Value> sample_values() { return {Value(64), Value(8)}; }

}  // namespace

static void BM_EvalInterpreted(benchmark::State& state) {
  const expr::AstPtr ast = expr::parse(kConstraint);
  std::unordered_map<std::string, Value> vars{{"block_size_x", Value(64)},
                                              {"block_size_y", Value(8)}};
  const auto env = expr::map_env(vars);
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr::eval_bool(*ast, env));
  }
}
BENCHMARK(BM_EvalInterpreted);

static void BM_EvalCompiled(benchmark::State& state) {
  const expr::Program prog = expr::compile(expr::parse(kConstraint));
  const auto values = sample_values();
  std::vector<std::uint32_t> slots;
  for (std::size_t i = 0; i < prog.var_names().size(); ++i) {
    slots.push_back(static_cast<std::uint32_t>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(prog.run_bool(values.data(), slots.data()));
  }
}
BENCHMARK(BM_EvalCompiled);

static void BM_EvalInt64(benchmark::State& state) {
  const expr::Program prog = expr::compile(expr::parse(kConstraint));
  const auto fast = expr::IntProgram::lower(prog);
  if (!fast) {
    state.SkipWithError("kConstraint is not int-closed");
    return;
  }
  std::vector<std::int64_t> values{64, 8};
  std::vector<std::uint32_t> slots;
  for (std::size_t i = 0; i < prog.var_names().size(); ++i) {
    slots.push_back(static_cast<std::uint32_t>(i));
  }
  for (auto _ : state) {
    bool r = false;
    fast->run_bool(values.data(), slots.data(), &r);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EvalInt64);

static void BM_EvalInt64Block(benchmark::State& state) {
  const expr::Program prog = expr::compile(expr::parse(kConstraint));
  const auto block = expr::IntProgramBlock::lower(
      expr::fold_constants(expr::parse(kConstraint)), prog.var_names());
  if (!block) {
    state.SkipWithError("kConstraint did not lower to the block VM");
    return;
  }
  std::int64_t values[2] = {0, 8};
  const std::uint32_t slots[2] = {0, 1};
  constexpr std::size_t kLanes = expr::IntProgramBlock::kLanes;
  const std::int64_t candidates[kLanes] = {1, 2, 4, 8, 16, 32, 64, 128};
  unsigned char truth[kLanes], poison[kLanes];
  for (auto _ : state) {
    block->run(values, slots, 0, candidates, kLanes, truth, poison);
    benchmark::DoNotOptimize(truth[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kLanes));
}
BENCHMARK(BM_EvalInt64Block);

static void BM_EvalSpecificConstraint(benchmark::State& state) {
  csp::MaxProduct c(1024, {"block_size_x", "block_size_y"});
  c.bind({0, 1});
  const auto values = sample_values();
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.satisfied(values.data()));
  }
}
BENCHMARK(BM_EvalSpecificConstraint);

static void BM_EvalFunctionConstraint(benchmark::State& state) {
  expr::FunctionConstraint c(expr::parse(kConstraint));
  c.bind({0, 1});
  const auto values = sample_values();
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.satisfied(values.data()));
  }
}
BENCHMARK(BM_EvalFunctionConstraint);

static void BM_ParseAndOptimizeConstraint(benchmark::State& state) {
  for (auto _ : state) {
    auto constraints = expr::optimize_constraint(expr::parse(
        "2 <= block_size_y <= 32 <= block_size_x * block_size_y <= 1024"));
    benchmark::DoNotOptimize(constraints);
  }
}
BENCHMARK(BM_ParseAndOptimizeConstraint);

static void BM_ConstructDedispersion(benchmark::State& state) {
  const auto rw = spaces::dedispersion();
  auto methods = tuner::construction_methods(false);
  for (auto _ : state) {
    auto result = tuner::construct(rw.spec, methods[0]);
    benchmark::DoNotOptimize(result.solutions.size());
  }
}
BENCHMARK(BM_ConstructDedispersion)->Unit(benchmark::kMillisecond);

static void BM_SearchSpaceLookup(benchmark::State& state) {
  searchspace::SearchSpace space(spaces::dedispersion().spec);
  std::size_t row = 0;
  for (auto _ : state) {
    auto found = space.find(space.indices(row));
    benchmark::DoNotOptimize(found);
    row = (row + 1) % space.size();
  }
}
BENCHMARK(BM_SearchSpaceLookup);

static void BM_HammingNeighbors(benchmark::State& state) {
  searchspace::SearchSpace space(spaces::dedispersion().spec);
  std::size_t row = 0;
  for (auto _ : state) {
    auto n = searchspace::neighbors_of(space, row);
    benchmark::DoNotOptimize(n);
    row = (row + 17) % space.size();
  }
}
BENCHMARK(BM_HammingNeighbors);

static void BM_LatinHypercube64(benchmark::State& state) {
  searchspace::SearchSpace space(spaces::dedispersion().spec);
  util::Rng rng(3);
  for (auto _ : state) {
    auto rows = searchspace::latin_hypercube_sample(space, 64, rng);
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_LatinHypercube64)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Boxed vs int64 evaluator comparison, emitted as BENCH_eval.json
// ---------------------------------------------------------------------------

namespace {

/// Integer-only expression mix modelled on real tuning constraints.
const char* kEvalMix[] = {
    "32 <= block_size_x * block_size_y <= 1024",
    "block_size_x % block_size_y == 0",
    "block_size_x * block_size_y % 32 == 0",
    "block_size_x in (1, 2, 4, 8, 16, 32, 64, 128)",
    "min(block_size_x, block_size_y) >= 2 and block_size_x ** 2 <= 16384",
};

struct EvalTierResult {
  double ns_per_check = 0;
  double checks_per_sec = 0;
};

/// Time `iters` evaluations of fn (called with the check index).
template <typename Fn>
EvalTierResult time_tier(std::size_t iters, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) fn(i);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  EvalTierResult r;
  r.ns_per_check = elapsed.count() * 1e9 / static_cast<double>(iters);
  r.checks_per_sec = static_cast<double>(iters) / elapsed.count();
  return r;
}

/// Run the boxed vs int64 vs block comparison and write BENCH_eval.json.
void run_eval_comparison(const char* json_path) {
  struct Compiled {
    expr::Program boxed;
    expr::IntProgram fast;
    expr::IntProgramBlock block;
  };
  std::vector<Compiled> programs;
  for (const char* src : kEvalMix) {
    expr::Program p = expr::compile(expr::parse(src));
    auto lowered = expr::IntProgram::lower(p);
    if (!lowered) {
      std::fprintf(stderr, "expression unexpectedly not int-closed: %s\n", src);
      continue;
    }
    auto block = expr::IntProgramBlock::lower(
        expr::fold_constants(expr::parse(src)), p.var_names());
    if (!block) {
      std::fprintf(stderr, "expression unexpectedly not block-lowerable: %s\n",
                   src);
      continue;
    }
    programs.push_back({std::move(p), std::move(*lowered), std::move(*block)});
  }
  if (programs.empty()) {
    std::fprintf(stderr, "no int-closed expressions in the mix; skipping\n");
    return;
  }

  // Assignment pool cycling through plausible block sizes.
  const std::int64_t xs[] = {1, 2, 4, 8, 16, 32, 64, 128};
  const std::int64_t ys[] = {2, 4, 8, 16, 32};
  std::vector<std::array<std::int64_t, 2>> int_pool;
  std::vector<std::array<Value, 2>> boxed_pool;
  for (std::int64_t x : xs) {
    for (std::int64_t y : ys) {
      int_pool.push_back({x, y});
      boxed_pool.push_back({Value(x), Value(y)});
    }
  }
  const std::uint32_t slots[] = {0, 1};  // both programs use x, y in order

  const std::size_t iters = bench::fast_mode() ? 2000000 : 20000000;
  std::uint64_t sink = 0;
  const EvalTierResult boxed = time_tier(iters, [&](std::size_t i) {
    const auto& prog = programs[i % programs.size()].boxed;
    const auto& vals = boxed_pool[i % boxed_pool.size()];
    sink += prog.run_bool(vals.data(), slots);
  });
  const EvalTierResult fast = time_tier(iters, [&](std::size_t i) {
    const auto& prog = programs[i % programs.size()].fast;
    const auto& vals = int_pool[i % int_pool.size()];
    bool r = false;
    prog.run_bool(vals.data(), slots, &r);
    sink += r;
  });
  // Block tier: each dispatch sweeps all kLanes x-candidates for one y, so a
  // lane is the unit comparable to one scalar check.
  constexpr std::size_t kLanes = expr::IntProgramBlock::kLanes;
  static_assert(sizeof(xs) / sizeof(xs[0]) == kLanes,
                "x pool doubles as the candidate lane group");
  EvalTierResult block = time_tier(iters / kLanes, [&](std::size_t i) {
    const auto& prog = programs[i % programs.size()].block;
    std::int64_t vals[2] = {0, ys[i % (sizeof(ys) / sizeof(ys[0]))]};
    unsigned char truth[kLanes], poison[kLanes];
    prog.run(vals, slots, 0, xs, kLanes, truth, poison);
    for (std::size_t l = 0; l < kLanes; ++l) sink += truth[l];
  });
  block.ns_per_check /= static_cast<double>(kLanes);
  block.checks_per_sec *= static_cast<double>(kLanes);

  const double speedup = boxed.ns_per_check / fast.ns_per_check;
  const double block_speedup = fast.ns_per_check / block.ns_per_check;
  std::printf("\n== boxed vs int64 vs block evaluation (%zu checks, sink=%llu) ==\n",
              iters, static_cast<unsigned long long>(sink));
  std::printf("boxed : %8.2f ns/check  %12.0f checks/sec\n", boxed.ns_per_check,
              boxed.checks_per_sec);
  std::printf("int64 : %8.2f ns/check  %12.0f checks/sec\n", fast.ns_per_check,
              fast.checks_per_sec);
  std::printf("block : %8.2f ns/check  %12.0f checks/sec\n", block.ns_per_check,
              block.checks_per_sec);
  std::printf("speedup boxed->int64: %.2fx   int64->block: %.2fx\n", speedup,
              block_speedup);

  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"eval_boxed_vs_int64\",\n"
                 "  \"codegen\": \"%s\",\n"
                 "  \"expression_mix\": %zu,\n"
                 "  \"checks\": %zu,\n"
                 "  \"boxed\": {\"ns_per_check\": %.4f, \"checks_per_sec\": %.0f},\n"
                 "  \"int64\": {\"ns_per_check\": %.4f, \"checks_per_sec\": %.0f},\n"
                 "  \"block\": {\"ns_per_check\": %.4f, \"checks_per_sec\": %.0f},\n"
                 "  \"speedup\": %.4f,\n"
                 "  \"speedup_block_vs_scalar\": %.4f\n"
                 "}\n",
                 TUNESPACE_CODEGEN_SUMMARY, programs.size(), iters,
                 boxed.ns_per_check, boxed.checks_per_sec, fast.ns_per_check,
                 fast.checks_per_sec, block.ns_per_check, block.checks_per_sec,
                 speedup, block_speedup);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_eval_comparison("BENCH_eval.json");
  return 0;
}
