// Microbenchmarks (google-benchmark): the per-evaluation costs that drive
// the macro results — compiled vs interpreted constraint evaluation, specific
// vs generic constraints, and SearchSpace lookup/neighbour operations.
#include <benchmark/benchmark.h>

#include "tunespace/csp/builtin_constraints.hpp"
#include "tunespace/expr/compiler.hpp"
#include "tunespace/expr/function_constraint.hpp"
#include "tunespace/expr/interpreter.hpp"
#include "tunespace/expr/parser.hpp"
#include "tunespace/expr/recognizer.hpp"
#include "tunespace/searchspace/neighbors.hpp"
#include "tunespace/searchspace/sampling.hpp"
#include "tunespace/spaces/realworld.hpp"

using namespace tunespace;
using csp::Value;

namespace {

const char* kConstraint = "32 <= block_size_x * block_size_y <= 1024";

std::vector<Value> sample_values() { return {Value(64), Value(8)}; }

}  // namespace

static void BM_EvalInterpreted(benchmark::State& state) {
  const expr::AstPtr ast = expr::parse(kConstraint);
  std::unordered_map<std::string, Value> vars{{"block_size_x", Value(64)},
                                              {"block_size_y", Value(8)}};
  const auto env = expr::map_env(vars);
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr::eval_bool(*ast, env));
  }
}
BENCHMARK(BM_EvalInterpreted);

static void BM_EvalCompiled(benchmark::State& state) {
  const expr::Program prog = expr::compile(expr::parse(kConstraint));
  const auto values = sample_values();
  std::vector<std::uint32_t> slots;
  for (std::size_t i = 0; i < prog.var_names().size(); ++i) {
    slots.push_back(static_cast<std::uint32_t>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(prog.run_bool(values.data(), slots.data()));
  }
}
BENCHMARK(BM_EvalCompiled);

static void BM_EvalSpecificConstraint(benchmark::State& state) {
  csp::MaxProduct c(1024, {"block_size_x", "block_size_y"});
  c.bind({0, 1});
  const auto values = sample_values();
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.satisfied(values.data()));
  }
}
BENCHMARK(BM_EvalSpecificConstraint);

static void BM_EvalFunctionConstraint(benchmark::State& state) {
  expr::FunctionConstraint c(expr::parse(kConstraint));
  c.bind({0, 1});
  const auto values = sample_values();
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.satisfied(values.data()));
  }
}
BENCHMARK(BM_EvalFunctionConstraint);

static void BM_ParseAndOptimizeConstraint(benchmark::State& state) {
  for (auto _ : state) {
    auto constraints = expr::optimize_constraint(expr::parse(
        "2 <= block_size_y <= 32 <= block_size_x * block_size_y <= 1024"));
    benchmark::DoNotOptimize(constraints);
  }
}
BENCHMARK(BM_ParseAndOptimizeConstraint);

static void BM_ConstructDedispersion(benchmark::State& state) {
  const auto rw = spaces::dedispersion();
  auto methods = tuner::construction_methods(false);
  for (auto _ : state) {
    auto result = tuner::construct(rw.spec, methods[0]);
    benchmark::DoNotOptimize(result.solutions.size());
  }
}
BENCHMARK(BM_ConstructDedispersion)->Unit(benchmark::kMillisecond);

static void BM_SearchSpaceLookup(benchmark::State& state) {
  searchspace::SearchSpace space(spaces::dedispersion().spec);
  std::size_t row = 0;
  for (auto _ : state) {
    auto found = space.find(space.indices(row));
    benchmark::DoNotOptimize(found);
    row = (row + 1) % space.size();
  }
}
BENCHMARK(BM_SearchSpaceLookup);

static void BM_HammingNeighbors(benchmark::State& state) {
  searchspace::SearchSpace space(spaces::dedispersion().spec);
  std::size_t row = 0;
  for (auto _ : state) {
    auto n = searchspace::neighbors_of(space, row);
    benchmark::DoNotOptimize(n);
    row = (row + 17) % space.size();
  }
}
BENCHMARK(BM_HammingNeighbors);

static void BM_LatinHypercube64(benchmark::State& state) {
  searchspace::SearchSpace space(spaces::dedispersion().spec);
  util::Rng rng(3);
  for (auto _ : state) {
    auto rows = searchspace::latin_hypercube_sample(space, 64, rng);
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_LatinHypercube64)->Unit(benchmark::kMicrosecond);
