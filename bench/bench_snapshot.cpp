// Snapshot persistence benchmark: cold-solve vs warm-load on the real-world
// suite, emitted as BENCH_snapshot.json.
//
// For every Table 2 space the harness (1) resolves the space from scratch
// (pipeline + solve + index build), (2) saves a binary snapshot and lets
// SearchSpace::load_or_build populate its cache, (3) reloads through the
// cache-hit path (mmap + shape verification, the zero-copy fast path) and
// through an explicit fully-checksummed load, and (4) verifies the reloaded
// space is byte-identical to the fresh one: same CSV bytes, same Hamming-1
// neighbour sets, same Latin-Hypercube sample under the same seed.  An
// identity mismatch is a hard failure regardless of flags.
//
// CI gate:  bench_snapshot --min-speedup <x> [--out-dir <dir>]
// exits non-zero when (total cold seconds) / (total load_or_build warm
// seconds) across the suite drops below <x> — i.e. the cache hit must be at
// least <x> times faster than re-solving.  --out-dir keeps the .tss files
// (CI uploads them as artifacts); by default they go to a scratch dir that
// is removed on exit.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "tunespace/searchspace/io.hpp"
#include "tunespace/searchspace/neighbors.hpp"
#include "tunespace/searchspace/sampling.hpp"
#include "tunespace/searchspace/searchspace.hpp"
#include "tunespace/spaces/realworld.hpp"
#include "tunespace/util/rng.hpp"
#include "tunespace/util/table.hpp"
#include "tunespace/util/timer.hpp"

using namespace tunespace;

namespace {

std::string csv_bytes(const searchspace::SearchSpace& space) {
  std::ostringstream os;
  searchspace::write_csv(space, os);
  return os.str();
}

/// Deep identity check between a fresh construction and its reload.
bool identical(const searchspace::SearchSpace& fresh,
               const searchspace::SearchSpace& loaded) {
  if (fresh.size() != loaded.size()) return false;
  if (csv_bytes(fresh) != csv_bytes(loaded)) return false;
  const std::size_t probe_rows = std::min<std::size_t>(fresh.size(), 64);
  for (std::size_t r = 0; r < probe_rows; ++r) {
    if (searchspace::neighbors_of(fresh, r) != searchspace::neighbors_of(loaded, r)) {
      return false;
    }
  }
  util::Rng rng_a(1234), rng_b(1234);
  return searchspace::latin_hypercube_sample(fresh, 32, rng_a) ==
         searchspace::latin_hypercube_sample(loaded, 32, rng_b);
}

struct SpaceReport {
  std::string name;
  std::size_t rows = 0;
  std::uintmax_t file_bytes = 0;
  double cold_seconds = 0;
  double warm_seconds = 0;      // load_or_build cache hit (kShape, mmap)
  double verified_seconds = 0;  // explicit load_snapshot with kFull checksums
  bool identical = true;
  double speedup() const {
    return warm_seconds > 0 ? cold_seconds / warm_seconds : 0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  double gate_speedup = 0;
  std::string out_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      gate_speedup = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--out-dir") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--min-speedup <x>] [--out-dir <dir>]\n",
                   argv[0]);
      return 2;
    }
  }
  const bool keep_snapshots = !out_dir.empty();
  if (out_dir.empty()) out_dir = "bench_snapshot_scratch";
  std::filesystem::create_directories(out_dir);

  const std::string cache_dir = out_dir + "/cache";
  const int warm_repeats = 3;
  std::vector<SpaceReport> reports;
  bool all_identical = true;

  bench::section("Snapshot persistence: cold solve vs warm zero-copy reload");
  util::Table table({"space", "rows", "file", "cold", "warm", "verified",
                     "speedup", "identical"});
  for (const auto& rw : spaces::all_realworld()) {
    SpaceReport report;
    report.name = rw.name;

    util::WallTimer timer;
    searchspace::SearchSpace fresh(rw.spec);
    report.cold_seconds = timer.seconds();
    report.rows = fresh.size();

    // Snapshot artifact (uploaded by CI); a copy pre-populates the
    // load_or_build cache so the warm runs hit without re-solving.
    const std::string path = out_dir + "/" + rw.name + ".tss";
    searchspace::save_snapshot(fresh, path);
    report.file_bytes = std::filesystem::file_size(path);
    std::filesystem::create_directories(cache_dir);
    std::filesystem::copy_file(path,
                               searchspace::snapshot_cache_entry(
                                   cache_dir, rw.spec, tuner::optimized_method()),
                               std::filesystem::copy_options::overwrite_existing);

    for (int rep = 0; rep < warm_repeats; ++rep) {
      timer.reset();
      searchspace::SearchSpace warm =
          searchspace::SearchSpace::load_or_build(rw.spec, cache_dir);
      const double seconds = timer.seconds();
      if (rep == 0 || seconds < report.warm_seconds) report.warm_seconds = seconds;
      if (rep == 0) report.identical = identical(fresh, warm);

      timer.reset();
      searchspace::SearchSpace verified = searchspace::load_snapshot(
          rw.spec, path, searchspace::SnapshotVerify::kFull);
      const double vseconds = timer.seconds();
      if (rep == 0 || vseconds < report.verified_seconds) {
        report.verified_seconds = vseconds;
      }
      if (rep == 0) {
        report.identical = report.identical && identical(fresh, verified);
      }
    }
    all_identical = all_identical && report.identical;

    table.add_row({rw.name, std::to_string(report.rows),
                   std::to_string(report.file_bytes / 1024) + " KiB",
                   util::fmt_seconds(report.cold_seconds),
                   util::fmt_seconds(report.warm_seconds),
                   util::fmt_seconds(report.verified_seconds),
                   util::fmt_double(report.speedup(), 1) + "x",
                   report.identical ? "yes" : "NO"});
    std::fprintf(stderr, "[snapshot] %s done\n", rw.name.c_str());
    reports.push_back(std::move(report));
  }
  table.print(std::cout);

  double total_cold = 0, total_warm = 0, total_verified = 0;
  for (const auto& r : reports) {
    total_cold += r.cold_seconds;
    total_warm += r.warm_seconds;
    total_verified += r.verified_seconds;
  }
  const double total_speedup = total_warm > 0 ? total_cold / total_warm : 0;
  std::printf(
      "suite total: cold %.4fs, warm %.4fs (verified %.4fs), speedup %.1fx\n",
      total_cold, total_warm, total_verified, total_speedup);

  if (std::FILE* f = std::fopen("BENCH_snapshot.json", "w")) {
    std::fprintf(f, "{\n  \"bench\": \"snapshot\",\n");
    std::fprintf(f, "  \"fast_mode\": %s,\n", bench::fast_mode() ? "true" : "false");
    std::fprintf(f, "  \"total_cold_seconds\": %.6f,\n", total_cold);
    std::fprintf(f, "  \"total_warm_seconds\": %.6f,\n", total_warm);
    std::fprintf(f, "  \"total_verified_seconds\": %.6f,\n", total_verified);
    std::fprintf(f, "  \"total_speedup\": %.2f,\n", total_speedup);
    std::fprintf(f, "  \"spaces\": [\n");
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const SpaceReport& r = reports[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"rows\": %zu, \"file_bytes\": %ju, "
                   "\"cold_seconds\": %.6f, \"warm_seconds\": %.6f, "
                   "\"verified_seconds\": %.6f, "
                   "\"speedup\": %.2f, \"identical\": %s}%s\n",
                   r.name.c_str(), r.rows, r.file_bytes, r.cold_seconds,
                   r.warm_seconds, r.verified_seconds, r.speedup(),
                   r.identical ? "true" : "false",
                   i + 1 < reports.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_snapshot.json\n");
  } else {
    std::fprintf(stderr, "could not write BENCH_snapshot.json\n");
  }

  if (!keep_snapshots) {
    std::error_code ec;
    std::filesystem::remove_all(out_dir, ec);
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: a reloaded snapshot diverged from its fresh "
                 "construction (see table above)\n");
    return 1;
  }
  if (gate_speedup > 0 && total_speedup < gate_speedup) {
    std::fprintf(stderr,
                 "FAIL: suite warm/cold speedup %.1fx below the %.1fx gate\n",
                 total_speedup, gate_speedup);
    return 1;
  }
  return 0;
}
