// Figure 3: search-space construction performance on the 78 synthetic
// spaces, for the five methods (optimized, ATF, original, brute-force,
// pyATF).
//
//   A: per-space times + log-log scaling fits vs number of valid configs,
//      with the crossover extrapolations the paper derives from the fits.
//   B: kernel-density view of the per-space time distributions.
//   C: total time per method with speedups relative to 'optimized'.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "tunespace/spaces/synthetic.hpp"
#include "tunespace/util/stats.hpp"
#include "tunespace/util/table.hpp"

using namespace tunespace;

int main() {
  auto suite = spaces::synthetic_suite();
  auto methods = tuner::construction_methods(false);

  std::vector<bench::MethodSeries> series;
  for (const auto& method : methods) {
    bench::MethodSeries s;
    s.name = method.name;
    for (const auto& space : suite) {
      auto run = bench::timed_construct(space.spec, method);
      s.seconds.push_back(run.seconds);
      s.valid_sizes.push_back(static_cast<double>(run.solutions));
      s.cartesian.push_back(static_cast<double>(space.spec.cartesian_size()));
    }
    series.push_back(std::move(s));
    std::cerr << "[fig3] finished " << method.name << "\n";
  }

  bench::section("Fig. 3A: log-log scaling fits (time vs #valid configs)");
  bench::print_scaling_fits(series, /*vs_valid=*/true);

  // Crossover extrapolation between methods, as in the paper's Fig. 3A
  // discussion (e.g. where brute force would overtake ATF).
  bench::section("Fig. 3A: extrapolated crossovers (from the fits)");
  {
    util::Table table({"method A", "method B", "crossover at #valid configs"});
    auto fit_of = [&](const std::string& name) {
      for (const auto& s : series) {
        if (s.name == name) return util::loglog_fit(s.valid_sizes, s.seconds);
      }
      return util::LinearFit{};
    };
    auto crossover = [&](const std::string& a, const std::string& b) {
      const auto fa = fit_of(a), fb = fit_of(b);
      if (fa.slope == fb.slope) return std::string("never (parallel)");
      const double log_x = (fb.intercept - fa.intercept) / (fa.slope - fb.slope);
      if (log_x > 18 || log_x < 0) return std::string("beyond practical sizes");
      return util::fmt_double(std::pow(10.0, log_x), 3);
    };
    table.add_row({"original", "ATF", crossover("original", "ATF")});
    table.add_row({"brute-force", "ATF", crossover("brute-force", "ATF")});
    table.add_row({"brute-force", "optimized", crossover("brute-force", "optimized")});
    table.add_row({"original", "optimized", crossover("original", "optimized")});
    table.print(std::cout);
  }

  bench::section("Fig. 3B: distribution of per-space construction times");
  bench::print_time_distributions(series);

  bench::section("Fig. 3C: total construction time over all 78 spaces");
  bench::print_totals(series, "optimized");

  // Paper headline numbers for reference: optimized achieved 96x over
  // brute-force, 16x over ATF, 2547x over pyATF on the synthetic suite.
  std::cout << "\n(paper reference speedups vs optimized: brute-force 96x, "
               "ATF 16x, pyATF 2547x)\n";
  return 0;
}
