// Concurrent multi-session runtime benchmark: aggregate throughput of N
// overlapping same-spec tuning sessions under the SessionManager (shared
// space + shared evaluation cache) versus the same N sessions as isolated
// run_tuning calls, emitted as BENCH_sessions.json.
//
// Each case runs a rotation of the five optimizers with per-session seeds
// and a fixed construction charge, so every session's TuningRun must be
// *bit-identical* between the isolated and the managed path — an identity
// mismatch is a hard failure regardless of flags.  The headline metric is
// the aggregate speedup (total isolated wall seconds / total managed wall
// seconds over all cases); per-case speedups and the shared-cache hit
// throughput are reported alongside.
//
// The transfer leg runs three sequential warm-start sessions over one
// shared eval cache: the third session, seeded from the rows the first two
// accumulated, must reach the first session's final best in fewer
// evaluations.  Warm-start with an empty cache (and warm-start off) must
// stay bit-identical to a cold run — that identity is a hard failure
// regardless of flags.
//
// CI gate:  bench_sessions --min-speedup <x> [--min-transfer-speedup <y>]
// exits non-zero when the aggregate speedup drops below <x> or the
// transfer evals-to-target speedup drops below <y>.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "tunespace/spaces/realworld.hpp"
#include "tunespace/tuner/session.hpp"
#include "tunespace/util/rng.hpp"
#include "tunespace/util/table.hpp"
#include "tunespace/util/timer.hpp"

using namespace tunespace;

namespace {

std::unique_ptr<tuner::Optimizer> make_optimizer(std::size_t i) {
  switch (i % 5) {
    case 0: return std::make_unique<tuner::RandomSearch>();
    case 1: return std::make_unique<tuner::GeneticAlgorithm>();
    case 2: return std::make_unique<tuner::SimulatedAnnealing>();
    case 3: return std::make_unique<tuner::HillClimber>();
    default: return std::make_unique<tuner::DifferentialEvolution>();
  }
}

tuner::TuningOptions session_options(std::uint64_t seed) {
  tuner::TuningOptions options;
  options.budget_seconds = 120.0;
  options.seed = seed;
  // Fix the construction charge: wall-clock construction latency is
  // machine noise, and the identity check below compares virtual
  // timelines bit-for-bit.
  options.fixed_construction_seconds = 5.0;
  return options;
}

struct CaseReport {
  std::string name;
  std::size_t rows = 0;
  std::size_t sessions = 0;
  double isolated_seconds = 0;
  double shared_seconds = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  bool identical = true;
  double speedup() const {
    return shared_seconds > 0 ? isolated_seconds / shared_seconds : 0;
  }
  double hit_rate() const {
    const double total = static_cast<double>(cache_hits + cache_misses);
    return total > 0 ? static_cast<double>(cache_hits) / total : 0;
  }
};

/// Multi-objective leg: the same isolated-vs-managed identity under a
/// two-objective (maximize gflops, minimize watts) session set, plus the
/// Pareto-front yield and the efficiency gain of power-aware tuning over
/// the throughput-only incumbent.
struct MultiObjectiveReport {
  bool identical = true;
  std::size_t pareto_front_size = 0;          ///< largest front in the set
  double perf_per_watt_improvement = 0;       ///< vector vs scalar incumbent
};

MultiObjectiveReport run_multi_objective(const spaces::RealWorldSpace& rw,
                                         std::size_t sessions,
                                         const tuner::PerformanceModel& model) {
  MultiObjectiveReport report;
  tuner::TuningOptions vector_options = session_options(1);
  vector_options.objectives = tuner::ObjectiveSpec::perf_and_power(1.0, 1.0);

  std::vector<tuner::TuningRun> isolated(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    const auto optimizer = make_optimizer(i);
    tuner::TuningOptions options = vector_options;
    options.seed = i + 1;
    const tuner::Method method = tuner::optimized_method();
    isolated[i] = tuner::run_session(
        tuner::make_session_request(rw.spec, method, model, *optimizer, options));
    report.pareto_front_size =
        std::max(report.pareto_front_size, isolated[i].pareto().size());
  }

  std::vector<tuner::SessionRequest> requests(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    requests[i].spec = rw.spec;
    requests[i].model = std::shared_ptr<const tuner::PerformanceModel>(
        &model, [](const tuner::PerformanceModel*) {});
    requests[i].make_optimizer = [i] { return make_optimizer(i); };
    requests[i].options = vector_options;
    requests[i].options.seed = i + 1;
  }
  tuner::SessionManager manager;
  const auto managed = manager.run_all(std::move(requests));
  for (std::size_t i = 0; i < sessions; ++i) {
    if (!(managed[i].run == isolated[i])) {
      report.identical = false;
      std::fprintf(stderr,
                   "[sessions] %s multi-objective session %zu diverged: "
                   "managed score %.6f vs isolated score %.6f\n",
                   rw.name.c_str(), i, managed[i].run.best_score,
                   isolated[i].best_score);
    }
  }

  // Efficiency gain: re-tune session 0 throughput-only, then compare
  // GFLOP/s-per-watt of the two incumbents (the scalar run masks watts, so
  // its incumbent is re-measured at its front row).
  tuner::TuningOptions scalar_options = session_options(1);
  const auto scalar_optimizer = make_optimizer(0);
  const tuner::Method method = tuner::optimized_method();
  const auto scalar = tuner::run_session(tuner::make_session_request(
      rw.spec, method, model, *scalar_optimizer, scalar_options));
  if (!scalar.front.empty() && !isolated[0].front.empty()) {
    std::vector<std::string> names;
    names.reserve(rw.spec.params().size());
    for (const auto& param : rw.spec.params()) names.push_back(param.name);
    const searchspace::SearchSpace space(rw.spec);
    const auto scalar_measured = model.measure(
        names, space.config(static_cast<std::size_t>(scalar.front[0].parent_row)));
    const tuner::Measurement& vector_best = isolated[0].best;
    if (scalar_measured.watts > 0 && vector_best.watts > 0) {
      const double scalar_ppw = scalar_measured.gflops / scalar_measured.watts;
      const double vector_ppw = vector_best.gflops / vector_best.watts;
      report.perf_per_watt_improvement = vector_ppw / scalar_ppw;
    }
  }
  return report;
}

/// Transfer leg: cache-seeded warm starts across sequential sessions.
struct TransferReport {
  bool identical = true;          ///< cold == cache-attached == warm-on-empty
  std::uint64_t seeded_rows = 0;  ///< rows seeded into the third session
  std::uint64_t evals_to_target_cold = 0;
  std::uint64_t evals_to_target_warm = 0;
  double evals_to_target_speedup = 0;
};

/// Evaluations the run needed before its best first reached `target`
/// (falls back to the full evaluation count if it never did).
std::uint64_t evals_to_target(const tuner::TuningRun& run, double target) {
  for (const auto& pt : run.trajectory) {
    if (pt.best_gflops >= target) return pt.evaluations;
  }
  return run.evaluations;
}

tuner::TuningRun transfer_session(const searchspace::SubSpace& view,
                                  const tuner::PerformanceModel& model,
                                  std::size_t which, std::uint64_t seed,
                                  bool warm, tuner::SharedEvalCache* cache,
                                  std::uint64_t cache_fp,
                                  tuner::SessionStats* stats = nullptr) {
  const auto optimizer = make_optimizer(which);
  tuner::TuningOptions options = session_options(seed);
  options.warm_start = warm;
  auto request = tuner::make_session_request(view, model, *optimizer, options);
  request.shared_cache = cache;
  request.cache_fingerprint = cache_fp;
  request.stats = stats;
  return tuner::run_session(request);
}

TransferReport run_transfer(const spaces::RealWorldSpace& rw,
                            const tuner::PerformanceModel& model) {
  TransferReport report;
  const searchspace::SearchSpace space(rw.spec);
  const searchspace::SubSpace view(space);
  const std::uint64_t cache_fp =
      util::mix64(util::mix64(space.fingerprint(), model.fingerprint()),
                  tuner::ObjectiveSpec{}.fingerprint());

  // The hard identity wall: the same session cold, with an empty shared
  // cache attached, and with warm-start requested over an empty cache must
  // all trace the exact same run — transfer is invisible until the cache
  // actually has rows to seed from.
  const auto cold = transfer_session(view, model, 0, 301, false, nullptr, 0);
  tuner::SharedEvalCache scratch;
  const auto cache_off =
      transfer_session(view, model, 0, 301, false, &scratch, cache_fp);
  tuner::SharedEvalCache cache;
  const auto first =
      transfer_session(view, model, 0, 301, true, &cache, cache_fp);
  report.identical = cold == cache_off && cold == first;
  if (!report.identical) {
    std::fprintf(stderr,
                 "[sessions] %s transfer session diverged from its cold "
                 "run: cold %.4f/%zu evals, cache-off %.4f/%zu, "
                 "warm-empty %.4f/%zu\n",
                 rw.name.c_str(), cold.best_gflops, cold.evaluations,
                 cache_off.best_gflops, cache_off.evaluations,
                 first.best_gflops, first.evaluations);
  }

  // Sessions two and three keep feeding the same cache; the third starts
  // from the best rows the first two measured.
  transfer_session(view, model, 1, 302, true, &cache, cache_fp);
  tuner::SessionStats third_stats;
  const auto third =
      transfer_session(view, model, 2, 303, true, &cache, cache_fp, &third_stats);

  const double target = first.best_gflops;
  report.seeded_rows = third_stats.seeded_rows;
  report.evals_to_target_cold = evals_to_target(first, target);
  report.evals_to_target_warm = evals_to_target(third, target);
  report.evals_to_target_speedup =
      report.evals_to_target_warm > 0
          ? static_cast<double>(report.evals_to_target_cold) /
                static_cast<double>(report.evals_to_target_warm)
          : 0;
  return report;
}

CaseReport run_case(const spaces::RealWorldSpace& rw, std::size_t sessions,
                    const tuner::PerformanceModel& model) {
  CaseReport report;
  report.name = rw.name;
  report.sessions = sessions;

  // Isolated baseline: every session pays its own construction.
  std::vector<tuner::TuningRun> isolated(sessions);
  util::WallTimer timer;
  for (std::size_t i = 0; i < sessions; ++i) {
    const auto optimizer = make_optimizer(i);
    const tuner::Method method = tuner::optimized_method();
    isolated[i] = tuner::run_session(tuner::make_session_request(
        rw.spec, method, model, *optimizer, session_options(i + 1)));
  }
  report.isolated_seconds = timer.seconds();

  // Managed: one shared space, one shared evaluation cache.
  std::vector<tuner::SessionRequest> requests(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    requests[i].spec = rw.spec;
    requests[i].model = std::shared_ptr<const tuner::PerformanceModel>(
        &model, [](const tuner::PerformanceModel*) {});
    requests[i].make_optimizer = [i] { return make_optimizer(i); };
    requests[i].options = session_options(i + 1);
  }
  tuner::SessionManager manager;
  timer.reset();
  const auto results = manager.run_all(std::move(requests));
  report.shared_seconds = timer.seconds();
  report.cache_hits = manager.eval_cache().hits();
  report.cache_misses = manager.eval_cache().misses();
  // Row count via the manager's registry — a free hit on the shared space
  // the sessions just used, not a third re-solve.
  report.rows =
      manager.acquire_space(rw.spec, tuner::optimized_method())->size();
  for (std::size_t i = 0; i < sessions; ++i) {
    if (!(results[i].run == isolated[i])) {
      report.identical = false;
      std::fprintf(stderr,
                   "[sessions] %s session %zu diverged: managed best %.4f "
                   "(%zu evals) vs isolated best %.4f (%zu evals)\n",
                   rw.name.c_str(), i, results[i].run.best_gflops,
                   results[i].run.evaluations, isolated[i].best_gflops,
                   isolated[i].evaluations);
    }
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  double gate_speedup = 0;
  double gate_transfer = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      gate_speedup = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-transfer-speedup") == 0 &&
               i + 1 < argc) {
      gate_transfer = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--min-speedup <x>] [--min-transfer-speedup <y>]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::section("Concurrent sessions: shared space + eval cache vs isolated");

  tuner::HotspotModel hotspot_model;
  tuner::GemmModel gemm_model;
  tuner::SyntheticModel synthetic_model(17);

  std::vector<CaseReport> reports;
  reports.push_back(run_case(spaces::hotspot(), 8, hotspot_model));
  reports.push_back(run_case(spaces::gemm(), 8, gemm_model));
  // Cheap-construction case: the win here comes from the shared eval cache
  // rather than amortized construction.
  reports.push_back(run_case(spaces::dedispersion(), 16, synthetic_model));

  util::Table table({"case", "rows", "sessions", "isolated", "shared",
                     "speedup", "hit-rate", "identical"});
  double total_isolated = 0, total_shared = 0;
  std::uint64_t total_hits = 0;
  bool all_identical = true;
  for (const auto& r : reports) {
    total_isolated += r.isolated_seconds;
    total_shared += r.shared_seconds;
    total_hits += r.cache_hits;
    all_identical = all_identical && r.identical;
    table.add_row({r.name, std::to_string(r.rows), std::to_string(r.sessions),
                   util::fmt_seconds(r.isolated_seconds),
                   util::fmt_seconds(r.shared_seconds),
                   util::fmt_double(r.speedup(), 2) + "x",
                   util::fmt_double(100 * r.hit_rate(), 3) + "%",
                   r.identical ? "yes" : "NO"});
  }
  table.print(std::cout);

  const double aggregate_speedup =
      total_shared > 0 ? total_isolated / total_shared : 0;
  const double hits_per_second =
      total_shared > 0 ? static_cast<double>(total_hits) / total_shared : 0;
  std::printf(
      "suite total: isolated %.4fs, shared %.4fs, aggregate speedup %.1fx, "
      "%.0f cache hits/s\n",
      total_isolated, total_shared, aggregate_speedup, hits_per_second);

  const auto mo = run_multi_objective(spaces::hotspot(), 4, hotspot_model);
  std::printf(
      "multi-objective: identical %s, Pareto front %zu points, "
      "perf-per-watt improvement %.3fx over throughput-only tuning\n",
      mo.identical ? "yes" : "NO", mo.pareto_front_size,
      mo.perf_per_watt_improvement);

  const auto transfer = run_transfer(spaces::hotspot(), hotspot_model);
  std::printf(
      "transfer: identical %s, %llu seeded rows, evals-to-target %llu cold "
      "vs %llu warm (%.2fx)\n",
      transfer.identical ? "yes" : "NO",
      static_cast<unsigned long long>(transfer.seeded_rows),
      static_cast<unsigned long long>(transfer.evals_to_target_cold),
      static_cast<unsigned long long>(transfer.evals_to_target_warm),
      transfer.evals_to_target_speedup);

  if (std::FILE* f = std::fopen("BENCH_sessions.json", "w")) {
    std::fprintf(f, "{\n  \"bench\": \"sessions\",\n");
    std::fprintf(f, "  \"fast_mode\": %s,\n", bench::fast_mode() ? "true" : "false");
    std::fprintf(f, "  \"total_isolated_seconds\": %.6f,\n", total_isolated);
    std::fprintf(f, "  \"total_shared_seconds\": %.6f,\n", total_shared);
    std::fprintf(f, "  \"aggregate_speedup\": %.2f,\n", aggregate_speedup);
    std::fprintf(f, "  \"cache_hits_per_second\": %.1f,\n", hits_per_second);
    std::fprintf(f, "  \"identical\": %s,\n", all_identical ? "true" : "false");
    std::fprintf(f,
                 "  \"multi_objective\": {\"identical\": %s, "
                 "\"pareto_front_size\": %zu, "
                 "\"perf_per_watt_improvement\": %.4f},\n",
                 mo.identical ? "true" : "false", mo.pareto_front_size,
                 mo.perf_per_watt_improvement);
    std::fprintf(f,
                 "  \"transfer\": {\"identical\": %s, \"seeded_rows\": %llu, "
                 "\"evals_to_target_cold\": %llu, "
                 "\"evals_to_target_warm\": %llu, "
                 "\"evals_to_target_speedup\": %.2f},\n",
                 transfer.identical ? "true" : "false",
                 static_cast<unsigned long long>(transfer.seeded_rows),
                 static_cast<unsigned long long>(transfer.evals_to_target_cold),
                 static_cast<unsigned long long>(transfer.evals_to_target_warm),
                 transfer.evals_to_target_speedup);
    std::fprintf(f, "  \"cases\": [\n");
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const CaseReport& r = reports[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"rows\": %zu, \"sessions\": %zu, "
                   "\"isolated_seconds\": %.6f, \"shared_seconds\": %.6f, "
                   "\"speedup\": %.2f, \"cache_hits\": %llu, "
                   "\"cache_hit_rate\": %.4f, \"identical\": %s}%s\n",
                   r.name.c_str(), r.rows, r.sessions, r.isolated_seconds,
                   r.shared_seconds, r.speedup(),
                   static_cast<unsigned long long>(r.cache_hits), r.hit_rate(),
                   r.identical ? "true" : "false",
                   i + 1 < reports.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_sessions.json\n");
  } else {
    std::fprintf(stderr, "could not write BENCH_sessions.json\n");
  }

  if (!all_identical || !mo.identical || !transfer.identical) {
    std::fprintf(stderr,
                 "FAIL: a managed session diverged from its isolated "
                 "counterpart (see above)\n");
    return 1;
  }
  if (gate_speedup > 0 && aggregate_speedup < gate_speedup) {
    std::fprintf(stderr,
                 "FAIL: aggregate speedup %.1fx below the %.1fx gate\n",
                 aggregate_speedup, gate_speedup);
    return 1;
  }
  if (gate_transfer > 0 && transfer.evals_to_target_speedup < gate_transfer) {
    std::fprintf(stderr,
                 "FAIL: transfer evals-to-target speedup %.2fx below the "
                 "%.2fx gate\n",
                 transfer.evals_to_target_speedup, gate_transfer);
    return 1;
  }
  return 0;
}
