// Ablation study (no paper figure; attributes the §4.3 optimizations).
//
// Solver-side ablations toggle the OptimizedBacktracking options
// (preprocessing, variable ordering, partial checks); pipeline-side
// ablations toggle decomposition / recognition / compilation.  Each variant
// runs the full real-world suite (sans PRL 8x8 for the slow variants) and
// reports total construction time.
#include <iostream>

#include "bench_common.hpp"
#include "tunespace/solver/optimized_backtracking.hpp"
#include "tunespace/solver/parallel_backtracking.hpp"
#include "tunespace/spaces/realworld.hpp"
#include "tunespace/util/table.hpp"

using namespace tunespace;

namespace {

double run_suite(const tuner::Method& method, std::uint64_t cartesian_cap) {
  double total = 0;
  for (const auto& rw : spaces::all_realworld()) {
    if (rw.spec.cartesian_size() > cartesian_cap) continue;
    total += bench::timed_construct(rw.spec, method).seconds;
  }
  return total;
}

tuner::Method solver_variant(const std::string& name,
                             solver::OptimizedOptions options) {
  return tuner::Method{name, tuner::PipelineOptions::optimized(),
                       std::make_unique<solver::OptimizedBacktracking>(options)};
}

tuner::Method pipeline_variant(const std::string& name,
                               tuner::PipelineOptions options) {
  return tuner::Method{name, options,
                       std::make_unique<solver::OptimizedBacktracking>()};
}

}  // namespace

int main() {
  // Cap the sweep for slow variants; the full-featured run handles all 8.
  const std::uint64_t cap = bench::fast_mode() ? 100000000ULL : UINT64_MAX;

  bench::section("Ablation A: solver optimizations (full pipeline constraints)");
  {
    util::Table table({"variant", "total time", "slowdown vs full"});
    const double full = run_suite(solver_variant("full", {}), cap);
    auto report = [&](const std::string& name, solver::OptimizedOptions o) {
      const double t = run_suite(solver_variant(name, o), cap);
      table.add_row({name, util::fmt_seconds(t),
                     util::fmt_double(t / full, 3) + "x"});
      std::cerr << "[ablation] " << name << " done\n";
    };
    table.add_row({"full (all optimizations)", util::fmt_seconds(full), "1x"});
    report("no domain preprocessing", {false, true, true, true});
    report("no variable ordering", {true, false, true, true});
    report("no partial checks", {true, true, false, true});
    report("no int64 fast path", {true, true, true, false});
    report("no block evaluation", {true, true, true, true, false});
    report("none (plain backtracking)", {false, false, false, false, false});
    table.print(std::cout);
  }

  bench::section("Ablation B: parsing pipeline (optimized solver throughout)");
  {
    util::Table table({"variant", "total time", "slowdown vs full"});
    const double full =
        run_suite(pipeline_variant("full", tuner::PipelineOptions::optimized()), cap);
    auto report = [&](const std::string& name, tuner::PipelineOptions o) {
      const double t = run_suite(pipeline_variant(name, o), cap);
      table.add_row({name, util::fmt_seconds(t),
                     util::fmt_double(t / full, 3) + "x"});
      std::cerr << "[ablation] " << name << " done\n";
    };
    table.add_row({"full (decompose+recognize+compile)", util::fmt_seconds(full),
                   "1x"});
    report("no recognition (compiled functions)",
           {true, false, expr::EvalMode::Compiled});
    report("no decomposition", {false, true, expr::EvalMode::Compiled});
    report("interpreted functions only",
           {false, false, expr::EvalMode::Interpreted});
    table.print(std::cout);
  }

  bench::section("Extension: parallel construction scaling (threads)");
  {
    // Strong scaling of the parallel solver on the two largest enumeration
    // workloads (Hotspot: large dense-ish sweep; ExpDist: wide domains).
    util::Table table({"space", "threads", "time", "speedup vs 1 thread"});
    for (auto rw : {spaces::hotspot(), spaces::expdist()}) {
      double base = 0;
      for (std::size_t threads : {1u, 2u, 4u, 8u}) {
        tuner::Method method{"parallel", tuner::PipelineOptions::optimized(),
                             std::make_unique<solver::ParallelBacktracking>(threads)};
        const auto run = bench::timed_construct(rw.spec, method);
        if (threads == 1) base = run.seconds;
        table.add_row({rw.name, std::to_string(threads),
                       util::fmt_seconds(run.seconds),
                       util::fmt_double(base / run.seconds, 3) + "x"});
        std::cerr << "[ablation] parallel " << rw.name << " x" << threads << "\n";
      }
    }
    table.print(std::cout);
  }
  return 0;
}
