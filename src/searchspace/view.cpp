#include "tunespace/searchspace/view.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "tunespace/util/timer.hpp"

namespace tunespace::searchspace {

namespace {

using query::CompiledPredicate;
using query::Exec;
using query::ParamMask;

/// Per-parameter admissibility bitmap over domain value indices.
std::vector<std::uint8_t> mask_bitmap(const csp::Problem& problem,
                                      const ParamMask& mask) {
  std::vector<std::uint8_t> bits(problem.domain(mask.param).size(), 0);
  for (std::uint32_t vi : mask.allowed) bits[vi] = 1;
  return bits;
}

/// Total length of the posting lists a mask's pushdown union would touch.
std::size_t posting_total(const SearchSpace& parent, const ParamMask& mask) {
  std::size_t total = 0;
  for (std::uint32_t vi : mask.allowed) {
    total += parent.rows_with(mask.param, vi).size();
  }
  return total;
}

/// Balanced pairwise merge of disjoint sorted posting lists in
/// [lo, hi) — a merge sort whose leaves are already sorted runs.
std::vector<std::uint32_t> merge_lists(
    const std::vector<std::span<const std::uint32_t>>& lists, std::size_t lo,
    std::size_t hi) {
  if (hi - lo == 1) return {lists[lo].begin(), lists[lo].end()};
  const std::size_t mid = lo + (hi - lo) / 2;
  const std::vector<std::uint32_t> left = merge_lists(lists, lo, mid);
  const std::vector<std::uint32_t> right = merge_lists(lists, mid, hi);
  std::vector<std::uint32_t> out;
  out.reserve(left.size() + right.size());
  std::merge(left.begin(), left.end(), right.begin(), right.end(),
             std::back_inserter(out));
  return out;
}

/// Union of the (disjoint, sorted) posting lists selected by `mask`,
/// ascending by row id.
std::vector<std::uint32_t> posting_union(const SearchSpace& parent,
                                         const ParamMask& mask, std::size_t total) {
  std::vector<std::span<const std::uint32_t>> lists;
  lists.reserve(mask.allowed.size());
  for (std::uint32_t vi : mask.allowed) {
    const auto list = parent.rows_with(mask.param, vi);
    if (!list.empty()) lists.push_back(list);
  }
  if (lists.empty()) return {};
  std::vector<std::uint32_t> rows = merge_lists(lists, 0, lists.size());
  assert(rows.size() == total);
  (void)total;
  return rows;
}

/// Keep only the rows of `rows` whose parameter values pass every bitmap in
/// `probes` ({param, bitmap} pairs).
void probe_filter(
    const SearchSpace& parent, std::vector<std::uint32_t>& rows,
    const std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>>& probes) {
  if (probes.empty()) return;
  std::size_t out = 0;
  for (std::uint32_t r : rows) {
    bool keep = true;
    for (const auto& [param, bits] : probes) {
      if (!bits[parent.value_index(r, param)]) {
        keep = false;
        break;
      }
    }
    if (keep) rows[out++] = r;
  }
  rows.resize(out);
}

}  // namespace

SubSpace::SubSpace(std::shared_ptr<const SearchSpace> parent)
    : parent_(parent.get()), keepalive_(std::move(parent)) {
  if (parent_ == nullptr) {
    throw std::invalid_argument("SubSpace: null shared SearchSpace");
  }
}

const std::vector<std::uint32_t>& SubSpace::present_values(std::size_t p) const {
  if (!sel_) return parent_->present_values(p);
  std::call_once(sel_->present_once, [this] {
    const SearchSpace& parent = *parent_;
    const std::size_t d = num_params();
    sel_->present.resize(d);
    std::vector<std::vector<std::uint8_t>> seen(d);
    for (std::size_t q = 0; q < d; ++q) {
      seen[q].assign(problem().domain(q).size(), 0);
    }
    for (std::uint32_t r : sel_->rows) {
      for (std::size_t q = 0; q < d; ++q) seen[q][parent.value_index(r, q)] = 1;
    }
    for (std::size_t q = 0; q < d; ++q) {
      for (std::size_t vi = 0; vi < seen[q].size(); ++vi) {
        if (seen[q][vi]) sel_->present[q].push_back(static_cast<std::uint32_t>(vi));
      }
    }
  });
  return sel_->present[p];
}

std::optional<std::size_t> SubSpace::local_of(std::size_t parent_row) const {
  if (!sel_) {
    if (parent_row >= parent_->size()) return std::nullopt;
    return parent_row;
  }
  const auto it = std::lower_bound(sel_->rows.begin(), sel_->rows.end(),
                                   static_cast<std::uint32_t>(parent_row));
  if (it == sel_->rows.end() || *it != parent_row) return std::nullopt;
  return static_cast<std::size_t>(it - sel_->rows.begin());
}

std::optional<std::size_t> SubSpace::find(
    const std::vector<std::uint32_t>& index_row) const {
  const auto row = parent_->find(index_row);
  if (!row) return std::nullopt;
  return local_of(*row);
}

std::vector<std::size_t> SubSpace::top_rows(std::size_t k) const {
  const std::size_t take = std::min(k, size());
  std::vector<std::size_t> rows;
  rows.reserve(take);
  for (std::size_t local = 0; local < take; ++local) {
    rows.push_back(parent_row(local));
  }
  return rows;
}

std::vector<csp::Value> SubSpace::project(std::size_t p) const {
  const csp::Domain& domain = problem().domain(p);
  std::vector<csp::Value> values;
  values.reserve(present_values(p).size());
  for (std::uint32_t vi : present_values(p)) values.push_back(domain[vi]);
  return values;
}

std::vector<csp::Value> SubSpace::project(const std::string& param) const {
  return project(problem().index_of(param));
}

SubSpace SubSpace::filter(const SearchSpace& parent, const query::Predicate& pred,
                          const query::QueryOptions& options,
                          query::QueryStats* stats) {
  return SubSpace(parent).restrict(pred, options, stats);
}

SubSpace SubSpace::restrict(const query::Predicate& pred,
                            const query::QueryOptions& options,
                            query::QueryStats* stats) const {
  util::WallTimer timer;
  query::QueryStats st;
  st.candidate_rows = size();

  const CompiledPredicate compiled = query::compile(pred, problem());
  if (compiled.trivial()) {
    // Nothing to do: share this view's selection outright (zero-copy chain).
    st.exec_used = options.exec;
    st.rows_out = size();
    st.seconds = timer.seconds();
    if (stats) *stats = st;
    return *this;
  }

  const SearchSpace& parent = *parent_;
  auto out = std::make_shared<Selection>();

  if (!compiled.unsatisfiable()) {
    // Plan: seed the row set either from the cheapest posting-list union
    // (pushdown) or from this view's candidate rows (scan).  Every further
    // conjunct is a bitmap probe either way, so the choice is driven by the
    // cheaper seed.
    std::size_t seed_mask = 0;
    std::size_t seed_total = 0;
    for (std::size_t i = 0; i < compiled.masks.size(); ++i) {
      const std::size_t total = posting_total(parent, compiled.masks[i]);
      if (i == 0 || total < seed_total) {
        seed_mask = i;
        seed_total = total;
      }
    }
    Exec exec = options.exec;
    if (exec == Exec::kAuto) {
      exec = seed_total < st.candidate_rows ? Exec::kPushdown : Exec::kScan;
    }
    st.exec_used = exec;

    std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>> probes;
    if (exec == Exec::kPushdown) {
      out->rows = posting_union(parent, compiled.masks[seed_mask], seed_total);
      st.rows_examined = seed_total;
      if (sel_) {
        // Chained refinement: stay inside the parent view's row set.
        std::vector<std::uint32_t> kept;
        kept.reserve(std::min(out->rows.size(), sel_->rows.size()));
        std::set_intersection(out->rows.begin(), out->rows.end(),
                              sel_->rows.begin(), sel_->rows.end(),
                              std::back_inserter(kept));
        out->rows = std::move(kept);
      }
      for (std::size_t i = 0; i < compiled.masks.size(); ++i) {
        if (i == seed_mask) continue;
        probes.emplace_back(compiled.masks[i].param,
                            mask_bitmap(problem(), compiled.masks[i]));
      }
      st.rows_examined += out->rows.size() * probes.size();
      probe_filter(parent, out->rows, probes);
    } else {
      for (const ParamMask& mask : compiled.masks) {
        probes.emplace_back(mask.param, mask_bitmap(problem(), mask));
      }
      if (sel_) {
        out->rows = sel_->rows;
      } else {
        out->rows.resize(parent.size());
        for (std::size_t r = 0; r < parent.size(); ++r) {
          out->rows[r] = static_cast<std::uint32_t>(r);
        }
      }
      st.rows_examined = out->rows.size();
      probe_filter(parent, out->rows, probes);
    }
  } else {
    // Unsatisfiable mask: the empty view needs no strategy (see the
    // QueryStats::exec_used contract).
    st.exec_used = options.exec;
  }

  st.rows_out = out->rows.size();
  st.seconds = timer.seconds();
  if (stats) *stats = st;
  SubSpace restricted(parent, std::move(out));
  restricted.keepalive_ = keepalive_;  // chained views keep the parent alive
  return restricted;
}

}  // namespace tunespace::searchspace
