#include "tunespace/searchspace/query.hpp"

#include <algorithm>
#include <sstream>
#include <utility>
#include <variant>

namespace tunespace::searchspace::query {

// The node tree is deliberately tiny: every condition names one parameter,
// and the only combinator is conjunction, which is what maps losslessly
// onto per-parameter index-set intersection.
struct Predicate::Node {
  struct Eq {
    std::string param;
    csp::Value value;
  };
  struct In {
    std::string param;
    std::vector<csp::Value> values;
  };
  struct Between {
    std::string param;
    csp::Value lo;
    csp::Value hi;
  };
  struct And {
    std::vector<Predicate> parts;
  };
  std::variant<Eq, In, Between, And> v;
};

namespace {

Predicate make(Predicate::Node&& node) {
  return Predicate(std::make_shared<const Predicate::Node>(std::move(node)));
}

/// Inclusive numeric range test; a value that cannot be ordered against the
/// bounds (ValueError, e.g. string vs number) does not match.
bool in_range(const csp::Value& v, const csp::Value& lo, const csp::Value& hi) {
  try {
    return v.compare(lo) >= 0 && v.compare(hi) <= 0;
  } catch (const csp::ValueError&) {
    return false;
  }
}

/// Intersect `dst` (sorted) with `src` (sorted) in place.
void intersect_sorted(std::vector<std::uint32_t>& dst,
                      const std::vector<std::uint32_t>& src) {
  std::vector<std::uint32_t> out;
  out.reserve(std::min(dst.size(), src.size()));
  std::set_intersection(dst.begin(), dst.end(), src.begin(), src.end(),
                        std::back_inserter(out));
  dst = std::move(out);
}

/// Fold one condition's admissible set into the per-parameter map.
/// `first_touch` tracks parameters seen before: the first condition on a
/// parameter installs its set, later ones intersect.
void apply_mask(std::vector<ParamMask>& masks, std::vector<bool>& touched,
                std::size_t param, std::vector<std::uint32_t> allowed) {
  if (!touched[param]) {
    touched[param] = true;
    masks.push_back({param, std::move(allowed)});
    return;
  }
  for (auto& mask : masks) {
    if (mask.param == param) {
      intersect_sorted(mask.allowed, allowed);
      return;
    }
  }
}

void compile_into(const Predicate& pred, const csp::Problem& problem,
                  std::vector<ParamMask>& masks, std::vector<bool>& touched) {
  if (pred.trivial()) return;
  const Predicate::Node& node = *pred.node();
  if (const auto* and_node = std::get_if<Predicate::Node::And>(&node.v)) {
    for (const Predicate& part : and_node->parts) {
      compile_into(part, problem, masks, touched);
    }
    return;
  }

  std::string param_name;
  std::vector<std::uint32_t> allowed;
  if (const auto* eq_node = std::get_if<Predicate::Node::Eq>(&node.v)) {
    param_name = eq_node->param;
    const csp::Domain& domain = problem.domain(problem.index_of(param_name));
    const std::size_t vi = domain.index_of(eq_node->value);
    if (vi != csp::Domain::npos) allowed.push_back(static_cast<std::uint32_t>(vi));
  } else if (const auto* in_node = std::get_if<Predicate::Node::In>(&node.v)) {
    param_name = in_node->param;
    const csp::Domain& domain = problem.domain(problem.index_of(param_name));
    for (const csp::Value& value : in_node->values) {
      const std::size_t vi = domain.index_of(value);
      if (vi != csp::Domain::npos) allowed.push_back(static_cast<std::uint32_t>(vi));
    }
    std::sort(allowed.begin(), allowed.end());
    allowed.erase(std::unique(allowed.begin(), allowed.end()), allowed.end());
  } else {
    const auto& between_node = std::get<Predicate::Node::Between>(node.v);
    param_name = between_node.param;
    const csp::Domain& domain = problem.domain(problem.index_of(param_name));
    for (std::size_t vi = 0; vi < domain.size(); ++vi) {
      if (in_range(domain[vi], between_node.lo, between_node.hi)) {
        allowed.push_back(static_cast<std::uint32_t>(vi));
      }
    }
  }
  apply_mask(masks, touched, problem.index_of(param_name), std::move(allowed));
}

void render(const Predicate& pred, std::ostringstream& os, bool& first) {
  if (pred.trivial()) return;
  const Predicate::Node& node = *pred.node();
  if (const auto* and_node = std::get_if<Predicate::Node::And>(&node.v)) {
    for (const Predicate& part : and_node->parts) render(part, os, first);
    return;
  }
  if (!first) os << " and ";
  first = false;
  if (const auto* eq_node = std::get_if<Predicate::Node::Eq>(&node.v)) {
    os << eq_node->param << " == " << eq_node->value.to_string();
  } else if (const auto* in_node = std::get_if<Predicate::Node::In>(&node.v)) {
    os << in_node->param << " in (";
    for (std::size_t i = 0; i < in_node->values.size(); ++i) {
      os << (i ? ", " : "") << in_node->values[i].to_string();
    }
    os << ")";
  } else {
    const auto& between_node = std::get<Predicate::Node::Between>(node.v);
    os << between_node.lo.to_string() << " <= " << between_node.param
       << " <= " << between_node.hi.to_string();
  }
}

}  // namespace

Predicate eq(std::string param, csp::Value value) {
  return make({Predicate::Node::Eq{std::move(param), std::move(value)}});
}

Predicate in_set(std::string param, std::vector<csp::Value> values) {
  return make({Predicate::Node::In{std::move(param), std::move(values)}});
}

Predicate between(std::string param, csp::Value lo, csp::Value hi) {
  return make({Predicate::Node::Between{std::move(param), std::move(lo), std::move(hi)}});
}

Predicate all_of(std::vector<Predicate> parts) {
  std::erase_if(parts, [](const Predicate& p) { return p.trivial(); });
  if (parts.empty()) return {};
  if (parts.size() == 1) return parts[0];
  return make({Predicate::Node::And{std::move(parts)}});
}

Predicate operator&&(const Predicate& a, const Predicate& b) {
  return all_of({a, b});
}

std::string to_string(const Predicate& pred) {
  if (pred.trivial()) return "true";
  std::ostringstream os;
  bool first = true;
  render(pred, os, first);
  return os.str();
}

bool CompiledPredicate::unsatisfiable() const {
  return std::any_of(masks.begin(), masks.end(),
                     [](const ParamMask& m) { return m.allowed.empty(); });
}

CompiledPredicate compile(const Predicate& pred, const csp::Problem& problem) {
  CompiledPredicate compiled;
  std::vector<bool> touched(problem.num_variables(), false);
  compile_into(pred, problem, compiled.masks, touched);
  std::sort(compiled.masks.begin(), compiled.masks.end(),
            [](const ParamMask& a, const ParamMask& b) { return a.param < b.param; });
  return compiled;
}

}  // namespace tunespace::searchspace::query
