#include "tunespace/searchspace/neighbors.hpp"

#include <algorithm>

namespace tunespace::searchspace {

namespace {

// One generic implementation serves the SearchSpace and SubSpace overloads:
// both expose num_params / problem / present_values / indices / find over
// their own row ids (parent rows for a space, local ids for a view), which
// is all the neighbourhood walk needs.  A view's present values and find()
// are membership-aware, so its neighbourhoods match those of a space built
// with the restriction as a constraint.

// Candidate alternative value indices for parameter p given current vi.
template <typename SpaceLike>
void alternative_values(const SpaceLike& space, std::size_t p, std::uint32_t vi,
                        NeighborMethod method, std::vector<std::uint32_t>& out) {
  out.clear();
  const auto& present = space.present_values(p);
  switch (method) {
    case NeighborMethod::Hamming1:
      for (std::uint32_t alt : present) {
        if (alt != vi) out.push_back(alt);
      }
      return;
    case NeighborMethod::Adjacent: {
      // Position of vi within the present-value order (values that never
      // occur in a valid config are skipped over).
      auto it = std::lower_bound(present.begin(), present.end(), vi);
      const std::size_t pos = static_cast<std::size_t>(it - present.begin());
      if (pos > 0) out.push_back(present[pos - 1]);
      if (it != present.end() && *it == vi && pos + 1 < present.size()) {
        out.push_back(present[pos + 1]);
      }
      return;
    }
    case NeighborMethod::StrictlyAdjacent: {
      const std::size_t domain_size = space.problem().domain(p).size();
      if (vi > 0) out.push_back(vi - 1);
      if (vi + 1 < domain_size) out.push_back(vi + 1);
      return;
    }
  }
}

template <typename SpaceLike>
std::vector<std::size_t> neighbors_impl(const SpaceLike& space, std::size_t row,
                                        NeighborMethod method) {
  std::vector<std::size_t> result;
  std::vector<std::uint32_t> indices = space.indices(row);
  std::vector<std::uint32_t> alts;
  for (std::size_t p = 0; p < space.num_params(); ++p) {
    const std::uint32_t original = indices[p];
    alternative_values(space, p, original, method, alts);
    for (std::uint32_t alt : alts) {
      indices[p] = alt;
      if (auto r = space.find(indices)) result.push_back(*r);
    }
    indices[p] = original;
  }
  return result;
}

template <typename SpaceLike>
void hamming_recurse(const SpaceLike& space, std::vector<std::uint32_t>& indices,
                     std::size_t start_param, std::size_t remaining,
                     std::vector<std::size_t>& out) {
  for (std::size_t p = start_param; p < space.num_params(); ++p) {
    const std::uint32_t original = indices[p];
    for (std::uint32_t alt : space.present_values(p)) {
      if (alt == original) continue;
      indices[p] = alt;
      if (auto r = space.find(indices)) out.push_back(*r);
      if (remaining > 1) {
        hamming_recurse(space, indices, p + 1, remaining - 1, out);
      }
    }
    indices[p] = original;
  }
}

template <typename SpaceLike>
std::vector<std::size_t> within_hamming_impl(const SpaceLike& space, std::size_t row,
                                             std::size_t max_distance) {
  std::vector<std::size_t> out;
  if (max_distance == 0) return out;
  std::vector<std::uint32_t> indices = space.indices(row);
  hamming_recurse(space, indices, 0, max_distance, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

std::vector<std::size_t> neighbors_of(const SearchSpace& space, std::size_t row,
                                      NeighborMethod method) {
  return neighbors_impl(space, row, method);
}

std::vector<std::size_t> neighbors_of(const SubSpace& view, std::size_t row,
                                      NeighborMethod method) {
  return neighbors_impl(view, row, method);
}

std::vector<std::size_t> neighbors_within_hamming(const SearchSpace& space,
                                                  std::size_t row,
                                                  std::size_t max_distance) {
  return within_hamming_impl(space, row, max_distance);
}

std::vector<std::size_t> neighbors_within_hamming(const SubSpace& view,
                                                  std::size_t row,
                                                  std::size_t max_distance) {
  return within_hamming_impl(view, row, max_distance);
}

NeighborIndex::NeighborIndex(const SearchSpace& space, NeighborMethod method) {
  lists_.resize(space.size());
  for (std::size_t r = 0; r < space.size(); ++r) {
    lists_[r] = neighbors_of(space, r, method);
  }
}

NeighborIndex::NeighborIndex(const SubSpace& view, NeighborMethod method) {
  lists_.resize(view.size());
  for (std::size_t r = 0; r < view.size(); ++r) {
    lists_[r] = neighbors_of(view, r, method);
  }
}

std::size_t NeighborIndex::total_edges() const {
  std::size_t total = 0;
  for (const auto& l : lists_) total += l.size();
  return total;
}

}  // namespace tunespace::searchspace
