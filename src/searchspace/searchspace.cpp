#include "tunespace/searchspace/searchspace.hpp"

#include <algorithm>

#include "tunespace/solver/optimized_backtracking.hpp"
#include "tunespace/util/timer.hpp"

namespace tunespace::searchspace {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  // 64-bit mix (splitmix64 finalizer) folded over the row values.
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
  return h ^ (h >> 27);
}

}  // namespace

SearchSpace::SearchSpace(const tuner::TuningProblem& spec)
    : SearchSpace(spec,
                  tuner::Method{"optimized", tuner::PipelineOptions::optimized(),
                                std::make_unique<solver::OptimizedBacktracking>()}) {}

SearchSpace::SearchSpace(const tuner::TuningProblem& spec,
                         const solver::SolverOptions& parallel)
    : SearchSpace(spec, tuner::parallel_method(parallel)) {}

SearchSpace::SearchSpace(const tuner::TuningProblem& spec,
                         const tuner::Method& method) {
  util::WallTimer timer;
  problem_ = tuner::build_problem(spec, method.pipeline);
  solver::SolveResult result = method.solver->solve(problem_);
  solutions_ = std::move(result.solutions);
  stats_ = result.stats;
  build_indexes();
  construction_seconds_ = timer.seconds();
}

double SearchSpace::sparsity() const {
  const double cart = static_cast<double>(cartesian_size());
  if (cart <= 0) return 0.0;
  return 1.0 - static_cast<double>(size()) / cart;
}

std::uint64_t SearchSpace::row_hash(const std::uint32_t* row) const {
  std::uint64_t h = 0x51A2B3C4D5E6F708ULL;
  for (std::size_t p = 0; p < num_params(); ++p) h = mix(h, row[p]);
  return h;
}

void SearchSpace::build_indexes() {
  const std::size_t n = size();
  const std::size_t d = num_params();

  hash_index_.reserve(n * 2);
  std::vector<std::uint32_t> row(d);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t p = 0; p < d; ++p) row[p] = solutions_.value_index(r, p);
    hash_index_[row_hash(row.data())].push_back(static_cast<std::uint32_t>(r));
  }

  posting_.resize(d);
  present_values_.resize(d);
  for (std::size_t p = 0; p < d; ++p) {
    posting_[p].assign(problem_.domain(p).size(), {});
    for (std::size_t r = 0; r < n; ++r) {
      posting_[p][solutions_.value_index(r, p)].push_back(static_cast<std::uint32_t>(r));
    }
    for (std::uint32_t vi = 0; vi < posting_[p].size(); ++vi) {
      if (!posting_[p][vi].empty()) present_values_[p].push_back(vi);
    }
  }
}

std::optional<std::size_t> SearchSpace::find(
    const std::vector<std::uint32_t>& index_row) const {
  if (index_row.size() != num_params()) return std::nullopt;
  auto it = hash_index_.find(row_hash(index_row.data()));
  if (it == hash_index_.end()) return std::nullopt;
  for (std::uint32_t r : it->second) {
    bool match = true;
    for (std::size_t p = 0; p < num_params(); ++p) {
      if (solutions_.value_index(r, p) != index_row[p]) {
        match = false;
        break;
      }
    }
    if (match) return r;
  }
  return std::nullopt;
}

std::optional<std::size_t> SearchSpace::find_config(const csp::Config& config) const {
  if (config.size() != num_params()) return std::nullopt;
  std::vector<std::uint32_t> row(num_params());
  for (std::size_t p = 0; p < num_params(); ++p) {
    const std::size_t vi = problem_.domain(p).index_of(config[p]);
    if (vi == csp::Domain::npos) return std::nullopt;
    row[p] = static_cast<std::uint32_t>(vi);
  }
  return find(row);
}

const std::vector<std::uint32_t>& SearchSpace::rows_with(std::size_t p,
                                                         std::uint32_t vi) const {
  static const std::vector<std::uint32_t> kEmpty;
  if (p >= posting_.size() || vi >= posting_[p].size()) return kEmpty;
  return posting_[p][vi];
}

}  // namespace tunespace::searchspace
