#include "tunespace/searchspace/searchspace.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "tunespace/util/rng.hpp"
#include "tunespace/util/timer.hpp"

namespace tunespace::searchspace {

SearchSpace::SearchSpace(const tuner::TuningProblem& spec)
    : SearchSpace(spec, tuner::optimized_method()) {}

SearchSpace::SearchSpace(const tuner::TuningProblem& spec,
                         const solver::SolverOptions& parallel)
    : SearchSpace(spec, tuner::parallel_method(parallel)) {}

SearchSpace::SearchSpace(const tuner::TuningProblem& spec,
                         const tuner::Method& method) {
  util::WallTimer timer;
  fingerprint_ = tuner::spec_fingerprint(spec, method);
  problem_ = tuner::build_problem(spec, method.pipeline);
  solver::SolveResult result = method.solver->solve(problem_);
  solutions_ = std::move(result.solutions);
  stats_ = result.stats;
  build_indexes();
  construction_seconds_ = timer.seconds();
}

double SearchSpace::sparsity() const {
  const double cart = static_cast<double>(cartesian_size());
  if (cart <= 0) return 0.0;
  return 1.0 - static_cast<double>(size()) / cart;
}

std::uint64_t SearchSpace::row_hash(const std::uint32_t* row) const {
  std::uint64_t h = 0x51A2B3C4D5E6F708ULL;
  for (std::size_t p = 0; p < num_params(); ++p) h = util::mix64(h, row[p]);
  return h;
}

bool SearchSpace::row_equals(std::uint32_t row,
                             const std::uint32_t* index_row) const {
  for (std::size_t p = 0; p < num_params(); ++p) {
    if (solutions_.value_index(row, p) != index_row[p]) return false;
  }
  return true;
}

void SearchSpace::build_indexes() {
  const std::size_t n = size();
  const std::size_t d = num_params();
  assert(n < kEmptySlot);

  // --- CSR inverted indexes: one global offsets array over all parameters.
  posting_base_.resize(d);
  std::size_t total_offsets = 0;
  for (std::size_t p = 0; p < d; ++p) {
    posting_base_[p] = total_offsets;
    total_offsets += problem_.domain(p).size() + 1;
  }
  posting_offsets_store_.assign(total_offsets, 0);
  posting_rows_store_.resize(n * d);
  std::vector<std::uint64_t> cursor;
  for (std::size_t p = 0; p < d; ++p) {
    const auto& col = solutions_.column(p);
    const std::size_t base = posting_base_[p];
    const std::size_t m = problem_.domain(p).size();
    // Count occurrences, then prefix-sum into global row positions starting
    // at parameter p's region base p * n.
    for (std::size_t r = 0; r < n; ++r) {
      ++posting_offsets_store_[base + col.get(r) + 1];
    }
    posting_offsets_store_[base] = static_cast<std::uint64_t>(p) * n;
    for (std::size_t vi = 0; vi < m; ++vi) {
      posting_offsets_store_[base + vi + 1] += posting_offsets_store_[base + vi];
    }
    // Fill rows ascending so each posting list is sorted by row id.
    cursor.assign(posting_offsets_store_.begin() + static_cast<std::ptrdiff_t>(base),
                  posting_offsets_store_.begin() + static_cast<std::ptrdiff_t>(base + m));
    for (std::size_t r = 0; r < n; ++r) {
      posting_rows_store_[cursor[col.get(r)]++] = static_cast<std::uint32_t>(r);
    }
  }
  posting_offsets_ = posting_offsets_store_;
  posting_rows_ = posting_rows_store_;
  derive_present_values();

  // --- Row-lookup table (insertion in row order is deterministic).
  const std::size_t table_size =
      std::bit_ceil(std::max<std::size_t>(16, n * 2));
  hash_table_store_.assign(table_size, kEmptySlot);
  const std::size_t tmask = table_size - 1;
  std::vector<std::uint32_t> row(d);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t p = 0; p < d; ++p) row[p] = solutions_.value_index(r, p);
    std::size_t i = static_cast<std::size_t>(row_hash(row.data())) & tmask;
    while (hash_table_store_[i] != kEmptySlot) i = (i + 1) & tmask;
    hash_table_store_[i] = static_cast<std::uint32_t>(r);
  }
  hash_table_ = hash_table_store_;
}

void SearchSpace::derive_present_values() {
  const std::size_t d = num_params();
  present_values_.assign(d, {});
  for (std::size_t p = 0; p < d; ++p) {
    const std::size_t base = posting_base_[p];
    const std::size_t m = problem_.domain(p).size();
    for (std::uint32_t vi = 0; vi < m; ++vi) {
      if (posting_offsets_[base + vi + 1] > posting_offsets_[base + vi]) {
        present_values_[p].push_back(vi);
      }
    }
  }
}

std::optional<std::size_t> SearchSpace::find(
    const std::vector<std::uint32_t>& index_row) const {
  if (index_row.size() != num_params() || hash_table_.empty()) {
    return std::nullopt;
  }
  const std::size_t tmask = hash_table_.size() - 1;
  std::size_t i = static_cast<std::size_t>(row_hash(index_row.data())) & tmask;
  for (; hash_table_[i] != kEmptySlot; i = (i + 1) & tmask) {
    if (row_equals(hash_table_[i], index_row.data())) return hash_table_[i];
  }
  return std::nullopt;
}

std::optional<std::size_t> SearchSpace::find_config(const csp::Config& config) const {
  if (config.size() != num_params()) return std::nullopt;
  std::vector<std::uint32_t> row(num_params());
  for (std::size_t p = 0; p < num_params(); ++p) {
    const std::size_t vi = problem_.domain(p).index_of(config[p]);
    if (vi == csp::Domain::npos) return std::nullopt;
    row[p] = static_cast<std::uint32_t>(vi);
  }
  return find(row);
}

std::span<const std::uint32_t> SearchSpace::rows_with(std::size_t p,
                                                      std::uint32_t vi) const {
  if (p >= posting_base_.size() || vi >= problem_.domain(p).size()) return {};
  const std::size_t base = posting_base_[p];
  const std::uint64_t begin = posting_offsets_[base + vi];
  const std::uint64_t end = posting_offsets_[base + vi + 1];
  return posting_rows_.subspan(static_cast<std::size_t>(begin),
                               static_cast<std::size_t>(end - begin));
}

}  // namespace tunespace::searchspace
