#include "tunespace/searchspace/io.hpp"

#include <bit>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <locale>
#include <random>
#include <sstream>

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "tunespace/util/timer.hpp"

namespace tunespace::searchspace {

using csp::Value;

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

namespace {

std::string render(const Value& v) {
  if (v.is_real()) {
    // Shortest form that round-trips exactly, '.'-separated regardless of
    // the global locale (std::to_chars is locale-independent by spec).
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v.as_real());
    return std::string(buf, res.ptr);
  }
  // to_string renders ints bare, bools as True/False and strings quoted
  // ('abc') — all locale-independent and unambiguous to parse back.
  return v.to_string();
}

Value parse_cell(const std::string& cell) {
  if (cell.empty()) throw std::runtime_error("empty CSV cell");
  if (cell.front() == '\'') {
    if (cell.size() < 2 || cell.back() != '\'') {
      throw std::runtime_error("malformed string cell: " + cell);
    }
    return Value(cell.substr(1, cell.size() - 2));
  }
  if (cell == "True") return Value(true);
  if (cell == "False") return Value(false);
  // Locale-independent numeric parsing: a full-width integer match wins,
  // otherwise a full-width double match (std::from_chars, exact).
  const char* begin = cell.data();
  const char* end = begin + cell.size();
  std::int64_t i = 0;
  const auto ri = std::from_chars(begin, end, i);
  if (ri.ec == std::errc() && ri.ptr == end) return Value(i);
  double d = 0;
  const auto rd = std::from_chars(begin, end, d);
  if (rd.ec == std::errc() && rd.ptr == end) return Value(d);
  throw std::runtime_error("malformed CSV cell: " + cell);
}

std::vector<std::string> split_line(const std::string& line) {
  // Comma split, except that commas inside a single-quoted cell belong to
  // the cell — write_csv renders string values quoted, so a string domain
  // value containing ',' still round-trips.  A quote only closes the cell
  // when followed by a comma or end of line, so interior quotes ("it's")
  // survive too; the one unrepresentable shape is a string containing
  // quote-comma ("',") itself.
  std::vector<std::string> cells;
  std::string cell;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == ',' && !in_quotes) {
      cells.push_back(std::move(cell));
      cell.clear();
      continue;
    }
    if (c == '\'') {
      if (cell.empty() && !in_quotes) {
        in_quotes = true;
      } else if (in_quotes && (i + 1 == line.size() || line[i + 1] == ',')) {
        in_quotes = false;
      }
    }
    cell.push_back(c);
  }
  if (!cell.empty() || !cells.empty()) cells.push_back(std::move(cell));
  return cells;
}

}  // namespace

namespace {

/// Restores a stream's locale on scope exit, so an exception mid-write
/// cannot leave the caller's stream permanently re-imbued.
class LocaleGuard {
 public:
  LocaleGuard(std::ostream& os, const std::locale& locale)
      : os_(os), prev_(os.imbue(locale)) {}
  ~LocaleGuard() { os_.imbue(prev_); }
  LocaleGuard(const LocaleGuard&) = delete;
  LocaleGuard& operator=(const LocaleGuard&) = delete;

 private:
  std::ostream& os_;
  std::locale prev_;
};

}  // namespace

void write_csv(const SearchSpace& space, std::ostream& os) {
  // Guard against a user-imbued locale injecting grouping or decimal
  // characters; the caller's locale is restored on exit.
  const LocaleGuard guard(os, std::locale::classic());
  for (std::size_t p = 0; p < space.num_params(); ++p) {
    if (p) os << ',';
    os << space.param_name(p);
  }
  os << '\n';
  for (std::size_t r = 0; r < space.size(); ++r) {
    for (std::size_t p = 0; p < space.num_params(); ++p) {
      if (p) os << ',';
      os << render(space.value(r, p));
    }
    os << '\n';
  }
}

void write_csv(const SearchSpace& space, const std::string& path) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot open for writing: " + path);
  write_csv(space, file);
}

std::vector<csp::Config> read_csv(const tuner::TuningProblem& spec,
                                  std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) throw std::runtime_error("empty CSV");
  if (!line.empty() && line.back() == '\r') line.pop_back();
  const auto header = split_line(line);
  if (header.size() != spec.num_params()) {
    throw std::runtime_error("CSV header arity mismatch");
  }
  for (std::size_t p = 0; p < header.size(); ++p) {
    if (header[p] != spec.params()[p].name) {
      throw std::runtime_error("CSV header mismatch at column " +
                               std::to_string(p) + ": " + header[p]);
    }
  }
  std::vector<csp::Config> rows;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const auto cells = split_line(line);
    if (cells.size() != spec.num_params()) {
      throw std::runtime_error(
          "CSV line " + std::to_string(line_no) + ": expected " +
          std::to_string(spec.num_params()) + " cells but found " +
          std::to_string(cells.size()) +
          (cells.size() < spec.num_params() ? " (truncated row?)" : ""));
    }
    csp::Config config;
    config.reserve(cells.size());
    for (std::size_t p = 0; p < cells.size(); ++p) {
      const Value v = parse_cell(cells[p]);
      // Validate against the declared domain and canonicalize the kind
      // (e.g. "2" written for the double 2.0 resolves back to 2.0).
      const Value* match = nullptr;
      for (const Value& dv : spec.params()[p].values) {
        if (dv == v) {
          match = &dv;
          break;
        }
      }
      if (!match) {
        throw std::runtime_error("CSV line " + std::to_string(line_no) +
                                 ": value not in domain of " +
                                 spec.params()[p].name + ": " + cells[p]);
      }
      config.push_back(*match);
    }
    rows.push_back(std::move(config));
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Binary snapshots
// ---------------------------------------------------------------------------

namespace {

constexpr char kMagic[8] = {'T', 'S', 'S', 'N', 'A', 'P', '\0', '\0'};
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::uint32_t kSectionCount = 4;
constexpr std::uint32_t kSectionDomains = 1;
constexpr std::uint32_t kSectionColumns = 2;
constexpr std::uint32_t kSectionRowIndex = 3;
constexpr std::uint32_t kSectionPosting = 4;
// magic + version + endian + fingerprint + params + sections + rows +
// stats(5x u64 + 2x u32 + 2x f64) + construction seconds.
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 4 + 4 + 8 + 64 + 8;
constexpr std::size_t kSectionEntryBytes = 4 + 4 + 8 + 8 + 8;

/// Four interleaved FNV-1a chains over 64-bit words (word w feeds chain
/// w % 4), folded together at the end.  The interleave hides the multiply
/// latency, so a full-verification pass runs at memory bandwidth instead of
/// one multiply per word — the checksum is the dominant CPU cost of a kFull
/// reload.  Streamable: update() may be called repeatedly with 8-byte
/// multiples (every snapshot piece is 8-aligned), which lets save_snapshot
/// checksum the packed columns and indexes in place instead of copying them
/// into a staging buffer first.
class Checksum {
 public:
  void update(const void* data, std::size_t n) {
    const char* p = static_cast<const char*>(data);
    bytes_ += n;
    if (carry_len_ > 0) {
      while (carry_len_ < 8 && n > 0) {
        carry_[carry_len_++] = *p++;
        --n;
      }
      if (carry_len_ < 8) return;
      word(read64(carry_));
      carry_len_ = 0;
    }
    std::size_t i = 0;
    // Realign to a 4-word phase boundary, then run the unrolled block loop.
    for (; i + 8 <= n && (words_ & 3) != 0; i += 8) word(read64(p + i));
    for (; i + 32 <= n; i += 32) {
      std::uint64_t lane[4];
      std::memcpy(lane, p + i, 32);
      h_[0] = (h_[0] ^ lane[0]) * kPrime;
      h_[1] = (h_[1] ^ lane[1]) * kPrime;
      h_[2] = (h_[2] ^ lane[2]) * kPrime;
      h_[3] = (h_[3] ^ lane[3]) * kPrime;
      words_ += 4;
    }
    for (; i + 8 <= n; i += 8) word(read64(p + i));
    while (i < n) carry_[carry_len_++] = p[i++];
  }
  std::uint64_t finish() {
    if (carry_len_ > 0) {  // flush a zero-padded final word (defensive:
      while (carry_len_ < 8) carry_[carry_len_++] = 0;  // sections are
      word(read64(carry_));                             // 8-aligned)
      carry_len_ = 0;
    }
    std::uint64_t h = (h_[0] ^ h_[1]) * kPrime;
    h = (h ^ h_[2]) * kPrime;
    h = (h ^ h_[3]) * kPrime;
    return h ^ bytes_;
  }

 private:
  static constexpr std::uint64_t kPrime = 0x100000001B3ULL;
  static std::uint64_t read64(const char* p) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
  }
  void word(std::uint64_t v) {
    h_[words_ & 3] = (h_[words_ & 3] ^ v) * kPrime;
    ++words_;
  }
  std::uint64_t h_[4] = {0xCBF29CE484222325ULL, 0x9E3779B97F4A7C15ULL,
                         0xC2B2AE3D27D4EB4FULL, 0x165667B19E3779F9ULL};
  std::uint64_t words_ = 0;
  std::uint64_t bytes_ = 0;
  char carry_[8] = {};
  unsigned carry_len_ = 0;
};

std::uint64_t checksum64(const char* p, std::size_t n) {
  Checksum c;
  c.update(p, n);
  return c.finish();
}

/// A read-only view of a whole snapshot file, memory-mapped where the
/// platform allows (the zero-copy path: loaded sections are used in place
/// and pages fault in on demand) with a heap-read fallback elsewhere.
struct FileView {
  const char* data = nullptr;
  std::size_t size = 0;
#if !defined(_WIN32)
  void* mapping = nullptr;
#endif
  std::vector<char> heap;
  ~FileView() {
#if !defined(_WIN32)
    if (mapping) ::munmap(mapping, size);
#endif
  }
};

std::shared_ptr<FileView> map_file(const std::string& path) {
  auto view = std::make_shared<FileView>();
#if !defined(_WIN32)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw SnapshotError("cannot open snapshot: " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw SnapshotError("cannot stat snapshot: " + path);
  }
  view->size = static_cast<std::size_t>(st.st_size);
  if (view->size > 0) {
    void* mapping = ::mmap(nullptr, view->size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (mapping == MAP_FAILED) {
      throw SnapshotError("cannot map snapshot: " + path);
    }
    view->mapping = mapping;
    view->data = static_cast<const char*>(mapping);
  } else {
    ::close(fd);
  }
#else
  std::ifstream file(path, std::ios::binary);
  if (!file) throw SnapshotError("cannot open snapshot: " + path);
  file.seekg(0, std::ios::end);
  const std::streamoff len = file.tellg();
  if (len < 0) throw SnapshotError("cannot stat snapshot: " + path);
  view->heap.resize(static_cast<std::size_t>(len));
  file.seekg(0, std::ios::beg);
  file.read(view->heap.data(), len);
  if (!file) throw SnapshotError("short read on snapshot: " + path);
  view->data = view->heap.data();
  view->size = view->heap.size();
#endif
  return view;
}

struct Buf {
  std::string out;
  void bytes(const void* p, std::size_t n) {
    out.append(static_cast<const char*>(p), n);
  }
  void u8(std::uint8_t v) { bytes(&v, 1); }
  void u32(std::uint32_t v) { bytes(&v, 4); }
  void u64(std::uint64_t v) { bytes(&v, 8); }
  void f64(double v) { bytes(&v, 8); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }
  void pad8() {
    while (out.size() % 8) out.push_back('\0');
  }
};

struct Reader {
  const char* base;
  std::size_t size;
  std::size_t pos = 0;
  void need(std::size_t n) const {
    if (pos + n > size) throw SnapshotError("snapshot truncated");
  }
  void bytes(void* p, std::size_t n) {
    need(n);
    std::memcpy(p, base + pos, n);
    pos += n;
  }
  std::uint8_t u8() {
    std::uint8_t v;
    bytes(&v, 1);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v;
    bytes(&v, 4);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    bytes(&v, 8);
    return v;
  }
  double f64() {
    double v;
    bytes(&v, 8);
    return v;
  }
  std::string str() {
    const std::uint32_t len = u32();
    need(len);
    std::string s(base + pos, len);
    pos += len;
    return s;
  }
};

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

void encode_value(Buf& b, const Value& v) {
  b.u8(static_cast<std::uint8_t>(v.kind()));
  switch (v.kind()) {
    case csp::ValueKind::Int:
      b.u64(static_cast<std::uint64_t>(v.as_int()));
      break;
    case csp::ValueKind::Real:
      b.f64(v.as_real());
      break;
    case csp::ValueKind::Bool:
      b.u8(v.truthy() ? 1 : 0);
      break;
    case csp::ValueKind::Str:
      b.str(v.as_str());
      break;
  }
}

Value decode_value(Reader& r) {
  switch (static_cast<csp::ValueKind>(r.u8())) {
    case csp::ValueKind::Int:
      return Value(static_cast<std::int64_t>(r.u64()));
    case csp::ValueKind::Real:
      return Value(r.f64());
    case csp::ValueKind::Bool:
      return Value(r.u8() != 0);
    case csp::ValueKind::Str:
      return Value(r.str());
  }
  throw SnapshotError("snapshot domain value has unknown kind tag");
}

/// Cache file name: sanitized spec name + fingerprint, so the directory is
/// human-browsable while collisions are impossible across specs/methods.
std::string snapshot_cache_path(const std::string& cache_dir,
                                const std::string& spec_name,
                                std::uint64_t fingerprint) {
  std::string name = spec_name.empty() ? "space" : spec_name;
  for (char& c : name) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (!keep) c = '_';
  }
  return cache_dir + "/" + name + "-" + hex16(fingerprint) + ".tss";
}

}  // namespace

void save_snapshot(const SearchSpace& space, const std::string& path) {
  const std::size_t d = space.num_params();
  const std::size_t n = space.size();

  // Sections are assembled as lists of (pointer, size) pieces so the bulk
  // payloads — packed column words, row table, posting arrays — are
  // checksummed and written straight from the live space instead of being
  // copied into staging buffers (which would briefly double the resolved
  // space's memory footprint).  Only the small headers are staged.
  struct Piece {
    const void* data;
    std::size_t size;
  };
  static constexpr char kZeros[8] = {};

  Buf domains;
  for (std::size_t p = 0; p < d; ++p) {
    const csp::Domain& domain = space.problem().domain(p);
    domains.str(space.param_name(p));
    domains.u64(domain.size());
    for (const Value& v : domain.values()) encode_value(domains, v);
  }
  domains.pad8();

  Buf col_headers;
  for (std::size_t p = 0; p < d; ++p) {
    const solver::PackedColumn& col = space.solutions().column(p);
    col_headers.u32(col.bits());
    col_headers.u32(0);
    col_headers.u64(col.word_count());
  }

  Buf rowindex_header;
  rowindex_header.u64(space.hash_table_.size());

  Buf posting_header;
  posting_header.u64(space.posting_offsets_.size());
  posting_header.u64(space.posting_rows_.size());

  std::vector<Piece> pieces[kSectionCount];
  pieces[kSectionDomains - 1] = {{domains.out.data(), domains.out.size()}};

  auto& columns = pieces[kSectionColumns - 1];
  columns.push_back({col_headers.out.data(), col_headers.out.size()});
  for (std::size_t p = 0; p < d; ++p) {
    const solver::PackedColumn& col = space.solutions().column(p);
    if (col.word_count() > 0) {
      columns.push_back({col.words(), col.word_count() * sizeof(std::uint64_t)});
    }
  }

  auto& rowindex = pieces[kSectionRowIndex - 1];
  rowindex.push_back({rowindex_header.out.data(), rowindex_header.out.size()});
  if (!space.hash_table_.empty()) {
    rowindex.push_back({space.hash_table_.data(),
                        space.hash_table_.size() * sizeof(std::uint32_t)});
  }

  auto& posting = pieces[kSectionPosting - 1];
  posting.push_back({posting_header.out.data(), posting_header.out.size()});
  if (!space.posting_offsets_.empty()) {
    posting.push_back({space.posting_offsets_.data(),
                       space.posting_offsets_.size() * sizeof(std::uint64_t)});
  }
  if (!space.posting_rows_.empty()) {
    posting.push_back({space.posting_rows_.data(),
                       space.posting_rows_.size() * sizeof(std::uint32_t)});
  }

  // Pad every section to the 8-byte alignment the loader requires.
  std::uint64_t sizes[kSectionCount];
  std::uint64_t sums[kSectionCount];
  for (std::size_t s = 0; s < kSectionCount; ++s) {
    std::size_t total = 0;
    for (const Piece& piece : pieces[s]) total += piece.size;
    if (total % 8 != 0) pieces[s].push_back({kZeros, 8 - total % 8});
    Checksum checksum;
    sizes[s] = 0;
    for (const Piece& piece : pieces[s]) {
      checksum.update(piece.data, piece.size);
      sizes[s] += piece.size;
    }
    sums[s] = checksum.finish();
  }

  Buf header;
  header.bytes(kMagic, 8);
  header.u32(kSnapshotFormatVersion);
  header.u32(kEndianTag);
  header.u64(space.fingerprint_);
  header.u32(static_cast<std::uint32_t>(d));
  header.u32(kSectionCount);
  header.u64(n);
  header.u64(space.stats_.nodes);
  header.u64(space.stats_.constraint_checks);
  header.u64(space.stats_.fast_checks);
  header.u64(space.stats_.prunes);
  header.u64(space.stats_.parallel_tasks);
  header.u32(space.stats_.parallel_workers);
  header.u32(0);
  header.f64(space.stats_.preprocess_seconds);
  header.f64(space.stats_.search_seconds);
  header.f64(space.construction_seconds_);

  std::uint64_t offset = kHeaderBytes + kSectionCount * kSectionEntryBytes;
  for (std::size_t s = 0; s < kSectionCount; ++s) {
    header.u32(static_cast<std::uint32_t>(s + 1));  // section ids are 1-based
    header.u32(0);
    header.u64(offset);
    header.u64(sizes[s]);
    header.u64(sums[s]);
    offset += sizes[s];
  }

  // Unique temp name per writer: concurrent processes missing the same
  // cache entry must not interleave writes into one temp file — each writes
  // its own and the rename publishes whichever finishes last, atomically.
  std::random_device rd;
  const std::string tmp = path + ".tmp-" + std::to_string(rd());
  try {
    {
      std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
      if (!file) throw std::runtime_error("cannot open for writing: " + tmp);
      file.write(header.out.data(),
                 static_cast<std::streamsize>(header.out.size()));
      for (std::size_t s = 0; s < kSectionCount; ++s) {
        for (const Piece& piece : pieces[s]) {
          file.write(static_cast<const char*>(piece.data),
                     static_cast<std::streamsize>(piece.size));
        }
      }
      file.flush();
      if (!file) throw std::runtime_error("write failed: " + tmp);
    }
#if !defined(_WIN32)
    // Flush the payload (and the directory entry after the rename) to disk
    // before publishing: without the fsync a crash can journal the rename
    // while losing the data blocks, leaving a well-formed header over
    // zeroed payload pages — which the trusting kShape cache load would
    // not detect.
    if (const int fd = ::open(tmp.c_str(), O_RDONLY); fd >= 0) {
      ::fsync(fd);
      ::close(fd);
    }
#endif
    std::filesystem::rename(tmp, path);  // atomic publish
#if !defined(_WIN32)
    const std::string dir = std::filesystem::path(path).parent_path().string();
    if (const int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
        fd >= 0) {
      ::fsync(fd);
      ::close(fd);
    }
#endif
  } catch (...) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw;
  }
}

SearchSpace load_snapshot(const tuner::TuningProblem& spec,
                          const tuner::Method& method, const std::string& path,
                          SnapshotVerify verify) {
  util::WallTimer timer;
  const std::shared_ptr<FileView> buffer = map_file(path);

  Reader r{buffer->data, buffer->size};
  char magic[8];
  r.bytes(magic, 8);
  if (std::memcmp(magic, kMagic, 8) != 0) {
    throw SnapshotError("not a tunespace snapshot: " + path);
  }
  const std::uint32_t version = r.u32();
  if (version != kSnapshotFormatVersion) {
    throw SnapshotError("snapshot format version " + std::to_string(version) +
                        " unsupported (this build reads version " +
                        std::to_string(kSnapshotFormatVersion) + "): " + path);
  }
  if (r.u32() != kEndianTag) {
    throw SnapshotError("snapshot was written with a different byte order: " +
                        path);
  }
  const std::uint64_t fingerprint = r.u64();
  const std::uint64_t expected = tuner::spec_fingerprint(spec, method);
  if (fingerprint != expected) {
    throw SnapshotError("snapshot fingerprint " + hex16(fingerprint) +
                        " does not match spec+method fingerprint " +
                        hex16(expected) + ": " + path);
  }
  const std::uint32_t d = r.u32();
  if (d != spec.num_params()) {
    throw SnapshotError("snapshot parameter count mismatch: " + path);
  }
  if (r.u32() != kSectionCount) {
    throw SnapshotError("snapshot section count mismatch: " + path);
  }
  const std::uint64_t n64 = r.u64();
  if (d == 0 && n64 != 0) {
    throw SnapshotError("snapshot claims rows without parameters: " + path);
  }
  if (n64 >= 0xFFFFFFFFull) {
    throw SnapshotError("snapshot row count out of range: " + path);
  }
  const std::size_t n = static_cast<std::size_t>(n64);

  solver::SolveStats stats;
  stats.nodes = r.u64();
  stats.constraint_checks = r.u64();
  stats.fast_checks = r.u64();
  stats.prunes = r.u64();
  stats.parallel_tasks = r.u64();
  stats.parallel_workers = r.u32();
  r.u32();  // reserved
  stats.preprocess_seconds = r.f64();
  stats.search_seconds = r.f64();
  r.f64();  // original construction seconds (reported stat only)

  struct Section {
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
  };
  Section sections[kSectionCount];
  for (std::uint32_t s = 0; s < kSectionCount; ++s) {
    const std::uint32_t id = r.u32();
    r.u32();  // reserved
    const std::uint64_t offset = r.u64();
    const std::uint64_t size = r.u64();
    const std::uint64_t sum = r.u64();
    if (id != s + 1) throw SnapshotError("snapshot section table corrupt: " + path);
    if (offset % 8 != 0 || size % 8 != 0 || offset > buffer->size ||
        size > buffer->size - offset) {
      throw SnapshotError("snapshot section out of bounds: " + path);
    }
    // The domains section is tiny and anchors the whole file, so its
    // checksum is always streamed; the bulk payload sections are streamed
    // only under kFull (kShape trusts the atomically-written cache and
    // keeps the zero-copy reload at microseconds).
    if ((verify == SnapshotVerify::kFull || id == kSectionDomains) &&
        checksum64(buffer->data + offset, static_cast<std::size_t>(size)) != sum) {
      throw SnapshotError("snapshot section " + std::to_string(id) +
                          " checksum mismatch (corrupt file): " + path);
    }
    sections[s] = Section{offset, size};
  }

  SearchSpace space;
  space.problem_ = tuner::build_problem(spec, method.pipeline);
  space.fingerprint_ = fingerprint;
  space.stats_ = stats;

  // --- Domains: must match the problem built from the requested spec.
  {
    const Section& sec = sections[kSectionDomains - 1];
    Reader dr{buffer->data + sec.offset, static_cast<std::size_t>(sec.size)};
    for (std::size_t p = 0; p < d; ++p) {
      if (dr.str() != space.problem_.name(p)) {
        throw SnapshotError("snapshot parameter name mismatch: " + path);
      }
      const std::uint64_t count = dr.u64();
      const csp::Domain& domain = space.problem_.domain(p);
      if (count != domain.size()) {
        throw SnapshotError("snapshot domain size mismatch: " + path);
      }
      for (std::uint64_t i = 0; i < count; ++i) {
        if (decode_value(dr) != domain[static_cast<std::size_t>(i)]) {
          throw SnapshotError("snapshot domain value mismatch: " + path);
        }
      }
    }
  }

  // --- Columns: borrow the packed words straight out of the buffer.
  {
    const Section& sec = sections[kSectionColumns - 1];
    Reader cr{buffer->data + sec.offset, static_cast<std::size_t>(sec.size)};
    std::vector<unsigned> bits(d);
    std::vector<std::uint64_t> word_counts(d);
    std::uint64_t total_words = 0;
    for (std::size_t p = 0; p < d; ++p) {
      bits[p] = cr.u32();
      cr.u32();  // reserved
      word_counts[p] = cr.u64();
      const unsigned expect_bits = solver::PackedColumn::bits_for_domain(
          space.problem_.domain(p).size());
      if (bits[p] != expect_bits) {
        throw SnapshotError("snapshot column width mismatch: " + path);
      }
      const std::uint64_t expect_words =
          (static_cast<std::uint64_t>(n) * bits[p] + 63) >> 6;
      if (word_counts[p] != expect_words) {
        throw SnapshotError("snapshot column word count mismatch: " + path);
      }
      total_words += word_counts[p];
    }
    const std::uint64_t words_base = sec.offset + 16ull * d;
    if (words_base + total_words * 8 != sec.offset + sec.size) {
      throw SnapshotError("snapshot column section size mismatch: " + path);
    }
    std::vector<solver::PackedColumn> cols;
    cols.reserve(d);
    std::uint64_t word_offset = words_base;
    for (std::size_t p = 0; p < d; ++p) {
      cols.push_back(solver::PackedColumn::borrowed(
          bits[p], n,
          reinterpret_cast<const std::uint64_t*>(buffer->data + word_offset),
          buffer));
      word_offset += word_counts[p] * 8;
    }
    space.solutions_ = solver::SolutionSet(std::move(cols));
  }

  // --- Row-lookup table: borrowed view.
  {
    const Section& sec = sections[kSectionRowIndex - 1];
    Reader hr{buffer->data + sec.offset, static_cast<std::size_t>(sec.size)};
    const std::uint64_t table_size = hr.u64();
    const std::uint64_t expect_size =
        std::bit_ceil(std::max<std::uint64_t>(16, n64 * 2));
    if (table_size != expect_size) {
      throw SnapshotError("snapshot row-table size mismatch: " + path);
    }
    if (8 + table_size * 4 > sec.size) {
      throw SnapshotError("snapshot row-table section truncated: " + path);
    }
    const auto* slots =
        reinterpret_cast<const std::uint32_t*>(buffer->data + sec.offset + 8);
    if (verify == SnapshotVerify::kFull) {
      for (std::uint64_t i = 0; i < table_size; ++i) {
        if (slots[i] != SearchSpace::kEmptySlot && slots[i] >= n) {
          throw SnapshotError("snapshot row-table slot out of range: " + path);
        }
      }
    }
    space.hash_table_ = {slots, static_cast<std::size_t>(table_size)};
  }

  // --- Posting lists: borrowed CSR views, offsets validated.
  {
    const Section& sec = sections[kSectionPosting - 1];
    Reader pr{buffer->data + sec.offset, static_cast<std::size_t>(sec.size)};
    const std::uint64_t offsets_len = pr.u64();
    const std::uint64_t rows_len = pr.u64();
    space.posting_base_.resize(d);
    std::uint64_t expect_offsets = 0;
    for (std::size_t p = 0; p < d; ++p) {
      space.posting_base_[p] = static_cast<std::size_t>(expect_offsets);
      expect_offsets += space.problem_.domain(p).size() + 1;
    }
    if (offsets_len != expect_offsets ||
        rows_len != static_cast<std::uint64_t>(n) * d) {
      throw SnapshotError("snapshot posting index shape mismatch: " + path);
    }
    if (16 + offsets_len * 8 + rows_len * 4 > sec.size) {
      throw SnapshotError("snapshot posting section truncated: " + path);
    }
    const auto* offsets =
        reinterpret_cast<const std::uint64_t*>(buffer->data + sec.offset + 16);
    const auto* rows = reinterpret_cast<const std::uint32_t*>(
        buffer->data + sec.offset + 16 + offsets_len * 8);
    for (std::size_t p = 0; p < d; ++p) {
      const std::size_t base = space.posting_base_[p];
      const std::size_t m = space.problem_.domain(p).size();
      if (offsets[base] != static_cast<std::uint64_t>(p) * n ||
          offsets[base + m] != static_cast<std::uint64_t>(p + 1) * n) {
        throw SnapshotError("snapshot posting offsets corrupt: " + path);
      }
      for (std::size_t vi = 0; vi < m; ++vi) {
        if (offsets[base + vi] > offsets[base + vi + 1]) {
          throw SnapshotError("snapshot posting offsets not monotonic: " + path);
        }
      }
    }
    if (verify == SnapshotVerify::kFull) {
      for (std::uint64_t i = 0; i < rows_len; ++i) {
        if (rows[i] >= n) {
          throw SnapshotError("snapshot posting row out of range: " + path);
        }
      }
    }
    space.posting_offsets_ = {offsets, static_cast<std::size_t>(offsets_len)};
    space.posting_rows_ = {rows, static_cast<std::size_t>(rows_len)};
  }

  space.derive_present_values();
  space.snapshot_buffer_ = buffer;
  space.construction_seconds_ = timer.seconds();
  return space;
}

SearchSpace load_snapshot(const tuner::TuningProblem& spec,
                          const std::string& path, SnapshotVerify verify) {
  return load_snapshot(spec, tuner::optimized_method(), path, verify);
}

std::string snapshot_cache_entry(const std::string& cache_dir,
                                 const tuner::TuningProblem& spec,
                                 const tuner::Method& method) {
  return snapshot_cache_path(cache_dir, spec.name(),
                             tuner::spec_fingerprint(spec, method));
}

SearchSpace SearchSpace::load_or_build(const tuner::TuningProblem& spec,
                                       const std::string& cache_dir) {
  return load_or_build(spec, tuner::optimized_method(), cache_dir);
}

SearchSpace SearchSpace::load_or_build(const tuner::TuningProblem& spec,
                                       const tuner::Method& method,
                                       const std::string& cache_dir) {
  if (!spec.lambda_constraints().empty()) {
    // Native predicates are opaque to the fingerprint; caching could serve a
    // stale space after the lambda's behavior changes.  Always build fresh.
    return SearchSpace(spec, method);
  }
  const std::string path = snapshot_cache_entry(cache_dir, spec, method);
  try {
    // The cache directory is a local artifact this library writes
    // atomically; shape-level verification keeps the hit path zero-copy.
    return load_snapshot(spec, method, path, SnapshotVerify::kShape);
  } catch (const SnapshotError&) {
    // Miss, stale format, or corrupt file: fall through to a fresh build.
  }
  SearchSpace space(spec, method);
  std::error_code ec;
  std::filesystem::create_directories(cache_dir, ec);
  try {
    save_snapshot(space, path);
  } catch (const std::exception&) {
    // A read-only or full cache directory must not fail construction.
  }
  return space;
}

}  // namespace tunespace::searchspace
