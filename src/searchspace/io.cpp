#include "tunespace/searchspace/io.hpp"

#include <fstream>
#include <sstream>

namespace tunespace::searchspace {

using csp::Value;

namespace {

std::string render(const Value& v) {
  // to_string renders strings quoted ('abc'), numerics bare — both parse
  // back unambiguously.
  return v.to_string();
}

Value parse_cell(const std::string& cell) {
  if (cell.empty()) throw std::runtime_error("empty CSV cell");
  if (cell.front() == '\'') {
    if (cell.size() < 2 || cell.back() != '\'') {
      throw std::runtime_error("malformed string cell: " + cell);
    }
    return Value(cell.substr(1, cell.size() - 2));
  }
  if (cell == "True") return Value(true);
  if (cell == "False") return Value(false);
  if (cell.find_first_of(".eE") != std::string::npos &&
      cell.find_first_not_of("0123456789+-.eE") == std::string::npos) {
    return Value(std::stod(cell));
  }
  return Value(static_cast<std::int64_t>(std::stoll(cell)));
}

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  return cells;
}

}  // namespace

void write_csv(const SearchSpace& space, std::ostream& os) {
  for (std::size_t p = 0; p < space.num_params(); ++p) {
    if (p) os << ',';
    os << space.param_name(p);
  }
  os << '\n';
  for (std::size_t r = 0; r < space.size(); ++r) {
    for (std::size_t p = 0; p < space.num_params(); ++p) {
      if (p) os << ',';
      os << render(space.value(r, p));
    }
    os << '\n';
  }
}

void write_csv(const SearchSpace& space, const std::string& path) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot open for writing: " + path);
  write_csv(space, file);
}

std::vector<csp::Config> read_csv(const tuner::TuningProblem& spec,
                                  std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) throw std::runtime_error("empty CSV");
  const auto header = split_line(line);
  if (header.size() != spec.num_params()) {
    throw std::runtime_error("CSV header arity mismatch");
  }
  for (std::size_t p = 0; p < header.size(); ++p) {
    if (header[p] != spec.params()[p].name) {
      throw std::runtime_error("CSV header mismatch at column " +
                               std::to_string(p) + ": " + header[p]);
    }
  }
  std::vector<csp::Config> rows;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto cells = split_line(line);
    if (cells.size() != spec.num_params()) {
      throw std::runtime_error("CSV row arity mismatch: " + line);
    }
    csp::Config config;
    config.reserve(cells.size());
    for (std::size_t p = 0; p < cells.size(); ++p) {
      Value v = parse_cell(cells[p]);
      // Validate against the declared domain.
      bool found = false;
      for (const Value& dv : spec.params()[p].values) {
        if (dv == v) {
          found = true;
          break;
        }
      }
      if (!found) {
        throw std::runtime_error("value not in domain of " +
                                 spec.params()[p].name + ": " + cells[p]);
      }
      config.push_back(std::move(v));
    }
    rows.push_back(std::move(config));
  }
  return rows;
}

}  // namespace tunespace::searchspace
