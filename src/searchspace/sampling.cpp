#include "tunespace/searchspace/sampling.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace tunespace::searchspace {

std::vector<std::size_t> random_sample(const SearchSpace& space, std::size_t count,
                                       util::Rng& rng) {
  count = std::min(count, space.size());
  return rng.sample_indices(space.size(), count);
}

std::vector<std::size_t> random_sample(const SubSpace& view, std::size_t count,
                                       util::Rng& rng) {
  count = std::min(count, view.size());
  return rng.sample_indices(view.size(), count);
}

namespace {

// The sampling algorithms are generic over "space-like" types: a resolved
// SearchSpace and a SubSpace view expose the same row-addressed surface
// (size / num_params / problem / value_index / present_values / find), so
// one implementation serves both — rows are parent row ids for a
// SearchSpace and local ids for a view.  The only customization point is
// how posting-list candidates are enumerated: a view walks the parent's
// posting list and keeps its members.

template <typename SpaceLike>
double l1_distance(const SpaceLike& space, std::size_t row,
                   const std::vector<std::uint32_t>& target) {
  double d = 0;
  for (std::size_t p = 0; p < space.num_params(); ++p) {
    const double span = std::max<std::size_t>(1, space.problem().domain(p).size() - 1);
    d += std::fabs(static_cast<double>(space.value_index(row, p)) -
                   static_cast<double>(target[p])) /
         static_cast<double>(span);
  }
  return d;
}

/// Upper bound on the number of rows parameter p takes value vi (exact for
/// a SearchSpace; the parent's posting length for a view).
std::size_t candidate_count(const SearchSpace& space, std::size_t p,
                            std::uint32_t vi) {
  return space.rows_with(p, vi).size();
}
std::size_t candidate_count(const SubSpace& view, std::size_t p, std::uint32_t vi) {
  return view.parent().rows_with(p, vi).size();
}

/// Invoke fn(row) for every row of the space whose parameter p is vi.
template <typename Fn>
void for_each_candidate(const SearchSpace& space, std::size_t p, std::uint32_t vi,
                        Fn&& fn) {
  for (std::uint32_t r : space.rows_with(p, vi)) fn(static_cast<std::size_t>(r));
}
template <typename Fn>
void for_each_candidate(const SubSpace& view, std::size_t p, std::uint32_t vi,
                        Fn&& fn) {
  for (std::uint32_t r : view.parent().rows_with(p, vi)) {
    if (const auto local = view.local_of(r)) fn(*local);
  }
}

template <typename SpaceLike>
std::size_t snap_impl(const SpaceLike& space,
                      const std::vector<std::uint32_t>& target) {
  assert(!space.empty());
  // Exact hit first.
  if (auto r = space.find(target)) return *r;
  // Scan the smallest posting list among the target coordinates; if the
  // target value of some parameter never occurs, use its nearest present
  // value instead.
  std::size_t best_param = 0;
  std::uint32_t best_vi = 0;
  std::size_t best_count = 0;
  bool have_list = false;
  for (std::size_t p = 0; p < space.num_params(); ++p) {
    std::uint32_t vi = target[p];
    const auto& present = space.present_values(p);
    if (!std::binary_search(present.begin(), present.end(), vi)) {
      // nearest present value by index distance
      std::uint32_t nearest = present.front();
      for (std::uint32_t cand : present) {
        if (std::llabs(static_cast<long long>(cand) - static_cast<long long>(vi)) <
            std::llabs(static_cast<long long>(nearest) - static_cast<long long>(vi))) {
          nearest = cand;
        }
      }
      vi = nearest;
    }
    const std::size_t count = candidate_count(space, p, vi);
    if (!have_list || count < best_count) {
      best_param = p;
      best_vi = vi;
      best_count = count;
      have_list = true;
    }
  }
  double best_d = std::numeric_limits<double>::infinity();
  std::size_t best_row = 0;
  for_each_candidate(space, best_param, best_vi, [&](std::size_t r) {
    const double d = l1_distance(space, r, target);
    if (d < best_d) {
      best_d = d;
      best_row = r;
    }
  });
  return best_row;
}

template <typename SpaceLike>
std::vector<std::size_t> lhs_impl(const SpaceLike& space, std::size_t count,
                                  util::Rng& rng) {
  if (space.empty() || count == 0) return {};
  count = std::min(count, space.size());
  const std::size_t d = space.num_params();

  // Per-parameter stratum permutations over the present values.
  std::vector<std::vector<std::size_t>> strata(d);
  for (std::size_t p = 0; p < d; ++p) {
    strata[p].resize(count);
    for (std::size_t i = 0; i < count; ++i) strata[p][i] = i;
    rng.shuffle(strata[p]);
  }

  std::vector<std::size_t> rows;
  std::vector<std::uint32_t> target(d);
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t p = 0; p < d; ++p) {
      const auto& present = space.present_values(p);
      // Map stratum -> a position within the present values (jittered).
      const double frac = (static_cast<double>(strata[p][i]) + rng.uniform()) /
                          static_cast<double>(count);
      const std::size_t pos = std::min<std::size_t>(
          present.size() - 1,
          static_cast<std::size_t>(frac * static_cast<double>(present.size())));
      target[p] = present[pos];
    }
    rows.push_back(snap_impl(space, target));
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return rows;
}

}  // namespace

std::size_t snap_to_valid(const SearchSpace& space,
                          const std::vector<std::uint32_t>& target) {
  return snap_impl(space, target);
}

std::size_t snap_to_valid(const SubSpace& view,
                          const std::vector<std::uint32_t>& target) {
  return snap_impl(view, target);
}

std::vector<std::size_t> latin_hypercube_sample(const SearchSpace& space,
                                                std::size_t count, util::Rng& rng) {
  return lhs_impl(space, count, rng);
}

std::vector<std::size_t> latin_hypercube_sample(const SubSpace& view,
                                                std::size_t count, util::Rng& rng) {
  return lhs_impl(view, count, rng);
}

}  // namespace tunespace::searchspace
