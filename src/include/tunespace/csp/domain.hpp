#pragma once
// Domain: the finite set of legal values of one CSP variable (= one tunable
// parameter).  Order is preserved as declared by the user, because parameter
// value order is meaningful to auto-tuning neighbour operators ("adjacent"
// neighbours of 64 are 32 and 128 in a power-of-two domain).

#include <cstdint>
#include <vector>

#include "tunespace/csp/value.hpp"

namespace tunespace::csp {

/// Finite, ordered value set for one variable.
class Domain {
 public:
  Domain() = default;
  explicit Domain(std::vector<Value> values) : values_(std::move(values)) {}

  /// Convenience: integer range [lo, hi] with stride (like Python range, but
  /// inclusive since tuning specs are usually inclusive bounds).
  static Domain range(std::int64_t lo, std::int64_t hi, std::int64_t stride = 1);

  /// Convenience: {base^0 * lo, lo*base, ...} powers-of-`base` series capped at hi.
  static Domain powers(std::int64_t lo, std::int64_t hi, std::int64_t base = 2);

  const std::vector<Value>& values() const { return values_; }
  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const Value& operator[](std::size_t i) const { return values_[i]; }

  /// Index of a value, or npos if absent (linear scan; domains are small).
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t index_of(const Value& v) const;
  bool contains(const Value& v) const { return index_of(v) != npos; }

  /// Remove all values for which `pred` returns false; returns #removed.
  template <typename Pred>
  std::size_t filter(Pred pred) {
    std::size_t removed = 0;
    std::vector<Value> kept;
    kept.reserve(values_.size());
    for (auto& v : values_) {
      if (pred(v)) kept.push_back(std::move(v));
      else ++removed;
    }
    values_ = std::move(kept);
    return removed;
  }

  /// Minimum / maximum under numeric ordering. Requires a non-empty numeric
  /// domain; throws ValueError for string domains.
  const Value& min_value() const;
  const Value& max_value() const;

  /// True if every value is numeric.
  bool all_numeric() const;
  /// True if every value is numeric and strictly positive.
  bool all_positive() const;

  /// If every value is int/bool, fill `out` with the int64 mirror (value
  /// order preserved) and return true; otherwise leave `out` empty and
  /// return false.  Solvers use this to build their fast-path value arrays.
  bool int_mirror(std::vector<std::int64_t>& out) const;

  bool operator==(const Domain& o) const { return values_ == o.values_; }

 private:
  std::vector<Value> values_;
};

}  // namespace tunespace::csp
