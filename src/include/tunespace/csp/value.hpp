#pragma once
// Value: the dynamically-typed scalar used for tunable-parameter values.
//
// Auto-tuning parameters are most often integers (block sizes, tile factors),
// but real tuning scripts also use floats (e.g. loop skew factors), booleans
// (feature toggles) and strings (e.g. "NHWC" vs "NCHW" layouts).  Value is a
// small tagged union covering exactly those four kinds with Python-compatible
// semantics, since the paper's user-facing constraint language is a Python
// expression subset.

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

namespace tunespace::csp {

/// Discriminator for Value.
enum class ValueKind : std::uint8_t { Int, Real, Bool, Str };

/// Error thrown on invalid Value operations (e.g. ordering a string against
/// a number), mirroring Python's TypeError.
class ValueError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A dynamically-typed scalar with Python-like semantics.
///
/// Numeric comparisons are cross-kind (1 == 1.0); bools participate in
/// arithmetic as 0/1 (as in Python); strings only support equality and
/// ordering against other strings.
class Value {
 public:
  Value() : kind_(ValueKind::Int) { u_.i = 0; }
  Value(std::int64_t v) : kind_(ValueKind::Int) { u_.i = v; }        // NOLINT implicit
  Value(int v) : kind_(ValueKind::Int) { u_.i = v; }                 // NOLINT implicit
  Value(double v) : kind_(ValueKind::Real) { u_.d = v; }             // NOLINT implicit
  Value(bool v) : kind_(ValueKind::Bool) { u_.b = v; }               // NOLINT implicit
  Value(std::string v) : kind_(ValueKind::Str), s_(std::move(v)) {}  // NOLINT implicit
  Value(const char* v) : kind_(ValueKind::Str), s_(v) {}             // NOLINT implicit

  ValueKind kind() const { return kind_; }
  bool is_int() const { return kind_ == ValueKind::Int; }
  bool is_real() const { return kind_ == ValueKind::Real; }
  bool is_bool() const { return kind_ == ValueKind::Bool; }
  bool is_str() const { return kind_ == ValueKind::Str; }
  /// Int, Real and Bool all behave numerically (Python semantics).
  bool is_numeric() const { return kind_ != ValueKind::Str; }

  /// Raw integer payload; requires is_int() or is_bool().
  std::int64_t as_int() const;
  /// Numeric payload widened to double; requires is_numeric().
  double as_real() const;
  /// Python truthiness: 0 / 0.0 / false / "" are falsy, all else truthy.
  bool truthy() const;
  /// String payload; requires is_str().
  const std::string& as_str() const;

  /// Python-like equality: cross-kind numeric equality, strings by content,
  /// string-vs-number is unequal (never an error).
  bool operator==(const Value& o) const;
  bool operator!=(const Value& o) const { return !(*this == o); }

  /// Three-way ordering: -1/0/+1. Throws ValueError for string-vs-number.
  int compare(const Value& o) const;

  /// Stable hash consistent with operator== (so 1, 1.0 and true collide).
  std::size_t hash() const;

  /// Human-readable rendering ("16", "0.5", "True", "'NHWC'").
  std::string to_string() const;

 private:
  ValueKind kind_;
  union U {
    std::int64_t i;
    double d;
    bool b;
  } u_{};
  std::string s_;
};

/// std::hash adapter so Value can key unordered containers.
struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.hash(); }
};

}  // namespace tunespace::csp
