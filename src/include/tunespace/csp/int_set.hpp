#pragma once
// IntValueSet: a tuple/set of Values lowered for exact int64 membership
// tests — the shared representation behind the int64 fast path's `in`
// operator (expr::IntProgram) and the InSet builtin constraint.
//
// Lowering rules, shared so the two users cannot drift: string elements can
// never compare equal to an int64 operand and are dropped; any real element
// makes the set unlowerable (boxed int-vs-real equality goes through double
// and is lossy above 2^53, so exact fast/boxed agreement could not be
// preserved).  Small dense sets get a bitset probe, everything else a
// sorted-array binary search.

#include <cstdint>
#include <vector>

#include "tunespace/csp/value.hpp"

namespace tunespace::csp {

struct IntValueSet {
  std::vector<std::int64_t> sorted;  ///< sorted unique elements
  std::vector<std::uint64_t> bits;   ///< non-empty => bitset representation
  std::int64_t base = 0;             ///< value of bit 0

  /// Lower `values` per the rules above.  Returns false (leaving the set
  /// empty) when a real element makes exact lowering impossible.
  bool lower(const std::vector<Value>& values);

  /// Membership test; picks the representation built by lower().
  bool contains(std::int64_t v) const;

  /// True when lower() chose the dense bitset representation.
  bool dense() const { return !bits.empty(); }
};

}  // namespace tunespace::csp
