#pragma once
// Problem: the CSP triple (X, D, C) of §4.1 — variables with finite domains
// plus a set of constraints.  This is the common input type of every solver
// in the repository.  Solvers never mutate a Problem: preprocessing prunes
// act on solver-local domain copies, so a single Problem can be solved
// repeatedly and concurrently.

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "tunespace/csp/constraint.hpp"
#include "tunespace/csp/domain.hpp"
#include "tunespace/csp/value.hpp"

namespace tunespace::csp {

/// A full assignment, ordered by the Problem's variable declaration order.
using Config = std::vector<Value>;

/// The CSP: ordered variables with domains, plus constraints.
class Problem {
 public:
  Problem() = default;

  // Problems own unique_ptr constraints; movable but not copyable.
  Problem(Problem&&) = default;
  Problem& operator=(Problem&&) = default;
  Problem(const Problem&) = delete;
  Problem& operator=(const Problem&) = delete;

  /// Add a variable; names must be unique. Returns its dense index.
  std::size_t add_variable(std::string name, Domain domain);

  /// Add a constraint; every scope name must refer to an existing variable.
  /// The constraint is bound to variable indices immediately.
  void add_constraint(ConstraintPtr constraint);

  std::size_t num_variables() const { return names_.size(); }
  const std::vector<std::string>& variable_names() const { return names_; }
  const std::string& name(std::size_t i) const { return names_[i]; }

  /// Dense index of a variable; throws std::out_of_range if unknown.
  std::size_t index_of(const std::string& name) const;
  bool has_variable(const std::string& name) const;

  const Domain& domain(std::size_t i) const { return domains_[i]; }
  const Domain& domain(const std::string& name) const { return domains_[index_of(name)]; }
  const std::vector<Domain>& domains() const { return domains_; }

  const std::vector<ConstraintPtr>& constraints() const { return constraints_; }

  /// Number of constraints each variable participates in (used by the
  /// optimized solver's variable ordering).
  std::vector<std::size_t> constraint_counts() const;

  /// Size of the unconstrained Cartesian product of all domains.
  /// Saturates at UINT64_MAX on overflow.
  std::uint64_t cartesian_size() const;

  /// Render a Config as "name=value, ..." for diagnostics.
  std::string config_to_string(const Config& config) const;

  /// Evaluate all constraints on a full config (reference semantics used by
  /// validation and brute-force tests). Counts are not tracked here.
  bool config_valid(const Config& config) const;

 private:
  std::vector<std::string> names_;
  std::vector<Domain> domains_;
  std::unordered_map<std::string, std::size_t> index_;
  std::vector<ConstraintPtr> constraints_;
};

}  // namespace tunespace::csp
