#pragma once
// Constraint: predicate over a subset of the problem's variables.
//
// The interface is designed around the needs of an all-solutions backtracking
// solver (paper Alg. 1 + §4.3):
//
//  * scope()        - variable names the constraint mentions, so solvers can
//                     group interdependent parameters (chain-of-trees) and
//                     order variables by constraint count (optimized solver).
//  * bind()/prepare() - solvers resolve names to dense variable indices once,
//                     and hand the constraint its final domains so specific
//                     constraints can precompute bounds for partial checks.
//  * satisfied()    - full check, called when every scope variable is
//                     assigned; reads values through the bound indices.
//  * consistent()   - partial check: may return false as soon as *no*
//                     completion of the current partial assignment can
//                     satisfy the constraint.  This is what lets MaxProduct
//                     cut entire subtrees (§4.3.2).
//  * preprocess()   - one-shot domain pruning before search.
//
// Constraints are stateless during search (all search state lives in the
// solver), so a single Problem can be solved by many solvers concurrently.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tunespace/csp/domain.hpp"
#include "tunespace/csp/value.hpp"

namespace tunespace::csp {

/// Abstract base for all constraints.
class Constraint {
 public:
  virtual ~Constraint() = default;

  /// Names of the variables this constraint involves, in declaration order.
  const std::vector<std::string>& scope() const { return scope_; }

  /// Resolve scope names to global variable indices (same order as scope()).
  /// Called by Problem::add_constraint; must happen before
  /// satisfied()/consistent().  Invokes the on_bound() hook.
  void bind(std::vector<std::uint32_t> indices);

  /// Bound indices; empty until bind() is called.
  const std::vector<std::uint32_t>& indices() const { return indices_; }

  /// Called after bind() with the (possibly preprocessed) domains of the
  /// scope variables, in scope order.  Specific constraints precompute
  /// per-variable bounds here; the default does nothing.
  virtual void prepare(const std::vector<const Domain*>& domains);

  /// Full check. `values` is the solver's dense value array indexed by the
  /// global variable index; every scope variable is guaranteed assigned.
  virtual bool satisfied(const Value* values) const = 0;

  // --- int64 fast path -------------------------------------------------------
  // Real tuning spaces are almost entirely integer-valued; solvers that keep
  // a dense int64 mirror of the assignment can skip boxed Value dispatch for
  // constraints that opt in.  A solver calls try_specialize() once per solve
  // (after prepare(), with the same final domains); when it returns true the
  // solver may use satisfied_fast()/consistent_fast() with an int64 array
  // in place of satisfied()/consistent().  The boxed entry points stay valid
  // either way — they remain the correctness oracle.

  /// Attempt to enable the int64 fast path for the given scope domains
  /// (scope order).  Returns false (no specialization) by default; overrides
  /// must only return true when the fast entry points give answers identical
  /// to the boxed ones for every assignment drawn from these domains.
  virtual bool try_specialize(const std::vector<const Domain*>& domains);

  /// Fast full check; only valid after try_specialize() returned true.
  /// `values` is the solver's dense int64 mirror, indexed like satisfied().
  virtual bool satisfied_fast(const std::int64_t* values) const;

  /// Fast partial check; same contract as consistent(), over the int64
  /// mirror.  Default: full check once every scope variable is assigned.
  virtual bool consistent_fast(const std::int64_t* values,
                               const unsigned char* assigned) const;

  // --- block tier ------------------------------------------------------------
  // The candidate-filter loop in the optimized solvers sweeps a whole domain
  // slice of one variable against a fixed partial assignment.  Specialized
  // constraints can evaluate up to kMaxBlockLanes candidates per dispatch
  // (structure-of-arrays, autovectorizable); everything else falls back to a
  // scalar loop over the existing fast entry points, so the block tier is
  // purely an execution-strategy change — never a semantic one.
  //
  // Shared contract for both block entry points:
  //   * only valid after try_specialize() returned true (like *_fast);
  //   * n <= kMaxBlockLanes; candidates[i] is the probe value for lane i;
  //   * mask[i] != 0 marks lane i alive on entry; implementations AND their
  //     verdict into mask (mask[i] &= result) and may skip dead lanes;
  //   * values[var] is scratch: implementations may clobber it, callers must
  //     rewrite it after the call before relying on it.

  /// Width of one candidate lane group (matches expr::IntProgramBlock).
  static constexpr std::size_t kMaxBlockLanes = 8;

  /// Block full check: every scope variable other than `var` is assigned in
  /// `values`; lane i tests values with values[var] = candidates[i].
  virtual void satisfied_block(std::int64_t* values, std::uint32_t var,
                               const std::int64_t* candidates, std::size_t n,
                               unsigned char* mask) const;

  /// Block partial check (consistent_fast over lanes).  The caller sets
  /// assigned[var] before the call, so lane i sees the partial assignment
  /// extended with values[var] = candidates[i].  Must only clear a lane when
  /// no completion can satisfy the constraint.
  virtual void consistent_block(std::int64_t* values,
                                const unsigned char* assigned, std::uint32_t var,
                                const std::int64_t* candidates, std::size_t n,
                                unsigned char* mask) const;

  /// Partial consistency check. `assigned[i]` is nonzero iff global variable
  /// i currently has a value in `values`.  Must only return false when no
  /// completion can satisfy the constraint.  The default returns true (i.e.
  /// no early pruning); override together with prunes_partial().
  virtual bool consistent(const Value* values, const unsigned char* assigned) const;

  /// Whether consistent() can prune strictly-partial assignments.  Solvers
  /// use this to skip pointless virtual calls for generic constraints.
  virtual bool prunes_partial() const { return false; }

  /// One-shot domain pruning over the scope variables' domains (scope
  /// order).  May remove values that cannot appear in any solution *of this
  /// constraint considered in isolation*.  Returns false if the constraint
  /// is provably unsatisfiable.  The default prunes nothing.
  virtual bool preprocess(const std::vector<Domain*>& domains);

  /// Human-readable description for diagnostics and tests.
  virtual std::string describe() const = 0;

 protected:
  explicit Constraint(std::vector<std::string> scope) : scope_(std::move(scope)) {}

  /// Hook invoked after bind() resolves scope indices; subclasses that cache
  /// index-derived tables (e.g. compiled slot maps) override this.
  virtual void on_bound() {}

  /// True iff all scope variables are assigned.
  bool all_assigned(const unsigned char* assigned) const {
    for (std::uint32_t idx : indices_) {
      if (!assigned[idx]) return false;
    }
    return true;
  }

  std::vector<std::string> scope_;
  std::vector<std::uint32_t> indices_;
};

using ConstraintPtr = std::unique_ptr<Constraint>;

/// True when every value of every domain is int or bool — the gate shared by
/// the try_specialize() overrides and the solvers' int64 mirror setup.
bool domains_all_int(const std::vector<const Domain*>& domains);

}  // namespace tunespace::csp
