#pragma once
// LambdaConstraint: native C++ callable constraints, the KTT-style API of
// the paper's Listing 2:
//
//   auto minWG = [](std::span<const Value> v) { return v[0]*v[1] >= 32; };
//   tuner.AddConstraint(kernel, {"block_size_x", "block_size_y"}, minWG);
//
// Lambda constraints are opaque to the parsing pipeline (they cannot be
// decomposed or recognized), exactly like KTT/ATF function constraints;
// they are evaluated once their whole scope is assigned.  A throwing
// callable marks the configuration invalid, matching FunctionConstraint.

#include <functional>
#include <span>

#include "tunespace/csp/constraint.hpp"

namespace tunespace::csp {

/// Predicate signature: scope values in scope order.
using LambdaPredicate = std::function<bool(std::span<const Value>)>;

/// Constraint backed by a user-provided C++ callable.
class LambdaConstraint : public Constraint {
 public:
  LambdaConstraint(std::vector<std::string> scope, LambdaPredicate predicate,
                   std::string description = "lambda");

  bool satisfied(const Value* values) const override;
  std::string describe() const override;

 private:
  LambdaPredicate predicate_;
  std::string description_;
};

}  // namespace tunespace::csp
