#pragma once
// Built-in "specific" constraints (paper §4.3.2).
//
// These exploit knowledge of the operator to (a) prune domains before search
// (preprocess), and (b) reject partial assignments early (consistent), which
// generic user functions cannot do.  The parser's recognizer (expr/recognizer)
// maps common auto-tuning constraint shapes onto these classes:
//
//   MaxProduct / MinProduct / ExactProduct  - (weighted) products of params
//   MaxSum / MinSum / ExactSum              - (weighted) sums of params
//   VarComparison                           - x <op> y between two params
//   Divisibility                            - x % y == 0 (y a param or const)
//   InSet                                   - single-param membership
//   AllDifferent / AllEqual                 - mutual (in)equality
//   ConstBool                               - constant-folded constraints

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "tunespace/csp/constraint.hpp"
#include "tunespace/csp/int_set.hpp"

namespace tunespace::csp {

/// Comparison operators shared by several specific constraints.
enum class CmpOp : std::uint8_t { Lt, Le, Gt, Ge, Eq, Ne };

/// Render a CmpOp as its Python spelling ("<", "<=", ...).
const char* cmp_op_name(CmpOp op);

/// Apply a CmpOp to a three-way comparison result (-1/0/+1).
bool cmp_holds(CmpOp op, int three_way);

// ---------------------------------------------------------------------------
// Product constraints:   coeff * prod_i(x_i) <op> bound
// ---------------------------------------------------------------------------

/// Base for product-of-variables constraints with a constant bound.
/// Partial checks and preprocessing are only enabled when every scope domain
/// is strictly positive (otherwise partial products are not monotone).
class ProductConstraint : public Constraint {
 public:
  ProductConstraint(CmpOp op, double bound, std::vector<std::string> scope,
                    double coeff = 1.0);

  void prepare(const std::vector<const Domain*>& domains) override;
  bool satisfied(const Value* values) const override;
  bool consistent(const Value* values, const unsigned char* assigned) const override;
  bool prunes_partial() const override { return monotone_; }
  bool preprocess(const std::vector<Domain*>& domains) override;
  bool try_specialize(const std::vector<const Domain*>& domains) override;
  bool satisfied_fast(const std::int64_t* values) const override;
  bool consistent_fast(const std::int64_t* values,
                       const unsigned char* assigned) const override;
  void satisfied_block(std::int64_t* values, std::uint32_t var,
                       const std::int64_t* candidates, std::size_t n,
                       unsigned char* mask) const override;
  void consistent_block(std::int64_t* values, const unsigned char* assigned,
                        std::uint32_t var, const std::int64_t* candidates,
                        std::size_t n, unsigned char* mask) const override;
  std::string describe() const override;

  CmpOp op() const { return op_; }
  double bound() const { return bound_; }
  double coeff() const { return coeff_; }

 private:
  double product(const Value* values) const;

  CmpOp op_;
  double bound_;
  double coeff_;
  bool monotone_ = false;         ///< all domains strictly positive
  std::vector<double> min_v_;     ///< per scope var: min domain value
  std::vector<double> max_v_;     ///< per scope var: max domain value
};

/// prod(x_i) <= bound  (optionally with a positive coefficient).
class MaxProduct : public ProductConstraint {
 public:
  MaxProduct(double bound, std::vector<std::string> scope, double coeff = 1.0)
      : ProductConstraint(CmpOp::Le, bound, std::move(scope), coeff) {}
};

/// prod(x_i) >= bound.
class MinProduct : public ProductConstraint {
 public:
  MinProduct(double bound, std::vector<std::string> scope, double coeff = 1.0)
      : ProductConstraint(CmpOp::Ge, bound, std::move(scope), coeff) {}
};

/// prod(x_i) == bound.
class ExactProduct : public ProductConstraint {
 public:
  ExactProduct(double bound, std::vector<std::string> scope, double coeff = 1.0)
      : ProductConstraint(CmpOp::Eq, bound, std::move(scope), coeff) {}
};

// ---------------------------------------------------------------------------
// Sum constraints:   sum_i(w_i * x_i) <op> bound
// ---------------------------------------------------------------------------

/// Base for weighted-sum constraints.  Partial checks use per-variable
/// domain min/max contributions, which are valid for any sign of weight.
class SumConstraint : public Constraint {
 public:
  /// Unit weights.
  SumConstraint(CmpOp op, double bound, std::vector<std::string> scope);
  /// Explicit weights, one per scope variable.
  SumConstraint(CmpOp op, double bound, std::vector<std::string> scope,
                std::vector<double> weights);

  void prepare(const std::vector<const Domain*>& domains) override;
  bool satisfied(const Value* values) const override;
  bool consistent(const Value* values, const unsigned char* assigned) const override;
  bool prunes_partial() const override { return prepared_; }
  bool preprocess(const std::vector<Domain*>& domains) override;
  bool try_specialize(const std::vector<const Domain*>& domains) override;
  bool satisfied_fast(const std::int64_t* values) const override;
  bool consistent_fast(const std::int64_t* values,
                       const unsigned char* assigned) const override;
  void satisfied_block(std::int64_t* values, std::uint32_t var,
                       const std::int64_t* candidates, std::size_t n,
                       unsigned char* mask) const override;
  void consistent_block(std::int64_t* values, const unsigned char* assigned,
                        std::uint32_t var, const std::int64_t* candidates,
                        std::size_t n, unsigned char* mask) const override;
  std::string describe() const override;

  CmpOp op() const { return op_; }
  double bound() const { return bound_; }
  const std::vector<double>& weights() const { return weights_; }

 private:
  double total(const Value* values) const;

  CmpOp op_;
  double bound_;
  std::vector<double> weights_;
  bool prepared_ = false;
  std::vector<double> min_c_;  ///< per scope var: min weighted contribution
  std::vector<double> max_c_;  ///< per scope var: max weighted contribution
};

/// sum(w_i * x_i) <= bound.
class MaxSum : public SumConstraint {
 public:
  MaxSum(double bound, std::vector<std::string> scope)
      : SumConstraint(CmpOp::Le, bound, std::move(scope)) {}
  MaxSum(double bound, std::vector<std::string> scope, std::vector<double> weights)
      : SumConstraint(CmpOp::Le, bound, std::move(scope), std::move(weights)) {}
};

/// sum(w_i * x_i) >= bound.
class MinSum : public SumConstraint {
 public:
  MinSum(double bound, std::vector<std::string> scope)
      : SumConstraint(CmpOp::Ge, bound, std::move(scope)) {}
  MinSum(double bound, std::vector<std::string> scope, std::vector<double> weights)
      : SumConstraint(CmpOp::Ge, bound, std::move(scope), std::move(weights)) {}
};

/// sum(w_i * x_i) == bound.
class ExactSum : public SumConstraint {
 public:
  ExactSum(double bound, std::vector<std::string> scope)
      : SumConstraint(CmpOp::Eq, bound, std::move(scope)) {}
  ExactSum(double bound, std::vector<std::string> scope, std::vector<double> weights)
      : SumConstraint(CmpOp::Eq, bound, std::move(scope), std::move(weights)) {}
};

// ---------------------------------------------------------------------------
// Structural constraints
// ---------------------------------------------------------------------------

/// Binary comparison between two variables:  a <op> b.
class VarComparison : public Constraint {
 public:
  VarComparison(std::string a, CmpOp op, std::string b);

  bool satisfied(const Value* values) const override;
  bool preprocess(const std::vector<Domain*>& domains) override;
  bool try_specialize(const std::vector<const Domain*>& domains) override;
  bool satisfied_fast(const std::int64_t* values) const override;
  void satisfied_block(std::int64_t* values, std::uint32_t var,
                       const std::int64_t* candidates, std::size_t n,
                       unsigned char* mask) const override;
  std::string describe() const override;

  CmpOp op() const { return op_; }

 private:
  CmpOp op_;
};

/// Divisibility:  a % b == 0 where b is a variable, or a % k == 0 for a
/// constant k (the recognizer produces whichever form applies).
class Divisibility : public Constraint {
 public:
  /// a % b == 0 with both variables.
  Divisibility(std::string a, std::string b);
  /// a % k == 0 with constant divisor k (k != 0).
  Divisibility(std::string a, std::int64_t divisor);

  bool satisfied(const Value* values) const override;
  bool preprocess(const std::vector<Domain*>& domains) override;
  bool try_specialize(const std::vector<const Domain*>& domains) override;
  bool satisfied_fast(const std::int64_t* values) const override;
  void satisfied_block(std::int64_t* values, std::uint32_t var,
                       const std::int64_t* candidates, std::size_t n,
                       unsigned char* mask) const override;
  std::string describe() const override;

 private:
  std::optional<std::int64_t> const_divisor_;
};

/// Single-variable membership: x in {v1, v2, ...} (or not in, if negated).
/// Resolved entirely by preprocessing; satisfied() remains for validation.
class InSet : public Constraint {
 public:
  InSet(std::string var, std::vector<Value> allowed, bool negated = false);

  bool satisfied(const Value* values) const override;
  bool preprocess(const std::vector<Domain*>& domains) override;
  bool try_specialize(const std::vector<const Domain*>& domains) override;
  bool satisfied_fast(const std::int64_t* values) const override;
  void satisfied_block(std::int64_t* values, std::uint32_t var,
                       const std::int64_t* candidates, std::size_t n,
                       unsigned char* mask) const override;
  std::string describe() const override;

 private:
  bool member(const Value& v) const;
  std::vector<Value> set_;
  IntValueSet int_set_;         ///< lowered on first try_specialize()
  bool int_set_built_ = false;  ///< lowering attempted (set_ is immutable)
  bool int_set_ok_ = false;     ///< lowering succeeded (no real elements)
  bool negated_;
};

/// All scope variables mutually different.
class AllDifferent : public Constraint {
 public:
  explicit AllDifferent(std::vector<std::string> scope);

  bool satisfied(const Value* values) const override;
  bool consistent(const Value* values, const unsigned char* assigned) const override;
  bool prunes_partial() const override { return true; }
  bool try_specialize(const std::vector<const Domain*>& domains) override;
  bool satisfied_fast(const std::int64_t* values) const override;
  bool consistent_fast(const std::int64_t* values,
                       const unsigned char* assigned) const override;
  void satisfied_block(std::int64_t* values, std::uint32_t var,
                       const std::int64_t* candidates, std::size_t n,
                       unsigned char* mask) const override;
  void consistent_block(std::int64_t* values, const unsigned char* assigned,
                        std::uint32_t var, const std::int64_t* candidates,
                        std::size_t n, unsigned char* mask) const override;
  std::string describe() const override;
};

/// All scope variables equal.
class AllEqual : public Constraint {
 public:
  explicit AllEqual(std::vector<std::string> scope);

  bool satisfied(const Value* values) const override;
  bool consistent(const Value* values, const unsigned char* assigned) const override;
  bool prunes_partial() const override { return true; }
  bool try_specialize(const std::vector<const Domain*>& domains) override;
  bool satisfied_fast(const std::int64_t* values) const override;
  bool consistent_fast(const std::int64_t* values,
                       const unsigned char* assigned) const override;
  void satisfied_block(std::int64_t* values, std::uint32_t var,
                       const std::int64_t* candidates, std::size_t n,
                       unsigned char* mask) const override;
  void consistent_block(std::int64_t* values, const unsigned char* assigned,
                        std::uint32_t var, const std::int64_t* candidates,
                        std::size_t n, unsigned char* mask) const override;
  std::string describe() const override;
};

/// Constant-folded constraint: always true (droppable) or always false
/// (unsatisfiable problem).  Produced by the parser for constant expressions.
class ConstBool : public Constraint {
 public:
  explicit ConstBool(bool value);

  bool satisfied(const Value* values) const override;
  bool consistent(const Value* values, const unsigned char* assigned) const override;
  bool prunes_partial() const override { return !value_; }
  bool preprocess(const std::vector<Domain*>& domains) override;
  // No fast-path overrides: empty-scope constraints are resolved during plan
  // construction, before solvers ever consult try_specialize().
  std::string describe() const override;

  bool value() const { return value_; }

 private:
  bool value_;
};

}  // namespace tunespace::csp
