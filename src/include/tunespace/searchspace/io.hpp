#pragma once
// SearchSpace persistence: human-readable CSV and binary snapshots.
//
// CSV — export a resolved space (one row per valid configuration, one
// column per parameter) and re-import it for validation or sharing between
// tools.  Writing and parsing are locale-independent and exact: streams are
// imbued with the classic "C" locale for the duration of the call, and
// doubles round-trip through shortest-form std::to_chars / std::from_chars,
// so a process running under a comma-decimal locale produces and accepts
// the same bytes as any other.
//
// Snapshot — a versioned binary format for the fully-resolved space, so the
// construction cost the paper minimizes is paid once per spec instead of
// once per process.  File layout (little-endian, all sections 8-aligned):
//
//   header    magic "TSSNAP\0\0", format version, endianness tag,
//             spec fingerprint (tuner::spec_fingerprint), #params, #rows,
//             solve stats, construction seconds
//   table     one {id, offset, byte size, checksum} entry per section
//   sections  1 domains   parameter names + value lists (validated on load)
//             2 columns   the bit-packed solution columns, words verbatim
//             3 rowindex  the open-addressing row-lookup table
//             4 posting   the CSR inverted indexes (offsets + row lists)
//
// Checksums are four-lane interleaved FNV-1a over 64-bit words.
// load_snapshot memory-maps the file and *borrows* the column words, row
// table and posting lists straight out of the mapping (zero-copy): no
// parse, no copy, no index rebuild — the result is byte-identical to a
// fresh construction (same enumeration order, same CSV bytes, same query
// results) and reloading is orders of magnitude faster than re-solving.
//
// Two verification levels (see SnapshotVerify): kFull additionally streams
// every section through its checksum; kShape validates the header, the
// fingerprint, the (checksummed) domains section and every section's
// bounds/shape invariants but trusts the bulk payload, which keeps a cache
// hit at microseconds.  SearchSpace::load_or_build uses kShape — the cache
// directory is a trusted local artifact this library writes atomically —
// and falls back to a fresh build whenever a snapshot is rejected.  Cache
// layout: one "<sanitized spec name>-<fingerprint hex>.tss" file per
// spec + method under the chosen cache directory.

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "tunespace/searchspace/searchspace.hpp"

namespace tunespace::searchspace {

/// Snapshot format version written and accepted by this build.
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// Thrown when a snapshot cannot be used: missing file, truncation, bad
/// magic, format-version or endianness mismatch, checksum failure, or a
/// fingerprint that does not match the requested spec + method.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// How much of a snapshot load_snapshot verifies before trusting it.
enum class SnapshotVerify {
  /// Header, fingerprint, domains section (checksummed) and all structural
  /// shape checks; bulk payload sections are bounds-checked but their
  /// checksums are not streamed.  The right level for the trusted,
  /// atomically-written load_or_build cache: a hit costs microseconds.
  kShape,
  /// kShape plus every section checksum (one pass over the whole file).
  kFull,
};

/// Serialize a resolved space (domains, packed columns, indexes) to `path`,
/// atomically (temp file + rename).  Throws std::runtime_error on I/O error.
void save_snapshot(const SearchSpace& space, const std::string& path);

/// Reload a snapshot produced by save_snapshot for the same spec + method.
/// Throws SnapshotError when the file is unusable (see class docs).
SearchSpace load_snapshot(const tuner::TuningProblem& spec,
                          const tuner::Method& method, const std::string& path,
                          SnapshotVerify verify = SnapshotVerify::kFull);
/// Overload using the default "optimized" construction method.
SearchSpace load_snapshot(const tuner::TuningProblem& spec,
                          const std::string& path,
                          SnapshotVerify verify = SnapshotVerify::kFull);

/// The cache file SearchSpace::load_or_build reads/writes for this
/// spec + method under `cache_dir`:
/// "<sanitized spec name>-<fingerprint hex>.tss".  Exposed so tools can
/// pre-populate, inspect or invalidate individual entries.
std::string snapshot_cache_entry(const std::string& cache_dir,
                                 const tuner::TuningProblem& spec,
                                 const tuner::Method& method);

/// Write `space` as CSV: a header of parameter names, then one row per
/// valid configuration in enumeration order.  The stream is temporarily
/// imbued with the classic locale; doubles are rendered shortest-round-trip.
void write_csv(const SearchSpace& space, std::ostream& os);

/// Convenience overload writing to a file; throws std::runtime_error when
/// the file cannot be opened.
void write_csv(const SearchSpace& space, const std::string& path);

/// Parse a CSV produced by write_csv against a spec's declared parameters,
/// returning each row resolved to a Config (values are canonicalized to the
/// declared domain values).  Throws std::runtime_error on header mismatch,
/// truncated or over-long rows (the message names the line), malformed
/// cells, or values absent from the declared domains.
std::vector<csp::Config> read_csv(const tuner::TuningProblem& spec,
                                  std::istream& is);

}  // namespace tunespace::searchspace
