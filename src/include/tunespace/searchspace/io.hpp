#pragma once
// SearchSpace serialization: export a resolved space to CSV (one row per
// valid configuration, one column per parameter) and re-import it for
// validation or sharing between tools.  The CSV uses the parameter's
// rendered values; strings round-trip via the expression-language string
// literal syntax.

#include <iosfwd>
#include <string>

#include "tunespace/searchspace/searchspace.hpp"

namespace tunespace::searchspace {

/// Write `space` as CSV: a header of parameter names, then one row per
/// valid configuration in enumeration order.
void write_csv(const SearchSpace& space, std::ostream& os);

/// Convenience overload writing to a file; throws std::runtime_error when
/// the file cannot be opened.
void write_csv(const SearchSpace& space, const std::string& path);

/// Parse a CSV produced by write_csv against a spec's declared parameters,
/// returning each row resolved to a Config.  Throws std::runtime_error on
/// header mismatch or values absent from the declared domains.
std::vector<csp::Config> read_csv(const tuner::TuningProblem& spec,
                                  std::istream& is);

}  // namespace tunespace::searchspace
