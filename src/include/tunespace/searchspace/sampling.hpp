#pragma once
// Sampling over a resolved SearchSpace or a filtered SubSpace view (§4.4).
//
// Because the space is fully resolved, sampling is uniform over *valid*
// configurations — the paper's key fairness point versus chain-of-trees
// (whose naive random descent is biased towards sparse subtrees) and versus
// rejection sampling over the Cartesian product.  Latin Hypercube Sampling
// stratifies over the true parameter bounds and snaps candidates to the
// nearest valid configuration using the posting-list index.
//
// Every function has a SubSpace overload operating in the view's local row
// ids and over the view's own true bounds, so tune-time restrictions sample
// exactly like a freshly-built space; a whole-space view behaves
// identically to the SearchSpace overload.

#include <cstddef>
#include <vector>

#include "tunespace/searchspace/searchspace.hpp"
#include "tunespace/searchspace/view.hpp"
#include "tunespace/util/rng.hpp"

namespace tunespace::searchspace {

/// `count` distinct rows uniformly at random (count is clamped to size()).
std::vector<std::size_t> random_sample(const SearchSpace& space, std::size_t count,
                                       util::Rng& rng);
/// View overload; returns local row ids.
std::vector<std::size_t> random_sample(const SubSpace& view, std::size_t count,
                                       util::Rng& rng);

/// Latin Hypercube Sample of `count` rows:
///  1. each parameter's present values are cut into `count` strata and a
///     random permutation assigns one stratum per sample per parameter;
///  2. each resulting index-space candidate is snapped to the valid
///     configuration with minimal normalized L1 index distance, searched
///     through the smallest posting list among the candidate's coordinates.
/// Duplicates after snapping are removed, so the result may be smaller than
/// `count` on tightly-constrained spaces.
std::vector<std::size_t> latin_hypercube_sample(const SearchSpace& space,
                                                std::size_t count, util::Rng& rng);
/// View overload: strata cover the view's present values; returns local ids.
std::vector<std::size_t> latin_hypercube_sample(const SubSpace& view,
                                                std::size_t count, util::Rng& rng);

/// Snap an arbitrary index-space point to the nearest valid row (normalized
/// L1 metric over present-value positions); returns the row id.
/// Requires a non-empty space.
std::size_t snap_to_valid(const SearchSpace& space,
                          const std::vector<std::uint32_t>& target);
/// View overload: snaps to the nearest row *of the view*; returns a local id.
std::size_t snap_to_valid(const SubSpace& view,
                          const std::vector<std::uint32_t>& target);

}  // namespace tunespace::searchspace
