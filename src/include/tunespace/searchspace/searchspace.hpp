#pragma once
// SearchSpace: the fully-resolved search space representation of §4.4.
//
// Wraps the solver's SolutionSet with the operations optimization algorithms
// need: O(1) membership / row lookup through a hash index, true parameter
// bounds (values that actually occur in valid configurations — unavailable
// to dynamic approaches), per-parameter inverted indexes (posting lists) for
// neighbour and stratified-sampling queries, and materialized config views.
//
// Configurations are addressed by a dense row id in [0, size()).

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "tunespace/csp/problem.hpp"
#include "tunespace/solver/solver.hpp"
#include "tunespace/tuner/pipeline.hpp"
#include "tunespace/tuner/tuning_problem.hpp"

namespace tunespace::searchspace {

/// Fully-resolved, indexed search space.
class SearchSpace {
 public:
  /// Construct from a spec using the optimized method (the normal user path:
  /// "fully resolve the space before tuning, with minimal impact").
  explicit SearchSpace(const tuner::TuningProblem& spec);

  /// Construct from a spec with an explicit method (benchmarks use this).
  SearchSpace(const tuner::TuningProblem& spec, const tuner::Method& method);

  /// Construct from a spec with the work-stealing parallel engine (full
  /// pipeline + ParallelBacktracking).  The resolved space is byte-identical
  /// to the sequential construction.
  SearchSpace(const tuner::TuningProblem& spec,
              const solver::SolverOptions& parallel);

  // --- Shape ----------------------------------------------------------------
  std::size_t size() const { return solutions_.size(); }
  bool empty() const { return solutions_.empty(); }
  std::size_t num_params() const { return problem_.num_variables(); }
  const std::string& param_name(std::size_t p) const { return problem_.name(p); }
  const csp::Problem& problem() const { return problem_; }
  std::uint64_t cartesian_size() const { return problem_.cartesian_size(); }
  /// Fraction of the Cartesian product removed by constraints.
  double sparsity() const;

  // --- Configuration access --------------------------------------------------
  /// Value-index row of a configuration.
  std::vector<std::uint32_t> indices(std::size_t row) const {
    return solutions_.index_row(row);
  }
  /// Materialized values of a configuration.
  csp::Config config(std::size_t row) const {
    return solutions_.config(row, problem_);
  }
  /// Value of parameter `p` in configuration `row`.
  const csp::Value& value(std::size_t row, std::size_t p) const {
    return problem_.domain(p)[solutions_.value_index(row, p)];
  }
  std::uint32_t value_index(std::size_t row, std::size_t p) const {
    return solutions_.value_index(row, p);
  }
  const solver::SolutionSet& solutions() const { return solutions_; }

  // --- Lookup ---------------------------------------------------------------
  /// Row id of an index-row, if it is a valid configuration.
  std::optional<std::size_t> find(const std::vector<std::uint32_t>& index_row) const;
  /// Row id of a value config (values must exist in the domains).
  std::optional<std::size_t> find_config(const csp::Config& config) const;
  bool contains(const std::vector<std::uint32_t>& index_row) const {
    return find(index_row).has_value();
  }

  // --- True bounds (§4.4) -----------------------------------------------------
  /// Domain value indices of parameter `p` that occur in at least one valid
  /// configuration, ascending.  These are the "true parameter bounds" that
  /// enable balanced initial sampling.
  const std::vector<std::uint32_t>& present_values(std::size_t p) const {
    return present_values_[p];
  }

  /// Rows whose parameter `p` has domain value index `vi` (posting list);
  /// empty list if the value never occurs.
  const std::vector<std::uint32_t>& rows_with(std::size_t p, std::uint32_t vi) const;

  // --- Stats ------------------------------------------------------------------
  /// Wall-clock seconds spent constructing (pipeline + solve).
  double construction_seconds() const { return construction_seconds_; }
  const solver::SolveStats& solve_stats() const { return stats_; }

 private:
  void build_indexes();
  std::uint64_t row_hash(const std::uint32_t* row) const;

  csp::Problem problem_;
  solver::SolutionSet solutions_;
  solver::SolveStats stats_;
  double construction_seconds_ = 0.0;

  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> hash_index_;
  std::vector<std::vector<std::uint32_t>> present_values_;
  // posting_[p][vi] -> rows; indexed by original domain value index.
  std::vector<std::vector<std::vector<std::uint32_t>>> posting_;
};

}  // namespace tunespace::searchspace
