#pragma once
// SearchSpace: the fully-resolved search space representation of §4.4.
//
// Wraps the solver's SolutionSet with the operations optimization algorithms
// need: O(1) membership / row lookup through an open-addressing row table,
// true parameter bounds (values that actually occur in valid configurations
// — unavailable to dynamic approaches), per-parameter inverted indexes in
// CSR form (posting lists) for neighbour and stratified-sampling queries,
// and materialized config views.
//
// Both indexes are flat arrays so a snapshot (searchspace/io.hpp) can
// serialize them verbatim and a reload can *borrow* them straight out of
// the snapshot buffer instead of rebuilding: the `std::span` views point
// either at the owned `*_store_` vectors (fresh construction) or into the
// loaded buffer kept alive by `snapshot_buffer_` (zero-copy reload).
//
// Configurations are addressed by a dense row id in [0, size()).

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "tunespace/csp/problem.hpp"
#include "tunespace/solver/solver.hpp"
#include "tunespace/tuner/pipeline.hpp"
#include "tunespace/tuner/tuning_problem.hpp"

namespace tunespace::searchspace {

enum class SnapshotVerify;  // defined in searchspace/io.hpp

/// Fully-resolved, indexed search space.
class SearchSpace {
 public:
  /// Construct from a spec using the optimized method (the normal user path:
  /// "fully resolve the space before tuning, with minimal impact").
  explicit SearchSpace(const tuner::TuningProblem& spec);

  /// Construct from a spec with an explicit method (benchmarks use this).
  SearchSpace(const tuner::TuningProblem& spec, const tuner::Method& method);

  /// Construct from a spec with the work-stealing parallel engine (full
  /// pipeline + ParallelBacktracking).  The resolved space is byte-identical
  /// to the sequential construction.
  SearchSpace(const tuner::TuningProblem& spec,
              const solver::SolverOptions& parallel);

  /// Construct-once, reload-forever: look for a snapshot of `spec` (keyed by
  /// tuner::spec_fingerprint) under `cache_dir`; on a hit, reload it through
  /// the zero-copy path (orders of magnitude faster than solving); on a
  /// miss or a stale/corrupt file, build fresh and populate the cache.  The
  /// returned space is byte-identical either way — same enumeration order,
  /// same CSV bytes, same query results.  Specs with native lambda
  /// constraints cannot be fingerprinted and always build fresh.
  static SearchSpace load_or_build(const tuner::TuningProblem& spec,
                                   const std::string& cache_dir);
  static SearchSpace load_or_build(const tuner::TuningProblem& spec,
                                   const tuner::Method& method,
                                   const std::string& cache_dir);

  // --- Shape ----------------------------------------------------------------
  std::size_t size() const { return solutions_.size(); }
  bool empty() const { return solutions_.empty(); }
  std::size_t num_params() const { return problem_.num_variables(); }
  const std::string& param_name(std::size_t p) const { return problem_.name(p); }
  const csp::Problem& problem() const { return problem_; }
  std::uint64_t cartesian_size() const { return problem_.cartesian_size(); }
  /// Fraction of the Cartesian product removed by constraints.
  double sparsity() const;

  // --- Configuration access --------------------------------------------------
  /// Value-index row of a configuration.
  std::vector<std::uint32_t> indices(std::size_t row) const {
    return solutions_.index_row(row);
  }
  /// Materialized values of a configuration.
  csp::Config config(std::size_t row) const {
    return solutions_.config(row, problem_);
  }
  /// Value of parameter `p` in configuration `row`.
  const csp::Value& value(std::size_t row, std::size_t p) const {
    return problem_.domain(p)[solutions_.value_index(row, p)];
  }
  std::uint32_t value_index(std::size_t row, std::size_t p) const {
    return solutions_.value_index(row, p);
  }
  const solver::SolutionSet& solutions() const { return solutions_; }

  // --- Lookup ---------------------------------------------------------------
  /// Row id of an index-row, if it is a valid configuration.
  std::optional<std::size_t> find(const std::vector<std::uint32_t>& index_row) const;
  /// Row id of a value config (values must exist in the domains).
  std::optional<std::size_t> find_config(const csp::Config& config) const;
  bool contains(const std::vector<std::uint32_t>& index_row) const {
    return find(index_row).has_value();
  }

  // --- True bounds (§4.4) -----------------------------------------------------
  /// Domain value indices of parameter `p` that occur in at least one valid
  /// configuration, ascending.  These are the "true parameter bounds" that
  /// enable balanced initial sampling.
  const std::vector<std::uint32_t>& present_values(std::size_t p) const {
    return present_values_[p];
  }

  /// Rows whose parameter `p` has domain value index `vi` (posting list,
  /// rows ascending); empty if the value never occurs.
  std::span<const std::uint32_t> rows_with(std::size_t p, std::uint32_t vi) const;

  // --- Stats ------------------------------------------------------------------
  /// Wall-clock seconds spent constructing — pipeline + solve on a fresh
  /// build, file load on a snapshot reload.
  double construction_seconds() const { return construction_seconds_; }
  const solver::SolveStats& solve_stats() const { return stats_; }
  /// Fingerprint of the (spec, method) pair this space was resolved from
  /// (tuner::spec_fingerprint); snapshots are keyed by it.
  std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  SearchSpace() = default;  // the snapshot loader fills the members directly

  friend void save_snapshot(const SearchSpace& space, const std::string& path);
  friend SearchSpace load_snapshot(const tuner::TuningProblem& spec,
                                   const tuner::Method& method,
                                   const std::string& path,
                                   SnapshotVerify verify);

  static constexpr std::uint32_t kEmptySlot = 0xFFFFFFFFu;

  void build_indexes();
  void derive_present_values();
  std::uint64_t row_hash(const std::uint32_t* row) const;
  bool row_equals(std::uint32_t row, const std::uint32_t* index_row) const;

  csp::Problem problem_;
  solver::SolutionSet solutions_;
  solver::SolveStats stats_;
  double construction_seconds_ = 0.0;
  std::uint64_t fingerprint_ = 0;

  // Row-lookup table: open addressing, power-of-two size, linear probing,
  // kEmptySlot marks an empty bucket.  Load factor is kept <= 0.5.
  std::vector<std::uint32_t> hash_table_store_;
  std::span<const std::uint32_t> hash_table_;

  // Inverted indexes in CSR form.  For parameter p with offset-array base
  // posting_base_[p], the posting list of value index vi is
  //   posting_rows_[posting_offsets_[base + vi] ...
  //                 posting_offsets_[base + vi + 1])
  // with offsets global into posting_rows_ (parameter p's region is
  // [p * size(), (p + 1) * size())).
  std::vector<std::uint64_t> posting_offsets_store_;
  std::span<const std::uint64_t> posting_offsets_;
  std::vector<std::uint32_t> posting_rows_store_;
  std::span<const std::uint32_t> posting_rows_;
  std::vector<std::size_t> posting_base_;  // per-parameter offset-array base

  // Derived from the posting offsets (cheap), always owned.
  std::vector<std::vector<std::uint32_t>> present_values_;

  // Keeps a loaded snapshot buffer alive while views borrow from it.
  std::shared_ptr<const void> snapshot_buffer_;
};

}  // namespace tunespace::searchspace
