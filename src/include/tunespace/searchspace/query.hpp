#pragma once
// Predicate algebra for restricting a resolved SearchSpace (view.hpp).
//
// Real tuning sessions repeatedly *restrict* an already-constructed space:
// hardware limits discovered at runtime, per-device shared-memory caps,
// user-pinned parameters.  A Predicate describes such a restriction as a
// conjunction of per-parameter conditions — `eq` (param == v), `in_set`
// (param in {..}), `between` (lo <= param <= hi) — composable with
// `all_of` / `operator&&`.  Predicates are immutable value types sharing
// their nodes, so building and copying them is cheap.
//
// A Predicate is resolved against a concrete csp::Problem by compile(),
// which lowers every condition to the set of *domain value indices* it
// admits per parameter.  That compiled form is what the SubSpace executor
// consumes: each per-parameter index set maps directly onto the
// SearchSpace's CSR posting lists (predicate pushdown) or onto a bitmap
// probe per scanned row (packed-column scan fallback).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tunespace/csp/problem.hpp"
#include "tunespace/csp/value.hpp"

namespace tunespace::searchspace::query {

/// Immutable restriction predicate: a conjunction tree of per-parameter
/// conditions over declared parameter names.
class Predicate {
 public:
  /// The trivially-true predicate (restricts nothing).
  Predicate() = default;

  bool trivial() const { return node_ == nullptr; }

  struct Node;  // internal; defined in query.cpp
  explicit Predicate(std::shared_ptr<const Node> node) : node_(std::move(node)) {}
  const std::shared_ptr<const Node>& node() const { return node_; }

 private:
  std::shared_ptr<const Node> node_;
};

/// param == value.  A value absent from the parameter's domain compiles to
/// an empty admissible set (the restriction selects no rows); an unknown
/// parameter name is reported at compile() time.
Predicate eq(std::string param, csp::Value value);

/// param in {values...}.  Values absent from the domain are ignored.
Predicate in_set(std::string param, std::vector<csp::Value> values);

/// lo <= param <= hi under numeric ordering (inclusive).  Domain values that
/// cannot be ordered against the bounds (e.g. strings against numbers) are
/// treated as not matching.
Predicate between(std::string param, csp::Value lo, csp::Value hi);

/// Conjunction of `parts` (an empty vector is the trivial predicate).
Predicate all_of(std::vector<Predicate> parts);

/// Conjunction of two predicates.
Predicate operator&&(const Predicate& a, const Predicate& b);

/// Human-readable rendering, e.g. "block_size_x == 64 and sh_power in (0, 1)".
std::string to_string(const Predicate& pred);

/// One parameter's admissible domain value indices (sorted ascending), as
/// resolved by compile().  An empty `allowed` means the conjunction admits
/// no value of this parameter — the restriction is empty.
struct ParamMask {
  std::size_t param = 0;
  std::vector<std::uint32_t> allowed;
};

/// A Predicate lowered against a Problem: the conjunction over `masks`
/// (at most one entry per parameter, sorted by parameter index).
struct CompiledPredicate {
  std::vector<ParamMask> masks;

  /// True when no parameter is constrained (the trivial predicate).
  bool trivial() const { return masks.empty(); }
  /// True when some mask is empty, i.e. no row can match.
  bool unsatisfiable() const;
};

/// Resolve `pred` against `problem`: parameter names become indices, values
/// become sorted domain value-index sets, conditions on the same parameter
/// intersect.  Throws std::out_of_range for a parameter name the problem
/// does not declare.
CompiledPredicate compile(const Predicate& pred, const csp::Problem& problem);

/// Execution strategy for applying a CompiledPredicate to a space.
enum class Exec {
  kAuto,      ///< cost-based choice between the two below (the default)
  kPushdown,  ///< intersect CSR posting lists (index-driven)
  kScan,      ///< test every candidate row against per-parameter bitmaps
};

/// Options for SubSpace::filter / SubSpace::restrict.
struct QueryOptions {
  Exec exec = Exec::kAuto;
};

/// Observability counters filled by a filter/restrict execution.
struct QueryStats {
  /// Strategy actually taken.  When the restriction does no row work — a
  /// trivial predicate (selection shared) or an unsatisfiable mask (empty
  /// view) — no strategy runs: this echoes the requested option and
  /// rows_examined stays 0.
  Exec exec_used = Exec::kAuto;
  std::size_t candidate_rows = 0;   ///< rows the restriction started from
  std::size_t rows_examined = 0;    ///< posting entries merged or rows probed
  std::size_t rows_out = 0;         ///< rows in the resulting view
  double seconds = 0;               ///< wall-clock of the restriction
};

}  // namespace tunespace::searchspace::query
