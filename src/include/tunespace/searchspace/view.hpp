#pragma once
// SubSpace: an immutable, zero-copy filtered view over a resolved
// SearchSpace (including mmap-loaded snapshots).
//
// Constructing the constrained space once is what makes auto-tuning scale
// (§4); real tuning sessions then *restrict* that space repeatedly —
// hardware limits discovered at runtime, per-device shared-memory caps,
// user-pinned parameters.  A SubSpace applies such a restriction (a
// query::Predicate) without re-solving: the view borrows the parent's
// packed columns and indexes and only materializes a selection vector of
// parent row ids, chosen either by *predicate pushdown* (intersecting the
// parent's CSR posting lists) or by a packed-column scan, whichever the
// planner estimates cheaper.
//
// Views are cheap value types (two pointers; the selection is shared), and
// refinement chains: `view.restrict(...)` starts from the parent view's row
// set instead of the full space.  A whole-space view carries no selection
// at all, so every optimizer can run over a SubSpace exactly as over the
// SearchSpace itself — rows are addressed by a dense *local* id in
// [0, size()), which for a whole-space view coincides with the parent row.

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "tunespace/searchspace/query.hpp"
#include "tunespace/searchspace/searchspace.hpp"

namespace tunespace::searchspace {

class SubSpace {
 public:
  /// Whole-space view: zero-copy, no selection vector.  Implicit so every
  /// API taking `const SubSpace&` accepts a SearchSpace directly.
  SubSpace(const SearchSpace& parent) : parent_(&parent) {}  // NOLINT implicit
  /// Views borrow their parent: constructing one from a temporary
  /// SearchSpace would dangle, so it is a compile error.
  SubSpace(const SearchSpace&&) = delete;

  /// Whole-space view sharing ownership of the parent — the concurrent
  /// runtime's shared-space handoff.  The view (and every restriction
  /// chained off it) keeps `parent` alive, so a session can safely outlive
  /// the registry entry that produced the space.  Throws
  /// std::invalid_argument on a null pointer.
  explicit SubSpace(std::shared_ptr<const SearchSpace> parent);

  /// Filtered view over `parent` (equivalent to a whole-space view
  /// restricted by `pred`).
  static SubSpace filter(const SearchSpace& parent, const query::Predicate& pred,
                         const query::QueryOptions& options = {},
                         query::QueryStats* stats = nullptr);
  static SubSpace filter(const SearchSpace&&, const query::Predicate&,
                         const query::QueryOptions& = {},
                         query::QueryStats* = nullptr) = delete;

  /// Chained refinement: the restriction is evaluated over *this view's*
  /// row set, so narrowing an already-filtered view never rescans rows the
  /// parent predicate excluded.  A trivial predicate returns a view sharing
  /// this selection outright.
  SubSpace restrict(const query::Predicate& pred,
                    const query::QueryOptions& options = {},
                    query::QueryStats* stats = nullptr) const;

  // --- Shape ----------------------------------------------------------------
  const SearchSpace& parent() const { return *parent_; }
  /// True for a whole-space view (local ids == parent row ids).
  bool is_whole() const { return sel_ == nullptr; }
  std::size_t size() const { return sel_ ? sel_->rows.size() : parent_->size(); }
  std::size_t count() const { return size(); }
  bool empty() const { return size() == 0; }
  std::size_t num_params() const { return parent_->num_params(); }
  const std::string& param_name(std::size_t p) const { return parent_->param_name(p); }
  const csp::Problem& problem() const { return parent_->problem(); }

  // --- Row addressing --------------------------------------------------------
  /// Parent row id of local row `local`.
  std::size_t parent_row(std::size_t local) const {
    return sel_ ? sel_->rows[local] : local;
  }
  /// Local id of a parent row, if it is a member of this view.
  std::optional<std::size_t> local_of(std::size_t parent_row) const;
  /// The selection vector (parent row ids, ascending).  Empty for a
  /// whole-space view, whose rows are implicitly [0, parent().size()).
  std::span<const std::uint32_t> selection() const {
    return sel_ ? std::span<const std::uint32_t>(sel_->rows)
                : std::span<const std::uint32_t>();
  }
  /// Parent row ids of the first min(k, size()) rows in enumeration order.
  std::vector<std::size_t> top_rows(std::size_t k) const;

  // --- Configuration access (local row ids) ----------------------------------
  std::vector<std::uint32_t> indices(std::size_t local) const {
    return parent_->indices(parent_row(local));
  }
  csp::Config config(std::size_t local) const {
    return parent_->config(parent_row(local));
  }
  const csp::Value& value(std::size_t local, std::size_t p) const {
    return parent_->value(parent_row(local), p);
  }
  std::uint32_t value_index(std::size_t local, std::size_t p) const {
    return parent_->value_index(parent_row(local), p);
  }

  // --- Lookup ---------------------------------------------------------------
  /// Local id of an index-row, if it is a valid configuration in this view.
  std::optional<std::size_t> find(const std::vector<std::uint32_t>& index_row) const;
  bool contains(const std::vector<std::uint32_t>& index_row) const {
    return find(index_row).has_value();
  }

  // --- True bounds within the view -------------------------------------------
  /// Domain value indices of parameter `p` that occur in at least one row of
  /// this view, ascending (the view's own §4.4 "true parameter bounds").
  /// Derived lazily on first use — restriction itself only selects rows —
  /// and thread-safe to trigger from concurrent readers.
  const std::vector<std::uint32_t>& present_values(std::size_t p) const;
  /// Distinct values of a parameter across the view, in domain order.
  std::vector<csp::Value> project(std::size_t p) const;
  std::vector<csp::Value> project(const std::string& param) const;

 private:
  /// Shared state of a filtered view; whole-space views have none.  `rows`
  /// is immutable after construction; `present` is a lazily-derived cache
  /// guarded by `present_once` (copies of the view share it).
  struct Selection {
    std::vector<std::uint32_t> rows;  ///< parent row ids, ascending
    mutable std::once_flag present_once;
    mutable std::vector<std::vector<std::uint32_t>> present;
  };

  SubSpace(const SearchSpace& parent, std::shared_ptr<const Selection> sel)
      : parent_(&parent), sel_(std::move(sel)) {}

  const SearchSpace* parent_;
  std::shared_ptr<const Selection> sel_;
  /// Optional shared ownership of the parent (see the shared_ptr
  /// constructor); restrictions propagate it so chained views stay safe.
  std::shared_ptr<const SearchSpace> keepalive_;
};

}  // namespace tunespace::searchspace
