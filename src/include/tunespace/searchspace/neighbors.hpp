#pragma once
// Neighbour queries over a resolved SearchSpace or a SubSpace view (§4.4).
//
// Optimization algorithms (genetic mutation, hill climbing, simulated
// annealing) repeatedly ask for the *valid* neighbours of a configuration.
// With a resolved space these are exact hash lookups; dynamic approaches
// would have to re-check constraints per candidate.
//
// The SubSpace overloads answer the same queries inside a tune-time
// restriction: neighbourhoods are defined over the view's own present
// values and membership, and rows are the view's local ids — so an
// optimizer sees a restricted view exactly as it would see a space built
// with the restriction as a constraint.

#include <cstddef>
#include <vector>

#include "tunespace/searchspace/searchspace.hpp"
#include "tunespace/searchspace/view.hpp"

namespace tunespace::searchspace {

/// Neighbourhood definitions supported by neighbors_of().
enum class NeighborMethod {
  Hamming1,        ///< differ in exactly one parameter, any other value
  Adjacent,        ///< differ in exactly one parameter by one position in the
                   ///< parameter's present-value order (|64 -> {32,128}|)
  StrictlyAdjacent ///< like Adjacent but over the full declared value order
};

/// Row ids of all valid neighbours of `row` under `method`.
std::vector<std::size_t> neighbors_of(const SearchSpace& space, std::size_t row,
                                      NeighborMethod method = NeighborMethod::Hamming1);
/// View overload: neighbours within the view, as local row ids.
std::vector<std::size_t> neighbors_of(const SubSpace& view, std::size_t row,
                                      NeighborMethod method = NeighborMethod::Hamming1);

/// Row ids of valid configurations at Hamming distance <= `max_distance`
/// from `row` (excluding `row` itself).  Exponential in max_distance; meant
/// for small distances (1-3) as used by genetic-algorithm mutation.
std::vector<std::size_t> neighbors_within_hamming(const SearchSpace& space,
                                                  std::size_t row,
                                                  std::size_t max_distance);
/// View overload (local row ids, view membership).
std::vector<std::size_t> neighbors_within_hamming(const SubSpace& view,
                                                  std::size_t row,
                                                  std::size_t max_distance);

/// Precomputed Hamming-1 adjacency for repeated queries ("can be indexed
/// before running the algorithm", §4.4).
class NeighborIndex {
 public:
  NeighborIndex(const SearchSpace& space, NeighborMethod method);
  /// Adjacency of a view, in local row ids.
  NeighborIndex(const SubSpace& view, NeighborMethod method);

  const std::vector<std::size_t>& neighbors(std::size_t row) const {
    return lists_[row];
  }
  std::size_t total_edges() const;

 private:
  std::vector<std::vector<std::size_t>> lists_;
};

}  // namespace tunespace::searchspace
