#pragma once
// Neighbour queries over a resolved SearchSpace (§4.4).
//
// Optimization algorithms (genetic mutation, hill climbing, simulated
// annealing) repeatedly ask for the *valid* neighbours of a configuration.
// With a resolved space these are exact hash lookups; dynamic approaches
// would have to re-check constraints per candidate.

#include <cstddef>
#include <vector>

#include "tunespace/searchspace/searchspace.hpp"

namespace tunespace::searchspace {

/// Neighbourhood definitions supported by neighbors_of().
enum class NeighborMethod {
  Hamming1,        ///< differ in exactly one parameter, any other value
  Adjacent,        ///< differ in exactly one parameter by one position in the
                   ///< parameter's present-value order (|64 -> {32,128}|)
  StrictlyAdjacent ///< like Adjacent but over the full declared value order
};

/// Row ids of all valid neighbours of `row` under `method`.
std::vector<std::size_t> neighbors_of(const SearchSpace& space, std::size_t row,
                                      NeighborMethod method = NeighborMethod::Hamming1);

/// Row ids of valid configurations at Hamming distance <= `max_distance`
/// from `row` (excluding `row` itself).  Exponential in max_distance; meant
/// for small distances (1-3) as used by genetic-algorithm mutation.
std::vector<std::size_t> neighbors_within_hamming(const SearchSpace& space,
                                                  std::size_t row,
                                                  std::size_t max_distance);

/// Precomputed Hamming-1 adjacency for repeated queries ("can be indexed
/// before running the algorithm", §4.4).
class NeighborIndex {
 public:
  NeighborIndex(const SearchSpace& space, NeighborMethod method);

  const std::vector<std::size_t>& neighbors(std::size_t row) const {
    return lists_[row];
  }
  std::size_t total_edges() const;

 private:
  std::vector<std::vector<std::size_t>> lists_;
};

}  // namespace tunespace::searchspace
