#pragma once
// Umbrella header: includes the entire tunespace public API.
//
// Fine-grained headers remain available under tunespace/<subsystem>/ for
// compile-time-conscious consumers; this header is the convenient default
// for applications.

// Dynamic values, domains, constraints, problems (the CSP layer).
#include "tunespace/csp/builtin_constraints.hpp"
#include "tunespace/csp/constraint.hpp"
#include "tunespace/csp/domain.hpp"
#include "tunespace/csp/lambda_constraint.hpp"
#include "tunespace/csp/problem.hpp"
#include "tunespace/csp/value.hpp"

// Constraint expression language (parse, evaluate, compile, optimize).
#include "tunespace/expr/analysis.hpp"
#include "tunespace/expr/ast.hpp"
#include "tunespace/expr/bytecode.hpp"
#include "tunespace/expr/compiler.hpp"
#include "tunespace/expr/function_constraint.hpp"
#include "tunespace/expr/interpreter.hpp"
#include "tunespace/expr/lexer.hpp"
#include "tunespace/expr/parser.hpp"
#include "tunespace/expr/recognizer.hpp"

// Construction methods.
#include "tunespace/solver/blocking_enumerator.hpp"
#include "tunespace/solver/brute_force.hpp"
#include "tunespace/solver/chain_of_trees.hpp"
#include "tunespace/solver/optimized_backtracking.hpp"
#include "tunespace/solver/original_backtracking.hpp"
#include "tunespace/solver/parallel_backtracking.hpp"
#include "tunespace/solver/solution_iterator.hpp"
#include "tunespace/solver/solver.hpp"
#include "tunespace/solver/validate.hpp"

// Resolved search spaces: lookup, bounds, neighbours, sampling, I/O,
// predicate-filtered views.
#include "tunespace/searchspace/io.hpp"
#include "tunespace/searchspace/neighbors.hpp"
#include "tunespace/searchspace/query.hpp"
#include "tunespace/searchspace/sampling.hpp"
#include "tunespace/searchspace/searchspace.hpp"
#include "tunespace/searchspace/view.hpp"

// Auto-tuning layer: specs, pipelines, optimizers, simulated kernels.
#include "tunespace/tuner/kernels.hpp"
#include "tunespace/tuner/optimizers.hpp"
#include "tunespace/tuner/pipeline.hpp"
#include "tunespace/tuner/runner.hpp"
#include "tunespace/tuner/tuning_problem.hpp"

// Tuning as a service: concurrent sessions, the ask/tell service front end
// and its wire protocol (client and server).
#include "tunespace/tuner/api.hpp"
#include "tunespace/tuner/protocol.hpp"
#include "tunespace/tuner/server.hpp"
#include "tunespace/tuner/service.hpp"
#include "tunespace/tuner/service_client.hpp"
#include "tunespace/tuner/session.hpp"

// Evaluation workloads (Table 2 spaces, synthetic suite).
#include "tunespace/spaces/realworld.hpp"
#include "tunespace/spaces/synthetic.hpp"

// Utilities.
#include "tunespace/util/rng.hpp"
#include "tunespace/util/stats.hpp"
#include "tunespace/util/table.hpp"
#include "tunespace/util/timer.hpp"
