#pragma once
// ParallelBacktracking: work-stealing multi-threaded variant of the
// optimized solver.
//
// The search tree is split at a configurable prefix depth D: a sequential
// *prefix expansion* enumerates every valid assignment of the first D search
// positions (charging exactly the effort the sequential search spends on the
// top D levels), and each valid prefix becomes one task — the subtree below
// it.  Tasks are distributed over per-worker deques; idle workers steal the
// back half of a victim's oldest task range, so skewed subtrees split
// adaptively instead of serializing the tail (see work_stealing.hpp).
//
// Every worker appends solutions into its own sharded SolutionSet (no shared
// append lock) and records one (prefix-rank, begin, count) segment per task;
// segments are merged by rank afterwards, so the output is byte-identical to
// the sequential solver's enumeration order, and the summed effort counters
// (nodes / checks / prunes) equal a sequential run exactly.

#include <cstddef>

#include "tunespace/solver/optimized_backtracking.hpp"
#include "tunespace/solver/solver.hpp"

namespace tunespace::solver {

/// Multi-threaded optimized backtracking.
class ParallelBacktracking : public Solver {
 public:
  /// `threads` = 0 uses the hardware concurrency.
  explicit ParallelBacktracking(std::size_t threads = 0,
                                OptimizedOptions options = {})
      : options_(options) {
    parallel_.threads = threads;
  }

  /// Full control over threads, split depth and steal policy.
  explicit ParallelBacktracking(SolverOptions parallel,
                                OptimizedOptions options = {})
      : parallel_(parallel), options_(options) {}

  std::string name() const override { return "optimized-parallel"; }
  SolveResult solve(csp::Problem& problem) const override;

  std::size_t threads() const { return parallel_.threads; }
  const SolverOptions& parallel_options() const { return parallel_; }

 private:
  SolverOptions parallel_;
  OptimizedOptions options_;
};

}  // namespace tunespace::solver
