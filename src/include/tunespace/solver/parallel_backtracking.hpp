#pragma once
// ParallelBacktracking: multi-threaded variant of the optimized solver.
//
// The paper lists parallel construction as an engineering avenue; this
// implementation embarrassingly parallelizes the search by partitioning the
// first search variable's (preprocessed) domain into contiguous chunks, one
// resumable engine per worker thread.  Preprocessing, variable ordering and
// constraint preparation run once, sequentially; the per-thread engines then
// share the read-only plan (constraints are stateless during search), and
// per-thread SolutionSets are concatenated in chunk order, so the output
// ordering is identical to the sequential solver and fully deterministic.

#include <cstddef>

#include "tunespace/solver/optimized_backtracking.hpp"
#include "tunespace/solver/solver.hpp"

namespace tunespace::solver {

/// Multi-threaded optimized backtracking.
class ParallelBacktracking : public Solver {
 public:
  /// `threads` = 0 uses the hardware concurrency.
  explicit ParallelBacktracking(std::size_t threads = 0,
                                OptimizedOptions options = {})
      : threads_(threads), options_(options) {}

  std::string name() const override { return "optimized-parallel"; }
  SolveResult solve(csp::Problem& problem) const override;

  std::size_t threads() const { return threads_; }

 private:
  std::size_t threads_;
  OptimizedOptions options_;
};

}  // namespace tunespace::solver
