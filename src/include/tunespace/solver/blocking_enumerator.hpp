#pragma once
// Blocking-clause enumerator: models SMT-style all-solutions enumeration
// (PySMT + Z3 in the paper's Fig. 4).
//
// SAT/SMT solvers answer "is there A solution"; to enumerate all solutions
// one must repeatedly solve, then add the found model as a blocking clause
// (the negation of the assignment) and solve again until UNSAT (§4.1).
// The accumulated clause set grows linearly with the number of solutions,
// and every candidate model must be checked against it, which is what gives
// the approach its superlinear total cost.
//
// This implementation performs a single backtracking sweep to find models
// one at a time; before accepting each model it scans the full list of
// previously added blocking clauses (with early-exit comparison, the cheap
// watched-literal analogue).  The clause bookkeeping cost is therefore
// Theta(k) per model with k clauses accumulated — the same asymptotics as
// the incremental SMT loop — while the search itself stays complete and
// non-revisiting.

#include "tunespace/solver/solver.hpp"

namespace tunespace::solver {

/// SMT-style enumerate-all-solutions baseline.
class BlockingEnumerator : public Solver {
 public:
  std::string name() const override { return "blocking-smt"; }
  SolveResult solve(csp::Problem& problem) const override;
};

}  // namespace tunespace::solver
