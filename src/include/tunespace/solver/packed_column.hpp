#pragma once
// PackedColumn: a bit-packed vector of uint32 domain-value indices.
//
// The solution store keeps one column per tunable parameter; a parameter
// whose domain has m values only needs ceil(log2(m)) bits per entry, so
// packing the columns drops the resolved-space memory footprint several-fold
// versus the previous vector<uint32_t>-per-column layout (a typical tuning
// parameter has 2-32 values, i.e. 1-5 bits instead of 32).
//
// A column either owns its 64-bit words or borrows them from a loaded
// snapshot buffer (the zero-copy reload path in searchspace/io); mutating a
// borrowed column first detaches it into owned storage.  Bits at positions
// >= size()*bits() are always zero, so equal-width columns compare and
// serialize word-by-word.

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace tunespace::solver {

class PackedColumn {
 public:
  /// An unpacked column (32 bits per entry) — the layout used when domain
  /// sizes are unknown at construction time.
  PackedColumn() = default;

  /// A column storing `bits` bits per entry (0 <= bits <= 32; width 0 means
  /// every entry is the single value 0 and no storage is allocated).
  explicit PackedColumn(unsigned bits) : bits_(bits), mask_(mask_for(bits)) {
    assert(bits <= 32);
  }

  /// Bits needed to index a domain of `domain_size` values.
  static unsigned bits_for_domain(std::size_t domain_size);

  /// A column viewing `size` entries in `words` without copying; `keepalive`
  /// owns the underlying buffer (snapshot zero-copy reload path).
  static PackedColumn borrowed(unsigned bits, std::size_t size,
                               const std::uint64_t* words,
                               std::shared_ptr<const void> keepalive);

  unsigned bits() const { return bits_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool is_borrowed() const { return borrowed_ != nullptr; }

  /// Number of 64-bit words backing the column.
  std::size_t word_count() const { return words_needed(size_); }
  /// The backing words (owned or borrowed); null only when word_count() == 0.
  const std::uint64_t* words() const { return data(); }
  /// Heap bytes held by this column (0 when borrowed from a snapshot).
  std::size_t memory_bytes() const {
    return owned_.capacity() * sizeof(std::uint64_t);
  }

  std::uint32_t get(std::size_t i) const {
    assert(i < size_);
    if (bits_ == 0) return 0;
    const std::uint64_t bit = static_cast<std::uint64_t>(i) * bits_;
    const std::uint64_t* w = data() + (bit >> 6);
    const unsigned off = static_cast<unsigned>(bit & 63);
    std::uint64_t v = *w >> off;
    if (off + bits_ > 64) v |= w[1] << (64 - off);
    return static_cast<std::uint32_t>(v & mask_);
  }

  /// Append one entry; `v` must fit in bits().
  void push_back(std::uint32_t v);

  /// Append `count` entries of `other` starting at `begin`.  Equal-width
  /// appends run as a word-level bit blit (the parallel-merge hot path).
  void append(const PackedColumn& other, std::size_t begin, std::size_t count);

  /// Logical element-wise equality (the widths may differ).
  bool operator==(const PackedColumn& o) const;
  bool operator!=(const PackedColumn& o) const { return !(*this == o); }

 private:
  static std::uint32_t mask_for(unsigned bits) {
    return bits >= 32 ? 0xFFFFFFFFu : (1u << bits) - 1u;
  }
  std::size_t words_needed(std::size_t entries) const {
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(entries) * bits_ + 63) >> 6);
  }
  const std::uint64_t* data() const {
    return borrowed_ ? borrowed_ : owned_.data();
  }
  void detach();  // borrowed -> owned copy, enabling mutation
  void grow_to_words(std::size_t need);
  void append_bits(const std::uint64_t* src, std::uint64_t src_bit,
                   std::uint64_t nbits);

  unsigned bits_ = 32;
  std::uint32_t mask_ = 0xFFFFFFFFu;
  std::size_t size_ = 0;
  std::vector<std::uint64_t> owned_;
  const std::uint64_t* borrowed_ = nullptr;
  std::shared_ptr<const void> keepalive_;
};

}  // namespace tunespace::solver
