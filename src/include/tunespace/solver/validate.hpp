#pragma once
// Cross-solver validation (the paper validates every solver's result against
// a brute-force solution of each search space).

#include <string>
#include <vector>

#include "tunespace/solver/solver.hpp"

namespace tunespace::solver {

/// Result of validating one solver against a reference solution set.
struct ValidationReport {
  std::string solver_name;
  bool matches = false;
  std::size_t solver_count = 0;
  std::size_t reference_count = 0;
};

/// Compare a solver's solutions against a reference (typically brute force).
ValidationReport validate_against(const Solver& solver, csp::Problem& problem,
                                  const SolutionSet& reference);

/// Construct the registry of all construction methods the evaluation uses,
/// in the paper's presentation order: optimized, original, brute-force,
/// chain-of-trees ("ATF"), and optionally blocking-smt.
///
/// Note the ATF-vs-pyATF distinction is carried by the constraint pipeline
/// of the Problem being solved (compiled vs interpreted), not the solver
/// object; see tuner/pipeline.hpp.
std::vector<SolverPtr> all_solvers(bool include_blocking = false);

}  // namespace tunespace::solver
