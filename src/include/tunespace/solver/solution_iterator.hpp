#pragma once
// SolutionIterator: lazy, resumable enumeration of a problem's solutions
// (the analogue of python-constraint's getSolutionIter).
//
// Useful when a consumer wants to stream solutions without materializing the
// full space — e.g. early-exit existence checks, first-k sampling, or
// feeding a pipeline.  The iterator owns its search plan; the Problem must
// outlive the iterator (constraints are referenced, not copied).

#include <memory>
#include <optional>
#include <vector>

#include "tunespace/csp/problem.hpp"
#include "tunespace/solver/optimized_backtracking.hpp"

namespace tunespace::solver {

/// Lazy enumeration of all solutions under the optimized search strategy.
class SolutionIterator {
 public:
  explicit SolutionIterator(csp::Problem& problem, OptimizedOptions options = {});
  ~SolutionIterator();
  SolutionIterator(SolutionIterator&&) noexcept;
  SolutionIterator& operator=(SolutionIterator&&) noexcept;

  /// Next solution as original-domain value indices (variable order), or
  /// nullopt when exhausted.
  std::optional<std::vector<std::uint32_t>> next();

  /// Next solution materialized as a Config, or nullopt when exhausted.
  std::optional<csp::Config> next_config();

  /// Solutions yielded so far.
  std::size_t count() const { return count_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  const csp::Problem* problem_;
  std::size_t count_ = 0;
};

}  // namespace tunespace::solver
