#pragma once
// Brute-force construction: iterate the full Cartesian product and filter
// by evaluating every constraint on every combination (paper §3).
//
// Constraints are evaluated in declaration order with early exit on the
// first violation, which is the cost model behind Table 2's "average number
// of constraint evaluations" column.

#include "tunespace/solver/solver.hpp"

namespace tunespace::solver {

/// Exhaustive odometer over the Cartesian product.
class BruteForce : public Solver {
 public:
  std::string name() const override { return "brute-force"; }
  SolveResult solve(csp::Problem& problem) const override;
};

}  // namespace tunespace::solver
