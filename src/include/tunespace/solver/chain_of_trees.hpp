#pragma once
// Chain-of-trees construction (Rasch et al., the ATF / pyATF / KTT / BaCO
// method the paper compares against).
//
// Method (paper §1/§3): parameters are grouped by interdependence — two
// parameters belong to the same group if they co-occur in any constraint's
// scope (transitively; computed with a union-find over constraint scopes).
// For each group a search tree over the group's parameters (in declaration
// order, matching ATF's "constraints only reference previously defined
// parameters" convention) encodes all valid intra-group combinations; a
// constraint is checked at the tree depth where its scope completes.  The
// trees are then linked into a chain: the full search space is the cross
// product of the per-group valid combinations, which this implementation
// materializes into the common SolutionSet representation.
//
// The tree is built with explicit heap nodes (parent/child links) to model
// the allocation behaviour of the real data structure; this is what makes
// the method shine on very sparse spaces (tiny trees) and lag on dense ones
// (the tree degenerates into the full product, as Fig. 3 shows for pyATF).
//
// The ATF-vs-pyATF performance split is modelled by the evaluation mode of
// the constraints in the Problem (compiled specific constraints vs
// interpreted Function constraints); see tuner/pipeline.hpp.

#include "tunespace/solver/solver.hpp"

namespace tunespace::solver {

/// Chain-of-trees solver.
class ChainOfTrees : public Solver {
 public:
  /// `display_name` lets benchmarks register the same algorithm twice
  /// ("ATF" with compiled constraints, "pyATF" with interpreted ones).
  ///
  /// `model_interpreter_overhead` reproduces the Python-implementation data
  /// flow of pyATF: the tree descent threads a name-keyed configuration
  /// dictionary through every node (rebuilt per visited node, as the Python
  /// version does with its per-node dict handling), instead of touching a
  /// dense value array.  Combined with interpreted constraint evaluation
  /// this models the ATF-vs-pyATF performance split of Figs. 3 and 5.
  explicit ChainOfTrees(std::string display_name = "chain-of-trees",
                        bool model_interpreter_overhead = false)
      : name_(std::move(display_name)),
        interpreter_overhead_(model_interpreter_overhead ||
                              name_ == "pyATF") {}

  std::string name() const override { return name_; }
  SolveResult solve(csp::Problem& problem) const override;

  /// Enable multi-threaded construction: per-root-subtree tree-build tasks
  /// and chunked cross-product materialization, both distributed through the
  /// work-stealing scheduler.  Off by default so the ATF/pyATF baseline
  /// benchmarks keep modelling the sequential originals.  Ignored in
  /// interpreter-overhead (pyATF) mode, whose per-node configuration
  /// dictionary data flow is inherently sequential.  Solution order is
  /// identical to the sequential construction, and so are the effort
  /// counters for satisfiable chains; when some group is unsatisfiable the
  /// sequential build stops early while the parallel build has already
  /// visited the remaining groups, so counters may exceed the sequential
  /// ones (the result is still identical: empty).
  ChainOfTrees& set_parallel(SolverOptions options) {
    parallel_ = options;
    parallel_enabled_ = true;
    return *this;
  }

  /// Per-group statistics from the last tree build (exposed for tests and
  /// the ablation bench).
  struct GroupInfo {
    std::vector<std::size_t> variables;  ///< global indices, declaration order
    std::size_t tree_nodes = 0;          ///< nodes in the group's tree
    std::size_t combinations = 0;        ///< valid leaf count
  };

  /// Compute interdependence groups for a problem (also used by tests).
  static std::vector<std::vector<std::size_t>> interdependence_groups(
      const csp::Problem& problem);

 private:
  std::string name_;
  bool interpreter_overhead_;
  SolverOptions parallel_;
  bool parallel_enabled_ = false;
};

}  // namespace tunespace::solver
