#pragma once
// The paper's optimized all-solutions backtracking solver (Alg. 1 + §4.3).
//
// Optimizations over the original baseline:
//   * domains are preprocessed to a fixpoint using the specific constraints'
//     pruning rules before search (§4.3.2);
//   * variables are sorted once, by descending constraint participation
//     (ties: ascending domain size), instead of re-sorted per node (§4.3.1);
//   * constraints are dispatched from per-position tables: a constraint is
//     fully checked exactly when its last scope variable (in search order)
//     is assigned, and partial-capable constraints are additionally checked
//     at every earlier scope variable (§4.3.1/§4.3.2);
//   * the search loop is iterative (explicit position/value counters), not
//     recursive (§4.3.1);
//   * solutions are emitted straight into the column-major SolutionSet with
//     original-domain indices, avoiding output rearrangement (§4.3.4).
//
// The class also exposes a resumable iterator used by the blocking-clause
// enumerator and by tests.

#include "tunespace/solver/solver.hpp"

namespace tunespace::solver {

/// Feature toggles, used by the ablation benchmark (bench_ablation) to
/// attribute speedup to individual optimizations.
struct OptimizedOptions {
  bool preprocess = true;        ///< domain pruning before search
  bool sort_variables = true;    ///< constraint-count variable ordering
  bool partial_checks = true;    ///< early consistency checks
  bool int_fast_path = true;     ///< typed int64 evaluation for int-only scopes
  bool block_eval = true;        ///< lane-group candidate sweeps over the fast path
};

/// Optimized backtracking solver.
class OptimizedBacktracking : public Solver {
 public:
  OptimizedBacktracking() = default;
  explicit OptimizedBacktracking(OptimizedOptions options) : options_(options) {}

  std::string name() const override { return "optimized"; }
  SolveResult solve(csp::Problem& problem) const override;

  const OptimizedOptions& options() const { return options_; }

 private:
  OptimizedOptions options_;
};

}  // namespace tunespace::solver
