#pragma once
// The "original" baseline: a faithful C++ transliteration of vanilla
// python-constraint's recursive BacktrackingSolver, before the paper's
// optimizations (§4.3).  Its characteristic inefficiencies are kept:
//
//   * the candidate-variable list is rebuilt and re-sorted at *every* search
//     node (python-constraint sorts by most-constraints/smallest-domain on
//     each getSolutionIter step — the paper explicitly calls out "reducing
//     the number of sorts required" as one of its optimizations);
//   * the current assignment lives in a name-keyed hash map (the python
//     dict analogue) and constraint evaluation goes through it;
//   * no domain preprocessing and no specific-constraint partial pruning:
//     a constraint is only evaluated once all its variables are assigned;
//   * recursion instead of an iterative loop.
//
// Combined with the interpreted FunctionConstraints that the unoptimized
// pipeline produces, this models the "original" series of Figs. 3 and 5.

#include "tunespace/solver/solver.hpp"

namespace tunespace::solver {

/// Unoptimized recursive backtracking solver (vanilla python-constraint).
class OriginalBacktracking : public Solver {
 public:
  std::string name() const override { return "original"; }
  SolveResult solve(csp::Problem& problem) const override;
};

}  // namespace tunespace::solver
