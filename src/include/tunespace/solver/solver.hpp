#pragma once
// Solver interface and solution storage.
//
// All five construction methods (optimized backtracking, original
// backtracking, brute force, chain-of-trees, blocking enumerator) implement
// Solver and produce a SolutionSet: the fully-resolved search space.
//
// Solutions are stored column-major as indices into the Problem's original
// domains (uint32 per parameter), which is both the memory-efficient
// representation the SearchSpace layer wants (§4.3.4 "output formats close
// to the internal representation") and a canonical encoding that makes
// cross-solver validation an exact set comparison.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tunespace/csp/problem.hpp"

namespace tunespace::solver {

/// Search effort counters reported by each solver.
struct SolveStats {
  std::uint64_t nodes = 0;              ///< partial assignments attempted
  std::uint64_t constraint_checks = 0;  ///< constraint evaluations (all tiers)
  std::uint64_t fast_checks = 0;        ///< subset taken through the int64 fast path
  std::uint64_t prunes = 0;             ///< rejections before full assignment
  double preprocess_seconds = 0.0;      ///< domain preprocessing time
  double search_seconds = 0.0;          ///< enumeration time
  double total_seconds() const { return preprocess_seconds + search_seconds; }
};

/// Column-major store of all valid configurations.
class SolutionSet {
 public:
  SolutionSet() = default;
  explicit SolutionSet(std::size_t num_vars) : columns_(num_vars) {}

  std::size_t num_vars() const { return columns_.size(); }
  std::size_t size() const { return columns_.empty() ? 0 : columns_[0].size(); }
  bool empty() const { return size() == 0; }

  /// Append one solution given per-variable domain value indices.
  void append(const std::uint32_t* value_indices) {
    for (std::size_t v = 0; v < columns_.size(); ++v) {
      columns_[v].push_back(value_indices[v]);
    }
  }

  /// Append all solutions of another set (column-wise bulk copy; used by
  /// the parallel solver to merge per-thread results cheaply).
  void append_all(const SolutionSet& other) {
    for (std::size_t v = 0; v < columns_.size(); ++v) {
      columns_[v].insert(columns_[v].end(), other.columns_[v].begin(),
                         other.columns_[v].end());
    }
  }

  /// Domain value index of variable `var` in solution `row`.
  std::uint32_t value_index(std::size_t row, std::size_t var) const {
    return columns_[var][row];
  }

  /// Direct access to one variable's column.
  const std::vector<std::uint32_t>& column(std::size_t var) const {
    return columns_[var];
  }

  /// Materialize one solution as a Config using the problem's domains.
  csp::Config config(std::size_t row, const csp::Problem& problem) const;

  /// Materialize one solution's index row.
  std::vector<std::uint32_t> index_row(std::size_t row) const;

  /// Rows sorted lexicographically — the canonical form used to compare
  /// solvers that enumerate in different orders.
  std::vector<std::vector<std::uint32_t>> sorted_rows() const;

  /// Set equality against another SolutionSet (order-insensitive).
  bool same_solutions(const SolutionSet& other) const;

 private:
  std::vector<std::vector<std::uint32_t>> columns_;
};

/// Result of a full construction.
struct SolveResult {
  SolutionSet solutions;
  SolveStats stats;
};

/// A search-space construction method.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Display name used in benchmark output ("optimized", "brute-force", ...).
  virtual std::string name() const = 0;

  /// Enumerate every valid configuration.  The problem's domains are not
  /// modified (solvers preprocess copies), but constraints may cache
  /// prepared bounds, so a single Problem must not be solved concurrently.
  virtual SolveResult solve(csp::Problem& problem) const = 0;
};

using SolverPtr = std::unique_ptr<Solver>;

}  // namespace tunespace::solver
