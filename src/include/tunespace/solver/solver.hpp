#pragma once
// Solver interface and solution storage.
//
// All five construction methods (optimized backtracking, original
// backtracking, brute force, chain-of-trees, blocking enumerator) implement
// Solver and produce a SolutionSet: the fully-resolved search space.
//
// Solutions are stored column-major as indices into the Problem's original
// domains, bit-packed to ceil(log2(domain_size)) bits per parameter, which
// is both the memory-efficient representation the SearchSpace layer wants
// (§4.3.4 "output formats close to the internal representation") and a
// canonical encoding that makes cross-solver validation an exact set
// comparison.

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "tunespace/csp/problem.hpp"
#include "tunespace/solver/packed_column.hpp"

namespace tunespace::solver {

/// Search effort counters reported by each solver.
struct SolveStats {
  std::uint64_t nodes = 0;              ///< partial assignments attempted
  std::uint64_t constraint_checks = 0;  ///< constraint evaluations (all tiers)
  std::uint64_t fast_checks = 0;        ///< subset taken through the int64 fast path
  std::uint64_t prunes = 0;             ///< rejections before full assignment
  std::uint64_t block_checks = 0;       ///< block-tier constraint dispatches
  std::uint64_t block_lanes = 0;        ///< candidate lanes covered by those dispatches
  std::uint64_t parallel_tasks = 0;     ///< work-stealing tasks executed (0 = sequential)
  std::uint32_t parallel_workers = 0;   ///< worker threads used (0 = sequential)
  double preprocess_seconds = 0.0;      ///< domain preprocessing time
  double search_seconds = 0.0;          ///< enumeration time
  double total_seconds() const { return preprocess_seconds + search_seconds; }
};

/// How an idle worker picks steal victims when its own deque runs dry.
enum class StealPolicy {
  kSequential,  ///< scan victims round-robin starting at worker id + 1
  kRandom,      ///< per-worker deterministic xorshift victim order
};

/// Execution options shared by the parallel construction engines
/// (ParallelBacktracking, parallel ChainOfTrees, SearchSpace).  Neither the
/// solution order nor the effort counters depend on any of these knobs; they
/// only steer how the deterministic result is computed.
struct SolverOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  std::size_t threads = 0;
  /// Assignment-prefix length used to split the search tree into tasks;
  /// 0 = auto (grow until ~tasks_per_thread tasks per worker exist).
  std::size_t split_depth = 0;
  /// Auto split-depth granularity target (tasks per worker).
  std::size_t tasks_per_thread = 8;
  /// Victim-selection policy for work stealing.
  StealPolicy steal = StealPolicy::kRandom;

  /// Worker count after applying the hardware-concurrency default (>= 1);
  /// the single resolution point shared by every parallel engine.
  std::size_t resolve_threads() const {
    std::size_t workers = threads ? threads : std::thread::hardware_concurrency();
    return workers ? workers : 1;
  }
};

/// Column-major bit-packed store of all valid configurations.
class SolutionSet {
 public:
  SolutionSet() = default;
  /// Unpacked columns (32 bits per value); used by scratch sets whose domain
  /// sizes are unknown at construction time.
  explicit SolutionSet(std::size_t num_vars) : columns_(num_vars) {}
  /// Bit-packed columns sized from the problem's original domains: variable
  /// `v` stores ceil(log2(|domain(v)|)) bits per value.
  explicit SolutionSet(const csp::Problem& problem);
  /// Adopt prebuilt columns (the snapshot zero-copy reload path).
  explicit SolutionSet(std::vector<PackedColumn> columns)
      : columns_(std::move(columns)) {}

  std::size_t num_vars() const { return columns_.size(); }
  std::size_t size() const { return columns_.empty() ? 0 : columns_[0].size(); }
  bool empty() const { return size() == 0; }

  /// Append one solution given per-variable domain value indices.
  void append(const std::uint32_t* value_indices) {
    for (std::size_t v = 0; v < columns_.size(); ++v) {
      columns_[v].push_back(value_indices[v]);
    }
  }

  /// Append all solutions of another set (column-wise bulk bit copy; used by
  /// the parallel solver to merge per-thread results cheaply).
  void append_all(const SolutionSet& other) {
    append_range(other, 0, other.size());
  }

  /// Append `count` solutions of another set starting at row `begin`.  The
  /// parallel solvers use this to stitch rank-tagged segments of per-worker
  /// shards back into the canonical sequential enumeration order.
  void append_range(const SolutionSet& other, std::size_t begin,
                    std::size_t count) {
    for (std::size_t v = 0; v < columns_.size(); ++v) {
      columns_[v].append(other.columns_[v], begin, count);
    }
  }

  /// Domain value index of variable `var` in solution `row`.
  std::uint32_t value_index(std::size_t row, std::size_t var) const {
    return columns_[var].get(row);
  }

  /// Direct access to one variable's packed column.
  const PackedColumn& column(std::size_t var) const { return columns_[var]; }

  /// Heap bytes held by the packed columns.
  std::size_t memory_bytes() const;

  /// Materialize one solution as a Config using the problem's domains.
  csp::Config config(std::size_t row, const csp::Problem& problem) const;

  /// Materialize one solution's index row.
  std::vector<std::uint32_t> index_row(std::size_t row) const;

  /// Rows sorted lexicographically — the canonical form used to compare
  /// solvers that enumerate in different orders.
  std::vector<std::vector<std::uint32_t>> sorted_rows() const;

  /// Set equality against another SolutionSet (order-insensitive).
  bool same_solutions(const SolutionSet& other) const;

 private:
  std::vector<PackedColumn> columns_;
};

/// Result of a full construction.
struct SolveResult {
  SolutionSet solutions;
  SolveStats stats;
};

/// A search-space construction method.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Display name used in benchmark output ("optimized", "brute-force", ...).
  virtual std::string name() const = 0;

  /// Enumerate every valid configuration.  The problem's domains are not
  /// modified (solvers preprocess copies), but constraints may cache
  /// prepared bounds, so a single Problem must not be solved concurrently.
  virtual SolveResult solve(csp::Problem& problem) const = 0;
};

using SolverPtr = std::unique_ptr<Solver>;

}  // namespace tunespace::solver
