#pragma once
// Deterministic pseudo-random number generation for tunespace.
//
// All randomized components of the library (synthetic space generation,
// sampling, optimizers) draw from this generator so that every experiment in
// the repository is exactly reproducible from a seed.  The implementation is
// xoshiro256** by Blackman & Vigna, seeded through splitmix64, which is both
// faster and statistically stronger than std::mt19937 while having a trivial,
// allocation-free state.

#include <cstdint>
#include <vector>

namespace tunespace::util {

/// Fold `v` into hash state `h` (splitmix64 finalizer over a boost-style
/// combine).  The one mixing function shared by the row-hash tables, the
/// performance-model jitter and the evaluation-cache keys — callers rely on
/// it never changing silently, so tweak it nowhere or everywhere.
inline std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
  return h ^ (h >> 27);
}

/// xoshiro256** PRNG with splitmix64 seeding.
/// Satisfies the C++ UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Construct from a 64-bit seed; the default seed is arbitrary but fixed.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-initialize the state from a seed via splitmix64 expansion.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next raw 64-bit output.
  std::uint64_t operator()();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniform real in [0, 1).
  double uniform();

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal variate (Box-Muller, no cached spare for simplicity).
  double normal();

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Fisher-Yates shuffle of a vector in place.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Choose k distinct indices out of n (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Derive an independent child generator (for parallel / per-item streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace tunespace::util
