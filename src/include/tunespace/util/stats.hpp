#pragma once
// Small statistics toolkit backing the evaluation harnesses.
//
// The paper's figures report log-log regression slopes (scaling exponents),
// kernel density estimates of construction-time distributions, and quantile
// summaries; this header provides exactly those primitives.

#include <cstddef>
#include <vector>

namespace tunespace::util {

/// Result of an ordinary least-squares fit y = intercept + slope * x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;       ///< coefficient of determination
  double p_value = 1.0;  ///< two-sided p-value for slope != 0 (t-test)
  std::size_t n = 0;
};

/// OLS fit of y against x. Requires x.size() == y.size() >= 2.
LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y);

/// OLS fit of log10(y) against log10(x); inputs must be positive.
/// The slope is the power-law scaling exponent reported in Figs. 3A/4/5.
LinearFit loglog_fit(const std::vector<double>& x, const std::vector<double>& y);

/// Arithmetic mean; 0 for empty input.
double mean(const std::vector<double>& v);

/// Sample standard deviation (n-1 denominator); 0 if n < 2.
double stddev(const std::vector<double>& v);

/// Linear-interpolated quantile, q in [0,1]. Requires non-empty input.
double quantile(std::vector<double> v, double q);

/// Median (quantile 0.5).
double median(const std::vector<double>& v);

/// Gaussian kernel density estimate evaluated on a regular grid.
struct Kde {
  std::vector<double> grid;     ///< evaluation points
  std::vector<double> density;  ///< estimated density at each grid point
  double bandwidth = 0.0;       ///< Silverman's rule-of-thumb bandwidth
};

/// KDE with Silverman bandwidth over [min - pad, max + pad].
/// Used to print the Fig. 3B / Fig. 5C density summaries.
Kde kde(const std::vector<double>& samples, std::size_t grid_points = 64);

/// Five-number summary plus mean, handy for text reporting of distributions.
struct Summary {
  double min = 0, q25 = 0, median = 0, q75 = 0, max = 0, mean = 0;
  std::size_t n = 0;
};

/// Compute the summary of a sample. Requires non-empty input.
Summary summarize(const std::vector<double>& v);

}  // namespace tunespace::util
