#pragma once
// Wall-clock and virtual timers.
//
// WallTimer measures real elapsed time for the construction benchmarks.
// VirtualClock models the auto-tuning timeline of Figs. 6/7: the (measured)
// search-space construction latency is charged to the clock first, and each
// simulated kernel evaluation then advances it by the kernel's simulated
// runtime, so an entire "30 minute" tuning session replays in milliseconds.

#include <chrono>
#include <cstdint>

namespace tunespace::util {

/// High-resolution wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { reset(); }

  /// Restart the stopwatch.
  void reset() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Deterministic simulated clock used by the tuning runner.
class VirtualClock {
 public:
  /// Current simulated time in seconds.
  double now() const { return now_; }

  /// Advance the clock by `seconds` (must be non-negative).
  void advance(double seconds) { now_ += seconds; }

  /// Reset to time zero.
  void reset() { now_ = 0.0; }

 private:
  double now_ = 0.0;
};

}  // namespace tunespace::util
