#pragma once
// ASCII table and CSV emitters used by the benchmark harnesses to print the
// paper's tables and figure data series in a diff-friendly format.

#include <iosfwd>
#include <string>
#include <vector>

namespace tunespace::util {

/// Column-aligned text table with an optional title; renders like:
///
///   | name | value |
///   |------|-------|
///   | foo  |   1.2 |
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; missing cells render empty, extra cells are an error.
  void add_row(std::vector<std::string> cells);

  /// Render to a stream with github-style pipes.
  void print(std::ostream& os) const;

  /// Render to a string.
  std::string str() const;

  /// Emit as CSV (RFC-4180 quoting) to a stream.
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `digits` significant digits (trailing zeros trimmed).
std::string fmt_double(double v, int digits = 4);

/// Format seconds adaptively: "123 us", "45.2 ms", "3.16 s", "1.2 h".
std::string fmt_seconds(double s);

/// Format a large count with thousands separators: 2415919104 -> "2,415,919,104".
std::string fmt_count(unsigned long long n);

/// Render a vector of non-negative values as a unicode sparkline (▁▂▃▄▅▆▇█),
/// used for printing KDE curves and tuning trajectories as text.
std::string sparkline(const std::vector<double>& values);

}  // namespace tunespace::util
