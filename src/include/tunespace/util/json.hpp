#pragma once
// Minimal JSON document model for the tuning-service wire protocol.
//
// The repo deliberately carries no third-party dependencies, and the
// protocol needs only a small, predictable subset: null, bool, numbers,
// strings, arrays and objects.  Objects preserve insertion order (a
// vector of members, not a map), so encoded frames are deterministic and
// diffable in tests and logs.  Integers are kept exact: a number lexed
// without '.', 'e' or overflow stays an int64 and round-trips digit for
// digit, which is what lets csp::Value configurations cross the wire
// without perturbation.
//
// parse() throws tunespace::ServiceError(kProtocol) on malformed input —
// the same taxonomy the rest of the service stack uses.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tunespace::util::json {

class Value;
using Array = std::vector<Value>;
/// Object members in insertion order; keys are expected unique (set()
/// replaces, find() returns the first match).
using Object = std::vector<std::pair<std::string, Value>>;

/// A JSON document node.
class Value {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Int, Double, String, Array, Object };

  Value() : kind_(Kind::Null) {}
  Value(std::nullptr_t) : kind_(Kind::Null) {}                        // NOLINT implicit
  Value(bool v) : kind_(Kind::Bool), bool_(v) {}                     // NOLINT implicit
  Value(int v) : kind_(Kind::Int), int_(v) {}                        // NOLINT implicit
  Value(std::int64_t v) : kind_(Kind::Int), int_(v) {}               // NOLINT implicit
  Value(std::uint64_t v);  // stays exact up to int64 max     NOLINT implicit
  Value(double v) : kind_(Kind::Double), double_(v) {}               // NOLINT implicit
  Value(const char* v) : kind_(Kind::String), string_(v) {}          // NOLINT implicit
  Value(std::string v) : kind_(Kind::String), string_(std::move(v)) {}  // NOLINT
  Value(Array v) : kind_(Kind::Array), array_(std::move(v)) {}       // NOLINT implicit
  Value(Object v) : kind_(Kind::Object), object_(std::move(v)) {}    // NOLINT implicit

  static Value object() { return Value(Object{}); }
  static Value array() { return Value(Array{}); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_int() const { return kind_ == Kind::Int; }
  bool is_number() const { return kind_ == Kind::Int || kind_ == Kind::Double; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  /// Lenient readers: wrong-kind nodes yield the fallback, so decoders can
  /// treat absent and mistyped fields uniformly.
  bool as_bool(bool fallback = false) const;
  double as_double(double fallback = 0) const;
  std::int64_t as_int(std::int64_t fallback = 0) const;
  std::uint64_t as_uint(std::uint64_t fallback = 0) const;
  const std::string& as_string() const;  ///< empty string for non-strings

  const Array& items() const;      ///< empty for non-arrays
  const Object& members() const;   ///< empty for non-objects

  /// First member with `key`, or nullptr (also for non-objects).
  const Value* find(std::string_view key) const;
  /// Member lookup that tolerates absence: missing keys read as null.
  const Value& at(std::string_view key) const;

  /// Append or replace a member (converts a null node into an object).
  Value& set(std::string key, Value value);
  /// Append an array element (converts a null node into an array).
  Value& push(Value value);

  /// Compact serialization (no whitespace), deterministic member order.
  std::string dump() const;

  /// Parse a complete document; trailing non-whitespace is an error.
  /// Throws tunespace::ServiceError(ErrorCode::kProtocol).
  static Value parse(std::string_view text);

 private:
  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace tunespace::util::json
