#pragma once
// POSIX TCP plumbing shared by the service server (server.hpp) and the
// blocking client (service_client.hpp): socket setup with the usual
// pitfalls handled (SIGPIPE suppression, partial send/recv, EINTR,
// ephemeral-port discovery, connect retry across server startup), plus the
// wire::ByteStream adapter that lets the framing layer run over a socket.
// All failures surface as tunespace::ServiceError(kIo).

#include <cstdint>
#include <string>

#include "tunespace/tuner/protocol.hpp"

namespace tunespace::tuner::net {

/// Create a bound, listening TCP socket on host:port (port 0 picks an
/// ephemeral port — read it back with local_port).  Throws kIo.
int listen_tcp(const std::string& host, std::uint16_t port);

/// The locally-bound port of a socket (resolves ephemeral binds).
std::uint16_t local_port(int fd);

/// Connect to host:port, retrying *transient* failures (see
/// transient_connect_errno) until `timeout_seconds` elapse — covering the
/// race where a client starts before the server finished binding.  Hard
/// errors (ENETUNREACH, EACCES, ...) fail immediately, and a zero or
/// negative timeout means exactly one attempt.  Throws kIo.
int connect_tcp(const std::string& host, std::uint16_t port,
                double timeout_seconds);

/// accept(2) bounded by a poll timeout; returns -1 on timeout or on a
/// *transient* accept failure (see transient_accept_errno), so accept loops
/// observe their stop flag and retry with the poll timeout as the backoff
/// instead of dying under fd pressure.  Throws kIo only on errors that mean
/// the listener itself is gone.
int accept_timeout(int listen_fd, int timeout_ms);

/// True for accept(2) errnos that signal transient pressure, not a dead
/// listener: fd exhaustion (EMFILE/ENFILE), kernel buffer pressure
/// (ENOBUFS/ENOMEM), a peer that aborted while queued in the backlog
/// (ECONNABORTED), interruption (EINTR) and spurious readiness
/// (EAGAIN/EWOULDBLOCK).  An accept path must retry these — treating them
/// as fatal turns a full-fd-table moment into a server that never accepts
/// again.
bool transient_accept_errno(int err) noexcept;

/// True for connect(2) errnos worth retrying against a deadline — the
/// server may not have bound yet (ECONNREFUSED), the handshake timed out
/// (ETIMEDOUT), or the attempt never completed (EAGAIN/EINTR).  Routing and
/// permission failures are deliberately excluded: retrying ENETUNREACH or
/// EACCES for the whole timeout only hides a misconfiguration.
bool transient_connect_errno(int err) noexcept;

/// Put `fd` into O_NONBLOCK mode (epoll front end).  Throws kIo.
void set_nonblocking(int fd);

/// Nonblocking accept(2) for the epoll accept path: returns the connected
/// fd (TCP_NODELAY set) or -1 with `err_out` carrying the errno — 0 when
/// the backlog was simply empty.  Never throws; the caller owns the retry
/// policy.
int accept_nonblocking(int listen_fd, int& err_out) noexcept;

void close_fd(int fd) noexcept;

/// wire::ByteStream over a connected socket.  Does not own the fd.
class FdStream : public wire::ByteStream {
 public:
  explicit FdStream(int fd) : fd_(fd) {}
  void write_all(const void* data, std::size_t n) override;
  bool read_all(void* data, std::size_t n) override;

 private:
  int fd_;
};

}  // namespace tunespace::tuner::net
