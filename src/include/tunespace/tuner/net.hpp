#pragma once
// POSIX TCP plumbing shared by the service server (server.hpp) and the
// blocking client (service_client.hpp): socket setup with the usual
// pitfalls handled (SIGPIPE suppression, partial send/recv, EINTR,
// ephemeral-port discovery, connect retry across server startup), plus the
// wire::ByteStream adapter that lets the framing layer run over a socket.
// All failures surface as tunespace::ServiceError(kIo).

#include <cstdint>
#include <string>

#include "tunespace/tuner/protocol.hpp"

namespace tunespace::tuner::net {

/// Create a bound, listening TCP socket on host:port (port 0 picks an
/// ephemeral port — read it back with local_port).  Throws kIo.
int listen_tcp(const std::string& host, std::uint16_t port);

/// The locally-bound port of a socket (resolves ephemeral binds).
std::uint16_t local_port(int fd);

/// Connect to host:port, retrying until `timeout_seconds` elapse — covering
/// the race where a client starts before the server finished binding.
/// Throws kIo once the deadline expires.
int connect_tcp(const std::string& host, std::uint16_t port,
                double timeout_seconds);

/// accept(2) bounded by a poll timeout; returns -1 on timeout (so accept
/// loops can observe a stop flag).  Throws kIo on a real error.
int accept_timeout(int listen_fd, int timeout_ms);

void close_fd(int fd) noexcept;

/// wire::ByteStream over a connected socket.  Does not own the fd.
class FdStream : public wire::ByteStream {
 public:
  explicit FdStream(int fd) : fd_(fd) {}
  void write_all(const void* data, std::size_t n) override;
  bool read_all(void* data, std::size_t n) override;

 private:
  int fd_;
};

}  // namespace tunespace::tuner::net
