#pragma once
// Tuning-as-a-service API: transport-free request/response value structs.
//
// The TuningService (service.hpp) exposes the concurrent runtime's ask/tell
// surface — open a session, ask for the next configuration to measure, tell
// the service the measurement, query the best, close — to many tenants at
// once.  Every entry point consumes and produces the plain value structs in
// this header; the wire layer (protocol.hpp / server.hpp) maps the same
// structs onto length-prefixed JSON frames.  Nothing here touches iostreams
// or sockets, so embedding clients can drive a TuningService in-process with
// zero serialization, and the wire encoding can change without touching the
// service logic.
//
// Errors are uniform across the stack: every tuner/service entry point that
// rejects a request throws tunespace::ServiceError carrying a stable
// ErrorCode.  The code (not the message) is the contract — it is what
// crosses the wire and what clients switch on.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "tunespace/csp/value.hpp"
#include "tunespace/tuner/objective.hpp"

namespace tunespace {

/// Stable error taxonomy shared by the tuner service entry points, the wire
/// protocol and the client.  Codes are part of the wire contract: their
/// names (error_code_name) never change meaning once released.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,   ///< malformed request field, unknown kernel/optimizer
  kUnknownSession,    ///< session id not live on this service
  kAdmissionLimit,    ///< per-tenant or global live-session limit reached
  kDraining,          ///< service is draining; new sessions are rejected
  kWrongState,        ///< suggest/report called out of ask/tell order
  kSessionFinished,   ///< session already ran to completion
  kSpaceBuildFailed,  ///< search-space construction threw
  kProtocol,          ///< malformed frame or JSON payload
  kIo,                ///< socket or state-file I/O failure
  kInternal,          ///< anything that escaped the categories above
  kUnsupportedVersion,  ///< client requested a protocol version > server's
};

/// Stable wire identifier of a code (e.g. "admission_limit").
const char* error_code_name(ErrorCode code);

/// Inverse of error_code_name; unknown names map to ErrorCode::kInternal so
/// a newer server never crashes an older client.
ErrorCode error_code_from_name(std::string_view name);

/// The one exception type thrown by the tuning-service stack.  what() is
/// human-readable; code() is the machine contract carried over the wire.
class ServiceError : public std::runtime_error {
 public:
  ServiceError(ErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}

  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

namespace tuner {

/// One named parameter value (a configuration is a vector of these, in the
/// space's declared parameter order).
struct NamedValue {
  std::string name;
  csp::Value value;

  friend bool operator==(const NamedValue&, const NamedValue&) = default;
};

/// A tune-time restriction: parameter must take one of `values` (compiled
/// onto query::in_set; values absent from the domain are ignored).
struct ParamFilter {
  std::string param;
  std::vector<csp::Value> values;

  friend bool operator==(const ParamFilter&, const ParamFilter&) = default;
};

/// Open a tuning session over a named kernel from the service catalog.
struct OpenSessionRequest {
  std::string tenant;             ///< admission-control bucket ("" is a tenant)
  std::string kernel;             ///< catalog name, e.g. "gemm" (see service.hpp)
  std::string optimizer = "random-sampling";  ///< one of the portfolio names
  std::string method;             ///< construction method; "" = optimized
  std::uint64_t seed = 1;
  double budget_seconds = 120.0;
  double overhead_per_request = 0.005;
  /// Fixed virtual construction charge (>= 0) or -1 to charge the measured
  /// construction latency (see TuningOptions::fixed_construction_seconds).
  double fixed_construction_seconds = -1.0;
  double construction_time_scale = 1.0;
  /// Conjunction of per-parameter restrictions applied to the shared space.
  std::vector<ParamFilter> restrictions;
  /// Objective set of the session; the default is the legacy single
  /// objective (maximize gflops), which is also what a v1 envelope with no
  /// objectives field means.
  ObjectiveSpec objectives{};
  /// Opt-in cross-session transfer (TuningOptions::warm_start): seed the
  /// session from the service's shared eval cache before the optimizer
  /// starts.  Absent on the wire means off, so v2 envelopes from older
  /// clients keep their exact pre-transfer behavior.
  bool warm_start = false;
  /// Use the surrogate-guided model-based optimizer regardless of the
  /// `optimizer` field.  Absent on the wire means off.
  bool surrogate = false;

  friend bool operator==(const OpenSessionRequest&,
                         const OpenSessionRequest&) = default;
};

/// Live-session observability snapshot.
struct SessionInfo {
  std::uint64_t session_id = 0;
  std::string tenant;
  std::string kernel;
  std::string optimizer;
  std::string method;
  std::uint64_t space_rows = 0;    ///< rows in the session's (restricted) view
  std::vector<std::string> param_names;
  bool shared_space = false;       ///< space reused from the registry/snapshot
  bool awaiting_report = false;    ///< a suggestion is outstanding
  bool finished = false;
  double now_seconds = 0;          ///< session virtual clock
  double budget_seconds = 0;
  double best_gflops = 0;
  std::uint64_t evaluations = 0;
  std::uint64_t shared_cache_hits = 0;   ///< evals served by the shared cache
  std::uint64_t model_evaluations = 0;   ///< evals that reached the reporter
  ObjectiveSpec objectives{};   ///< the session's objective set
  double best_score = 0;      ///< scalarized score of the incumbent
  Measurement best{};           ///< incumbent objective vector
  std::uint64_t seeded_rows = 0;       ///< warm-start rows charged at open
  std::uint64_t surrogate_refits = 0;  ///< model-based optimizer refits

  friend bool operator==(const SessionInfo&, const SessionInfo&) = default;
};

struct OpenSessionResponse {
  std::uint64_t session_id = 0;
  SessionInfo info;

  friend bool operator==(const OpenSessionResponse&,
                         const OpenSessionResponse&) = default;
};

struct SuggestRequest {
  std::uint64_t session_id = 0;

  friend bool operator==(const SuggestRequest&, const SuggestRequest&) = default;
};

/// The next configuration to measure.  `finished` true means the session ran
/// out of budget (or hit its evaluation cap): no configuration is attached
/// and the client should read the result via best/close.
struct SuggestResponse {
  std::uint64_t session_id = 0;
  bool finished = false;
  std::uint64_t config_id = 0;   ///< view-local row id; echo it in debugging
  std::uint64_t parent_row = 0;  ///< row id in the parent space
  std::vector<NamedValue> config;
  double now_seconds = 0;
  std::uint64_t evaluations = 0;

  friend bool operator==(const SuggestResponse&, const SuggestResponse&) = default;
};

/// Report the measurement of the outstanding suggestion.  v2 clients fill
/// `measurement` (the full objective vector, mirrored into `gflops`); v1
/// clients fill only `gflops`, which the service widens to a gflops-only
/// vector.  When both are set, `measurement` wins.
struct ReportRequest {
  std::uint64_t session_id = 0;
  double gflops = 0;
  /// Measured benchmark wall seconds to charge to the virtual clock; < 0
  /// charges the session model's simulated evaluation cost instead.
  double measure_seconds = -1.0;
  Measurement measurement{};  ///< full objective vector (all-zero = unset)

  friend bool operator==(const ReportRequest&, const ReportRequest&) = default;
};

struct ReportResponse {
  std::uint64_t session_id = 0;
  bool improved = false;         ///< this measurement set a new session best
  bool finished = false;         ///< the session completed during this report
  double best_gflops = 0;
  double now_seconds = 0;
  std::uint64_t evaluations = 0;
  double best_score = 0;         ///< scalarized score of the incumbent
  Measurement best{};              ///< incumbent objective vector

  friend bool operator==(const ReportResponse&, const ReportResponse&) = default;
};

struct BestRequest {
  std::uint64_t session_id = 0;

  friend bool operator==(const BestRequest&, const BestRequest&) = default;
};

/// Best configuration measured so far (empty config before the first report).
struct BestResponse {
  std::uint64_t session_id = 0;
  double best_gflops = 0;
  std::vector<NamedValue> config;
  double now_seconds = 0;
  std::uint64_t evaluations = 0;
  bool finished = false;
  double best_score = 0;  ///< scalarized score of the incumbent
  Measurement best{};       ///< incumbent objective vector

  friend bool operator==(const BestResponse&, const BestResponse&) = default;
};

/// One best-so-far trajectory point (mirrors tuner::TrajectoryPoint without
/// coupling the wire API to the runner header).
struct RunPoint {
  double time_seconds = 0;
  double best_gflops = 0;
  std::uint64_t evaluations = 0;
  Measurement measurement{};  ///< incumbent objective vector

  friend bool operator==(const RunPoint&, const RunPoint&) = default;
};

/// Final summary of a closed session's TuningRun.
struct RunSummary {
  std::string method_name;
  double construction_seconds = 0;
  double budget_seconds = 0;
  double best_gflops = 0;
  std::uint64_t evaluations = 0;
  std::vector<RunPoint> trajectory;
  ObjectiveSpec objectives{};  ///< the session's objective set
  double best_score = 0;     ///< scalarized score of the incumbent
  Measurement best{};          ///< incumbent objective vector
  std::vector<ParetoPoint> front;  ///< non-dominated set, evaluation order

  friend bool operator==(const RunSummary&, const RunSummary&) = default;
};

struct CloseSessionRequest {
  std::uint64_t session_id = 0;

  friend bool operator==(const CloseSessionRequest&,
                         const CloseSessionRequest&) = default;
};

struct CloseSessionResponse {
  std::uint64_t session_id = 0;
  RunSummary run;

  friend bool operator==(const CloseSessionResponse&,
                         const CloseSessionResponse&) = default;
};

/// Service-wide observability counters.
struct ServiceStats {
  std::uint64_t live_sessions = 0;
  std::uint64_t total_opened = 0;
  std::uint64_t total_closed = 0;
  std::uint64_t total_rejected = 0;  ///< admission + drain rejections
  bool draining = false;
  std::uint64_t cache_entries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t spaces_built = 0;
  std::uint64_t spaces_shared = 0;
  /// Warm-start rows charged across all opened sessions.
  std::uint64_t seeded_rows = 0;
  /// Surrogate refits accumulated from closed sessions.
  std::uint64_t surrogate_refits = 0;

  friend bool operator==(const ServiceStats&, const ServiceStats&) = default;
};

struct DrainRequest {
  bool wait = false;             ///< block until every live session is closed
  double timeout_seconds = -1;   ///< cap on the wait; < 0 waits forever

  friend bool operator==(const DrainRequest&, const DrainRequest&) = default;
};

struct DrainResponse {
  bool draining = false;
  bool drained = false;          ///< draining and no live sessions remain
  std::uint64_t live_sessions = 0;

  friend bool operator==(const DrainResponse&, const DrainResponse&) = default;
};

}  // namespace tuner
}  // namespace tunespace
