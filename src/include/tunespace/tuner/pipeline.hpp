#pragma once
// Pipeline: lowers a TuningProblem into a csp::Problem under a chosen
// constraint-optimization strategy, and defines the named construction
// methods the evaluation section compares.
//
// The §4.2 parsing pipeline is:  parse -> fold constants -> decompose into
// minimal-scope conjuncts -> recognize specific constraints -> compile the
// rest.  Each switch can be disabled to obtain the baselines:
//
//   optimized  : full pipeline + OptimizedBacktracking        (this paper)
//   original   : no decompose/recognize, interpreted functions,
//                OriginalBacktracking                          (vanilla CSP)
//   brute-force: no decompose/recognize, compiled functions, BruteForce
//   ATF        : no decompose/recognize, compiled functions, ChainOfTrees
//   pyATF      : no decompose/recognize, interpreted functions, ChainOfTrees
//   blocking-smt: no decompose/recognize, compiled functions,
//                BlockingEnumerator                            (PySMT + Z3)

#include <memory>
#include <string>
#include <vector>

#include "tunespace/csp/problem.hpp"
#include "tunespace/expr/function_constraint.hpp"
#include "tunespace/solver/solver.hpp"
#include "tunespace/tuner/tuning_problem.hpp"

namespace tunespace::tuner {

/// Constraint lowering strategy.
struct PipelineOptions {
  bool decompose = true;   ///< split conjunctions and comparison chains (§4.2)
  bool recognize = true;   ///< map conjuncts onto specific constraints (§4.3.2)
  expr::EvalMode eval_mode = expr::EvalMode::Compiled;  ///< fallback functions

  /// Full paper pipeline.
  static PipelineOptions optimized() { return {true, true, expr::EvalMode::Compiled}; }
  /// Vanilla python-constraint: monolithic interpreted function constraints.
  static PipelineOptions original() {
    return {false, false, expr::EvalMode::Interpreted};
  }
  /// Monolithic but natively-compiled constraints (C++ baselines).
  static PipelineOptions compiled_raw() {
    return {false, false, expr::EvalMode::Compiled};
  }
};

/// Lower a TuningProblem to a csp::Problem.  Throws expr::SyntaxError on
/// malformed constraint expressions.
csp::Problem build_problem(const TuningProblem& spec, const PipelineOptions& options);

/// A named construction method: pipeline options + solver, as benchmarked
/// in Figs. 3-5.
struct Method {
  std::string name;
  PipelineOptions pipeline;
  solver::SolverPtr solver;
};

/// The paper's five standard methods in presentation order (optimized,
/// ATF, original, brute-force, pyATF); `include_blocking` appends the
/// Fig. 4 SMT-style enumerator.
std::vector<Method> construction_methods(bool include_blocking = false);

/// The default user-path method: full pipeline + OptimizedBacktracking.
Method optimized_method();

/// The optimized method on the work-stealing parallel engine (full pipeline
/// + ParallelBacktracking).  Produces byte-identical results to the
/// "optimized" method; benches and the SearchSpace layer use it to scale
/// construction across cores.
Method parallel_method(const solver::SolverOptions& options = {});

/// Convenience: lower and solve in one timed step.  The returned stats'
/// preprocess_seconds includes pipeline build time (the paper includes
/// search-space definition compile time in total construction time, §5.1).
solver::SolveResult construct(const TuningProblem& spec, const Method& method);

/// Stable 64-bit fingerprint of everything that determines the resolved
/// search space: the parameter domains (names, value kinds and payloads, in
/// declaration order), the constraint expressions, and the construction
/// method (name + pipeline switches — methods differ in enumeration order).
/// The spec's display name is deliberately excluded.  Snapshot files and
/// the SearchSpace::load_or_build cache are keyed by this value; native
/// lambda constraints are opaque to it, so specs carrying them must not be
/// cached (load_or_build refuses and builds fresh).
std::uint64_t spec_fingerprint(const TuningProblem& spec,
                               const std::string& method_name,
                               const PipelineOptions& pipeline);
std::uint64_t spec_fingerprint(const TuningProblem& spec, const Method& method);

}  // namespace tunespace::tuner
