#pragma once
// Tuning-as-a-service front end: a multi-tenant registry of live
// SessionStepper instances over the SessionManager's shared-space registry
// and SharedEvalCache.
//
// A TuningService hosts many concurrent ask/tell sessions:
//
//   open     admit a session over a catalog kernel (admission control per
//            tenant and service-wide), acquire its — possibly shared —
//            search space, and park an optimizer at its first suggestion.
//   suggest  next configuration the session wants measured.
//   report   feed the measurement back; it lands in the shared eval cache,
//            so concurrent sessions tuning the same space skip re-measuring.
//   best     best configuration measured so far.
//   close    retire the session and return its TuningRun summary.
//   drain    stop admitting, let live sessions finish, then quiesce.
//
// Every entry point speaks the transport-free structs of api.hpp and rejects
// with tunespace::ServiceError; the wire layer (server.hpp) is a thin codec
// on top.  With a state directory configured the service is restartable:
// resolved spaces persist as snapshots (SearchSpace::load_or_build) and the
// shared evaluation cache is saved on drain/shutdown and reloaded on start,
// so a restarted service warm-starts both construction and measurements.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tunespace/tuner/api.hpp"
#include "tunespace/tuner/session.hpp"

namespace tunespace::tuner {

/// One catalog entry: a named kernel the service can tune, bound to its
/// deterministic performance surface.
struct ServiceKernel {
  std::string name;  ///< wire name, e.g. "gemm" or "atf-prl-4"
  TuningProblem spec;
  std::shared_ptr<const PerformanceModel> model;
};

/// The service catalog: the Table 2 real-world kernels under lowercase
/// hyphenated wire names.  Hotspot and GEMM carry their dedicated surfaces;
/// the rest use the synthetic surface over their real constraint spaces.
const std::vector<ServiceKernel>& service_catalog();

/// Catalog lookup by wire name; nullptr when absent.
const ServiceKernel* find_service_kernel(const std::string& name);

/// Admission-control policy.  Zero means "unlimited" for the numeric caps.
struct ServiceLimits {
  std::size_t max_live_sessions = 64;        ///< service-wide
  std::size_t max_sessions_per_tenant = 8;   ///< per tenant bucket
  /// Sessions are force-finished after this many evaluations (0 = only the
  /// virtual budget ends a session).
  std::uint64_t max_evaluations_per_session = 0;
  /// open() rejects budgets above this cap (0 = any budget).
  double max_budget_seconds = 0;
};

struct TuningServiceOptions {
  ServiceLimits limits;
  /// When non-empty: snapshots live in <state_dir>/snapshots and the shared
  /// eval cache persists to <state_dir>/eval_cache.tsv across restarts.
  std::string state_dir;
  /// Underlying manager configuration; snapshot_cache_dir is derived from
  /// state_dir and overrides whatever is set here.
  SessionManagerOptions manager;
};

/// Multi-tenant ask/tell tuning service.  Thread-safe: entry points may be
/// called concurrently for different sessions; calls on one session are
/// serialized internally (the per-session ask/tell ordering contract still
/// applies to the *caller's* interleaving, as enforced by SessionStepper).
class TuningService {
 public:
  explicit TuningService(TuningServiceOptions options = {});
  /// Cancels live sessions and saves persistent state (best effort).
  ~TuningService();
  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  /// Admit and start a session; the response carries the session id every
  /// other call keys on.  Throws kInvalidArgument (unknown kernel /
  /// optimizer / method, bad numeric field), kAdmissionLimit, kDraining, or
  /// kSpaceBuildFailed.
  OpenSessionResponse open(const OpenSessionRequest& request);

  /// Next configuration to measure; `finished` instead of a configuration
  /// once the session completed.  Throws kUnknownSession / kWrongState.
  SuggestResponse suggest(const SuggestRequest& request);

  /// Measurement for the outstanding suggestion.  Throws kUnknownSession,
  /// kWrongState (no suggestion outstanding), kSessionFinished.
  ReportResponse report(const ReportRequest& request);

  /// Best measured configuration so far (empty before the first report).
  BestResponse best(const BestRequest& request);

  /// Observability snapshot of one live session.
  SessionInfo info(std::uint64_t session_id);

  /// Retire the session (cancelling it if still running) and return its
  /// TuningRun summary.  The id is dead afterwards.
  CloseSessionResponse close(const CloseSessionRequest& request);

  ServiceStats stats() const;

  /// Stop admitting new sessions; live sessions keep running until closed.
  void begin_drain();
  /// Block until draining and no sessions remain, or the timeout expires
  /// (< 0 waits forever).  Returns drained().
  bool wait_drained(double timeout_seconds = -1);
  bool draining() const;
  bool drained() const;  ///< draining and zero live sessions

  /// Persist the shared eval cache to the state directory (no-op without
  /// one).  Called automatically on destruction; throws kIo on write
  /// failure when called explicitly.
  void save_state() const;

  /// The underlying shared runtime (space registry + eval cache).
  SessionManager& manager() { return manager_; }

 private:
  struct Session;

  std::shared_ptr<Session> find(std::uint64_t session_id) const;
  SessionInfo info_of(Session& session) const;  // session mutex held
  bool eval_cap_reached(const Session& session) const;
  void load_eval_cache();
  std::string eval_cache_path() const;

  TuningServiceOptions options_;
  SessionManager manager_;

  mutable std::mutex mutex_;  ///< registry: sessions_, counters, drain flag
  std::condition_variable drain_cv_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::unordered_map<std::string, std::size_t> live_per_tenant_;
  std::size_t pending_opens_ = 0;  ///< admitted slots still building a space
  std::uint64_t next_id_ = 1;
  std::uint64_t opened_ = 0;
  std::uint64_t closed_ = 0;
  std::uint64_t rejected_ = 0;
  /// Transfer-learning counters: seeded rows accumulate at open (seeding
  /// completes inside the stepper constructor), surrogate refits at close
  /// (the stepper is quiescent after cancel, so the read races with no one).
  std::uint64_t seeded_rows_ = 0;
  std::uint64_t surrogate_refits_ = 0;
  bool draining_ = false;
};

}  // namespace tunespace::tuner
