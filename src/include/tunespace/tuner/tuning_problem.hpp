#pragma once
// TuningProblem: the user-facing specification of an auto-tuning search
// space — tunable parameters with value lists plus constraint expressions in
// the Python-subset string format (Kernel Tuner style, Listing 2 of the
// paper).  A TuningProblem is pure data; Pipeline (pipeline.hpp) lowers it
// into a csp::Problem under a chosen optimization strategy.

#include <cstdint>
#include <string>
#include <vector>

#include "tunespace/csp/lambda_constraint.hpp"
#include "tunespace/csp/problem.hpp"

namespace tunespace::tuner {

/// One tunable parameter: a name and its ordered value list.
struct TunableParam {
  std::string name;
  std::vector<csp::Value> values;
};

/// Declarative search-space specification.
class TuningProblem {
 public:
  TuningProblem() = default;
  explicit TuningProblem(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Add a tunable parameter (declaration order is preserved; constraints
  /// may reference any parameter regardless of order).
  TuningProblem& add_param(std::string name, std::vector<csp::Value> values);

  /// Convenience: integer value list.
  TuningProblem& add_param(std::string name, std::vector<std::int64_t> values);

  /// Convenience: braced integer list, e.g. add_param("bsx", {1, 2, 4, 8}).
  TuningProblem& add_param(std::string name, std::initializer_list<int> values);

  /// Add a constraint expression, e.g.
  ///   "32 <= block_size_x * block_size_y <= 1024".
  TuningProblem& add_constraint(std::string expression);

  /// Add a native C++ callable constraint over the named parameters
  /// (KTT-style API, Listing 2 of the paper).  Lambda constraints are
  /// opaque to the parsing pipeline.
  TuningProblem& add_constraint(std::vector<std::string> scope,
                                csp::LambdaPredicate predicate,
                                std::string description = "lambda");

  /// A registered lambda constraint.
  struct LambdaSpec {
    std::vector<std::string> scope;
    csp::LambdaPredicate predicate;
    std::string description;
  };

  const std::vector<TunableParam>& params() const { return params_; }
  const std::vector<std::string>& constraints() const { return constraints_; }
  const std::vector<LambdaSpec>& lambda_constraints() const {
    return lambda_constraints_;
  }
  std::size_t num_params() const { return params_.size(); }

  /// Size of the unconstrained Cartesian product (saturating).
  std::uint64_t cartesian_size() const;

 private:
  std::string name_;
  std::vector<TunableParam> params_;
  std::vector<std::string> constraints_;
  std::vector<LambdaSpec> lambda_constraints_;
};

}  // namespace tunespace::tuner
