#pragma once
// Wire protocol for the tuning service: length-prefixed JSON frames.
//
// Framing: each message is a 4-byte big-endian payload length followed by
// that many bytes of UTF-8 JSON.  Requests are envelopes {"op": "...",
// ...fields}; responses are {"ok": true, ...fields} on success and
// {"ok": false, "error": {"code": "...", "message": "..."}} on failure,
// where code is the stable error_code_name of the ServiceError the request
// raised.  Operations: ping, open, suggest, report, best, info, stats,
// close, drain.
//
// Everything here is transport-agnostic: framing runs over the abstract
// ByteStream (a socket in server.hpp / service_client.hpp, an in-memory
// pipe in tests), and the codecs map api.hpp structs onto util::json
// documents.  Configurations cross the wire as JSON objects in declared
// parameter order with exact integers (json::Value keeps int64s intact).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "tunespace/tuner/api.hpp"
#include "tunespace/util/json.hpp"

namespace tunespace::tuner::wire {

/// Upper bound on a frame payload; oversized lengths are a protocol error
/// (they are far more likely a desynchronized or hostile peer than a real
/// message).
inline constexpr std::uint32_t kMaxFrameBytes = 16u * 1024u * 1024u;

/// Blocking byte stream the framing runs over.
class ByteStream {
 public:
  virtual ~ByteStream() = default;
  /// Write exactly `n` bytes; throws ServiceError(kIo) on failure.
  virtual void write_all(const void* data, std::size_t n) = 0;
  /// Read exactly `n` bytes.  Returns false on clean EOF before the first
  /// byte; throws ServiceError(kIo) on error or mid-buffer truncation.
  virtual bool read_all(void* data, std::size_t n) = 0;
};

/// Send one frame (length prefix + payload).
void write_frame(ByteStream& stream, std::string_view payload);

/// Receive one frame's payload; nullopt on clean EOF at a frame boundary.
/// Throws ServiceError(kProtocol) for an oversized length, kIo for
/// truncation.
std::optional<std::string> read_frame(ByteStream& stream);

// -- Envelopes ---------------------------------------------------------------

/// {"op": op, ...body members} — body must be an object (or null for none).
std::string encode_request(const std::string& op, const util::json::Value& body);

/// Split a request frame into (op, whole document).  Throws
/// ServiceError(kProtocol) when `op` is missing.
std::pair<std::string, util::json::Value> decode_request(const std::string& frame);

/// {"ok": true, ...body members}.
std::string encode_ok(const util::json::Value& body);

/// {"ok": false, "error": {"code": name, "message": message}}.
std::string encode_error(ErrorCode code, const std::string& message);

/// Parse a response frame; returns the document for ok=true and throws the
/// carried ServiceError for ok=false (kProtocol if the envelope itself is
/// malformed).
util::json::Value decode_response(const std::string& frame);

// -- Scalar / config codecs --------------------------------------------------

util::json::Value to_json(const csp::Value& value);
csp::Value csp_value_from_json(const util::json::Value& value);

/// A configuration as an ordered JSON object {"param": value, ...}.
util::json::Value config_to_json(const std::vector<NamedValue>& config);
std::vector<NamedValue> config_from_json(const util::json::Value& value);

// -- api.hpp struct codecs ---------------------------------------------------

util::json::Value to_json(const OpenSessionRequest& request);
OpenSessionRequest open_session_request_from_json(const util::json::Value& value);

util::json::Value to_json(const SessionInfo& info);
SessionInfo session_info_from_json(const util::json::Value& value);

util::json::Value to_json(const OpenSessionResponse& response);
OpenSessionResponse open_session_response_from_json(const util::json::Value& value);

util::json::Value to_json(const SuggestResponse& response);
SuggestResponse suggest_response_from_json(const util::json::Value& value);

util::json::Value to_json(const ReportRequest& request);
ReportRequest report_request_from_json(const util::json::Value& value);

util::json::Value to_json(const ReportResponse& response);
ReportResponse report_response_from_json(const util::json::Value& value);

util::json::Value to_json(const BestResponse& response);
BestResponse best_response_from_json(const util::json::Value& value);

util::json::Value to_json(const RunSummary& run);
RunSummary run_summary_from_json(const util::json::Value& value);

util::json::Value to_json(const CloseSessionResponse& response);
CloseSessionResponse close_session_response_from_json(const util::json::Value& value);

util::json::Value to_json(const ServiceStats& stats);
ServiceStats service_stats_from_json(const util::json::Value& value);

util::json::Value to_json(const DrainRequest& request);
DrainRequest drain_request_from_json(const util::json::Value& value);

util::json::Value to_json(const DrainResponse& response);
DrainResponse drain_response_from_json(const util::json::Value& value);

}  // namespace tunespace::tuner::wire
