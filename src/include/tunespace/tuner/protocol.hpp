#pragma once
// Wire protocol for the tuning service: length-prefixed JSON frames.
//
// Framing: each message is a 4-byte big-endian payload length followed by
// that many bytes of UTF-8 JSON.  Requests are envelopes {"op": "...",
// ...fields}; responses are {"ok": true, ...fields} on success and
// {"ok": false, "error": {"code": "...", "message": "..."}} on failure,
// where code is the stable error_code_name of the ServiceError the request
// raised.  Operations: hello, ping, open, suggest, report, best, info,
// stats, close, drain.
//
// Versioning: protocol v2 adds the "hello" negotiation op, an optional "v"
// field on every request envelope (absent means 1), and objective-map
// fields ("objectives", "measurement", "best", "best_score", "front") on
// the session ops.  Compatibility is by construction: v2 readers treat
// every new field as optional with v1 semantics as the default (a missing
// objectives field IS the single-objective spec), and v1 readers ignore
// unknown fields, so a v1 client against a v2 server keeps working without
// negotiating.  A server rejects only requests whose "v" exceeds its own
// version, with the typed kUnsupportedVersion error.
//
// Everything here is transport-agnostic: framing runs over the abstract
// ByteStream (a socket in server.hpp / service_client.hpp, an in-memory
// pipe in tests), and the codecs map api.hpp structs onto util::json
// documents.  Configurations cross the wire as JSON objects in declared
// parameter order with exact integers (json::Value keeps int64s intact).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "tunespace/tuner/api.hpp"
#include "tunespace/util/json.hpp"

namespace tunespace::tuner::wire {

/// Upper bound on a frame payload; oversized lengths are a protocol error
/// (they are far more likely a desynchronized or hostile peer than a real
/// message).
inline constexpr std::uint32_t kMaxFrameBytes = 16u * 1024u * 1024u;

/// The wire protocol version this build speaks.  History:
///   1 — PR 7: scalar gflops measurements, no negotiation.
///   2 — objective vectors (Measurement maps, ObjectiveSpec, Pareto front)
///       and the "hello" negotiation op.
inline constexpr int kProtocolVersion = 2;

/// The "hello" negotiation op: the client announces the highest version it
/// speaks; the server answers with the version the connection will use
/// (min(client max, server version)) plus its own version for diagnostics.
/// Optional — a client that never sends hello is treated as v1-compatible
/// field-wise, which v2 servers accept by construction.
struct HelloRequest {
  int max_version = kProtocolVersion;

  friend bool operator==(const HelloRequest&, const HelloRequest&) = default;
};

struct HelloResponse {
  int version = 1;                         ///< negotiated for this connection
  int server_version = kProtocolVersion;   ///< what the server speaks

  friend bool operator==(const HelloResponse&, const HelloResponse&) = default;
};

/// Blocking byte stream the framing runs over.
class ByteStream {
 public:
  virtual ~ByteStream() = default;
  /// Write exactly `n` bytes; throws ServiceError(kIo) on failure.
  virtual void write_all(const void* data, std::size_t n) = 0;
  /// Read exactly `n` bytes.  Returns false on clean EOF before the first
  /// byte; throws ServiceError(kIo) on error or mid-buffer truncation.
  virtual bool read_all(void* data, std::size_t n) = 0;
};

/// Send one frame (length prefix + payload).
void write_frame(ByteStream& stream, std::string_view payload);

/// Receive one frame's payload; nullopt on clean EOF at a frame boundary.
/// Throws ServiceError(kProtocol) for an oversized length, kIo for
/// truncation.
std::optional<std::string> read_frame(ByteStream& stream);

// -- HTTP/1.1 gateway codec --------------------------------------------------
// The HTTP gateway maps POST /v1/{op} with a JSON body onto the same
// dispatch table as the frame protocol, so curl and browser clients reach
// every op without speaking the length-prefix codec.  Deliberately minimal:
// Content-Length bodies only (chunked transfer encoding is rejected with
// 501), no query strings, one request at a time per connection.  The parser
// is incremental — it never blocks and never consumes a partial request —
// which is what lets the epoll event loop feed it straight from a
// per-connection read buffer.

/// Upper bound on the header block of one gateway request; longer blocks
/// are rejected with 431 (a desynchronized or hostile peer, same reasoning
/// as kMaxFrameBytes).
inline constexpr std::size_t kMaxHttpHeaderBytes = 64u * 1024u;

struct HttpRequest {
  std::string method;            ///< e.g. "POST"
  std::string target;            ///< e.g. "/v1/suggest"
  std::string body;              ///< Content-Length bytes (empty when none)
  bool keep_alive = true;        ///< HTTP/1.1 default; "Connection: close" clears
  bool expect_continue = false;  ///< "Expect: 100-continue" was present
  /// The request line and headers parsed fully (set even when the verdict
  /// is kNeedMore because body bytes are still in flight — the server uses
  /// this window to emit the interim 100 Continue).
  bool headers_complete = false;
};

enum class HttpParse : std::uint8_t {
  kNeedMore,  ///< buffer holds a prefix of a valid request; read more
  kOk,        ///< one full request parsed; `consumed` bytes were used
  kBad,       ///< irrecoverable; respond with `error_status` and close
};

/// Incrementally parse one HTTP/1.1 request from the front of `buffer`.
/// On kOk, `request` is complete and `consumed` says how many bytes the
/// request occupied (erase them before the next parse).  On kBad,
/// `error_status`/`error` describe the rejection (400 malformed, 501
/// chunked, 413 oversized body, 431 oversized headers).
HttpParse parse_http_request(std::string_view buffer, HttpRequest& request,
                             std::size_t& consumed, int& error_status,
                             std::string& error);

/// "/v1/{op}" -> "op"; empty when the target is not a gateway path.
std::string http_op_from_target(std::string_view target);

/// Serialize an HTTP/1.1 response carrying a JSON body.
std::string encode_http_response(int status, std::string_view json_body,
                                 bool keep_alive);

/// The HTTP status a wire error code maps to (200 for kOk).
int http_status_for(ErrorCode code);

// -- Envelopes ---------------------------------------------------------------

/// {"op": op, ...body members} — body must be an object (or null for none).
std::string encode_request(const std::string& op, const util::json::Value& body);

/// Split a request frame into (op, whole document).  Throws
/// ServiceError(kProtocol) when `op` is missing.
std::pair<std::string, util::json::Value> decode_request(const std::string& frame);

/// {"ok": true, ...body members}.
std::string encode_ok(const util::json::Value& body);

/// {"ok": false, "error": {"code": name, "message": message}}.
std::string encode_error(ErrorCode code, const std::string& message);

/// Parse a response frame; returns the document for ok=true and throws the
/// carried ServiceError for ok=false (kProtocol if the envelope itself is
/// malformed).
util::json::Value decode_response(const std::string& frame);

// -- Scalar / config codecs --------------------------------------------------

util::json::Value to_json(const csp::Value& value);
csp::Value csp_value_from_json(const util::json::Value& value);

/// A configuration as an ordered JSON object {"param": value, ...}.
util::json::Value config_to_json(const std::vector<NamedValue>& config);
std::vector<NamedValue> config_from_json(const util::json::Value& value);

// -- Objective codecs --------------------------------------------------------

/// {"gflops": x, "watts": y} — zero components are written too, so the
/// object is the full vector, not a sparse map.
util::json::Value to_json(const Measurement& measurement);
Measurement measurement_from_json(const util::json::Value& value);

/// [{"name": ..., "direction": "maximize"|"minimize", "weight": ...}, ...]
util::json::Value to_json(const ObjectiveSpec& spec);
ObjectiveSpec objective_spec_from_json(const util::json::Value& value);

util::json::Value to_json(const ParetoPoint& point);
ParetoPoint pareto_point_from_json(const util::json::Value& value);

// -- api.hpp struct codecs ---------------------------------------------------

util::json::Value to_json(const HelloRequest& request);
HelloRequest hello_request_from_json(const util::json::Value& value);

util::json::Value to_json(const HelloResponse& response);
HelloResponse hello_response_from_json(const util::json::Value& value);

util::json::Value to_json(const OpenSessionRequest& request);
OpenSessionRequest open_session_request_from_json(const util::json::Value& value);

util::json::Value to_json(const SessionInfo& info);
SessionInfo session_info_from_json(const util::json::Value& value);

util::json::Value to_json(const OpenSessionResponse& response);
OpenSessionResponse open_session_response_from_json(const util::json::Value& value);

util::json::Value to_json(const SuggestResponse& response);
SuggestResponse suggest_response_from_json(const util::json::Value& value);

util::json::Value to_json(const ReportRequest& request);
ReportRequest report_request_from_json(const util::json::Value& value);

util::json::Value to_json(const ReportResponse& response);
ReportResponse report_response_from_json(const util::json::Value& value);

util::json::Value to_json(const BestResponse& response);
BestResponse best_response_from_json(const util::json::Value& value);

util::json::Value to_json(const RunSummary& run);
RunSummary run_summary_from_json(const util::json::Value& value);

util::json::Value to_json(const CloseSessionResponse& response);
CloseSessionResponse close_session_response_from_json(const util::json::Value& value);

util::json::Value to_json(const ServiceStats& stats);
ServiceStats service_stats_from_json(const util::json::Value& value);

util::json::Value to_json(const DrainRequest& request);
DrainRequest drain_request_from_json(const util::json::Value& value);

util::json::Value to_json(const DrainResponse& response);
DrainResponse drain_response_from_json(const util::json::Value& value);

}  // namespace tunespace::tuner::wire
