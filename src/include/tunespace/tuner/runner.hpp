#pragma once
// Tuning runner: replays the paper's §5.4 end-to-end experiment.
//
// Timeline model: the (real, measured) search-space construction latency is
// charged to a virtual clock first; every kernel evaluation then advances
// the clock by the simulated benchmark cost.  The runner records the
// best-configuration-so-far trajectory against the virtual clock, which is
// exactly what Figs. 6 and 7 plot — including the effect that slow
// construction methods burn minutes of the budget before the first
// configuration is ever measured.

#include <string>
#include <vector>

#include "tunespace/searchspace/searchspace.hpp"
#include "tunespace/tuner/kernels.hpp"
#include "tunespace/tuner/optimizers.hpp"
#include "tunespace/tuner/pipeline.hpp"

namespace tunespace::tuner {

/// One point of the best-so-far trajectory.  Improvements are judged by the
/// session's scalarized score; `measurement` is the incumbent's full
/// objective vector and `best_gflops` its throughput component (for scalar
/// sessions the two gflops values coincide, preserving the legacy shape).
struct TrajectoryPoint {
  double time_seconds = 0;   ///< virtual time of the improvement
  double best_gflops = 0;    ///< incumbent throughput up to that time
  std::size_t evaluations = 0;
  Measurement measurement{};   ///< incumbent objective vector

  friend bool operator==(const TrajectoryPoint&, const TrajectoryPoint&) = default;
};

/// Result of one tuning session.
struct TuningRun {
  std::string method_name;
  double construction_seconds = 0;  ///< measured, charged to the clock
  double budget_seconds = 0;
  double best_gflops = 0;           ///< incumbent's throughput component
  std::size_t evaluations = 0;
  std::vector<TrajectoryPoint> trajectory;
  ObjectiveSpec objectives{};  ///< the objective set the session optimized
  double best_score = 0;     ///< scalarized score of the incumbent
  Measurement best{};          ///< full objective vector of the incumbent
  /// Non-dominated measurements in evaluation order (insertion order of the
  /// virtual clock); maintained for scalar sessions too, where it holds
  /// just the incumbent.  Use pareto() for the canonical sorted view.
  std::vector<ParetoPoint> front;

  /// Best throughput found no later than `time`.  Contract (tested in
  /// test_tuner): a trajectory point exactly at `time` IS included (the
  /// improvement happens at that instant), and before the first recorded
  /// improvement — including any `time` < 0 — the result is 0.  For vector
  /// runs this is the gflops component of the scalarized incumbent, which
  /// may be below an earlier gflops reading if another objective paid for
  /// the trade; use pareto() to see the full front.
  double best_at(double time) const;

  /// The Pareto front in canonical order: descending scalarized score,
  /// ties broken by ascending view-local row.  Deterministic given the run
  /// (front insertion order is the virtual-clock evaluation order).
  std::vector<ParetoPoint> pareto() const;

  friend bool operator==(const TuningRun&, const TuningRun&) = default;
};

/// Options for a tuning session.
struct TuningOptions {
  double budget_seconds = 120.0;
  std::uint64_t seed = 1;
  /// Scale applied to measured construction latency before charging it to
  /// the virtual clock.  Figs. 6/7 replay a 30/10-minute A100 session in a
  /// compressed budget; scaling construction keeps its *relative* share of
  /// the budget comparable to the paper's (see EXPERIMENTS.md).
  double construction_time_scale = 1.0;
  /// Framework overhead charged per evaluation *request*, including cache
  /// hits (result lookup, bookkeeping).  Keeping this nonzero both models
  /// the real tuner loop and guarantees optimizers that revisit cached
  /// configurations (e.g. a converged genetic population) still consume
  /// budget and terminate.
  double overhead_per_request = 0.005;
  /// When >= 0, charge exactly this many virtual seconds of construction
  /// latency instead of the measured wall time.  Measured latency is
  /// machine noise, so two runs of the same session never replay the same
  /// virtual timeline; fixing the charge makes a session's TuningRun
  /// bit-reproducible — across repeats, thread counts, and between an
  /// isolated run_tuning call and the same session under a SessionManager.
  double fixed_construction_seconds = -1.0;
  /// Objective set of the session.  Defaults to the legacy single objective
  /// (maximize gflops); measurements are masked to this set before they
  /// enter any session state, and improvements are judged by its weighted
  /// scalarization.
  ObjectiveSpec objectives{};
  /// Opt-in cross-session transfer: seed the session with the shared eval
  /// cache's best rows for its cache fingerprint before the optimizer
  /// starts.  Seeds are ranked by scalarized score (descending, ties by
  /// ascending parent row), capped at `warm_start_top_k`, and charged as
  /// normal evaluations — they advance the clock, count into the
  /// trajectory/front and consume budget exactly like optimizer-requested
  /// rows.  Hard gate: with the option off, or with no cached rows for the
  /// fingerprint, the session is bit-identical to a cold run.
  bool warm_start = false;
  std::size_t warm_start_top_k = 8;
};

/// Run one tuning session: construct the space with `method`, then drive
/// `optimizer` over it until the virtual budget is exhausted.
///
/// Deprecated entry point: build a SessionRequest (session.hpp,
/// make_session_request) and call run_session instead — one options struct
/// for every tuning path.  Removal timeline in CONTRIBUTING.md.
[[deprecated(
    "use run_session(SessionRequest) / make_session_request; see "
    "CONTRIBUTING.md")]]
TuningRun run_tuning(const TuningProblem& spec, const Method& method,
                     const PerformanceModel& model, Optimizer& optimizer,
                     const TuningOptions& options);

/// Run one tuning session over an already-resolved space or a tune-time
/// restriction of one (SubSpace::restrict) — the resolve-once,
/// restrict-per-scenario workflow.  The parent space's measured
/// construction latency is charged to the virtual clock (the restriction
/// itself is effectively free); rows in the run are the view's local ids.
///
/// Deprecated entry point: build a SessionRequest (session.hpp,
/// make_session_request) and call run_session instead.  Removal timeline in
/// CONTRIBUTING.md.
[[deprecated(
    "use run_session(SessionRequest) / make_session_request; see "
    "CONTRIBUTING.md")]]
TuningRun run_tuning(const searchspace::SubSpace& view, const PerformanceModel& model,
                     Optimizer& optimizer, const TuningOptions& options,
                     const std::string& method_name = "subspace");

}  // namespace tunespace::tuner
