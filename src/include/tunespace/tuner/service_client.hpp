#pragma once
// Blocking TCP client for the tuning service: the programmatic counterpart
// of server.hpp, speaking the protocol.hpp frames and the api.hpp structs.
//
// One client holds one connection and issues one request at a time (the
// protocol is strictly request/response per connection).  Server-side
// rejections are rethrown as the original tunespace::ServiceError — the
// stable code survives the wire — so in-process TuningService code and
// remote-client code handle failures identically.
//
// connect() negotiates the protocol version with a "hello" round trip: the
// connection speaks min(our kProtocolVersion, server's version).  A v1
// server answers hello with kProtocol (unknown op), which the client treats
// as "speak v1".  Requests carry a "v" field only when the negotiated
// version is above 1, so v1 request bytes are unchanged.

#include <cstdint>
#include <string>

#include "tunespace/tuner/api.hpp"
#include "tunespace/util/json.hpp"

namespace tunespace::tuner {

struct ServiceClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// connect() retries until this deadline — tolerates a server that is
  /// still binding when the client starts.
  double connect_timeout_seconds = 10.0;
  /// 0 negotiates via "hello"; a positive value skips negotiation and pins
  /// the connection to that protocol version (e.g. 1 to emit pure v1 bytes
  /// against any server).
  int force_version = 0;
};

class ServiceClient {
 public:
  ServiceClient() = default;  ///< disconnected; call connect()
  explicit ServiceClient(const ServiceClientOptions& options);
  ~ServiceClient();
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  void connect(const ServiceClientOptions& options);  ///< throws kIo
  void disconnect() noexcept;
  bool connected() const { return fd_ >= 0; }

  /// Protocol version this connection speaks (negotiated or forced); 0 when
  /// disconnected.
  int negotiated_version() const { return version_; }

  bool ping();
  OpenSessionResponse open(const OpenSessionRequest& request);
  SuggestResponse suggest(std::uint64_t session_id);
  ReportResponse report(const ReportRequest& request);
  BestResponse best(std::uint64_t session_id);
  SessionInfo info(std::uint64_t session_id);
  ServiceStats stats();
  CloseSessionResponse close_session(std::uint64_t session_id);
  DrainResponse drain(const DrainRequest& request = {});

 private:
  util::json::Value call(const std::string& op, const util::json::Value& body);

  int fd_ = -1;
  int version_ = 0;
};

}  // namespace tunespace::tuner
