#pragma once
// TCP front end for a TuningService: accepts connections and maps
// length-prefixed JSON frames (protocol.hpp) onto service entry points.
//
// One thread per connection; a connection carries any number of requests
// (sessions are not bound to connections — a client may reconnect and keep
// driving its session by id, which is what makes the ask/tell surface
// resumable across client restarts).  Any ServiceError becomes an error
// frame carrying the stable code; other exceptions map to kInternal.  The
// "drain" op supports graceful shutdown: stop admissions, optionally wait
// for live sessions to close, and — with exit_when_drained — release
// wait() so the hosting binary can stop, persist state and exit.

#include <cstdint>
#include <memory>
#include <string>

#include "tunespace/tuner/service.hpp"

namespace tunespace::tuner {

struct ServiceServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
  /// Release wait() once a drain request observes the service fully
  /// drained (the scripted-session / CI smoke workflow).
  bool exit_when_drained = false;
};

/// Serves one TuningService over TCP.  start() spawns the accept loop;
/// stop() (or destruction) closes the listener and joins every thread.
class ServiceServer {
 public:
  explicit ServiceServer(TuningService& service, ServiceServerOptions options = {});
  ~ServiceServer();
  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Bind, listen and start accepting.  Throws ServiceError(kIo).
  void start();

  /// Block until stop() is called from another thread or — with
  /// exit_when_drained — a drain completes.
  void wait();

  /// Bounded wait(); returns true once stopping or drain-exited.  Lets a
  /// hosting binary interleave the wait with signal-flag polling.
  bool wait_for(double timeout_seconds);

  /// Stop accepting, close every connection and join all threads
  /// (idempotent).  Live sessions survive in the service.
  void stop();

  /// The bound port (resolves an ephemeral request); valid after start().
  std::uint16_t port() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tunespace::tuner
