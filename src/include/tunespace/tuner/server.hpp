#pragma once
// TCP front end for a TuningService: an epoll event loop mapping
// length-prefixed JSON frames (protocol.hpp) — and, optionally, HTTP/1.1
// POST /v1/{op} gateway requests — onto service entry points.
//
// One event-loop thread owns every socket: it accepts, reassembles frames
// and HTTP requests incrementally from per-connection read buffers, and
// flushes reply bytes through per-connection write buffers.  Service calls
// never run on the event-loop thread — complete requests are handed to a
// small fixed worker pool, so a slow suggest() or a blocking drain cannot
// stall accepts or other connections' I/O.  Transient accept failures
// (EMFILE/ENFILE/ENOBUFS, aborted backlog entries) are retried after a
// short backoff, shedding the oldest idle connection under fd exhaustion —
// the listener survives fd pressure instead of silently dying.  Departed
// connections are reclaimed on their close events, not lazily on the next
// accept.
//
// A connection carries any number of requests (sessions are not bound to
// connections — a client may reconnect and keep driving its session by id,
// which is what makes the ask/tell surface resumable across client
// restarts).  Any ServiceError becomes an error frame carrying the stable
// code; other exceptions map to kInternal.  The "drain" op supports
// graceful shutdown: stop admissions, optionally wait for live sessions to
// close, and — with exit_when_drained — release wait() so the hosting
// binary can stop, persist state and exit; the drain reply is always
// flushed to the wire before wait() is released.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "tunespace/tuner/service.hpp"

namespace tunespace::tuner {

struct ServiceServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
  /// Release wait() once a drain request observes the service fully
  /// drained (the scripted-session / CI smoke workflow).
  bool exit_when_drained = false;
  /// Worker threads executing service calls (dispatch never runs on the
  /// event-loop thread).  Clamped to at least 1.
  std::size_t workers = 4;
  /// Also serve the HTTP/1.1 gateway (POST /v1/{op} with a JSON body) on
  /// its own port, mapped 1:1 onto the same dispatch table as the frames.
  bool enable_http = false;
  std::uint16_t http_port = 0;  ///< 0 = ephemeral; read back via http_port()
};

/// Serves one TuningService over TCP.  start() spawns the event loop and
/// the worker pool; stop() (or destruction) closes the listeners, every
/// connection, and joins every thread.
class ServiceServer {
 public:
  explicit ServiceServer(TuningService& service, ServiceServerOptions options = {});
  ~ServiceServer();
  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Bind, listen and start accepting.  Throws ServiceError(kIo).
  void start();

  /// Block until stop() is called from another thread or — with
  /// exit_when_drained — a drain completes.
  void wait();

  /// Bounded wait(); returns true once stopping or drain-exited.  Lets a
  /// hosting binary interleave the wait with signal-flag polling.
  bool wait_for(double timeout_seconds);

  /// Stop accepting, close every connection and join all threads
  /// (idempotent).  Live sessions survive in the service.
  void stop();

  /// The bound frame port (resolves an ephemeral request); valid after
  /// start().
  std::uint16_t port() const;

  /// The bound HTTP gateway port; 0 unless options.enable_http.
  std::uint16_t http_port() const;

  /// Connections currently held open by the event loop (both protocols).
  /// A departed client's connection is reclaimed by its close event, so
  /// this drops without any new connection arriving.
  std::size_t active_connections() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tunespace::tuner
