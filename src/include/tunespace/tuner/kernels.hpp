#pragma once
// Simulated GPU kernel performance models.
//
// The paper's §5.4 experiment tunes real CUDA kernels (Hotspot, GEMM) on an
// A100.  Without GPU hardware we substitute deterministic analytical
// performance surfaces that preserve what the experiment measures: a
// multimodal landscape over the same tunable parameters, a realistic
// per-evaluation cost (compile + benchmark time, inversely related to the
// configuration's speed), and a global optimum reachable by search.  The
// surfaces encode standard GPU performance folklore (occupancy sweet spots
// around 256 threads/block, coalescing preferring wide x-dimensions,
// register pressure penalizing excessive work per thread, shared-memory
// staging bonuses) plus deterministic per-configuration jitter, so optimizer
// progress curves look and behave like real tuning runs.

#include <memory>
#include <string>
#include <vector>

#include "tunespace/csp/problem.hpp"

namespace tunespace::tuner {

/// A deterministic performance surface over configurations.
class PerformanceModel {
 public:
  virtual ~PerformanceModel() = default;
  virtual std::string name() const = 0;

  /// Simulated throughput (GFLOP/s, higher is better) of a configuration.
  /// `names` gives the parameter order of `config`.
  virtual double gflops(const std::vector<std::string>& names,
                        const csp::Config& config) const = 0;

  /// Simulated wall-clock cost (seconds) of benchmarking one configuration:
  /// a fixed compile/launch overhead plus time inversely proportional to
  /// throughput.  Charged to the virtual clock by the tuning runner.
  virtual double evaluation_cost(double gflops) const;

  /// Stable identity of the performance surface, used to key the shared
  /// evaluation cache: two models may share cached measurements iff their
  /// fingerprints match.  Defaults to a hash of name(); models carrying
  /// extra state (e.g. SyntheticModel's seed) must mix it in.
  virtual std::uint64_t fingerprint() const;
};

/// Hotspot thermal-simulation kernel surface (paper §2 / §5.3.3).
class HotspotModel : public PerformanceModel {
 public:
  std::string name() const override { return "hotspot"; }
  double gflops(const std::vector<std::string>& names,
                const csp::Config& config) const override;
};

/// CLBlast-style GEMM surface (paper §5.3.5).
class GemmModel : public PerformanceModel {
 public:
  std::string name() const override { return "gemm"; }
  double gflops(const std::vector<std::string>& names,
                const csp::Config& config) const override;
};

/// Generic surface for arbitrary spaces: a deterministic multimodal mix of
/// per-parameter preferences and pairwise interactions seeded by the
/// parameter names, used by examples and tests.
class SyntheticModel : public PerformanceModel {
 public:
  explicit SyntheticModel(std::uint64_t seed = 42) : seed_(seed) {}
  std::string name() const override { return "synthetic"; }
  double gflops(const std::vector<std::string>& names,
                const csp::Config& config) const override;
  std::uint64_t fingerprint() const override;

 private:
  std::uint64_t seed_;
};

/// Look up a parameter by name; returns `fallback` when absent or
/// non-numeric.  Helper shared by the models.
double param_or(const std::vector<std::string>& names, const csp::Config& config,
                const std::string& name, double fallback);

}  // namespace tunespace::tuner
