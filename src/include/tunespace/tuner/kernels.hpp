#pragma once
// Simulated GPU kernel performance models.
//
// The paper's §5.4 experiment tunes real CUDA kernels (Hotspot, GEMM) on an
// A100.  Without GPU hardware we substitute deterministic analytical
// performance surfaces that preserve what the experiment measures: a
// multimodal landscape over the same tunable parameters, a realistic
// per-evaluation cost (compile + benchmark time, inversely related to the
// configuration's speed), and a global optimum reachable by search.  The
// surfaces encode standard GPU performance folklore (occupancy sweet spots
// around 256 threads/block, coalescing preferring wide x-dimensions,
// register pressure penalizing excessive work per thread, shared-memory
// staging bonuses) plus deterministic per-configuration jitter, so optimizer
// progress curves look and behave like real tuning runs.

#include <memory>
#include <string>
#include <vector>

#include "tunespace/csp/problem.hpp"
#include "tunespace/tuner/objective.hpp"

namespace tunespace::tuner {

/// A deterministic power surface over configurations: the driver-level
/// power-rail read (nouveau's iccsense subdev in real deployments) sampled
/// while the throughput benchmark runs.  Models that can measure power
/// derive from this *in addition to* PerformanceModel; measure() then fills
/// Measurement::watts automatically.
class PowerModel {
 public:
  virtual ~PowerModel() = default;

  /// Simulated average power draw (watts, lower is better) of a
  /// configuration.  Deterministic, like the throughput surfaces.
  virtual double watts(const std::vector<std::string>& names,
                       const csp::Config& config) const = 0;
};

/// A deterministic performance surface over configurations.
///
/// measure() is the primary entry point of the tuning stack: it returns the
/// full objective vector of one simulated benchmark run (throughput always;
/// power when the model also implements PowerModel).  gflops() remains the
/// surface definition each concrete model provides; the default measure()
/// adapts it, so legacy scalar models keep working unchanged.
class PerformanceModel {
 public:
  virtual ~PerformanceModel() = default;
  virtual std::string name() const = 0;

  /// Simulated throughput (GFLOP/s, higher is better) of a configuration.
  /// `names` gives the parameter order of `config`.
  virtual double gflops(const std::vector<std::string>& names,
                        const csp::Config& config) const = 0;

  /// One simulated benchmark run: the full measurement vector this model
  /// can produce.  The default adapts gflops() and, when the model is also
  /// a PowerModel, samples watts() during the same (virtual) benchmark —
  /// one atomic measurement, one clock charge.
  virtual Measurement measure(const std::vector<std::string>& names,
                              const csp::Config& config) const;

  /// The Measurement components this model can measure ("gflops", plus
  /// "watts" for PowerModel surfaces).  Part of fingerprint(): caches never
  /// mix vectors of different shapes.
  std::vector<std::string> objective_names() const;

  /// Simulated wall-clock cost (seconds) of benchmarking one configuration:
  /// a fixed compile/launch overhead plus time inversely proportional to
  /// throughput.  Power is sampled while the benchmark runs, so measuring
  /// it adds no cost.  Charged to the virtual clock by the tuning runner.
  virtual double evaluation_cost(double gflops) const;

  /// Stable identity of the performance surface, used to key the shared
  /// evaluation cache: two models may share cached measurements iff their
  /// fingerprints match.  Defaults to a hash of name() mixed with the
  /// objective set (objective_names()), so a model that grows a new
  /// measured component never collides with its scalar ancestor; models
  /// carrying extra state (e.g. SyntheticModel's seed) must mix it in.
  virtual std::uint64_t fingerprint() const;
};

/// Hotspot thermal-simulation kernel surface (paper §2 / §5.3.3), with a
/// deterministic power landscape (wide blocks and deep temporal tiling burn
/// more power than their throughput return).
class HotspotModel : public PerformanceModel, public PowerModel {
 public:
  std::string name() const override { return "hotspot"; }
  double gflops(const std::vector<std::string>& names,
                const csp::Config& config) const override;
  double watts(const std::vector<std::string>& names,
               const csp::Config& config) const override;
};

/// CLBlast-style GEMM surface (paper §5.3.5), with a deterministic power
/// landscape (vector width and shared-memory staging trade watts for
/// throughput).
class GemmModel : public PerformanceModel, public PowerModel {
 public:
  std::string name() const override { return "gemm"; }
  double gflops(const std::vector<std::string>& names,
                const csp::Config& config) const override;
  double watts(const std::vector<std::string>& names,
               const csp::Config& config) const override;
};

/// Generic surface for arbitrary spaces: a deterministic multimodal mix of
/// per-parameter preferences and pairwise interactions seeded by the
/// parameter names, used by examples and tests.  Also carries a synthetic
/// power landscape (a second, differently-seeded mix), so any catalog
/// kernel supports two-objective sessions.
class SyntheticModel : public PerformanceModel, public PowerModel {
 public:
  explicit SyntheticModel(std::uint64_t seed = 42) : seed_(seed) {}
  std::string name() const override { return "synthetic"; }
  double gflops(const std::vector<std::string>& names,
                const csp::Config& config) const override;
  double watts(const std::vector<std::string>& names,
               const csp::Config& config) const override;
  std::uint64_t fingerprint() const override;

 private:
  std::uint64_t seed_;
};

/// Look up a parameter by name; returns `fallback` when absent or
/// non-numeric.  Helper shared by the models.
double param_or(const std::vector<std::string>& names, const csp::Config& config,
                const std::string& name, double fallback);

}  // namespace tunespace::tuner
