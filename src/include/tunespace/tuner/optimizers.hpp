#pragma once
// Optimization algorithms over a resolved SearchSpace or a SubSpace view.
//
// All optimizers work through an EvalContext: they request evaluations by
// row id and stop when the budget callback reports exhaustion.  Neighbour
// selection goes through the resolved indexes (§4.4), which is exactly the
// integration the paper describes for Kernel Tuner's genetic algorithm
// mutation step.
//
// The context holds a SubSpace, so the same optimizer runs unchanged over a
// full space (a whole-space view costs nothing and a SearchSpace converts
// implicitly) or over a tune-time restriction (SubSpace::restrict); row ids
// are the view's local ids either way.

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tunespace/searchspace/searchspace.hpp"
#include "tunespace/searchspace/view.hpp"
#include "tunespace/tuner/objective.hpp"
#include "tunespace/util/rng.hpp"

namespace tunespace::tuner {

/// Evaluation services handed to an optimizer by the runner.
struct EvalContext {
  searchspace::SubSpace space;
  /// Evaluate a configuration; returns its scalarized objective value
  /// (higher is better; exactly the measured gflops for single-objective
  /// sessions).  Re-evaluating a row returns the cached result at no
  /// budget cost beyond the per-request overhead.
  std::function<double(std::size_t row)> evaluate;
  /// True once the tuning budget is exhausted; optimizers must return soon.
  std::function<bool()> exhausted;
  util::Rng* rng;
  /// Full objective vector of a configuration — the vector-aware sibling of
  /// evaluate(), with identical budget/memo semantics (both feed the same
  /// session core).  May be null in hand-rolled contexts; multi-objective
  /// optimizers must fall back to wrapping evaluate() into the gflops
  /// component.
  std::function<Measurement(std::size_t row)> measure{};
  /// The session's objective set; null means the legacy single objective.
  const ObjectiveSpec* objectives = nullptr;
  /// Warm-start observations the session charged before the optimizer
  /// started (TuningOptions::warm_start): view-local rows with their masked
  /// measurements, in seeding order.  Null when the session started cold —
  /// model-based optimizers treat them as free training data, everyone else
  /// ignores them (the rows are memoized, so re-requesting one costs only
  /// the per-request overhead).
  const std::vector<std::pair<std::size_t, Measurement>>* seeded = nullptr;
  /// Invoked each time a model-based optimizer (re)fits its surrogate; the
  /// session runtime counts these into SessionStats::surrogate_refits.  May
  /// be null.
  std::function<void()> on_surrogate_refit{};
};

/// Search strategy interface.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual std::string name() const = 0;
  /// Run until the context reports exhaustion (or the space is fully swept).
  virtual void run(EvalContext& ctx) = 0;
};

/// Uniform random sampling without replacement (the §5.4 baseline).
/// The permutation is generated lazily (incremental Fisher–Yates over the
/// evaluated prefix only), so a budget-limited run over a huge space pays
/// O(evaluations) memory and time instead of O(space size) up front.
class RandomSearch : public Optimizer {
 public:
  std::string name() const override { return "random-sampling"; }
  void run(EvalContext& ctx) override;
};

/// Genetic algorithm: tournament selection, uniform crossover snapped to the
/// nearest valid configuration, Hamming-1 mutation via resolved neighbours.
class GeneticAlgorithm : public Optimizer {
 public:
  struct Params {
    std::size_t population = 20;
    double mutation_rate = 0.2;
    std::size_t tournament = 3;
  };
  GeneticAlgorithm() = default;
  explicit GeneticAlgorithm(Params params) : params_(params) {}
  std::string name() const override { return "genetic-algorithm"; }
  void run(EvalContext& ctx) override;

 private:
  Params params_;
};

/// Simulated annealing over Hamming-1 neighbourhoods.
class SimulatedAnnealing : public Optimizer {
 public:
  struct Params {
    double initial_temperature = 0.3;  ///< relative to current performance
    double cooling = 0.97;             ///< multiplicative per step
  };
  SimulatedAnnealing() = default;
  explicit SimulatedAnnealing(Params params) : params_(params) {}
  std::string name() const override { return "simulated-annealing"; }
  void run(EvalContext& ctx) override;

 private:
  Params params_;
};

/// Greedy hill climbing with random restarts.
class HillClimber : public Optimizer {
 public:
  std::string name() const override { return "hill-climbing"; }
  void run(EvalContext& ctx) override;
};

/// Differential evolution in parameter index space: for each member, a
/// mutant is formed as a + F*(b - c) over per-parameter present-value
/// positions, crossed over with the member and snapped to the nearest valid
/// configuration (DE/rand/1/bin adapted to discrete constrained spaces).
class DifferentialEvolution : public Optimizer {
 public:
  struct Params {
    std::size_t population = 16;
    double differential_weight = 0.7;  ///< F
    double crossover_rate = 0.8;       ///< CR
  };
  DifferentialEvolution() = default;
  explicit DifferentialEvolution(Params params) : params_(params) {}
  std::string name() const override { return "differential-evolution"; }
  void run(EvalContext& ctx) override;

 private:
  Params params_;
};

/// NSGA-II-style non-dominated selection: generational GA whose survivor
/// and parent selection rank by (non-domination front, crowding distance)
/// over full Measurement vectors instead of scalar fitness.  Variation
/// reuses the discrete-space operators of the plain GA (uniform crossover
/// in value-index space snapped to a valid configuration, Hamming-1
/// mutation via resolved neighbours).  Deterministic for a fixed Rng:
/// sorts are stable and ties break by insertion order.  With a single
/// objective the non-dominated ranking degenerates to sorting by scalar
/// fitness, so it remains a sound (if plain) portfolio member there.
class Nsga2 : public Optimizer {
 public:
  struct Params {
    std::size_t population = 20;
    double mutation_rate = 0.2;
  };
  Nsga2() = default;
  explicit Nsga2(Params params) : params_(params) {}
  std::string name() const override { return "nsga2"; }
  void run(EvalContext& ctx) override;

 private:
  Params params_;
};

/// Model-based search guided by the ridge Surrogate (surrogate.hpp): after
/// a uniform initial design (shrunk by however many warm-start seeds the
/// session charged — those are free training data), candidate batches are
/// drawn from the existing samplers (uniform samples + the incumbent's
/// Hamming-1 neighbourhood), pre-ranked by the surrogate's predicted
/// scalarized score, and the top few evaluated; the model refits every
/// `refit_every` evaluations from everything observed so far.  Every random
/// draw goes through the context Rng and the surrogate fit is a pure
/// function of the observation set, so the whole search is deterministic
/// from the session seed — including under the portfolio's lockstep race.
class SurrogateGuided : public Optimizer {
 public:
  struct Params {
    std::size_t initial_design = 12;  ///< uniform evals before the first fit
    std::size_t batch = 16;           ///< candidates sampled per round
    std::size_t evals_per_round = 4;  ///< top-ranked candidates evaluated
    std::size_t refit_every = 8;      ///< evaluations between refits
    double ridge_lambda = 1e-3;       ///< Surrogate ridge penalty
  };
  SurrogateGuided() = default;
  explicit SurrogateGuided(Params params) : params_(params) {}
  std::string name() const override { return "surrogate"; }
  void run(EvalContext& ctx) override;

 private:
  Params params_;
};

/// The stable names of the seven standard optimizers, in portfolio order.
std::vector<std::string> optimizer_names();

/// Construct a default-parameter optimizer by its name() string — the
/// lookup the TuningService uses to honour OpenSessionRequest::optimizer.
/// Throws ServiceError(kInvalidArgument) for an unknown name.
std::unique_ptr<Optimizer> make_optimizer(const std::string& name);

}  // namespace tunespace::tuner
