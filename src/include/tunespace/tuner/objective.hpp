#pragma once
// Multi-objective measurement vocabulary: the Measurement vector, objective
// directions/weights, weighted scalarization, Pareto dominance and the
// Pareto-front point record.
//
// Real kernel measurements are vectors — throughput *and* the power rail
// sampled while the benchmark ran (see the nouveau iccsense read API the
// deployed tuner would front) — so the measurement API is vector-first:
// PerformanceModel::measure returns a Measurement, sessions carry an
// ObjectiveSpec describing which components they optimize, and everything
// scalar (best_gflops, the optimizers' fitness) is derived by weighted
// scalarization.  The single-objective default (maximize gflops, weight 1)
// scalarizes to exactly the measured gflops, which is what keeps legacy
// scalar sessions bit-identical to their pre-redesign runs.

#include <cstdint>
#include <string>
#include <vector>

namespace tunespace::tuner {

/// One simulated kernel measurement.  Components a session's ObjectiveSpec
/// does not name are *unmeasured* and masked to zero before they enter any
/// session state (trajectory, Pareto front, shared eval cache) — a session
/// only ever records what it asked to measure, which keeps closed-loop,
/// ask/tell and wire replays of the same session bit-identical even when
/// some transports cannot carry the full vector.
struct Measurement {
  double gflops = 0;  ///< throughput (higher is better)
  double watts = 0;   ///< average power draw; 0 = unmeasured

  friend bool operator==(const Measurement&, const Measurement&) = default;
};

/// Optimization direction of one objective.
enum class Direction : std::uint8_t {
  kMaximize = 0,
  kMinimize = 1,
};

/// One named objective with its direction and scalarization weight.
struct Objective {
  std::string name;  ///< a Measurement component: "gflops" or "watts"
  Direction direction = Direction::kMaximize;
  double weight = 1.0;

  friend bool operator==(const Objective&, const Objective&) = default;
};

/// The objective set of a session: which Measurement components count, in
/// which direction, and with which weights under weighted scalarization.
///
/// Default-constructed spec IS the single-objective legacy contract
/// (maximize gflops, weight 1), so an absent wire field, a default
/// TuningOptions and a pre-redesign caller all mean the same thing.
struct ObjectiveSpec {
  std::vector<Objective> objectives{{"gflops", Direction::kMaximize, 1.0}};

  /// The legacy single-objective spec (maximize gflops, weight 1).
  static ObjectiveSpec single();
  /// Two-objective perf + power spec: maximize gflops (weight
  /// `gflops_weight`), minimize watts (weight `watts_weight`).
  static ObjectiveSpec perf_and_power(double gflops_weight = 1.0,
                                      double watts_weight = 1.0);

  /// True iff this is exactly the legacy single-objective spec, i.e. the
  /// session's state degenerates to the scalar gflops contract.
  bool is_single() const;
  std::size_t size() const { return objectives.size(); }

  /// The named component of a measurement (0 for unknown names, so an
  /// objective a model cannot measure simply contributes nothing).
  static double component(const Measurement& m, const std::string& name);

  /// Keep only the components this spec names; everything else is zeroed.
  Measurement mask(const Measurement& m) const;

  /// Weighted scalarization (higher is better): sum of weight * component,
  /// negated for minimized objectives.  For single() this is exactly
  /// m.gflops, preserving scalar-session bit-identity.
  double scalarize(const Measurement& m) const;

  /// Pareto dominance under this spec: `a` is no worse than `b` in every
  /// objective (per its direction) and strictly better in at least one.
  bool dominates(const Measurement& a, const Measurement& b) const;
  /// Weak dominance: no worse in every objective (equal vectors qualify).
  bool dominates_or_equal(const Measurement& a, const Measurement& b) const;

  /// Stable identity of the objective set (names, directions, weights),
  /// mixed into eval-cache keys so sessions only share measurements taken
  /// under the same objective set.
  std::uint64_t fingerprint() const;

  friend bool operator==(const ObjectiveSpec&, const ObjectiveSpec&) = default;
};

/// One member of a run's Pareto front: a non-dominated measurement with the
/// configuration row and virtual time it was found at.
struct ParetoPoint {
  std::uint64_t row = 0;         ///< view-local row id
  std::uint64_t parent_row = 0;  ///< row id in the parent space
  Measurement measurement{};
  double time_seconds = 0;       ///< virtual time of the evaluation
  std::uint64_t evaluations = 0; ///< session evaluation count at that time

  friend bool operator==(const ParetoPoint&, const ParetoPoint&) = default;
};

}  // namespace tunespace::tuner
