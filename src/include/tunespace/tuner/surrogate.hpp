#pragma once
// Deterministic, dependency-free performance surrogate for transfer learning.
//
// The shared eval cache (session.hpp) only exploits *exact* (space, model,
// row) repeats; BENCH_sessions shows 1-12% hit rates because distinct
// sessions rarely collide exactly.  The Surrogate exploits *near* matches:
// it fits a ridge regression from accumulated (row -> Measurement)
// observations over a space and predicts the objective vector of rows nobody
// has measured yet, so a model-based optimizer (SurrogateGuided,
// optimizers.hpp) can pre-rank candidate batches and spend its budget on the
// configurations the accumulated evidence says are promising.
//
// Determinism contract (tested in test_transfer, documented in
// CONTRIBUTING.md): fitting is bit-reproducible from the observation *set* —
// observations are sorted by row (first-wins on duplicates) before the
// normal equations are accumulated in fixed order, so the trained weights,
// every predict() and every rank() are pure functions of {view, observation
// set, params}, independent of the order observations arrived in.  That is
// what lets a surrogate trained from a concurrently-populated shared cache
// stay inside the repo's bit-identity walls.

#include <cstdint>
#include <utility>
#include <vector>

#include "tunespace/searchspace/view.hpp"
#include "tunespace/tuner/objective.hpp"

namespace tunespace::tuner {

/// Ridge-regression surrogate over a SubSpace's packed parameter columns.
///
/// Features per parameter: the normalized ordinal position of the row's
/// value among the view's present values (the §4.4 "true bounds"), plus the
/// min-max-normalized numeric value itself (ordinal again for string
/// parameters, where magnitude is meaningless) — 2P+1 dimensions with the
/// intercept.  One weight vector is fit per Measurement component, so the
/// model composes with any ObjectiveSpec: rank() scalarizes the predicted
/// vectors under the caller's spec.
class Surrogate {
 public:
  struct Params {
    /// Ridge penalty added to the normal-equation diagonal; keeps the solve
    /// well-posed for any observation set (including rank-deficient ones).
    double ridge_lambda = 1e-3;
  };

  Surrogate() = default;
  explicit Surrogate(Params params) : params_(params) {}

  /// Fit from view-local (row, measurement) observations.  Duplicate rows
  /// keep the first value (matching SharedEvalCache semantics); the
  /// observation order does not matter.  An empty set leaves the model
  /// untrained.  The view must be the one predict()/rank() will use — the
  /// feature normalization is derived from its present values.
  void fit(const searchspace::SubSpace& view,
           const std::vector<std::pair<std::size_t, Measurement>>& observations);

  bool trained() const { return trained_; }
  /// Distinct observations the last fit() consumed.
  std::size_t observation_count() const { return observation_count_; }

  /// Predicted objective vector of a view-local row; requires trained().
  Measurement predict(const searchspace::SubSpace& view, std::size_t row) const;

  /// Candidates reordered by predicted scalarized score (descending), ties
  /// by ascending row — the deterministic order the model-based optimizer
  /// consumes them in.  Untrained models return the candidates sorted by
  /// row alone.
  std::vector<std::size_t> rank(const searchspace::SubSpace& view,
                                std::vector<std::size_t> candidates,
                                const ObjectiveSpec& objectives) const;

  /// Stable identity of the trained model: mixes the dimensionality, the
  /// observation count and the bit patterns of every weight, so two
  /// surrogates fingerprint equal iff they predict identically.
  std::uint64_t fingerprint() const;

 private:
  std::vector<double> encode(const searchspace::SubSpace& view,
                             std::size_t row) const;

  Params params_;
  bool trained_ = false;
  std::size_t observation_count_ = 0;
  std::size_t dims_ = 0;
  std::vector<double> weights_gflops_;
  std::vector<double> weights_watts_;
  /// Per-parameter numeric range over the fit view's present values; a
  /// degenerate range (hi <= lo, or a string parameter) falls back to the
  /// ordinal feature.
  std::vector<double> value_lo_;
  std::vector<double> value_hi_;
};

}  // namespace tunespace::tuner
