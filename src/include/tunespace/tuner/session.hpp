#pragma once
// Concurrent multi-session tuning runtime.
//
// run_tuning (runner.hpp) drives exactly one optimizer over one space.  A
// production tuner serves many sessions at once — several kernels, several
// devices, several users — and most of that load is redundant: sessions
// tuning the same spec re-solve the same constrained space and re-measure
// the same configurations.  This header adds the runtime that amortizes
// both:
//
//   SharedEvalCache   lock-striped map of simulated kernel measurements
//                     keyed by (space fingerprint, parent row id).  The
//                     performance models are deterministic, so a cached
//                     value is bit-identical to a fresh measurement and
//                     sharing never changes a session's result — it only
//                     skips redundant model work.
//
//   SessionStepper    the single session core, inverted into a resumable
//                     ask/tell state machine: suggest() yields the next
//                     configuration to measure, report() feeds the
//                     measurement back and advances the virtual clock,
//                     budget accounting, trajectory and shared-cache
//                     interaction.  The legacy run_tuning overloads, the
//                     SessionManager workers, the Portfolio members and the
//                     TuningService (service.hpp) are all thin drivers over
//                     it — the session semantics exist exactly once.
//
//   run_session       the closed-loop driver over a SessionStepper: takes
//                     one SessionRequest, asks, answers each suggestion
//                     with PerformanceModel::measure, and returns the
//                     finished TuningRun (trajectory + Pareto front).
//
//   SessionManager    schedules many TuningSessions over a worker pool.
//                     Sessions whose spec + method hash to the same
//                     fingerprint share one immutable SearchSpace: the
//                     first session to need it builds it (optionally via
//                     SearchSpace::load_or_build when a snapshot cache
//                     directory is configured) and every other session
//                     blocks on the same shared_future instead of
//                     re-solving.  Results are byte-deterministic per
//                     session for a fixed seed, independent of the worker
//                     count and of which sessions run concurrently.
//
//   run_portfolio     races N optimizers (seed-split from one root seed)
//                     over the same view with a shared best-so-far and an
//                     early-stop rule.  Members run on real threads but
//                     their evaluations are serialized in *virtual-time*
//                     order by a lockstep scheduler (ties broken by member
//                     index), so the shared best, the early stop and every
//                     member trajectory are reproducible bit-for-bit
//                     regardless of thread scheduling.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "tunespace/searchspace/query.hpp"
#include "tunespace/searchspace/searchspace.hpp"
#include "tunespace/searchspace/view.hpp"
#include "tunespace/tuner/api.hpp"
#include "tunespace/tuner/runner.hpp"
#include "tunespace/util/timer.hpp"

namespace tunespace::tuner {

/// Lock-striped cache of kernel measurements shared across concurrent
/// sessions, keyed by (space fingerprint, parent row id) so sessions tuning
/// different restrictions of the same space still share.  Values are full
/// Measurement vectors, already masked to the owning session's objective
/// set; the cache fingerprint mixes that objective set, so sessions only
/// ever share vectors of the same shape.  Values come from the
/// deterministic performance models, so a hit returns exactly what a fresh
/// measurement would — sharing is invisible in the results.
class SharedEvalCache {
 public:
  explicit SharedEvalCache(std::size_t stripes = 64);
  ~SharedEvalCache();  // out of line: Stripe is an implementation detail
  SharedEvalCache(const SharedEvalCache&) = delete;
  SharedEvalCache& operator=(const SharedEvalCache&) = delete;

  /// Cached measurement for (space, row), if any session has produced it.
  std::optional<Measurement> lookup(std::uint64_t space_fingerprint,
                                    std::uint64_t parent_row) const;
  /// Publish a measurement (idempotent: later inserts keep the first value).
  void insert(std::uint64_t space_fingerprint, std::uint64_t parent_row,
              const Measurement& measurement);

  std::size_t size() const;      ///< distinct cached measurements
  std::uint64_t hits() const;    ///< lookups served from the cache
  std::uint64_t misses() const;  ///< lookups that fell through to the model

  /// Visit every cached entry (stripe by stripe, under the stripe locks);
  /// visiting order is unspecified.  Powers the TuningService's eval-cache
  /// persistence.
  void for_each(const std::function<void(std::uint64_t space_fingerprint,
                                         std::uint64_t parent_row,
                                         const Measurement& measurement)>& fn)
      const;

  /// Every cached (parent row, measurement) under one fingerprint, sorted
  /// by ascending row — the deterministic enumeration warm-start seeding
  /// ranks from.  A scan, not a lookup: it does not touch the hit/miss
  /// counters.
  std::vector<std::pair<std::uint64_t, Measurement>> entries_for(
      std::uint64_t space_fingerprint) const;

 private:
  struct Stripe;
  std::size_t stripe_of(std::uint64_t space_fingerprint,
                        std::uint64_t parent_row) const;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

/// Per-session observability filled by the shared runtime.
struct SessionStats {
  bool shared_space = false;        ///< space was reused from the registry
  double space_seconds = 0;         ///< wall seconds acquiring the space
  double session_seconds = 0;       ///< wall seconds in the session loop
  std::uint64_t shared_cache_hits = 0;    ///< evals served by SharedEvalCache
  std::uint64_t model_evaluations = 0;    ///< evals actually computed
  std::uint64_t seeded_rows = 0;          ///< warm-start rows charged at open
  std::uint64_t surrogate_refits = 0;     ///< model-based optimizer refits
};

/// Internal hooks the Portfolio scheduler injects into the session loop;
/// default-constructed hooks are inert (the plain run_tuning path).
struct SessionHooks {
  /// Blocks until this session may perform its next evaluation request
  /// (the lockstep virtual-time turnstile); called with the current
  /// virtual time before any budget is charged.
  std::function<void(double now)> before_request;
  /// Observes each completed (non-memoized) evaluation at its virtual time.
  /// `score` is the session's scalarized objective value (exactly the
  /// measured gflops for single-objective sessions), so the portfolio race
  /// compares members on one shared axis regardless of objective count.
  std::function<void(std::size_t local_row, double score, double now)> on_eval;
  /// Extra stop predicate OR-ed into the budget check (shared early stop).
  std::function<bool(double now)> stop;
};

/// A configuration the stepper wants measured.
struct Suggestion {
  std::size_t row = 0;           ///< view-local row id
  std::uint64_t parent_row = 0;  ///< row id in the parent space
  csp::Config config;            ///< values in declared parameter order
};

/// The session core inverted into a resumable ask/tell state machine.
///
/// A SessionStepper owns one session's virtual clock, budget and overhead
/// accounting, trajectory, session-local memo and shared-eval-cache
/// interaction.  The optimizer runs unchanged on a private worker thread;
/// whenever it requests an evaluation the stepper either satisfies it
/// internally (session memo, shared cache — both charge the clock exactly
/// as the closed loop did) or parks the worker and surfaces the
/// configuration through suggest().  report() feeds the measurement back,
/// resumes the worker and returns once it parks at the next request (or
/// finishes), so between any two public calls the machine is quiescent and
/// every accessor is safe.
///
/// Contract (enforced with ServiceError):
///   - suggest() and report() strictly alternate: report() without an
///     outstanding suggestion throws kWrongState, as does suggest() while a
///     report is pending.  Once the session completed, suggest() returns
///     nullopt (idempotently) and report() throws kSessionFinished.
///   - Replay is deterministic: driving the stepper with the same view,
///     optimizer, options and measurement sequence reproduces the same
///     suggestions and the same TuningRun bit-for-bit — run_session_loop is
///     exactly such a drive, so an ask/tell replay matches the closed loop.
///   - A measurement reported for (view, cache_fingerprint) becomes visible
///     to every other session sharing the cache the moment report() charges
///     it; later sessions hitting the entry still charge full evaluation
///     cost, so sharing never changes any session's TuningRun.
class SessionStepper {
 public:
  /// Computes the virtual-clock charge of a measurement (the model's
  /// evaluation_cost on the library path — power rides along with the
  /// throughput benchmark, so the vector costs what the scalar did); also
  /// used to charge shared-cache hits, which never reach the reporter.
  using CostFn = std::function<double(const Measurement& measurement)>;

  /// `optimizer`, `stats` and everything captured by `cost` and `hooks`
  /// must outlive the stepper.  The constructor runs the optimizer up to
  /// its first evaluation request (or to completion, for an empty view or
  /// an exhausted budget).
  SessionStepper(searchspace::SubSpace view, std::string method_name,
                 double construction_seconds, Optimizer& optimizer,
                 const TuningOptions& options, CostFn cost,
                 SharedEvalCache* shared_cache = nullptr,
                 std::uint64_t cache_fingerprint = 0,
                 SessionStats* stats = nullptr, SessionHooks hooks = {});
  ~SessionStepper();  // cancels a still-live session
  SessionStepper(const SessionStepper&) = delete;
  SessionStepper& operator=(const SessionStepper&) = delete;

  /// Next configuration to measure, or nullopt once the session finished
  /// (budget exhausted or the optimizer swept the space).  Rethrows any
  /// exception the optimizer escaped with.
  std::optional<Suggestion> suggest();

  /// Answer the outstanding suggestion with a full objective vector;
  /// `measure_seconds` is the wall cost charged to the virtual clock (< 0
  /// charges cost(measurement), the model path).  The vector is masked to
  /// the session's ObjectiveSpec before it touches any session state —
  /// trajectory, Pareto front, memo, shared cache — so a session only ever
  /// records what it asked to measure.  Publishes to the shared cache,
  /// advances the clock, memoizes, and extends the trajectory and front.
  void report(const Measurement& measurement, double measure_seconds = -1.0);

  /// Scalar shim over report(Measurement): a gflops-only measurement, the
  /// v1 wire shape.  Components beyond gflops are unmeasured (zero).
  void report(double gflops, double measure_seconds = -1.0);

  /// Abort the optimizer and finalize with the partial TuningRun (idempotent).
  void cancel();

  bool awaiting_report() const { return awaiting_report_; }
  bool finished() const { return finished_; }
  double now() const { return clock_.now(); }  ///< session virtual time
  const searchspace::SubSpace& view() const { return view_; }
  const std::vector<std::string>& param_names() const { return names_; }
  /// The run so far (final once finished()); valid between public calls.
  const TuningRun& run() const { return run_; }
  /// Move the finished run out; requires finished().
  TuningRun take_run();
  /// Best measured configuration so far; nullopt before the first
  /// improvement.
  const std::optional<Suggestion>& best() const { return best_; }
  /// Warm-start observations charged before the optimizer started (empty
  /// for cold sessions): view-local rows with their masked measurements, in
  /// seeding order.
  const std::vector<std::pair<std::size_t, Measurement>>& seeded() const {
    return seeded_;
  }

 private:
  struct Reply {
    Measurement measurement{};
    double cost_seconds = -1;
  };

  // Optimizer-facing (worker thread): the full request flow — overhead,
  // memo, budget, shared cache or rendezvous, clock charge, trajectory and
  // Pareto-front upkeep — returning the masked measurement.  evaluate() is
  // its scalarized view, the fitness the legacy optimizers consume.
  Measurement measure_row(std::size_t row);
  double evaluate(std::size_t row);
  void seed_from_cache();  // TuningOptions::warm_start, before the worker
  void update_front(std::size_t row, std::uint64_t parent_row,
                    const Measurement& measurement);
  Reply yield_ask(Suggestion ask);       // park the worker, wait for report
  void wait_parked(std::unique_lock<std::mutex>& lock);
  void finalize();                       // join + rethrow a worker error

  searchspace::SubSpace view_;
  TuningOptions options_;
  Optimizer* optimizer_;
  CostFn cost_;
  SharedEvalCache* shared_cache_;
  std::uint64_t cache_fingerprint_;
  SessionStats* stats_;
  SessionHooks hooks_;
  std::vector<std::string> names_;
  util::VirtualClock clock_;
  util::WallTimer wall_;
  util::Rng rng_;
  std::unordered_map<std::size_t, Measurement> memo_;
  TuningRun run_;
  std::optional<Suggestion> best_;
  std::vector<std::pair<std::size_t, Measurement>> seeded_;

  // Rendezvous between the driver (public methods) and the worker thread.
  // All flags below are guarded by mutex_; outside a public call the worker
  // is parked in yield_ask or has set done_, so the driver-side reads of
  // run_/clock_/best_ race with nothing.
  std::thread worker_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::optional<Suggestion> pending_;  ///< parked ask not yet consumed
  Reply reply_;
  bool resume_ = false;
  std::atomic<bool> abort_{false};
  bool done_ = false;
  std::exception_ptr worker_error_;
  bool awaiting_report_ = false;
  bool finished_ = false;
};

/// One tuning session, for run_session and the SessionManager — the single
/// options struct every tuning path is phrased in.  Exactly one source of
/// the space must be set: either `spec` (+ optional `make_method`) for a
/// fresh construction, or `view` for an already-resolved space or a
/// restriction of one.  The optimizer likewise comes from either
/// `make_optimizer` (owning; preferred, and required under a
/// SessionManager, whose workers need a fresh instance per run) or
/// `optimizer` (non-owning, for callers holding one).
struct SessionRequest {
  TuningProblem spec;
  std::shared_ptr<const PerformanceModel> model;
  std::function<std::unique_ptr<Optimizer>()> make_optimizer;
  TuningOptions options;
  /// Optional tune-time restriction applied to the (shared) space; the
  /// trivial predicate tunes over the whole space.
  searchspace::query::Predicate restriction;
  /// Optional construction-method override; null uses the manager's
  /// default (the optimized method).  Sessions share a space iff their
  /// (spec, method) fingerprints match.
  std::function<Method()> make_method;
  /// Non-owning method alternative to make_method (Method is move-only, so
  /// callers holding one lend it instead of wrapping it in a factory); must
  /// outlive the call and wins over make_method when both are set.
  const Method* method = nullptr;
  /// Pre-resolved space (or restriction) to tune over instead of
  /// constructing one from `spec`; rows in the run are the view's local
  /// ids.  `restriction` still applies on top when non-trivial.
  std::optional<searchspace::SubSpace> view;
  /// Run label when `view` is set (constructed spaces use the method's
  /// name); empty means "subspace".
  std::string method_name;
  /// Construction latency charged to the virtual clock when `view` is set;
  /// < 0 charges the view's parent-space construction time.  (With `spec`,
  /// the fresh construction is measured and charged, as always subject to
  /// TuningOptions::fixed_construction_seconds.)
  double construction_seconds = -1;
  /// Non-owning optimizer alternative to make_optimizer; must outlive the
  /// call.
  Optimizer* optimizer = nullptr;
  /// Cross-session measurement sharing (see SharedEvalCache); the
  /// fingerprint must identify the (space, model, objective-set) triple —
  /// mix SearchSpace::fingerprint(), PerformanceModel::fingerprint() and
  /// ObjectiveSpec::fingerprint() — so sessions only ever share
  /// measurements of the same surface, space and vector shape.  Cache hits
  /// still charge full evaluation cost and count as evaluations, so a
  /// session's TuningRun is bit-identical with and without sharing.
  SharedEvalCache* shared_cache = nullptr;
  std::uint64_t cache_fingerprint = 0;
  SessionStats* stats = nullptr;  ///< optional observability sink
  SessionHooks hooks;             ///< portfolio/lockstep injection points
};

/// Run one tuning session described by a SessionRequest: resolve the space
/// (construct from `spec` or adopt `view`), drive the optimizer through a
/// SessionStepper closed loop answering every suggestion with
/// model->measure(), and return the finished TuningRun.  This is the one
/// canonical entry point; the deprecated run_tuning / run_session_loop
/// shims and the SessionManager workers all phrase themselves as
/// SessionRequests.
TuningRun run_session(const SessionRequest& request);

/// Convenience builders for the common shapes.  The returned request
/// borrows `model`, `optimizer` and (for the view form) the view's parent
/// space — all must outlive the run_session call.
SessionRequest make_session_request(const TuningProblem& spec,
                                    const Method& method,
                                    const PerformanceModel& model,
                                    Optimizer& optimizer,
                                    const TuningOptions& options);
SessionRequest make_session_request(const searchspace::SubSpace& view,
                                    const PerformanceModel& model,
                                    Optimizer& optimizer,
                                    const TuningOptions& options,
                                    const std::string& method_name = "subspace");

/// Deprecated spelling of run_session(SessionRequest): kept for one release
/// as a shim (see CONTRIBUTING.md).  Identical semantics — it builds the
/// equivalent SessionRequest and forwards.
[[deprecated(
    "use run_session(SessionRequest) / make_session_request; see "
    "CONTRIBUTING.md")]]
TuningRun run_session_loop(const searchspace::SubSpace& view,
                           const std::string& method_name,
                           double construction_seconds,
                           const PerformanceModel& model, Optimizer& optimizer,
                           const TuningOptions& options,
                           SharedEvalCache* shared_cache = nullptr,
                           std::uint64_t cache_fingerprint = 0,
                           SessionStats* stats = nullptr,
                           const SessionHooks& hooks = {});

/// Result of one scheduled session.
struct SessionResult {
  TuningRun run;
  SessionStats stats;
};

/// Options for a SessionManager.
struct SessionManagerOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  std::size_t workers = 0;
  /// When non-empty, shared spaces resolve through
  /// SearchSpace::load_or_build(spec, method, snapshot_cache_dir), so a
  /// warm snapshot cache makes even the first session's construction fast.
  std::string snapshot_cache_dir;
  /// Share one immutable SearchSpace between same-fingerprint sessions.
  bool share_spaces = true;
  /// Share kernel measurements between sessions via SharedEvalCache.
  bool share_evaluations = true;
  /// Lock stripes of the shared evaluation cache.
  std::size_t cache_stripes = 64;
};

/// Schedules many tuning sessions over a worker pool, sharing immutable
/// spaces and kernel measurements between sessions of the same spec.
/// Thread-safe; one manager can serve many run_all calls (the eval cache
/// and space registry persist across them).
class SessionManager {
 public:
  explicit SessionManager(SessionManagerOptions options = {});
  ~SessionManager();
  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Run every session to completion; results are indexed like `requests`.
  /// Each session's TuningRun is identical to what an isolated run_tuning
  /// with the same spec, optimizer, and options would produce (fix
  /// TuningOptions::fixed_construction_seconds for bit-exact equality —
  /// measured construction latency is machine noise).
  std::vector<SessionResult> run_all(std::vector<SessionRequest> requests);

  /// The shared space for (spec, method): built at most once per
  /// fingerprint; concurrent callers block on the in-flight build.  Specs
  /// carrying native lambda constraints cannot be fingerprinted and get a
  /// private space.  `stats` (optional) reports whether the space was
  /// shared and the wall seconds spent waiting.
  std::shared_ptr<const searchspace::SearchSpace> acquire_space(
      const TuningProblem& spec, const Method& method,
      SessionStats* stats = nullptr);

  const SharedEvalCache& eval_cache() const { return eval_cache_; }
  /// Mutable cache access for runtimes layered on top (the TuningService
  /// hands it to its steppers and persists it across restarts).
  SharedEvalCache& eval_cache() { return eval_cache_; }
  const SessionManagerOptions& options() const { return options_; }
  std::size_t spaces_built() const;   ///< registry misses (fresh builds)
  std::size_t spaces_shared() const;  ///< registry hits (reused spaces)

 private:
  SessionResult run_one(SessionRequest& request);

  SessionManagerOptions options_;
  SharedEvalCache eval_cache_;
  struct SpaceRegistry;
  std::unique_ptr<SpaceRegistry> registry_;
};

/// Options for a portfolio race.
struct PortfolioOptions {
  /// Budget / overhead / construction charge shared by every member; the
  /// seed is the *root* seed, split into one independent stream per member.
  TuningOptions base;
  /// Early stop: halt every member once the shared best has not improved
  /// for this much virtual time (0 disables the rule).
  double stall_seconds = 0;
  /// Early stop: halt every member once the shared best reaches this
  /// performance (0 disables the rule).
  double target_gflops = 0;
};

/// One racer's outcome.
struct PortfolioMemberResult {
  std::string optimizer_name;
  std::uint64_t seed = 0;  ///< the member's split seed
  TuningRun run;
};

/// Result of a portfolio race: per-member trajectories plus the merged run.
struct PortfolioResult {
  std::vector<PortfolioMemberResult> members;
  /// All member trajectories merged on the shared virtual timeline
  /// (best-so-far across the whole portfolio; evaluations are summed).
  TuningRun merged;
  std::size_t winner = 0;     ///< member holding the final shared best
  bool early_stopped = false; ///< a PortfolioOptions rule ended the race
};

/// Race `optimizers` over `view` with a shared best-so-far: members run
/// concurrently but every evaluation is serialized in virtual-time order
/// (ties by member index), so the race is reproducible bit-for-bit for a
/// fixed root seed regardless of thread count.  Member i draws its seed
/// from the root seed's split stream.  `shared_cache` (optional) lets the
/// race share measurements with a surrounding SessionManager; when null,
/// members still share measurements with each other through a race-local
/// cache.
PortfolioResult run_portfolio(const searchspace::SubSpace& view,
                              const PerformanceModel& model,
                              std::vector<std::unique_ptr<Optimizer>> optimizers,
                              const PortfolioOptions& options,
                              SharedEvalCache* shared_cache = nullptr);

/// The standard seven-optimizer portfolio (random sampling, genetic
/// algorithm, simulated annealing, hill climbing, differential evolution,
/// NSGA-II non-dominated selection, surrogate-guided model-based search).
std::vector<std::unique_ptr<Optimizer>> default_portfolio();

/// Persist every entry of a SharedEvalCache as a TSEC file — one sorted
/// "fingerprint row gflops watts" hex quad per line, so equal cache contents
/// produce byte-identical files regardless of insertion order.  Throws
/// ServiceError(kIo) on write failure.  This is the format the
/// TuningService's state dir uses (eval_cache.tsv) and the unit fleet-level
/// replication merges.
void save_shared_eval_cache(const SharedEvalCache& cache,
                            const std::string& path);

/// Merge a TSEC file (version 1 or 2) into `cache`; returns the rows read.
/// Insertion goes through SharedEvalCache::insert, so merging is
/// first-insert-wins: loading files with overlapping keys keeps whichever
/// value got there first, and loading them in any order yields the same
/// cache when the overlapping values agree (the deterministic-model case —
/// tested in test_transfer, the property fleet-level cache replication
/// depends on).  A missing or foreign-format file loads zero rows (a warm
/// restart must tolerate a cold or stale state dir).
std::size_t load_shared_eval_cache(SharedEvalCache& cache,
                                   const std::string& path);

}  // namespace tunespace::tuner
