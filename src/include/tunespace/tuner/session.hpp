#pragma once
// Concurrent multi-session tuning runtime.
//
// run_tuning (runner.hpp) drives exactly one optimizer over one space.  A
// production tuner serves many sessions at once — several kernels, several
// devices, several users — and most of that load is redundant: sessions
// tuning the same spec re-solve the same constrained space and re-measure
// the same configurations.  This header adds the runtime that amortizes
// both:
//
//   SharedEvalCache   lock-striped map of simulated kernel measurements
//                     keyed by (space fingerprint, parent row id).  The
//                     performance models are deterministic, so a cached
//                     value is bit-identical to a fresh measurement and
//                     sharing never changes a session's result — it only
//                     skips redundant model work.
//
//   run_session_loop  the single session-loop core (virtual clock, budget
//                     and overhead accounting, trajectory recording) that
//                     the legacy run_tuning overloads, the SessionManager
//                     workers and the Portfolio members all call.
//
//   SessionManager    schedules many TuningSessions over a worker pool.
//                     Sessions whose spec + method hash to the same
//                     fingerprint share one immutable SearchSpace: the
//                     first session to need it builds it (optionally via
//                     SearchSpace::load_or_build when a snapshot cache
//                     directory is configured) and every other session
//                     blocks on the same shared_future instead of
//                     re-solving.  Results are byte-deterministic per
//                     session for a fixed seed, independent of the worker
//                     count and of which sessions run concurrently.
//
//   run_portfolio     races N optimizers (seed-split from one root seed)
//                     over the same view with a shared best-so-far and an
//                     early-stop rule.  Members run on real threads but
//                     their evaluations are serialized in *virtual-time*
//                     order by a lockstep scheduler (ties broken by member
//                     index), so the shared best, the early stop and every
//                     member trajectory are reproducible bit-for-bit
//                     regardless of thread scheduling.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "tunespace/searchspace/query.hpp"
#include "tunespace/searchspace/searchspace.hpp"
#include "tunespace/searchspace/view.hpp"
#include "tunespace/tuner/runner.hpp"

namespace tunespace::tuner {

/// Lock-striped cache of kernel measurements shared across concurrent
/// sessions, keyed by (space fingerprint, parent row id) so sessions tuning
/// different restrictions of the same space still share.  Values come from
/// the deterministic performance models, so a hit returns exactly what a
/// fresh measurement would — sharing is invisible in the results.
class SharedEvalCache {
 public:
  explicit SharedEvalCache(std::size_t stripes = 64);
  ~SharedEvalCache();  // out of line: Stripe is an implementation detail
  SharedEvalCache(const SharedEvalCache&) = delete;
  SharedEvalCache& operator=(const SharedEvalCache&) = delete;

  /// Cached measurement for (space, row), if any session has produced it.
  std::optional<double> lookup(std::uint64_t space_fingerprint,
                               std::uint64_t parent_row) const;
  /// Publish a measurement (idempotent: later inserts keep the first value).
  void insert(std::uint64_t space_fingerprint, std::uint64_t parent_row,
              double gflops);

  std::size_t size() const;      ///< distinct cached measurements
  std::uint64_t hits() const;    ///< lookups served from the cache
  std::uint64_t misses() const;  ///< lookups that fell through to the model

 private:
  struct Stripe;
  std::size_t stripe_of(std::uint64_t space_fingerprint,
                        std::uint64_t parent_row) const;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

/// Per-session observability filled by the shared runtime.
struct SessionStats {
  bool shared_space = false;        ///< space was reused from the registry
  double space_seconds = 0;         ///< wall seconds acquiring the space
  double session_seconds = 0;       ///< wall seconds in the session loop
  std::uint64_t shared_cache_hits = 0;    ///< evals served by SharedEvalCache
  std::uint64_t model_evaluations = 0;    ///< evals actually computed
};

/// Internal hooks the Portfolio scheduler injects into the session loop;
/// default-constructed hooks are inert (the plain run_tuning path).
struct SessionHooks {
  /// Blocks until this session may perform its next evaluation request
  /// (the lockstep virtual-time turnstile); called with the current
  /// virtual time before any budget is charged.
  std::function<void(double now)> before_request;
  /// Observes each completed (non-memoized) evaluation at its virtual time.
  std::function<void(std::size_t local_row, double gflops, double now)> on_eval;
  /// Extra stop predicate OR-ed into the budget check (shared early stop).
  std::function<bool(double now)> stop;
};

/// The single session-loop core: charge `construction_seconds` to a fresh
/// virtual clock, then drive `optimizer` over `view` until the budget is
/// exhausted, recording the best-so-far trajectory.  Both run_tuning
/// overloads, the SessionManager and the Portfolio call this — the
/// virtual-clock / overhead accounting exists exactly once.
///
/// `shared_cache` (optional) is consulted before the performance model,
/// keyed by `cache_fingerprint` and the view's *parent* row ids; cache hits
/// still charge the model's evaluation cost and count as evaluations, so a
/// session's TuningRun is bit-identical with and without sharing.
/// `cache_fingerprint` must identify the (space, model) pair — the
/// SessionManager mixes SearchSpace::fingerprint() with
/// PerformanceModel::fingerprint() — so sessions only ever share
/// measurements of the same surface over the same space.
TuningRun run_session_loop(const searchspace::SubSpace& view,
                           const std::string& method_name,
                           double construction_seconds,
                           const PerformanceModel& model, Optimizer& optimizer,
                           const TuningOptions& options,
                           SharedEvalCache* shared_cache = nullptr,
                           std::uint64_t cache_fingerprint = 0,
                           SessionStats* stats = nullptr,
                           const SessionHooks& hooks = {});

/// One tuning session to schedule on a SessionManager.
struct SessionRequest {
  TuningProblem spec;
  std::shared_ptr<const PerformanceModel> model;
  std::function<std::unique_ptr<Optimizer>()> make_optimizer;
  TuningOptions options;
  /// Optional tune-time restriction applied to the (shared) space; the
  /// trivial predicate tunes over the whole space.
  searchspace::query::Predicate restriction;
  /// Optional construction-method override; null uses the manager's
  /// default (the optimized method).  Sessions share a space iff their
  /// (spec, method) fingerprints match.
  std::function<Method()> make_method;
};

/// Result of one scheduled session.
struct SessionResult {
  TuningRun run;
  SessionStats stats;
};

/// Options for a SessionManager.
struct SessionManagerOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  std::size_t workers = 0;
  /// When non-empty, shared spaces resolve through
  /// SearchSpace::load_or_build(spec, method, snapshot_cache_dir), so a
  /// warm snapshot cache makes even the first session's construction fast.
  std::string snapshot_cache_dir;
  /// Share one immutable SearchSpace between same-fingerprint sessions.
  bool share_spaces = true;
  /// Share kernel measurements between sessions via SharedEvalCache.
  bool share_evaluations = true;
  /// Lock stripes of the shared evaluation cache.
  std::size_t cache_stripes = 64;
};

/// Schedules many tuning sessions over a worker pool, sharing immutable
/// spaces and kernel measurements between sessions of the same spec.
/// Thread-safe; one manager can serve many run_all calls (the eval cache
/// and space registry persist across them).
class SessionManager {
 public:
  explicit SessionManager(SessionManagerOptions options = {});
  ~SessionManager();
  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Run every session to completion; results are indexed like `requests`.
  /// Each session's TuningRun is identical to what an isolated run_tuning
  /// with the same spec, optimizer, and options would produce (fix
  /// TuningOptions::fixed_construction_seconds for bit-exact equality —
  /// measured construction latency is machine noise).
  std::vector<SessionResult> run_all(std::vector<SessionRequest> requests);

  /// The shared space for (spec, method): built at most once per
  /// fingerprint; concurrent callers block on the in-flight build.  Specs
  /// carrying native lambda constraints cannot be fingerprinted and get a
  /// private space.  `stats` (optional) reports whether the space was
  /// shared and the wall seconds spent waiting.
  std::shared_ptr<const searchspace::SearchSpace> acquire_space(
      const TuningProblem& spec, const Method& method,
      SessionStats* stats = nullptr);

  const SharedEvalCache& eval_cache() const { return eval_cache_; }
  const SessionManagerOptions& options() const { return options_; }
  std::size_t spaces_built() const;   ///< registry misses (fresh builds)
  std::size_t spaces_shared() const;  ///< registry hits (reused spaces)

 private:
  SessionResult run_one(SessionRequest& request);

  SessionManagerOptions options_;
  SharedEvalCache eval_cache_;
  struct SpaceRegistry;
  std::unique_ptr<SpaceRegistry> registry_;
};

/// Options for a portfolio race.
struct PortfolioOptions {
  /// Budget / overhead / construction charge shared by every member; the
  /// seed is the *root* seed, split into one independent stream per member.
  TuningOptions base;
  /// Early stop: halt every member once the shared best has not improved
  /// for this much virtual time (0 disables the rule).
  double stall_seconds = 0;
  /// Early stop: halt every member once the shared best reaches this
  /// performance (0 disables the rule).
  double target_gflops = 0;
};

/// One racer's outcome.
struct PortfolioMemberResult {
  std::string optimizer_name;
  std::uint64_t seed = 0;  ///< the member's split seed
  TuningRun run;
};

/// Result of a portfolio race: per-member trajectories plus the merged run.
struct PortfolioResult {
  std::vector<PortfolioMemberResult> members;
  /// All member trajectories merged on the shared virtual timeline
  /// (best-so-far across the whole portfolio; evaluations are summed).
  TuningRun merged;
  std::size_t winner = 0;     ///< member holding the final shared best
  bool early_stopped = false; ///< a PortfolioOptions rule ended the race
};

/// Race `optimizers` over `view` with a shared best-so-far: members run
/// concurrently but every evaluation is serialized in virtual-time order
/// (ties by member index), so the race is reproducible bit-for-bit for a
/// fixed root seed regardless of thread count.  Member i draws its seed
/// from the root seed's split stream.  `shared_cache` (optional) lets the
/// race share measurements with a surrounding SessionManager; when null,
/// members still share measurements with each other through a race-local
/// cache.
PortfolioResult run_portfolio(const searchspace::SubSpace& view,
                              const PerformanceModel& model,
                              std::vector<std::unique_ptr<Optimizer>> optimizers,
                              const PortfolioOptions& options,
                              SharedEvalCache* shared_cache = nullptr);

/// The standard five-optimizer portfolio (random sampling, genetic
/// algorithm, simulated annealing, hill climbing, differential evolution).
std::vector<std::unique_ptr<Optimizer>> default_portfolio();

}  // namespace tunespace::tuner
