#pragma once
// Synthetic search-space generator (paper §5.2.1).
//
// Generates spaces over a grid of {dimensions 2-5} x {seven Cartesian-size
// targets} x {1-6 constraints}.  Per the paper: the number of values per
// dimension is kept approximately uniform at v = s^(1/d); the first d-1
// dimensions round v to the nearest integer and the last dimension is
// chosen to land the realized Cartesian size closest to the target.
// Constraints are drawn from a pool of arithmetic templates over randomly
// chosen dimension subsets, with thresholds picked from sampled quantiles so
// spaces stay non-empty with realistic sparsity (valid count averaging about
// one order of magnitude below the Cartesian size, Fig. 2).
//
// Everything is deterministic in the seed, so the 78-space suite is
// reproducible across runs and machines.

#include <cstdint>
#include <string>
#include <vector>

#include "tunespace/tuner/tuning_problem.hpp"

namespace tunespace::spaces {

/// One generated synthetic space plus its generation parameters.
struct SyntheticSpace {
  std::string name;
  std::size_t dims = 0;
  std::uint64_t target_cartesian = 0;
  std::size_t num_constraints = 0;
  tuner::TuningProblem spec;
};

/// Generation knobs.
struct SyntheticOptions {
  std::uint64_t seed = 2025;
  /// Scale applied to the Cartesian-size targets; Fig. 4 uses 0.1 (the
  /// paper reduces the spaces by one order of magnitude for the SMT run).
  double size_scale = 1.0;
};

/// The paper's Cartesian-size targets: {1,2,5}x10^4, {1,2,5}x10^5, 1x10^6.
std::vector<std::uint64_t> synthetic_size_targets();

/// Generate the deterministic 78-space suite.
std::vector<SyntheticSpace> synthetic_suite(const SyntheticOptions& options = {});

/// Generate a single space (exposed for tests and custom experiments).
SyntheticSpace make_synthetic(std::size_t dims, std::uint64_t target_cartesian,
                              std::size_t num_constraints, std::uint64_t seed);

}  // namespace tunespace::spaces
