#pragma once
// The eight real-world search spaces of Table 2.
//
// Parameter counts and Cartesian sizes match the paper exactly (asserted by
// tests); constraint sets use the same structural families as the original
// kernels (min/max thread-block products, shared-memory capacity bounds,
// divisibility/tiling chains), with thresholds calibrated so the valid
// fraction approximates the paper's.  Exact upstream definitions are not all
// published; EXPERIMENTS.md records paper-vs-measured for every column.

#include <cstdint>
#include <string>
#include <vector>

#include "tunespace/tuner/tuning_problem.hpp"

namespace tunespace::spaces {

/// Paper-reported characteristics (Table 2) for comparison in benches/tests.
struct Table2Row {
  std::uint64_t cartesian_size = 0;
  std::uint64_t valid_size = 0;     ///< "Constraint size" column
  std::size_t num_params = 0;
  std::size_t num_constraints = 0;  ///< user-level constraints
  double percent_valid = 0.0;
};

/// A named space plus its paper-reported row.
struct RealWorldSpace {
  std::string name;
  tuner::TuningProblem spec;
  Table2Row paper;
};

/// Dedispersion kernel (radio astronomy, BAT suite) — §5.3.1.
RealWorldSpace dedispersion();
/// ExpDist kernel (localization microscopy particle fusion) — §5.3.2.
RealWorldSpace expdist();
/// Hotspot thermal simulation kernel (BAT suite) — §5.3.3.
RealWorldSpace hotspot();
/// CLBlast GEMM kernel — §5.3.5.
RealWorldSpace gemm();
/// MicroHH advec_u CFD kernel — §5.3.4.
RealWorldSpace microhh();
/// ATF Probabilistic Record Linkage kernel; input_size in {2, 4, 8} — §5.3.6.
RealWorldSpace atf_prl(int input_size);

/// All eight spaces in Table 2 order.
std::vector<RealWorldSpace> all_realworld();

}  // namespace tunespace::spaces
