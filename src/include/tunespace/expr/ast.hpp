#pragma once
// Abstract syntax tree for the user-facing constraint expression language.
//
// The language is the Python expression subset that auto-tuning scripts
// actually use in Kernel Tuner / PyATF style constraint strings and lambdas:
// arithmetic (+ - * / // % **), chained comparisons (2 <= y <= 32), boolean
// operators (and/or/not), membership (x in (1, 2, 4)), a handful of builtin
// calls (min/max/abs/pow/gcd), and the Kernel Tuner dictionary style
// p["block_size_x"] as an alias for the bare identifier.
//
// ASTs are immutable and shared (shared_ptr<const Ast>), because the §4.2
// decomposition step re-uses subtrees: splitting "a <= b <= c" produces two
// conjuncts that share the node for b.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tunespace/csp/value.hpp"

namespace tunespace::expr {

struct Ast;
using AstPtr = std::shared_ptr<const Ast>;

/// Node discriminator.
enum class AstKind : std::uint8_t {
  Literal,  ///< constant Value
  Var,      ///< parameter reference
  Unary,    ///< -x, +x, not x
  Binary,   ///< arithmetic
  Compare,  ///< (possibly chained) comparison
  BoolOp,   ///< and / or over 2+ operands
  Call,     ///< builtin function call
  Tuple,    ///< tuple/list literal (only valid as rhs of `in`)
  IfElse,   ///< conditional expression: children = {then, cond, otherwise}
};

/// Binary arithmetic operators (Python semantics).
enum class BinOp : std::uint8_t { Add, Sub, Mul, TrueDiv, FloorDiv, Mod, Pow };

/// Unary operators.
enum class UnOp : std::uint8_t { Neg, Pos, Not };

/// Comparison operators, including membership.
enum class CompareOp : std::uint8_t { Lt, Le, Gt, Ge, Eq, Ne, In, NotIn };

/// Python spelling of a BinOp ("+", "//", ...).
const char* bin_op_name(BinOp op);
/// Python spelling of a CompareOp ("<=", "in", ...).
const char* compare_op_name(CompareOp op);

/// A single AST node. Field use depends on `kind`; unused fields are empty.
struct Ast {
  AstKind kind;

  csp::Value literal;             ///< Literal
  std::string name;               ///< Var: parameter name; Call: builtin name
  UnOp un_op = UnOp::Pos;         ///< Unary
  BinOp bin_op = BinOp::Add;      ///< Binary
  bool is_and = true;             ///< BoolOp: true = and, false = or
  std::vector<CompareOp> cmp_ops; ///< Compare: n-1 ops for n operands
  std::vector<AstPtr> children;   ///< operands/args (Binary: lhs, rhs)

  /// Round-trippable rendering (parse(to_string(a)) is structurally equal
  /// to a modulo redundant parentheses).
  std::string to_string() const;

  /// Deep structural equality.
  bool equals(const Ast& other) const;
};

// Factory helpers (the parser and tests build ASTs through these).
AstPtr make_literal(csp::Value v);
AstPtr make_var(std::string name);
AstPtr make_unary(UnOp op, AstPtr operand);
AstPtr make_binary(BinOp op, AstPtr lhs, AstPtr rhs);
AstPtr make_compare(std::vector<AstPtr> operands, std::vector<CompareOp> ops);
AstPtr make_bool_op(bool is_and, std::vector<AstPtr> operands);
AstPtr make_call(std::string name, std::vector<AstPtr> args);
AstPtr make_tuple(std::vector<AstPtr> elements);
/// Python conditional expression: `then if cond else otherwise`.
AstPtr make_if_else(AstPtr then, AstPtr cond, AstPtr otherwise);

}  // namespace tunespace::expr
