#pragma once
// IntProgram: the statically-typed int64 fast path of the bytecode VM.
//
// Nearly all real tuning parameters are integers (block sizes, tile factors,
// unroll counts), yet the boxed Program pays tagged-union dispatch, 40+ byte
// stack slots and non-trivial Value copies on every instruction.  When the
// type-inference pass (expr/analysis.hpp: int_closed) proves a compiled
// Program can only ever see and produce int64 values, it is lowered once to
// an IntProgram: the same control flow over an untagged int64_t stack.
//
// The fast path never throws.  The rare dynamic escapes from the int64 type
// system — division/modulo by zero, overflow that the boxed evaluator
// promotes to real, negative exponents — set a poison flag instead; the
// caller then replays the evaluation through the boxed Program, which is
// kept as the correctness oracle.  Agreement is exact, not approximate: the
// differential tests in tests/test_int_fastpath.cpp enforce it.
//
// Tuple membership is lowered at specialization time: small dense integer
// tuples become a bitset probe, everything else a sorted-array binary
// search.  String elements can never equal an int64 operand and are dropped;
// any real element makes the program unlowerable (boxed real equality goes
// through double and is lossy above 2^53, so exact agreement could not be
// preserved).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tunespace/csp/int_set.hpp"
#include "tunespace/expr/bytecode.hpp"

namespace tunespace::expr {

/// Fast-path opcodes: the integer-closed subset of Op, with membership
/// specialized by representation.
enum class IntOp : std::uint8_t {
  PushConst,        ///< push int_consts[arg]
  LoadVar,          ///< push values[slot_map[arg]]
  Add, Sub, Mul, FloorDiv, Mod, Pow,
  Neg, Not, ToBool,
  CmpLt, CmpLe, CmpGt, CmpGe, CmpEq, CmpNe,
  InSorted,         ///< binary search in sets[arg].sorted
  NotInSorted,
  InBitset,         ///< bit probe in sets[arg].bits
  NotInBitset,
  Dup, Rot2, Rot3, Pop,
  Jump,
  JumpIfFalseOrPop,
  JumpIfTrueOrPop,
  PopJumpIfFalse,
  CallMin,          ///< arg = argc
  CallMax,          ///< arg = argc
  CallAbs,
  CallGcd,
  Nop,              ///< int() of an int; keeps jump targets aligned 1:1
  Return,
};

/// One fast-path instruction: opcode plus immediate.
struct IntInstr {
  IntOp op;
  std::int32_t arg = 0;
};

/// A tuple constant lowered for int64 membership tests (shared with the
/// InSet builtin constraint; see csp/int_set.hpp for the lowering rules).
using IntSet = csp::IntValueSet;

/// A Program lowered to the untagged int64 representation.
class IntProgram {
 public:
  IntProgram() = default;

  /// Lower a boxed Program.  Returns nullopt when the program is not
  /// integer-closed (see expr/analysis.hpp: int_closed); lowering preserves
  /// variable slot order, so the boxed program's slot maps can be reused.
  static std::optional<IntProgram> lower(const Program& program);

  const std::vector<std::string>& var_names() const { return var_names_; }
  const std::vector<IntInstr>& code() const { return code_; }

  /// Execute against a dense int64 array: variable slot s reads
  /// values[slot_map[s]].  Returns false when the evaluation poisoned
  /// (dynamic escape from the int64 type system); the caller must then fall
  /// back to the boxed evaluator.  On success *result holds the value.
  bool run(const std::int64_t* values, const std::uint32_t* slot_map,
           std::int64_t* result) const;

  /// Execute and coerce to truthiness; same poison protocol as run().
  bool run_bool(const std::int64_t* values, const std::uint32_t* slot_map,
                bool* result) const {
    std::int64_t r;
    if (!run(values, slot_map, &r)) return false;
    *result = r != 0;
    return true;
  }

  /// Human-readable disassembly for debugging.
  std::string disassemble() const;

 private:
  bool run_on(std::int64_t* stack, const std::int64_t* values,
              const std::uint32_t* slot_map, std::int64_t* result) const;

  std::vector<IntInstr> code_;
  std::vector<std::int64_t> consts_;
  std::vector<IntSet> sets_;
  std::vector<std::string> var_names_;
  std::size_t max_stack_ = 0;
};

}  // namespace tunespace::expr
