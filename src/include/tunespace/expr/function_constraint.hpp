#pragma once
// FunctionConstraint: bridges arbitrary constraint expressions into the CSP
// layer.  This is the fallback for constraints the recognizer cannot map to
// a specific builtin (paper §4.3.2, "Function constraints").
//
// Two evaluation modes:
//   Compiled    - bytecode Program executed against the solver's value array
//                 through a slot map (the paper's runtime-compiled mode).
//   Interpreted - tree-walking evaluation with per-variable name lookups
//                 (the vanilla python-constraint analogue, used to model the
//                 "original" baseline).
//
// A runtime evaluation error (division by zero, type error) makes the
// configuration invalid rather than aborting the solve, matching how
// auto-tuners treat raising constraint lambdas.

#include <optional>
#include <unordered_map>

#include "tunespace/csp/constraint.hpp"
#include "tunespace/expr/ast.hpp"
#include "tunespace/expr/bytecode.hpp"
#include "tunespace/expr/int_program.hpp"
#include "tunespace/expr/int_program_block.hpp"

namespace tunespace::expr {

/// Evaluation strategy for FunctionConstraint.
enum class EvalMode { Compiled, Interpreted };

/// Generic expression-backed constraint.
class FunctionConstraint : public csp::Constraint {
 public:
  /// Build from an expression; the scope is the expression's variable set.
  /// In Compiled mode, falls back to Interpreted if compilation fails.
  explicit FunctionConstraint(AstPtr expression, EvalMode mode = EvalMode::Compiled);

  bool satisfied(const csp::Value* values) const override;

  /// Int64 fast path: available in Compiled mode when the type-inference
  /// pass proves the program integer-closed (expr/analysis.hpp: int_closed)
  /// and every scope domain is int-only.  The boxed Program is retained as
  /// the fallback oracle for poisoned evaluations (division by zero,
  /// overflow promotion to real, negative exponents).
  bool try_specialize(const std::vector<const csp::Domain*>& domains) override;
  bool satisfied_fast(const std::int64_t* values) const override;

  /// Block tier: the expression re-lowered as a jump-free lane-group program
  /// (expr/int_program_block.hpp).  Non-poisoned lanes are decided by one
  /// vectorized run; poisoned lanes replay through satisfied_fast(), whose
  /// own poison protocol ends at the boxed oracle.  When the block lowering
  /// was refused (construct outside the jump-free subset), the inherited
  /// scalar-sweep default applies.
  void satisfied_block(std::int64_t* values, std::uint32_t var,
                       const std::int64_t* candidates, std::size_t n,
                       unsigned char* mask) const override;

  /// Whether try_specialize() lowered an IntProgram (exposed for tests).
  bool specialized() const { return int_program_.has_value(); }

  /// Whether the block-tier lowering also succeeded (exposed for tests).
  bool block_specialized() const { return block_program_.has_value(); }

  /// Single-variable function constraints are resolved by preprocessing:
  /// the domain is filtered by evaluation, after which the constraint always
  /// holds.  Multi-variable constraints prune nothing.
  bool preprocess(const std::vector<csp::Domain*>& domains) override;

  std::string describe() const override;

  EvalMode mode() const { return mode_; }
  const AstPtr& expression() const { return expr_; }

 protected:
  void on_bound() override;

 private:
  bool eval_scope_positional(const csp::Value* scope_values) const;

  AstPtr expr_;
  EvalMode mode_;
  Program program_;                                    // Compiled mode
  std::optional<IntProgram> int_program_;              // int64 fast path
  std::optional<IntProgramBlock> block_program_;       // block tier
  bool block_attempted_ = false;                       // lowering tried once
  std::vector<std::uint32_t> program_slot_to_scope_;   // program slot -> scope pos
  std::vector<std::uint32_t> program_slot_to_global_;  // built by on_bound()
  std::unordered_map<std::string, std::size_t> name_to_scope_;  // Interpreted
};

}  // namespace tunespace::expr
