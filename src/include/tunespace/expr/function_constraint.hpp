#pragma once
// FunctionConstraint: bridges arbitrary constraint expressions into the CSP
// layer.  This is the fallback for constraints the recognizer cannot map to
// a specific builtin (paper §4.3.2, "Function constraints").
//
// Two evaluation modes:
//   Compiled    - bytecode Program executed against the solver's value array
//                 through a slot map (the paper's runtime-compiled mode).
//   Interpreted - tree-walking evaluation with per-variable name lookups
//                 (the vanilla python-constraint analogue, used to model the
//                 "original" baseline).
//
// A runtime evaluation error (division by zero, type error) makes the
// configuration invalid rather than aborting the solve, matching how
// auto-tuners treat raising constraint lambdas.

#include <unordered_map>

#include "tunespace/csp/constraint.hpp"
#include "tunespace/expr/ast.hpp"
#include "tunespace/expr/bytecode.hpp"

namespace tunespace::expr {

/// Evaluation strategy for FunctionConstraint.
enum class EvalMode { Compiled, Interpreted };

/// Generic expression-backed constraint.
class FunctionConstraint : public csp::Constraint {
 public:
  /// Build from an expression; the scope is the expression's variable set.
  /// In Compiled mode, falls back to Interpreted if compilation fails.
  explicit FunctionConstraint(AstPtr expression, EvalMode mode = EvalMode::Compiled);

  bool satisfied(const csp::Value* values) const override;

  /// Single-variable function constraints are resolved by preprocessing:
  /// the domain is filtered by evaluation, after which the constraint always
  /// holds.  Multi-variable constraints prune nothing.
  bool preprocess(const std::vector<csp::Domain*>& domains) override;

  std::string describe() const override;

  EvalMode mode() const { return mode_; }
  const AstPtr& expression() const { return expr_; }

 protected:
  void on_bound() override;

 private:
  bool eval_scope_positional(const csp::Value* scope_values) const;

  AstPtr expr_;
  EvalMode mode_;
  Program program_;                                    // Compiled mode
  std::vector<std::uint32_t> program_slot_to_scope_;   // program slot -> scope pos
  std::vector<std::uint32_t> program_slot_to_global_;  // built by on_bound()
  std::unordered_map<std::string, std::size_t> name_to_scope_;  // Interpreted
};

}  // namespace tunespace::expr
