#pragma once
// Recursive-descent parser for the constraint expression language.
//
// Grammar (Python expression subset):
//
//   expr       := or_expr
//   or_expr    := and_expr ('or' and_expr)*
//   and_expr   := not_expr ('and' not_expr)*
//   not_expr   := 'not' not_expr | comparison
//   comparison := arith ((cmp_op | 'in' | 'not' 'in') arith)*      (chained)
//   arith      := term (('+'|'-') term)*
//   term       := factor (('*'|'/'|'//'|'%') factor)*
//   factor     := ('+'|'-') factor | power
//   power      := atom ('**' factor)?                          (right assoc)
//   atom       := NUMBER | STRING | 'True' | 'False'
//              | IDENT '(' args ')'                           (builtin call)
//              | IDENT '[' STRING ']'                         (p["name"])
//              | IDENT
//              | '(' expr (',' expr)* [','] ')'               (group/tuple)
//              | '[' expr (',' expr)* [','] ']'               (list literal)

#include <string>

#include "tunespace/expr/ast.hpp"
#include "tunespace/expr/lexer.hpp"

namespace tunespace::expr {

/// Parse a complete expression; throws SyntaxError on malformed input or
/// trailing tokens.
AstPtr parse(const std::string& source);

}  // namespace tunespace::expr
