#pragma once
// Stack bytecode for compiled constraint expressions.
//
// This is the C++ analogue of the paper's "dynamic runtime compilation" of
// Function constraints (§4.3.2): a constraint expression is compiled once to
// a flat instruction sequence with variables resolved to dense slots, so the
// per-evaluation cost drops from tree walking + hash lookups to a tight
// switch loop over contiguous instructions.
//
// Variables are read through a caller-provided slot map, so the same Program
// can run directly against a solver's global value array without copying:
// LoadVar(slot) reads values[slot_map[slot]].

#include <cstdint>
#include <string>
#include <vector>

#include "tunespace/csp/value.hpp"

namespace tunespace::expr {

/// VM opcodes.
enum class Op : std::uint8_t {
  PushConst,        ///< push consts[arg]
  LoadVar,          ///< push values[slot_map[arg]]
  Add, Sub, Mul, TrueDiv, FloorDiv, Mod, Pow,
  Neg, Not, ToBool,
  CmpLt, CmpLe, CmpGt, CmpGe, CmpEq, CmpNe,
  InConst,          ///< membership of top-of-stack in tuple_consts[arg]
  NotInConst,
  Dup,              ///< duplicate top
  Rot2,             ///< swap top two
  Rot3,             ///< move top below the next two
  Pop,
  Jump,             ///< unconditional, absolute target = arg
  JumpIfFalseOrPop, ///< if top falsy: jump keeping top; else pop and continue
  JumpIfTrueOrPop,  ///< if top truthy: jump keeping top; else pop and continue
  PopJumpIfFalse,   ///< pop; jump when the popped value is falsy
  CallMin,          ///< arg = argc
  CallMax,          ///< arg = argc
  CallAbs,
  CallPow,
  CallGcd,
  CallInt,
  CallFloat,
  Return,
};

/// One instruction: opcode plus immediate.
struct Instr {
  Op op;
  std::int32_t arg = 0;
};

/// A compiled expression.
class Program {
 public:
  Program() = default;
  Program(std::vector<Instr> code, std::vector<csp::Value> consts,
          std::vector<std::vector<csp::Value>> tuple_consts,
          std::vector<std::string> var_names, std::size_t max_stack);

  /// Variable names in slot order; the caller builds slot_map accordingly.
  const std::vector<std::string>& var_names() const { return var_names_; }
  const std::vector<Instr>& code() const { return code_; }
  /// Constant pool indexed by PushConst.
  const std::vector<csp::Value>& consts() const { return consts_; }
  /// Tuple constant pool indexed by InConst/NotInConst.
  const std::vector<std::vector<csp::Value>>& tuple_consts() const {
    return tuple_consts_;
  }
  std::size_t max_stack() const { return max_stack_; }

  /// Execute against a dense value array: variable slot s reads
  /// values[slot_map[s]].  slot_map must have var_names().size() entries.
  /// Throws EvalError on runtime failures (division by zero etc.).
  csp::Value run(const csp::Value* values, const std::uint32_t* slot_map) const;

  /// Execute and coerce the result to truthiness.
  bool run_bool(const csp::Value* values, const std::uint32_t* slot_map) const;

  /// Convenience for tests: run with slots mapped to [0..n) over `values`.
  csp::Value run_dense(const std::vector<csp::Value>& values) const;

  /// Human-readable disassembly for debugging and the Fig. 1 pipeline demo.
  std::string disassemble() const;

 private:
  csp::Value run_on(csp::Value* stack, const csp::Value* values,
                    const std::uint32_t* slot_map) const;

  std::vector<Instr> code_;
  std::vector<csp::Value> consts_;
  std::vector<std::vector<csp::Value>> tuple_consts_;
  std::vector<std::string> var_names_;
  std::vector<std::uint32_t> identity_slots_;  ///< cached run_dense slot map
  std::size_t max_stack_ = 0;
};

}  // namespace tunespace::expr
