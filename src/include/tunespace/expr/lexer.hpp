#pragma once
// Lexer for the constraint expression language.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "tunespace/csp/value.hpp"

namespace tunespace::expr {

/// Error raised by the lexer or parser; carries the source offset.
class SyntaxError : public std::runtime_error {
 public:
  SyntaxError(const std::string& message, std::size_t offset)
      : std::runtime_error(message + " (at offset " + std::to_string(offset) + ")"),
        offset_(offset) {}

  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// Token types.
enum class TokKind : std::uint8_t {
  Number,   // integer or real literal (value in `value`)
  Str,      // quoted string literal
  Ident,    // identifier (may be a keyword checked by the parser)
  Plus, Minus, Star, DoubleStar, Slash, DoubleSlash, Percent,
  Lt, Le, Gt, Ge, EqEq, NotEq,
  LParen, RParen, LBracket, RBracket, Comma,
  KwAnd, KwOr, KwNot, KwIn, KwTrue, KwFalse, KwIf, KwElse,
  End,
};

/// One lexed token.
struct Token {
  TokKind kind;
  std::string text;   ///< raw text (identifiers, strings)
  csp::Value value;   ///< literal payload for Number/Str/KwTrue/KwFalse
  std::size_t offset; ///< byte offset into the source
};

/// Tokenize a full expression; always ends with a TokKind::End token.
/// Throws SyntaxError on malformed input.
std::vector<Token> tokenize(const std::string& source);

}  // namespace tunespace::expr
