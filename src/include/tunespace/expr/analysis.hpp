#pragma once
// Constraint analysis: scope extraction and decomposition (paper §4.2).
//
// Decomposition breaks a user constraint into conjuncts over the smallest
// possible variable subsets, so the solver can reject partial assignments as
// early as possible.  Two rewrites apply, recursively:
//
//   1. conjunction splitting:   A and B          ->  {A, B}
//   2. chain splitting:         a <= b <= c      ->  {a <= b, b <= c}
//
// Chain splitting is sound because each comparison in a Python chain relates
// adjacent operands only; it is exactly the Fig. 1 "Step 2" rewrite, e.g.
//
//   2 <= y <= 32 <= x * y <= 1024
//     ->  {2 <= y, y <= 32, 32 <= x*y, x*y <= 1024}

#include <string>
#include <vector>

#include "tunespace/expr/ast.hpp"

namespace tunespace::expr {

/// Sorted unique parameter names referenced by an expression.
std::vector<std::string> variables(const Ast& node);

/// Number of distinct parameters referenced.
std::size_t variable_count(const Ast& node);

/// Decompose an expression into a conjunction of simpler expressions; the
/// result conjunction is logically equivalent to the input.  Expressions that
/// cannot be split (disjunctions, negations, single comparisons) come back
/// as a single element.
std::vector<AstPtr> decompose(const AstPtr& node);

}  // namespace tunespace::expr
