#pragma once
// Constraint analysis: scope extraction and decomposition (paper §4.2).
//
// Decomposition breaks a user constraint into conjuncts over the smallest
// possible variable subsets, so the solver can reject partial assignments as
// early as possible.  Two rewrites apply, recursively:
//
//   1. conjunction splitting:   A and B          ->  {A, B}
//   2. chain splitting:         a <= b <= c      ->  {a <= b, b <= c}
//
// Chain splitting is sound because each comparison in a Python chain relates
// adjacent operands only; it is exactly the Fig. 1 "Step 2" rewrite, e.g.
//
//   2 <= y <= 32 <= x * y <= 1024
//     ->  {2 <= y, y <= 32, 32 <= x*y, x*y <= 1024}

#include <string>
#include <vector>

#include "tunespace/expr/ast.hpp"
#include "tunespace/expr/bytecode.hpp"

namespace tunespace::expr {

/// Sorted unique parameter names referenced by an expression.
std::vector<std::string> variables(const Ast& node);

/// Number of distinct parameters referenced.
std::size_t variable_count(const Ast& node);

/// Decompose an expression into a conjunction of simpler expressions; the
/// result conjunction is logically equivalent to the input.  Expressions that
/// cannot be split (disjunctions, negations, single comparisons) come back
/// as a single element.
std::vector<AstPtr> decompose(const AstPtr& node);

/// Type inference for the int64 fast path: true when `program`, run with
/// every variable bound to an int64, can only push int64 values — i.e. it is
/// *integer-closed* and eligible for lowering to an IntProgram.
///
/// The check rejects operations whose result is inherently real (TrueDiv,
/// CallFloat) and constants that are not int/bool (real or string literals,
/// membership tuples containing reals — boxed real equality is lossy above
/// 2^53, so exact agreement could not be preserved).  Everything else in the
/// instruction set maps int64 inputs to int64 outputs; the dynamic escapes
/// (division by zero, overflow that the boxed evaluator promotes to real,
/// negative exponents) are guarded at run time by IntProgram's poison flag,
/// not here.  Implemented as "does IntProgram::lower succeed", so the
/// lowering is the single source of truth for the rule set.
bool int_closed(const Program& program);

}  // namespace tunespace::expr
