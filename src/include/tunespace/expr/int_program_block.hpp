#pragma once
// IntProgramBlock: the batched tier of the int64 fast path.
//
// IntProgram (expr/int_program.hpp) made each constraint check ~4x cheaper
// by dropping tagged Values; it still evaluates one (assignment, candidate)
// pair per dispatch.  During candidate filtering the solver sweeps a whole
// domain slice against the same partial assignment, so all but one operand
// of every instruction is loop-invariant.  IntProgramBlock exploits that:
// it evaluates a fixed-width group of kLanes candidate values per
// instruction, structure-of-arrays over a flat register file, so the inner
// loops are constant-trip, branch-free and contiguous — exactly the shape
// compilers autovectorize.
//
// Unlike IntProgram (a 1:1 bytecode lowering that keeps the boxed VM's
// short-circuit jumps), a block program is lowered straight from the AST to
// jump-free three-address code: `and`/`or` become eager masked AND/OR over
// 0/1 lanes, conditional expressions become a per-lane Select, and chained
// comparisons become an AND of their individual 0/1 comparisons.  The boxed
// evaluator produces plain bools for BoolOp/Compare nodes, so eager
// evaluation computes the same truth value whenever no lane escapes.
//
// Poison protocol, per lane: any dynamic escape from the int64 type system
// (overflow, division by zero, negative exponent, the INT64_MIN corners)
// sets that lane's poison flag instead of branching.  Eager evaluation can
// poison lanes the scalar path's short-circuiting would have skipped, so the
// block poison set is a superset of the scalar one; callers replay poisoned
// lanes through the scalar+boxed oracle (FunctionConstraint::satisfied_fast)
// lane by lane.  Non-poisoned lanes agree with the scalar tier exactly —
// enforced by tests/test_int_fastpath.cpp and the differential fuzz wall.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tunespace/csp/int_set.hpp"
#include "tunespace/expr/ast.hpp"

namespace tunespace::expr {

/// Block-tier opcodes: jump-free three-address code over lane registers.
enum class BlockOp : std::uint8_t {
  Broadcast,  ///< dst = consts[arg] in every lane
  LoadVar,    ///< dst = candidate lanes (arg == varying slot) or broadcast
  Add, Sub, Mul, FloorDiv, Mod, Pow,
  Neg, Not, ToBool,
  CmpLt, CmpLe, CmpGt, CmpGe, CmpEq, CmpNe,
  And,     ///< dst = (a != 0) & (b != 0)
  Or,      ///< dst = (a != 0) | (b != 0)
  Select,  ///< dst = a != 0 ? b : c   (conditional expression)
  InSorted, NotInSorted,  ///< membership via binary search in sets[arg]
  InBitset, NotInBitset,  ///< membership via bit probe in sets[arg]
  Min2, Max2, Abs, Gcd,
};

/// One block instruction: opcode, register operands, immediate.
struct BlockInstr {
  BlockOp op;
  std::uint16_t dst = 0;
  std::uint16_t a = 0;
  std::uint16_t b = 0;
  std::uint16_t c = 0;  ///< Select only (the `else` register)
  std::int32_t arg = 0;
};

/// An expression lowered to lane-parallel three-address code.
class IntProgramBlock {
 public:
  /// Lane-group width.  Matches csp::Constraint::kMaxBlockLanes so the
  /// solver's candidate chunks map 1:1 onto register lanes.
  static constexpr std::size_t kLanes = 8;

  IntProgramBlock() = default;

  /// Lower an AST (pass it through fold_constants first so literal subtrees
  /// collapse).  `var_slots` assigns variable names to program slots — pass
  /// the boxed Program's var_names() so the scalar tier's slot maps can be
  /// reused verbatim.  Returns nullopt for any construct whose exact int64
  /// semantics cannot be expressed lane-parallel (real or string literals,
  /// true division, float(), unknown calls, membership over non-literal
  /// tuples or mid-chain, names missing from var_slots); callers keep using
  /// the scalar tier.
  static std::optional<IntProgramBlock> lower(
      const AstPtr& ast, const std::vector<std::string>& var_slots);

  /// Evaluate lanes 0..n-1 (n <= kLanes): every program slot reads the
  /// broadcast values[slot_map[slot]], except `varying_slot` which reads
  /// candidates[i] in lane i (pass -1 when no slot varies).  Writes
  /// truth[i] (root value != 0) and poison[i] for each lane; poisoned lanes'
  /// truth is meaningless and must be replayed through the scalar oracle.
  void run(const std::int64_t* values, const std::uint32_t* slot_map,
           std::int32_t varying_slot, const std::int64_t* candidates,
           std::size_t n, unsigned char* truth, unsigned char* poison) const;

  const std::vector<BlockInstr>& code() const { return code_; }
  std::size_t num_regs() const { return num_regs_; }

  /// Human-readable disassembly for debugging.
  std::string disassemble() const;

 private:
  void run_on(std::int64_t* regs, const std::int64_t* values,
              const std::uint32_t* slot_map, std::int32_t varying_slot,
              const std::int64_t* cand, std::size_t n, unsigned char* truth,
              unsigned char* poison) const;

  std::vector<BlockInstr> code_;
  std::vector<std::int64_t> consts_;
  std::vector<csp::IntValueSet> sets_;
  std::uint16_t num_regs_ = 0;
  std::uint16_t root_ = 0;
};

}  // namespace tunespace::expr
