#pragma once
// AST -> bytecode compiler, plus constant folding.

#include <stdexcept>

#include "tunespace/expr/ast.hpp"
#include "tunespace/expr/bytecode.hpp"

namespace tunespace::expr {

/// Raised when an AST cannot be compiled (e.g. `in` over a non-constant
/// tuple); callers fall back to the tree interpreter.
class CompileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Constant-fold an AST bottom-up: any subtree without variable references
/// is evaluated at fold time.  Folding is conservative — subtrees whose
/// evaluation raises (e.g. 1/0) are left unfolded so the runtime error
/// surfaces during evaluation, matching Python.
AstPtr fold_constants(const AstPtr& node);

/// Compile an AST to a Program.  Variables get slots in first-appearance
/// order (see Program::var_names()).  Throws CompileError for constructs the
/// VM cannot express.
Program compile(const AstPtr& node);

}  // namespace tunespace::expr
