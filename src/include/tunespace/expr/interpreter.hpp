#pragma once
// Tree-walking evaluator for constraint expressions, plus the Python-semantics
// arithmetic kernels shared with the bytecode VM.
//
// The interpreter is the evaluation engine of the *unoptimized* pipeline
// (vanilla python-constraint analogue): it walks the shared AST and resolves
// variables through an environment callback, paying per-node dispatch and
// per-variable lookup costs — exactly the overheads the paper's runtime
// compilation removes (§4.3.2/§4.3.3).

#include <functional>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "tunespace/csp/value.hpp"
#include "tunespace/expr/ast.hpp"

namespace tunespace::expr {

/// Raised for runtime evaluation failures (division by zero, bad operand
/// types, unknown variables/functions).  Constraint wrappers convert this
/// into "configuration invalid", matching how auto-tuners treat raising
/// constraint lambdas.
class EvalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// --- Python-semantics scalar kernels (shared by interpreter and VM) --------

/// a + b, a - b, a * b: int when both operands are int/bool, else real.
csp::Value value_add(const csp::Value& a, const csp::Value& b);
csp::Value value_sub(const csp::Value& a, const csp::Value& b);
csp::Value value_mul(const csp::Value& a, const csp::Value& b);
/// Python true division: always real; raises EvalError on division by zero.
csp::Value value_truediv(const csp::Value& a, const csp::Value& b);
/// Python floor division: floors toward -inf; int when both int.
csp::Value value_floordiv(const csp::Value& a, const csp::Value& b);
/// Python modulo: result takes the divisor's sign; int when both int.
csp::Value value_mod(const csp::Value& a, const csp::Value& b);
/// Python power; int**non-negative-int stays int (overflow promotes to real).
csp::Value value_pow(const csp::Value& a, const csp::Value& b);
/// Unary negation.
csp::Value value_neg(const csp::Value& a);
/// gcd over int/bool operands; raises EvalError for real/string operands and
/// when the result (2^63, from gcd involving INT64_MIN) is unrepresentable.
csp::Value value_gcd(const csp::Value& a, const csp::Value& b);
/// Apply a comparison operator (Lt..Ne); In/NotIn are handled by callers.
bool value_compare(CompareOp op, const csp::Value& a, const csp::Value& b);

// --- Environments -----------------------------------------------------------

/// Variable resolution callback: name -> value. Must throw EvalError (or any
/// exception) for unknown names.
using Env = std::function<csp::Value(const std::string&)>;

/// Environment over a name->value hash map (the "python dict" analogue used
/// by the unoptimized solver).
Env map_env(const std::unordered_map<std::string, csp::Value>& map);

// --- Evaluation --------------------------------------------------------------

/// Evaluate an expression in an environment.
csp::Value eval(const Ast& node, const Env& env);

/// Evaluate and coerce to truthiness.
bool eval_bool(const Ast& node, const Env& env);

}  // namespace tunespace::expr
