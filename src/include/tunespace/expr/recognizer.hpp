#pragma once
// Recognizer: map decomposed constraint conjuncts onto specific builtin
// constraints (paper §4.2 "Step 3" / §4.3.2).
//
// Recognized shapes (after constant folding and bound normalization, i.e.
// constants are moved to the right-hand side with the operator mirrored):
//
//   True / False                          -> ConstBool
//   c * x1 * x2 * ... <op> C   (c > 0)    -> Min/Max/ExactProduct (2+ vars)
//   w1*x1 + w2*x2 + ... + k <op> C        -> Min/Max/ExactSum (incl. 1 var)
//   x <op> y                              -> VarComparison
//   x % y == 0,  x % k == 0               -> Divisibility
//   x in (v1, v2, ...), x not in (...)    -> InSet
//   x == 'literal'                        -> InSet (singleton)
//
// Anything else becomes a FunctionConstraint in the requested EvalMode.
// The recognizer never changes semantics: tests cross-validate recognized
// constraints against direct expression evaluation on random assignments.

#include "tunespace/csp/constraint.hpp"
#include "tunespace/expr/ast.hpp"
#include "tunespace/expr/function_constraint.hpp"

namespace tunespace::expr {

/// Recognize one conjunct.  `fallback_mode` selects the FunctionConstraint
/// evaluation strategy when no specific constraint matches.
csp::ConstraintPtr recognize(const AstPtr& conjunct,
                             EvalMode fallback_mode = EvalMode::Compiled);

/// Full §4.2 pipeline for one user constraint: parse is done by the caller;
/// this folds constants, decomposes into conjuncts, and recognizes each.
/// Always-true conjuncts are dropped.
std::vector<csp::ConstraintPtr> optimize_constraint(
    const AstPtr& expression, EvalMode fallback_mode = EvalMode::Compiled);

}  // namespace tunespace::expr
