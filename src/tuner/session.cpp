#include "tunespace/tuner/session.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <future>
#include <thread>

#include "tunespace/util/timer.hpp"

namespace tunespace::tuner {

using util::mix64;

// ---------------------------------------------------------------------------
// SharedEvalCache
// ---------------------------------------------------------------------------

struct SharedEvalCache::Stripe {
  struct Key {
    std::uint64_t fingerprint = 0;
    std::uint64_t row = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return static_cast<std::size_t>(mix64(k.fingerprint, k.row));
    }
  };
  mutable std::mutex mutex;
  std::unordered_map<Key, double, KeyHash> map;
  // Counters live per stripe so hot lookups never contend on one cache line.
  mutable std::atomic<std::uint64_t> hits{0};
  mutable std::atomic<std::uint64_t> misses{0};
};

SharedEvalCache::~SharedEvalCache() = default;

SharedEvalCache::SharedEvalCache(std::size_t stripes) {
  stripes_.reserve(std::max<std::size_t>(1, stripes));
  for (std::size_t i = 0; i < std::max<std::size_t>(1, stripes); ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

std::size_t SharedEvalCache::stripe_of(std::uint64_t space_fingerprint,
                                       std::uint64_t parent_row) const {
  return static_cast<std::size_t>(mix64(space_fingerprint, parent_row)) %
         stripes_.size();
}

std::optional<double> SharedEvalCache::lookup(std::uint64_t space_fingerprint,
                                              std::uint64_t parent_row) const {
  const Stripe& stripe = *stripes_[stripe_of(space_fingerprint, parent_row)];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  const auto it = stripe.map.find({space_fingerprint, parent_row});
  if (it == stripe.map.end()) {
    stripe.misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  stripe.hits.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void SharedEvalCache::insert(std::uint64_t space_fingerprint,
                             std::uint64_t parent_row, double gflops) {
  Stripe& stripe = *stripes_[stripe_of(space_fingerprint, parent_row)];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  stripe.map.emplace(Stripe::Key{space_fingerprint, parent_row}, gflops);
}

std::size_t SharedEvalCache::size() const {
  std::size_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mutex);
    total += stripe->map.size();
  }
  return total;
}

std::uint64_t SharedEvalCache::hits() const {
  std::uint64_t total = 0;
  for (const auto& s : stripes_) total += s->hits.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t SharedEvalCache::misses() const {
  std::uint64_t total = 0;
  for (const auto& s : stripes_) total += s->misses.load(std::memory_order_relaxed);
  return total;
}

// ---------------------------------------------------------------------------
// The session loop core
// ---------------------------------------------------------------------------

TuningRun run_session_loop(const searchspace::SubSpace& view,
                           const std::string& method_name,
                           double construction_seconds,
                           const PerformanceModel& model, Optimizer& optimizer,
                           const TuningOptions& options,
                           SharedEvalCache* shared_cache,
                           std::uint64_t cache_fingerprint, SessionStats* stats,
                           const SessionHooks& hooks) {
  TuningRun run;
  run.method_name = method_name;
  run.budget_seconds = options.budget_seconds;
  const double charged = options.fixed_construction_seconds >= 0
                             ? options.fixed_construction_seconds
                             : construction_seconds;
  run.construction_seconds = charged;

  util::WallTimer wall;
  util::VirtualClock clock;
  clock.advance(charged * options.construction_time_scale);
  if (clock.now() >= options.budget_seconds || view.empty()) {
    if (stats) stats->session_seconds = wall.seconds();
    return run;  // budget consumed before the first configuration
  }

  std::vector<std::string> names;
  names.reserve(view.num_params());
  for (std::size_t p = 0; p < view.num_params(); ++p) {
    names.push_back(view.param_name(p));
  }

  util::Rng rng(options.seed);
  // Session-local memo: re-requesting a row costs overhead only, exactly as
  // a real tuner loop that keeps its own result log.
  std::unordered_map<std::size_t, double> memo;

  EvalContext ctx{
      view,
      /*evaluate=*/
      [&](std::size_t row) -> double {
        if (hooks.before_request) hooks.before_request(clock.now());
        clock.advance(options.overhead_per_request);
        auto it = memo.find(row);
        if (it != memo.end()) return it->second;  // memoized: overhead only
        if (clock.now() >= options.budget_seconds) return 0.0;
        // Cross-session sharing: the deterministic models make a cached
        // measurement bit-identical to a fresh one, so the shared cache only
        // skips model work — the virtual timeline (full evaluation cost) and
        // the evaluation count are charged either way.
        const std::uint64_t parent_row = view.parent_row(row);
        double perf;
        std::optional<double> cached =
            shared_cache ? shared_cache->lookup(cache_fingerprint, parent_row)
                         : std::nullopt;
        if (cached) {
          perf = *cached;
          if (stats) stats->shared_cache_hits++;
        } else {
          const csp::Config config = view.config(row);
          perf = model.gflops(names, config);
          if (stats) stats->model_evaluations++;
          if (shared_cache) {
            shared_cache->insert(cache_fingerprint, parent_row, perf);
          }
        }
        clock.advance(model.evaluation_cost(perf));
        memo.emplace(row, perf);
        run.evaluations++;
        if (perf > run.best_gflops) {
          run.best_gflops = perf;
          run.trajectory.push_back({clock.now(), perf, run.evaluations});
        }
        if (hooks.on_eval) hooks.on_eval(row, perf, clock.now());
        return perf;
      },
      /*exhausted=*/
      [&]() {
        return clock.now() >= options.budget_seconds ||
               (hooks.stop && hooks.stop(clock.now()));
      },
      &rng};

  optimizer.run(ctx);
  if (stats) stats->session_seconds = wall.seconds();
  return run;
}

// ---------------------------------------------------------------------------
// SessionManager
// ---------------------------------------------------------------------------

struct SessionManager::SpaceRegistry {
  using SpacePtr = std::shared_ptr<const searchspace::SearchSpace>;
  std::mutex mutex;
  std::unordered_map<std::uint64_t, std::shared_future<SpacePtr>> spaces;
  std::atomic<std::size_t> built{0};
  std::atomic<std::size_t> shared{0};
};

SessionManager::SessionManager(SessionManagerOptions options)
    : options_(std::move(options)),
      eval_cache_(options_.cache_stripes),
      registry_(std::make_unique<SpaceRegistry>()) {}

SessionManager::~SessionManager() = default;

std::size_t SessionManager::spaces_built() const { return registry_->built; }
std::size_t SessionManager::spaces_shared() const { return registry_->shared; }

std::shared_ptr<const searchspace::SearchSpace> SessionManager::acquire_space(
    const TuningProblem& spec, const Method& method, SessionStats* stats) {
  util::WallTimer timer;
  const auto build = [&] {
    return std::make_shared<const searchspace::SearchSpace>(
        options_.snapshot_cache_dir.empty()
            ? searchspace::SearchSpace(spec, method)
            : searchspace::SearchSpace::load_or_build(
                  spec, method, options_.snapshot_cache_dir));
  };

  // Lambda constraints are opaque to the fingerprint: two behaviorally
  // different specs could collide, so such sessions get a private space.
  if (!options_.share_spaces || !spec.lambda_constraints().empty()) {
    registry_->built++;
    auto space = build();
    if (stats) {
      stats->shared_space = false;
      stats->space_seconds = timer.seconds();
    }
    return space;
  }

  const std::uint64_t fp = spec_fingerprint(spec, method);
  std::promise<SpaceRegistry::SpacePtr> promise;
  std::shared_future<SpaceRegistry::SpacePtr> future;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(registry_->mutex);
    const auto it = registry_->spaces.find(fp);
    if (it != registry_->spaces.end()) {
      future = it->second;
    } else {
      future = promise.get_future().share();
      registry_->spaces.emplace(fp, future);
      builder = true;
    }
  }
  if (builder) {
    registry_->built++;
    try {
      promise.set_value(build());
    } catch (...) {
      // Waiters see the build failure; drop the entry so a later session
      // can retry (e.g. after a transient snapshot-cache I/O error).
      promise.set_exception(std::current_exception());
      std::lock_guard<std::mutex> lock(registry_->mutex);
      registry_->spaces.erase(fp);
    }
  } else {
    registry_->shared++;
  }
  auto space = future.get();  // rethrows a failed build
  if (stats) {
    stats->shared_space = !builder;
    stats->space_seconds = timer.seconds();
  }
  return space;
}

SessionResult SessionManager::run_one(SessionRequest& request) {
  SessionResult result;
  const Method method =
      request.make_method ? request.make_method() : optimized_method();
  auto space = acquire_space(request.spec, method, &result.stats);

  searchspace::SubSpace view(space);  // shared-ownership handoff
  if (!request.restriction.trivial()) {
    view = view.restrict(request.restriction);
  }

  // Measurements may be shared only when the (space, model) pair is
  // identifiable: lambda-constraint spaces have colliding fingerprints, so
  // they never share.
  const bool cacheable =
      options_.share_evaluations && request.spec.lambda_constraints().empty();
  const std::uint64_t cache_fp =
      mix64(space->fingerprint(), request.model->fingerprint());

  auto optimizer = request.make_optimizer();
  result.run = run_session_loop(
      view, method.name, space->construction_seconds(), *request.model,
      *optimizer, request.options, cacheable ? &eval_cache_ : nullptr, cache_fp,
      &result.stats);
  return result;
}

std::vector<SessionResult> SessionManager::run_all(
    std::vector<SessionRequest> requests) {
  std::vector<SessionResult> results(requests.size());
  if (requests.empty()) return results;

  const std::size_t hw = std::thread::hardware_concurrency();
  std::size_t workers = options_.workers ? options_.workers : (hw ? hw : 1);
  workers = std::min(workers, requests.size());

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= requests.size()) return;
      try {
        results[i] = run_one(requests[i]);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  if (workers <= 1) {
    drain();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(drain);
    for (auto& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

// ---------------------------------------------------------------------------
// Portfolio: deterministic lockstep race
// ---------------------------------------------------------------------------

namespace {

/// Serializes portfolio evaluations in virtual-time order: a member may
/// perform its next evaluation request only when its virtual clock is the
/// minimum over all still-active members (ties broken by member index).
/// Every shared-state read and write happens at such a turn boundary, so
/// the whole race — shared best, stall rule, member trajectories — is a
/// pure function of the root seed, independent of thread scheduling.
class LockstepRace {
 public:
  LockstepRace(std::size_t members, double start_clock,
               const PortfolioOptions& options)
      : options_(options),
        clocks_(members, start_clock),
        active_(members, 1),
        last_improvement_(start_clock) {}

  /// Block until member `m` (at virtual time `now`) holds the turn.
  void wait_turn(std::size_t m, double now) {
    std::unique_lock<std::mutex> lock(mutex_);
    clocks_[m] = now;
    cv_.notify_all();
    cv_.wait(lock, [&] { return stopped_ || holds_turn(m); });
  }

  /// The shared early-stop predicate, evaluated at member `m`'s turn so the
  /// answer only depends on evaluations that precede (now, m) in virtual
  /// order.
  bool should_stop(std::size_t m, double now) {
    std::unique_lock<std::mutex> lock(mutex_);
    clocks_[m] = now;
    cv_.notify_all();
    cv_.wait(lock, [&] { return stopped_ || holds_turn(m); });
    if (stopped_) return true;
    if (options_.target_gflops > 0 && best_ >= options_.target_gflops) {
      stopped_ = early_stopped_ = true;
    } else if (options_.stall_seconds > 0 &&
               now - last_improvement_ > options_.stall_seconds) {
      stopped_ = early_stopped_ = true;
    }
    if (stopped_) cv_.notify_all();
    return stopped_;
  }

  /// Publish one evaluation (caller holds the turn, so calls arrive in
  /// virtual-time order).
  void record(double gflops, double now) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (gflops > best_) {
      best_ = gflops;
      last_improvement_ = now;
    }
  }

  void finish(std::size_t m) {
    std::lock_guard<std::mutex> lock(mutex_);
    active_[m] = 0;
    cv_.notify_all();
  }

  bool early_stopped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return early_stopped_;
  }

 private:
  bool holds_turn(std::size_t m) const {
    for (std::size_t j = 0; j < clocks_.size(); ++j) {
      if (j == m || !active_[j]) continue;
      if (clocks_[j] < clocks_[m] || (clocks_[j] == clocks_[m] && j < m)) {
        return false;
      }
    }
    return true;
  }

  const PortfolioOptions& options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<double> clocks_;
  std::vector<std::uint8_t> active_;
  double best_ = 0;
  double last_improvement_ = 0;
  bool stopped_ = false;
  bool early_stopped_ = false;
};

}  // namespace

PortfolioResult run_portfolio(const searchspace::SubSpace& view,
                              const PerformanceModel& model,
                              std::vector<std::unique_ptr<Optimizer>> optimizers,
                              const PortfolioOptions& options,
                              SharedEvalCache* shared_cache) {
  PortfolioResult result;
  const std::size_t n = optimizers.size();
  if (n == 0) return result;

  // Members always share measurements with each other; without an external
  // cache the race brings its own.
  SharedEvalCache local_cache;
  SharedEvalCache* cache = shared_cache ? shared_cache : &local_cache;
  const std::uint64_t cache_fp =
      mix64(view.parent().fingerprint(), model.fingerprint());

  const double construction = view.parent().construction_seconds();
  const double charged = options.base.fixed_construction_seconds >= 0
                             ? options.base.fixed_construction_seconds
                             : construction;
  LockstepRace race(n, charged * options.base.construction_time_scale, options);

  // Seed-split: one independent stream per member from the root seed.
  util::Rng root(options.base.seed);
  std::vector<std::uint64_t> seeds(n);
  for (auto& seed : seeds) seed = root();

  result.members.resize(n);
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto race_member = [&](std::size_t m) {
    // A member must reach finish() on every path: an escaping exception
    // would otherwise leave the remaining members deadlocked in wait_turn
    // (and terminate the process, as std::thread has no result channel).
    try {
      TuningOptions member_options = options.base;
      member_options.seed = seeds[m];
      SessionHooks hooks;
      hooks.before_request = [&race, m](double now) { race.wait_turn(m, now); };
      hooks.on_eval = [&race](std::size_t, double gflops, double now) {
        race.record(gflops, now);
      };
      hooks.stop = [&race, m](double now) { return race.should_stop(m, now); };
      result.members[m].optimizer_name = optimizers[m]->name();
      result.members[m].seed = seeds[m];
      result.members[m].run =
          run_session_loop(view, "portfolio:" + optimizers[m]->name(),
                           construction, model, *optimizers[m], member_options,
                           cache, cache_fp, nullptr, hooks);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
    race.finish(m);
  };

  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t m = 0; m < n; ++m) threads.emplace_back(race_member, m);
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  result.early_stopped = race.early_stopped();

  // Merge the member trajectories on the shared virtual timeline.  Points
  // are ordered by (time, member) — exactly the order the lockstep race
  // executed them in — and only portfolio-wide improvements survive; each
  // merged point keeps the contributing member's evaluation count.
  result.merged.method_name = "portfolio";
  result.merged.budget_seconds = options.base.budget_seconds;
  result.merged.construction_seconds = charged;
  struct Tagged {
    TrajectoryPoint point;
    std::size_t member;
  };
  std::vector<Tagged> all;
  for (std::size_t m = 0; m < n; ++m) {
    result.merged.evaluations += result.members[m].run.evaluations;
    for (const auto& pt : result.members[m].run.trajectory) {
      all.push_back({pt, m});
    }
  }
  std::stable_sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
    if (a.point.time_seconds != b.point.time_seconds) {
      return a.point.time_seconds < b.point.time_seconds;
    }
    return a.member < b.member;
  });
  for (const Tagged& t : all) {
    if (t.point.best_gflops > result.merged.best_gflops) {
      result.merged.best_gflops = t.point.best_gflops;
      result.merged.trajectory.push_back(t.point);
      result.winner = t.member;
    }
  }
  return result;
}

std::vector<std::unique_ptr<Optimizer>> default_portfolio() {
  std::vector<std::unique_ptr<Optimizer>> members;
  members.push_back(std::make_unique<RandomSearch>());
  members.push_back(std::make_unique<GeneticAlgorithm>());
  members.push_back(std::make_unique<SimulatedAnnealing>());
  members.push_back(std::make_unique<HillClimber>());
  members.push_back(std::make_unique<DifferentialEvolution>());
  return members;
}

}  // namespace tunespace::tuner
