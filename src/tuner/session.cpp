#include "tunespace/tuner/session.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <condition_variable>
#include <cstdio>
#include <future>
#include <string_view>
#include <thread>

#include "tunespace/util/timer.hpp"

namespace tunespace::tuner {

using util::mix64;

// ---------------------------------------------------------------------------
// SharedEvalCache
// ---------------------------------------------------------------------------

struct SharedEvalCache::Stripe {
  struct Key {
    std::uint64_t fingerprint = 0;
    std::uint64_t row = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return static_cast<std::size_t>(mix64(k.fingerprint, k.row));
    }
  };
  mutable std::mutex mutex;
  std::unordered_map<Key, Measurement, KeyHash> map;
  // Counters live per stripe so hot lookups never contend on one cache line.
  mutable std::atomic<std::uint64_t> hits{0};
  mutable std::atomic<std::uint64_t> misses{0};
};

SharedEvalCache::~SharedEvalCache() = default;

SharedEvalCache::SharedEvalCache(std::size_t stripes) {
  stripes_.reserve(std::max<std::size_t>(1, stripes));
  for (std::size_t i = 0; i < std::max<std::size_t>(1, stripes); ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

std::size_t SharedEvalCache::stripe_of(std::uint64_t space_fingerprint,
                                       std::uint64_t parent_row) const {
  return static_cast<std::size_t>(mix64(space_fingerprint, parent_row)) %
         stripes_.size();
}

std::optional<Measurement> SharedEvalCache::lookup(
    std::uint64_t space_fingerprint, std::uint64_t parent_row) const {
  const Stripe& stripe = *stripes_[stripe_of(space_fingerprint, parent_row)];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  const auto it = stripe.map.find({space_fingerprint, parent_row});
  if (it == stripe.map.end()) {
    stripe.misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  stripe.hits.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void SharedEvalCache::insert(std::uint64_t space_fingerprint,
                             std::uint64_t parent_row,
                             const Measurement& measurement) {
  Stripe& stripe = *stripes_[stripe_of(space_fingerprint, parent_row)];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  stripe.map.emplace(Stripe::Key{space_fingerprint, parent_row}, measurement);
}

std::size_t SharedEvalCache::size() const {
  std::size_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mutex);
    total += stripe->map.size();
  }
  return total;
}

std::uint64_t SharedEvalCache::hits() const {
  std::uint64_t total = 0;
  for (const auto& s : stripes_) total += s->hits.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t SharedEvalCache::misses() const {
  std::uint64_t total = 0;
  for (const auto& s : stripes_) total += s->misses.load(std::memory_order_relaxed);
  return total;
}

void SharedEvalCache::for_each(
    const std::function<void(std::uint64_t, std::uint64_t, const Measurement&)>&
        fn) const {
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mutex);
    for (const auto& [key, measurement] : stripe->map) {
      fn(key.fingerprint, key.row, measurement);
    }
  }
}

std::vector<std::pair<std::uint64_t, Measurement>> SharedEvalCache::entries_for(
    std::uint64_t space_fingerprint) const {
  std::vector<std::pair<std::uint64_t, Measurement>> entries;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mutex);
    for (const auto& [key, measurement] : stripe->map) {
      if (key.fingerprint == space_fingerprint) {
        entries.emplace_back(key.row, measurement);
      }
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return entries;
}

// ---------------------------------------------------------------------------
// SessionStepper: the session core as a resumable ask/tell state machine
// ---------------------------------------------------------------------------
//
// The optimizers are push-style (they call ctx.evaluate in a loop), so the
// inversion runs the optimizer unchanged on a private worker thread and
// turns each un-memoized, un-cached evaluation request into a rendezvous:
// the worker parks in yield_ask and the request surfaces through suggest();
// report() delivers the measurement and resumes the worker until it parks
// at the next request or returns.  Every public call leaves the worker
// parked or finished (the quiescence invariant), so the driver-side reads
// of the clock, run and best-so-far never race — the mutex hand-offs at
// each park/resume establish the ordering.

namespace {

/// Thrown through the optimizer's run() to unwind it on cancel(); never
/// escapes the worker function.
struct AbortStepper {};

}  // namespace

SessionStepper::SessionStepper(searchspace::SubSpace view,
                               std::string method_name,
                               double construction_seconds, Optimizer& optimizer,
                               const TuningOptions& options, CostFn cost,
                               SharedEvalCache* shared_cache,
                               std::uint64_t cache_fingerprint,
                               SessionStats* stats, SessionHooks hooks)
    : view_(std::move(view)),
      options_(options),
      optimizer_(&optimizer),
      cost_(std::move(cost)),
      shared_cache_(shared_cache),
      cache_fingerprint_(cache_fingerprint),
      stats_(stats),
      hooks_(std::move(hooks)),
      rng_(options.seed) {
  run_.method_name = std::move(method_name);
  run_.budget_seconds = options_.budget_seconds;
  run_.objectives = options_.objectives;
  const double charged = options_.fixed_construction_seconds >= 0
                             ? options_.fixed_construction_seconds
                             : construction_seconds;
  run_.construction_seconds = charged;
  clock_.advance(charged * options_.construction_time_scale);

  names_.reserve(view_.num_params());
  for (std::size_t p = 0; p < view_.num_params(); ++p) {
    names_.push_back(view_.param_name(p));
  }

  if (clock_.now() >= options_.budget_seconds || view_.empty()) {
    done_ = true;  // budget consumed before the first configuration
    finalize();
    return;
  }

  // Warm start (opt-in): charge the cache's best rows for this fingerprint
  // as the session's first evaluations, before the optimizer exists.  Every
  // seed is a guaranteed cache hit (the entry was just enumerated and the
  // cache never evicts), so measure_row never reaches the rendezvous and
  // this runs safely on the constructor thread.  With the option off or the
  // cache cold this is a no-op — no clock charge, no Rng draw — keeping the
  // session bit-identical to a cold run.
  seed_from_cache();
  if (clock_.now() >= options_.budget_seconds) {
    done_ = true;  // the seeds consumed the whole budget
    finalize();
    return;
  }

  worker_ = std::thread([this] {
    try {
      EvalContext ctx{
          view_,
          /*evaluate=*/[this](std::size_t row) { return evaluate(row); },
          /*exhausted=*/
          [this] {
            return abort_.load(std::memory_order_relaxed) ||
                   clock_.now() >= options_.budget_seconds ||
                   (hooks_.stop && hooks_.stop(clock_.now()));
          },
          &rng_,
          /*measure=*/[this](std::size_t row) { return measure_row(row); },
          /*objectives=*/&options_.objectives};
      ctx.seeded = seeded_.empty() ? nullptr : &seeded_;
      ctx.on_surrogate_refit = [this] {
        if (stats_) stats_->surrogate_refits++;
      };
      optimizer_->run(ctx);
    } catch (const AbortStepper&) {
      // cancel() unwinding the optimizer: not an error.
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      worker_error_ = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    done_ = true;
    cv_.notify_all();
  });

  // Run the optimizer up to its first evaluation request (or completion) so
  // the machine is quiescent when the constructor returns.
  std::unique_lock<std::mutex> lock(mutex_);
  wait_parked(lock);
  if (done_) {
    lock.unlock();
    finalize();
  }
}

SessionStepper::~SessionStepper() {
  // Swallow a pending optimizer error: destruction is not a query.
  try {
    cancel();
  } catch (...) {
  }
}

void SessionStepper::wait_parked(std::unique_lock<std::mutex>& lock) {
  cv_.wait(lock, [this] { return pending_.has_value() || done_; });
}

double SessionStepper::evaluate(std::size_t row) {
  return options_.objectives.scalarize(measure_row(row));
}

void SessionStepper::seed_from_cache() {
  if (!options_.warm_start || shared_cache_ == nullptr ||
      options_.warm_start_top_k == 0) {
    return;
  }
  struct Seed {
    double score;
    std::size_t local;
  };
  std::vector<Seed> seeds;
  for (const auto& [parent_row, measurement] :
       shared_cache_->entries_for(cache_fingerprint_)) {
    if (const auto local = view_.local_of(parent_row)) {
      seeds.push_back({options_.objectives.scalarize(measurement), *local});
    }
  }
  // entries_for returns rows ascending and the sort is stable, so ties
  // break by ascending row — the documented deterministic seeding order.
  std::stable_sort(seeds.begin(), seeds.end(),
                   [](const Seed& a, const Seed& b) { return a.score > b.score; });
  if (seeds.size() > options_.warm_start_top_k) {
    seeds.resize(options_.warm_start_top_k);
  }
  for (const Seed& seed : seeds) {
    if (clock_.now() >= options_.budget_seconds) break;
    // A guaranteed cache hit: charged through the normal request flow
    // (overhead, evaluation cost, trajectory, front), exactly like an
    // optimizer-requested row.
    const std::uint64_t before = run_.evaluations;
    const Measurement measured = measure_row(seed.local);
    if (run_.evaluations == before) break;  // the overhead drained the budget
    seeded_.emplace_back(seed.local, measured);
    if (stats_) stats_->seeded_rows++;
  }
}

Measurement SessionStepper::measure_row(std::size_t row) {
  if (hooks_.before_request) hooks_.before_request(clock_.now());
  clock_.advance(options_.overhead_per_request);
  const auto it = memo_.find(row);
  if (it != memo_.end()) return it->second;  // memoized: overhead only
  if (clock_.now() >= options_.budget_seconds) return Measurement{};
  // Cross-session sharing: the measurements are deterministic per
  // (space, model, objective-set) fingerprint, so a cached vector is
  // bit-identical to a fresh one and sharing only skips measurement work —
  // the virtual timeline (full evaluation cost) and the evaluation count
  // are charged either way, keeping a session's TuningRun independent of
  // who measured first.
  const std::uint64_t parent_row = view_.parent_row(row);
  Measurement measured;
  double cost_seconds;
  const std::optional<Measurement> cached =
      shared_cache_ ? shared_cache_->lookup(cache_fingerprint_, parent_row)
                    : std::nullopt;
  if (cached) {
    measured = *cached;  // inserted masked, under the same objective set
    cost_seconds = cost_(measured);
    if (stats_) stats_->shared_cache_hits++;
  } else {
    const Reply reply = yield_ask({row, parent_row, view_.config(row)});
    // Mask to the session's objective set *before* any session state sees
    // the vector: a session only records what it asked to measure, which
    // is what keeps closed-loop, ask/tell and v1-wire replays of the same
    // session bit-identical.
    measured = options_.objectives.mask(reply.measurement);
    cost_seconds =
        reply.cost_seconds >= 0 ? reply.cost_seconds : cost_(measured);
    if (stats_) stats_->model_evaluations++;
    if (shared_cache_) {
      shared_cache_->insert(cache_fingerprint_, parent_row, measured);
    }
  }
  clock_.advance(cost_seconds);
  memo_.emplace(row, measured);
  run_.evaluations++;
  update_front(row, parent_row, measured);
  const double score = options_.objectives.scalarize(measured);
  if (score > run_.best_score) {
    run_.best_score = score;
    run_.best = measured;
    run_.best_gflops = measured.gflops;
    run_.trajectory.push_back(
        {clock_.now(), measured.gflops, run_.evaluations, measured});
    best_ = Suggestion{row, parent_row, view_.config(row)};
  }
  if (hooks_.on_eval) hooks_.on_eval(row, score, clock_.now());
  return measured;
}

void SessionStepper::update_front(std::size_t row, std::uint64_t parent_row,
                                  const Measurement& measurement) {
  // Insertion order is the virtual-clock evaluation order, so the front is
  // as deterministic as the trajectory.  Weak dominance drops duplicates:
  // re-measuring an equal vector never grows the front.
  const ObjectiveSpec& spec = options_.objectives;
  for (const ParetoPoint& point : run_.front) {
    if (spec.dominates_or_equal(point.measurement, measurement)) return;
  }
  std::erase_if(run_.front, [&](const ParetoPoint& point) {
    return spec.dominates(measurement, point.measurement);
  });
  run_.front.push_back({static_cast<std::uint64_t>(row), parent_row,
                        measurement, clock_.now(), run_.evaluations});
}

SessionStepper::Reply SessionStepper::yield_ask(Suggestion ask) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (abort_.load(std::memory_order_relaxed)) throw AbortStepper{};
  pending_ = std::move(ask);
  cv_.notify_all();
  cv_.wait(lock, [this] {
    return resume_ || abort_.load(std::memory_order_relaxed);
  });
  if (abort_.load(std::memory_order_relaxed)) throw AbortStepper{};
  resume_ = false;
  return reply_;
}

std::optional<Suggestion> SessionStepper::suggest() {
  if (finished_) return std::nullopt;
  if (awaiting_report_) {
    throw ServiceError(ErrorCode::kWrongState,
                       "suggest() while a report is outstanding");
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    wait_parked(lock);
    if (pending_) {
      awaiting_report_ = true;
      return *pending_;
    }
  }
  finalize();  // the optimizer returned: budget exhausted or space swept
  return std::nullopt;
}

void SessionStepper::report(double gflops, double measure_seconds) {
  report(Measurement{gflops, 0.0}, measure_seconds);
}

void SessionStepper::report(const Measurement& measurement,
                            double measure_seconds) {
  if (finished_) {
    throw ServiceError(ErrorCode::kSessionFinished,
                       "report() on a finished session");
  }
  if (!awaiting_report_) {
    throw ServiceError(ErrorCode::kWrongState,
                       "report() without an outstanding suggestion");
  }
  bool completed = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    reply_ = {measurement, measure_seconds};
    pending_.reset();
    resume_ = true;
    awaiting_report_ = false;
    cv_.notify_all();
    wait_parked(lock);  // resume until the next ask (or completion)
    completed = done_ && !pending_;
  }
  if (completed) finalize();
}

void SessionStepper::cancel() {
  if (finished_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    abort_.store(true, std::memory_order_relaxed);
    cv_.notify_all();
  }
  awaiting_report_ = false;
  // The partial run is the requested outcome; an optimizer error surfacing
  // during teardown is reported to no one.
  try {
    finalize();
  } catch (...) {
  }
}

void SessionStepper::finalize() {
  if (finished_) return;
  if (worker_.joinable()) worker_.join();
  finished_ = true;
  if (stats_) stats_->session_seconds = wall_.seconds();
  if (worker_error_) {
    std::exception_ptr error = worker_error_;
    worker_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

TuningRun SessionStepper::take_run() {
  if (!finished_) {
    throw ServiceError(ErrorCode::kWrongState, "take_run() before completion");
  }
  return std::move(run_);
}

// ---------------------------------------------------------------------------
// The session loop: a closed-loop driver over the stepper
// ---------------------------------------------------------------------------

namespace {

/// Borrow a reference as a shared_ptr without taking ownership (the aliasing
/// constructor with an empty control block); the referent must outlive it.
std::shared_ptr<const PerformanceModel> borrow(const PerformanceModel& model) {
  return std::shared_ptr<const PerformanceModel>(std::shared_ptr<void>(),
                                                 &model);
}

/// The resolved-view core of run_session: everything after the space exists.
TuningRun run_session_over(const searchspace::SubSpace& view,
                           const std::string& method_name,
                           double construction_seconds,
                           const SessionRequest& request) {
  auto owned = request.optimizer ? nullptr : request.make_optimizer();
  Optimizer& optimizer = request.optimizer ? *request.optimizer : *owned;
  const PerformanceModel& model = *request.model;
  SessionStepper stepper(
      view, method_name, construction_seconds, optimizer, request.options,
      [&model](const Measurement& m) { return model.evaluation_cost(m.gflops); },
      request.shared_cache, request.cache_fingerprint, request.stats,
      request.hooks);
  while (std::optional<Suggestion> ask = stepper.suggest()) {
    stepper.report(model.measure(stepper.param_names(), ask->config));
  }
  return stepper.take_run();
}

}  // namespace

TuningRun run_session(const SessionRequest& request) {
  if (!request.model) {
    throw ServiceError(ErrorCode::kInvalidArgument,
                       "run_session: SessionRequest::model is required");
  }
  if (!request.optimizer && !request.make_optimizer) {
    throw ServiceError(
        ErrorCode::kInvalidArgument,
        "run_session: set SessionRequest::optimizer or make_optimizer");
  }
  if (request.view) {
    searchspace::SubSpace view = *request.view;
    if (!request.restriction.trivial()) view = view.restrict(request.restriction);
    const double construction =
        request.construction_seconds >= 0
            ? request.construction_seconds
            : request.view->parent().construction_seconds();
    return run_session_over(
        view, request.method_name.empty() ? "subspace" : request.method_name,
        construction, request);
  }
  // Fresh construction: real measured latency, charged to the virtual clock
  // (subject to TuningOptions::fixed_construction_seconds, as always).
  Method built;
  if (request.method == nullptr) {
    built = request.make_method ? request.make_method() : optimized_method();
  }
  const Method& method = request.method ? *request.method : built;
  searchspace::SearchSpace space(request.spec, method);
  searchspace::SubSpace view(space);
  if (!request.restriction.trivial()) view = view.restrict(request.restriction);
  return run_session_over(view, method.name, space.construction_seconds(),
                          request);
}

SessionRequest make_session_request(const TuningProblem& spec,
                                    const Method& method,
                                    const PerformanceModel& model,
                                    Optimizer& optimizer,
                                    const TuningOptions& options) {
  SessionRequest request;
  request.spec = spec;
  request.model = borrow(model);
  request.options = options;
  request.optimizer = &optimizer;
  request.method = &method;
  return request;
}

SessionRequest make_session_request(const searchspace::SubSpace& view,
                                    const PerformanceModel& model,
                                    Optimizer& optimizer,
                                    const TuningOptions& options,
                                    const std::string& method_name) {
  SessionRequest request;
  request.model = borrow(model);
  request.options = options;
  request.optimizer = &optimizer;
  request.view = view;
  request.method_name = method_name;
  return request;
}

TuningRun run_session_loop(const searchspace::SubSpace& view,
                           const std::string& method_name,
                           double construction_seconds,
                           const PerformanceModel& model, Optimizer& optimizer,
                           const TuningOptions& options,
                           SharedEvalCache* shared_cache,
                           std::uint64_t cache_fingerprint, SessionStats* stats,
                           const SessionHooks& hooks) {
  SessionRequest request =
      make_session_request(view, model, optimizer, options, method_name);
  request.construction_seconds = construction_seconds;
  request.shared_cache = shared_cache;
  request.cache_fingerprint = cache_fingerprint;
  request.stats = stats;
  request.hooks = hooks;
  return run_session(request);
}

// ---------------------------------------------------------------------------
// SessionManager
// ---------------------------------------------------------------------------

struct SessionManager::SpaceRegistry {
  using SpacePtr = std::shared_ptr<const searchspace::SearchSpace>;
  std::mutex mutex;
  std::unordered_map<std::uint64_t, std::shared_future<SpacePtr>> spaces;
  std::atomic<std::size_t> built{0};
  std::atomic<std::size_t> shared{0};
};

SessionManager::SessionManager(SessionManagerOptions options)
    : options_(std::move(options)),
      eval_cache_(options_.cache_stripes),
      registry_(std::make_unique<SpaceRegistry>()) {}

SessionManager::~SessionManager() = default;

std::size_t SessionManager::spaces_built() const { return registry_->built; }
std::size_t SessionManager::spaces_shared() const { return registry_->shared; }

std::shared_ptr<const searchspace::SearchSpace> SessionManager::acquire_space(
    const TuningProblem& spec, const Method& method, SessionStats* stats) {
  util::WallTimer timer;
  const auto build = [&] {
    return std::make_shared<const searchspace::SearchSpace>(
        options_.snapshot_cache_dir.empty()
            ? searchspace::SearchSpace(spec, method)
            : searchspace::SearchSpace::load_or_build(
                  spec, method, options_.snapshot_cache_dir));
  };

  // Lambda constraints are opaque to the fingerprint: two behaviorally
  // different specs could collide, so such sessions get a private space.
  if (!options_.share_spaces || !spec.lambda_constraints().empty()) {
    registry_->built++;
    auto space = build();
    if (stats) {
      stats->shared_space = false;
      stats->space_seconds = timer.seconds();
    }
    return space;
  }

  const std::uint64_t fp = spec_fingerprint(spec, method);
  std::promise<SpaceRegistry::SpacePtr> promise;
  std::shared_future<SpaceRegistry::SpacePtr> future;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(registry_->mutex);
    const auto it = registry_->spaces.find(fp);
    if (it != registry_->spaces.end()) {
      future = it->second;
    } else {
      future = promise.get_future().share();
      registry_->spaces.emplace(fp, future);
      builder = true;
    }
  }
  if (builder) {
    registry_->built++;
    try {
      promise.set_value(build());
    } catch (...) {
      // Waiters see the build failure; drop the entry so a later session
      // can retry (e.g. after a transient snapshot-cache I/O error).
      promise.set_exception(std::current_exception());
      std::lock_guard<std::mutex> lock(registry_->mutex);
      registry_->spaces.erase(fp);
    }
  } else {
    registry_->shared++;
  }
  auto space = future.get();  // rethrows a failed build
  if (stats) {
    stats->shared_space = !builder;
    stats->space_seconds = timer.seconds();
  }
  return space;
}

SessionResult SessionManager::run_one(SessionRequest& request) {
  SessionResult result;
  Method built;
  if (request.method == nullptr) {
    built = request.make_method ? request.make_method() : optimized_method();
  }
  const Method& method = request.method ? *request.method : built;
  auto space = acquire_space(request.spec, method, &result.stats);

  searchspace::SubSpace view(space);  // shared-ownership handoff

  // Measurements may be shared only when the (space, model, objective-set)
  // triple is identifiable: lambda-constraint spaces have colliding
  // fingerprints, so they never share.  The objective set is part of the
  // key because cached vectors are masked to it.
  const bool cacheable =
      options_.share_evaluations && request.spec.lambda_constraints().empty();
  const std::uint64_t cache_fp =
      mix64(mix64(space->fingerprint(), request.model->fingerprint()),
            request.options.objectives.fingerprint());

  SessionRequest resolved = request;
  resolved.view = view;
  resolved.method_name = method.name;
  resolved.construction_seconds = space->construction_seconds();
  resolved.shared_cache = cacheable ? &eval_cache_ : nullptr;
  resolved.cache_fingerprint = cache_fp;
  resolved.stats = &result.stats;
  result.run = run_session(resolved);
  return result;
}

std::vector<SessionResult> SessionManager::run_all(
    std::vector<SessionRequest> requests) {
  std::vector<SessionResult> results(requests.size());
  if (requests.empty()) return results;

  const std::size_t hw = std::thread::hardware_concurrency();
  std::size_t workers = options_.workers ? options_.workers : (hw ? hw : 1);
  workers = std::min(workers, requests.size());

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= requests.size()) return;
      try {
        results[i] = run_one(requests[i]);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  if (workers <= 1) {
    drain();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(drain);
    for (auto& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

// ---------------------------------------------------------------------------
// Portfolio: deterministic lockstep race
// ---------------------------------------------------------------------------

namespace {

/// Serializes portfolio evaluations in virtual-time order: a member may
/// perform its next evaluation request only when its virtual clock is the
/// minimum over all still-active members (ties broken by member index).
/// Every shared-state read and write happens at such a turn boundary, so
/// the whole race — shared best, stall rule, member trajectories — is a
/// pure function of the root seed, independent of thread scheduling.
class LockstepRace {
 public:
  LockstepRace(std::size_t members, double start_clock,
               const PortfolioOptions& options)
      : options_(options),
        clocks_(members, start_clock),
        active_(members, 1),
        last_improvement_(start_clock) {}

  /// Block until member `m` (at virtual time `now`) holds the turn.
  void wait_turn(std::size_t m, double now) {
    std::unique_lock<std::mutex> lock(mutex_);
    clocks_[m] = now;
    cv_.notify_all();
    cv_.wait(lock, [&] { return stopped_ || holds_turn(m); });
  }

  /// The shared early-stop predicate, evaluated at member `m`'s turn so the
  /// answer only depends on evaluations that precede (now, m) in virtual
  /// order.
  bool should_stop(std::size_t m, double now) {
    std::unique_lock<std::mutex> lock(mutex_);
    clocks_[m] = now;
    cv_.notify_all();
    cv_.wait(lock, [&] { return stopped_ || holds_turn(m); });
    if (stopped_) return true;
    if (options_.target_gflops > 0 && best_ >= options_.target_gflops) {
      stopped_ = early_stopped_ = true;
    } else if (options_.stall_seconds > 0 &&
               now - last_improvement_ > options_.stall_seconds) {
      stopped_ = early_stopped_ = true;
    }
    if (stopped_) cv_.notify_all();
    return stopped_;
  }

  /// Publish one evaluation (caller holds the turn, so calls arrive in
  /// virtual-time order).
  void record(double gflops, double now) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (gflops > best_) {
      best_ = gflops;
      last_improvement_ = now;
    }
  }

  void finish(std::size_t m) {
    std::lock_guard<std::mutex> lock(mutex_);
    active_[m] = 0;
    cv_.notify_all();
  }

  bool early_stopped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return early_stopped_;
  }

 private:
  bool holds_turn(std::size_t m) const {
    for (std::size_t j = 0; j < clocks_.size(); ++j) {
      if (j == m || !active_[j]) continue;
      if (clocks_[j] < clocks_[m] || (clocks_[j] == clocks_[m] && j < m)) {
        return false;
      }
    }
    return true;
  }

  const PortfolioOptions& options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<double> clocks_;
  std::vector<std::uint8_t> active_;
  double best_ = 0;
  double last_improvement_ = 0;
  bool stopped_ = false;
  bool early_stopped_ = false;
};

}  // namespace

PortfolioResult run_portfolio(const searchspace::SubSpace& view,
                              const PerformanceModel& model,
                              std::vector<std::unique_ptr<Optimizer>> optimizers,
                              const PortfolioOptions& options,
                              SharedEvalCache* shared_cache) {
  PortfolioResult result;
  const std::size_t n = optimizers.size();
  if (n == 0) return result;

  // Members always share measurements with each other; without an external
  // cache the race brings its own.
  SharedEvalCache local_cache;
  SharedEvalCache* cache = shared_cache ? shared_cache : &local_cache;
  const std::uint64_t cache_fp =
      mix64(mix64(view.parent().fingerprint(), model.fingerprint()),
            options.base.objectives.fingerprint());

  const double construction = view.parent().construction_seconds();
  const double charged = options.base.fixed_construction_seconds >= 0
                             ? options.base.fixed_construction_seconds
                             : construction;
  LockstepRace race(n, charged * options.base.construction_time_scale, options);

  // Seed-split: one independent stream per member from the root seed.
  util::Rng root(options.base.seed);
  std::vector<std::uint64_t> seeds(n);
  for (auto& seed : seeds) seed = root();

  result.members.resize(n);
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto race_member = [&](std::size_t m) {
    // A member must reach finish() on every path: an escaping exception
    // would otherwise leave the remaining members deadlocked in wait_turn
    // (and terminate the process, as std::thread has no result channel).
    try {
      TuningOptions member_options = options.base;
      member_options.seed = seeds[m];
      SessionHooks hooks;
      hooks.before_request = [&race, m](double now) { race.wait_turn(m, now); };
      hooks.on_eval = [&race](std::size_t, double score, double now) {
        race.record(score, now);
      };
      hooks.stop = [&race, m](double now) { return race.should_stop(m, now); };
      result.members[m].optimizer_name = optimizers[m]->name();
      result.members[m].seed = seeds[m];
      SessionRequest member =
          make_session_request(view, model, *optimizers[m], member_options,
                               "portfolio:" + optimizers[m]->name());
      member.construction_seconds = construction;
      member.shared_cache = cache;
      member.cache_fingerprint = cache_fp;
      member.hooks = hooks;
      result.members[m].run = run_session(member);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
    race.finish(m);
  };

  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t m = 0; m < n; ++m) threads.emplace_back(race_member, m);
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  result.early_stopped = race.early_stopped();

  // Merge the member trajectories on the shared virtual timeline.  Points
  // are ordered by (time, member) — exactly the order the lockstep race
  // executed them in — and only portfolio-wide improvements survive; each
  // merged point keeps the contributing member's evaluation count.
  result.merged.method_name = "portfolio";
  result.merged.budget_seconds = options.base.budget_seconds;
  result.merged.construction_seconds = charged;
  result.merged.objectives = options.base.objectives;
  const ObjectiveSpec& spec = options.base.objectives;
  struct Tagged {
    TrajectoryPoint point;
    std::size_t member;
  };
  std::vector<Tagged> all;
  for (std::size_t m = 0; m < n; ++m) {
    result.merged.evaluations += result.members[m].run.evaluations;
    for (const auto& pt : result.members[m].run.trajectory) {
      all.push_back({pt, m});
    }
  }
  std::stable_sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
    if (a.point.time_seconds != b.point.time_seconds) {
      return a.point.time_seconds < b.point.time_seconds;
    }
    return a.member < b.member;
  });
  for (const Tagged& t : all) {
    const double score = spec.scalarize(t.point.measurement);
    if (score > result.merged.best_score) {
      result.merged.best_score = score;
      result.merged.best = t.point.measurement;
      result.merged.best_gflops = t.point.best_gflops;
      result.merged.trajectory.push_back(t.point);
      result.winner = t.member;
    }
  }
  // Merge the member fronts in the same (time, member) order so the
  // portfolio-wide front is as deterministic as the merged trajectory.
  struct TaggedFront {
    ParetoPoint point;
    std::size_t member;
  };
  std::vector<TaggedFront> fronts;
  for (std::size_t m = 0; m < n; ++m) {
    for (const auto& pt : result.members[m].run.front) {
      fronts.push_back({pt, m});
    }
  }
  std::stable_sort(fronts.begin(), fronts.end(),
                   [](const TaggedFront& a, const TaggedFront& b) {
                     if (a.point.time_seconds != b.point.time_seconds) {
                       return a.point.time_seconds < b.point.time_seconds;
                     }
                     return a.member < b.member;
                   });
  for (const TaggedFront& t : fronts) {
    bool covered = false;
    for (const ParetoPoint& held : result.merged.front) {
      if (spec.dominates_or_equal(held.measurement, t.point.measurement)) {
        covered = true;
        break;
      }
    }
    if (covered) continue;
    std::erase_if(result.merged.front, [&](const ParetoPoint& held) {
      return spec.dominates(t.point.measurement, held.measurement);
    });
    result.merged.front.push_back(t.point);
  }
  return result;
}

std::vector<std::unique_ptr<Optimizer>> default_portfolio() {
  std::vector<std::unique_ptr<Optimizer>> members;
  members.push_back(std::make_unique<RandomSearch>());
  members.push_back(std::make_unique<GeneticAlgorithm>());
  members.push_back(std::make_unique<SimulatedAnnealing>());
  members.push_back(std::make_unique<HillClimber>());
  members.push_back(std::make_unique<DifferentialEvolution>());
  members.push_back(std::make_unique<Nsga2>());
  members.push_back(std::make_unique<SurrogateGuided>());
  return members;
}

// ---------------------------------------------------------------------------
// TSEC persistence: the mergeable eval-cache file format
// ---------------------------------------------------------------------------

void save_shared_eval_cache(const SharedEvalCache& cache,
                            const std::string& path) {
  struct Entry {
    std::uint64_t fingerprint;
    std::uint64_t row;
    std::uint64_t gflops_bits;
    std::uint64_t watts_bits;
  };
  std::vector<Entry> entries;
  cache.for_each([&entries](std::uint64_t fingerprint, std::uint64_t row,
                            const Measurement& m) {
    entries.push_back({fingerprint, row, std::bit_cast<std::uint64_t>(m.gflops),
                       std::bit_cast<std::uint64_t>(m.watts)});
  });
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.fingerprint != b.fingerprint ? a.fingerprint < b.fingerprint
                                          : a.row < b.row;
  });
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "w");
  if (file == nullptr) {
    throw ServiceError(ErrorCode::kIo, "cannot write " + tmp);
  }
  // Measurements are doubles round-tripped as raw bit patterns, so a warm
  // restart serves bit-identical values and never perturbs a session.
  // TSEC 2 appends a watts column to the v1 (fp, row, gflops) rows.
  std::fprintf(file, "TSEC 2\n");
  for (const Entry& entry : entries) {
    std::fprintf(file, "%016llx %016llx %016llx %016llx\n",
                 static_cast<unsigned long long>(entry.fingerprint),
                 static_cast<unsigned long long>(entry.row),
                 static_cast<unsigned long long>(entry.gflops_bits),
                 static_cast<unsigned long long>(entry.watts_bits));
  }
  const bool ok = std::fflush(file) == 0;
  std::fclose(file);
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw ServiceError(ErrorCode::kIo, "cannot persist " + path);
  }
}

std::size_t load_shared_eval_cache(SharedEvalCache& cache,
                                   const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) return 0;  // cold start
  char magic[8] = {0};
  int version = 0;
  if (std::fscanf(file, "%7s %d", magic, &version) != 2 ||
      std::string_view(magic) != "TSEC" || (version != 1 && version != 2)) {
    std::fclose(file);
    return 0;  // stale or foreign format: start cold
  }
  std::size_t rows_read = 0;
  if (version == 1) {
    // Legacy scalar rows: widen each to a gflops-only measurement vector.
    unsigned long long fingerprint = 0, row = 0, bits = 0;
    while (std::fscanf(file, "%llx %llx %llx", &fingerprint, &row, &bits) == 3) {
      cache.insert(
          static_cast<std::uint64_t>(fingerprint), static_cast<std::uint64_t>(row),
          Measurement{std::bit_cast<double>(static_cast<std::uint64_t>(bits)),
                      0.0});
      rows_read++;
    }
  } else {
    unsigned long long fingerprint = 0, row = 0, gflops = 0, watts = 0;
    while (std::fscanf(file, "%llx %llx %llx %llx", &fingerprint, &row, &gflops,
                       &watts) == 4) {
      cache.insert(
          static_cast<std::uint64_t>(fingerprint), static_cast<std::uint64_t>(row),
          Measurement{std::bit_cast<double>(static_cast<std::uint64_t>(gflops)),
                      std::bit_cast<double>(static_cast<std::uint64_t>(watts))});
      rows_read++;
    }
  }
  std::fclose(file);
  return rows_read;
}

}  // namespace tunespace::tuner
