#include "tunespace/tuner/service.hpp"

#include <algorithm>
#include <bit>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "tunespace/spaces/realworld.hpp"
#include "tunespace/tuner/optimizers.hpp"
#include "tunespace/util/rng.hpp"

namespace tunespace::tuner {

namespace {

std::string wire_name(std::string name) {
  for (char& c : name) {
    if (c == ' ' || c == '_') {
      c = '-';
    } else {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }
  return name;
}

Method resolve_method(const std::string& name) {
  if (name.empty() || name == "optimized") return optimized_method();
  auto methods = construction_methods(true);
  for (auto& method : methods) {
    if (method.name == name) return std::move(method);
  }
  std::string known = "optimized";
  for (const auto& method : methods) {
    if (method.name == "optimized") continue;
    known += ", ";
    known += method.name;
  }
  throw ServiceError(ErrorCode::kInvalidArgument, "unknown construction method '" +
                                                      name + "' (known: " + known + ")");
}

std::vector<NamedValue> named_config(const std::vector<std::string>& names,
                                     const csp::Config& config) {
  std::vector<NamedValue> out;
  const std::size_t n = std::min(names.size(), config.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back({names[i], config[i]});
  return out;
}

searchspace::query::Predicate build_restriction(
    const std::vector<ParamFilter>& filters) {
  std::vector<searchspace::query::Predicate> parts;
  parts.reserve(filters.size());
  for (const auto& filter : filters) {
    if (filter.values.empty()) {
      throw ServiceError(ErrorCode::kInvalidArgument,
                         "restriction on '" + filter.param + "' has no values");
    }
    parts.push_back(searchspace::query::in_set(filter.param, filter.values));
  }
  return searchspace::query::all_of(std::move(parts));
}

RunSummary summarize(const TuningRun& run) {
  RunSummary summary;
  summary.method_name = run.method_name;
  summary.construction_seconds = run.construction_seconds;
  summary.budget_seconds = run.budget_seconds;
  summary.best_gflops = run.best_gflops;
  summary.evaluations = run.evaluations;
  summary.objectives = run.objectives;
  summary.best_score = run.best_score;
  summary.best = run.best;
  summary.front = run.front;
  summary.trajectory.reserve(run.trajectory.size());
  for (const auto& point : run.trajectory) {
    summary.trajectory.push_back({point.time_seconds, point.best_gflops,
                                  static_cast<std::uint64_t>(point.evaluations),
                                  point.measurement});
  }
  return summary;
}

void require_finite_nonnegative(double value, const char* field) {
  if (!(value >= 0)) {  // negated comparison also rejects NaN
    throw ServiceError(ErrorCode::kInvalidArgument,
                       std::string(field) + " must be >= 0");
  }
}

}  // namespace

const std::vector<ServiceKernel>& service_catalog() {
  static const std::vector<ServiceKernel> catalog = [] {
    std::vector<ServiceKernel> out;
    for (auto& space : spaces::all_realworld()) {
      ServiceKernel kernel;
      kernel.name = wire_name(space.name);
      kernel.spec = std::move(space.spec);
      if (kernel.name == "hotspot") {
        kernel.model = std::make_shared<HotspotModel>();
      } else if (kernel.name == "gemm") {
        kernel.model = std::make_shared<GemmModel>();
      } else {
        kernel.model = std::make_shared<SyntheticModel>(42);
      }
      out.push_back(std::move(kernel));
    }
    return out;
  }();
  return catalog;
}

const ServiceKernel* find_service_kernel(const std::string& name) {
  for (const auto& kernel : service_catalog()) {
    if (kernel.name == name) return &kernel;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// TuningService
// ---------------------------------------------------------------------------

struct TuningService::Session {
  std::uint64_t id = 0;
  std::string tenant;
  std::string kernel;
  std::string method_name;
  std::shared_ptr<const PerformanceModel> model;
  std::unique_ptr<Optimizer> optimizer;
  SessionStats stats;
  searchspace::SubSpace view;
  std::unique_ptr<SessionStepper> stepper;  // after optimizer: destroyed first
  std::mutex mutex;                         ///< serializes calls per session

  explicit Session(searchspace::SubSpace v) : view(std::move(v)) {}
};

TuningService::TuningService(TuningServiceOptions options)
    : options_(std::move(options)), manager_([this] {
        SessionManagerOptions manager = options_.manager;
        if (!options_.state_dir.empty()) {
          manager.snapshot_cache_dir = options_.state_dir + "/snapshots";
        }
        return manager;
      }()) {
  if (!options_.state_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.state_dir, ec);
    load_eval_cache();
  }
}

TuningService::~TuningService() {
  std::vector<std::shared_ptr<Session>> live;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    live.reserve(sessions_.size());
    for (auto& [id, session] : sessions_) live.push_back(session);
    sessions_.clear();
    live_per_tenant_.clear();
  }
  for (auto& session : live) {
    std::lock_guard<std::mutex> lock(session->mutex);
    session->stepper->cancel();
  }
  try {
    save_state();
  } catch (...) {
    // Shutdown persistence is best effort; the next drain can retry.
  }
}

OpenSessionResponse TuningService::open(const OpenSessionRequest& request) {
  const ServiceKernel* kernel = find_service_kernel(request.kernel);
  if (kernel == nullptr) {
    std::string known;
    for (const auto& entry : service_catalog()) {
      if (!known.empty()) known += ", ";
      known += entry.name;
    }
    throw ServiceError(ErrorCode::kInvalidArgument, "unknown kernel '" +
                                                        request.kernel +
                                                        "' (catalog: " + known + ")");
  }
  require_finite_nonnegative(request.budget_seconds, "budget_seconds");
  require_finite_nonnegative(request.overhead_per_request, "overhead_per_request");
  require_finite_nonnegative(request.construction_time_scale,
                             "construction_time_scale");
  // A surrogate=true open wins over whatever the optimizer field says — the
  // flag is the v2-compatible way to request model-based search.
  auto optimizer = make_optimizer(
      request.surrogate
          ? std::string("surrogate")
          : (request.optimizer.empty() ? std::string("random-sampling")
                                       : request.optimizer));
  const Method method = resolve_method(request.method);

  // Admission control: reserve a slot under the registry lock, so the
  // (possibly slow) space build below cannot oversubscribe the limits.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const ServiceLimits& limits = options_.limits;
    if (draining_) {
      rejected_++;
      throw ServiceError(ErrorCode::kDraining,
                         "service is draining; new sessions are rejected");
    }
    if (limits.max_budget_seconds > 0 &&
        request.budget_seconds > limits.max_budget_seconds) {
      rejected_++;
      throw ServiceError(ErrorCode::kAdmissionLimit,
                         "budget_seconds exceeds the service cap of " +
                             std::to_string(limits.max_budget_seconds));
    }
    if (limits.max_live_sessions > 0 &&
        sessions_.size() + pending_opens_ >= limits.max_live_sessions) {
      rejected_++;
      throw ServiceError(ErrorCode::kAdmissionLimit,
                         "service live-session limit of " +
                             std::to_string(limits.max_live_sessions) + " reached");
    }
    std::size_t& tenant_live = live_per_tenant_[request.tenant];
    if (limits.max_sessions_per_tenant > 0 &&
        tenant_live >= limits.max_sessions_per_tenant) {
      rejected_++;
      throw ServiceError(ErrorCode::kAdmissionLimit,
                         "tenant '" + request.tenant + "' live-session limit of " +
                             std::to_string(limits.max_sessions_per_tenant) +
                             " reached");
    }
    tenant_live++;
    pending_opens_++;
  }

  std::shared_ptr<Session> session;
  try {
    std::shared_ptr<const searchspace::SearchSpace> space;
    SessionStats stats;
    try {
      space = manager_.acquire_space(kernel->spec, method, &stats);
    } catch (const std::exception& e) {
      throw ServiceError(ErrorCode::kSpaceBuildFailed,
                         std::string("space construction failed: ") + e.what());
    }
    searchspace::SubSpace view(space);
    if (!request.restrictions.empty()) {
      try {
        view = view.restrict(build_restriction(request.restrictions));
      } catch (const std::out_of_range& e) {
        throw ServiceError(ErrorCode::kInvalidArgument,
                           std::string("bad restriction: ") + e.what());
      }
    }
    session = std::make_shared<Session>(std::move(view));
    session->tenant = request.tenant;
    session->kernel = kernel->name;
    session->method_name = method.name;
    session->model = kernel->model;
    session->optimizer = std::move(optimizer);
    session->stats = stats;

    TuningOptions tuning;
    tuning.budget_seconds = request.budget_seconds;
    tuning.seed = request.seed;
    tuning.overhead_per_request = request.overhead_per_request;
    tuning.fixed_construction_seconds = request.fixed_construction_seconds;
    tuning.construction_time_scale = request.construction_time_scale;
    tuning.objectives = request.objectives;
    tuning.warm_start = request.warm_start;

    const bool cacheable = manager_.options().share_evaluations &&
                           kernel->spec.lambda_constraints().empty();
    // Cache entries are keyed by (space, model, objective set): sessions with
    // different objective vectors must never exchange masked measurements.
    const std::uint64_t cache_fp = util::mix64(
        util::mix64(space->fingerprint(), session->model->fingerprint()),
        tuning.objectives.fingerprint());
    auto model = session->model;  // kept alive by the cost closure
    session->stepper = std::make_unique<SessionStepper>(
        session->view, method.name, space->construction_seconds(),
        *session->optimizer, tuning,
        [model](const Measurement& m) { return model->evaluation_cost(m.gflops); },
        cacheable ? &manager_.eval_cache() : nullptr, cache_fp, &session->stats);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_opens_--;
    const auto it = live_per_tenant_.find(request.tenant);
    if (it != live_per_tenant_.end() && --(it->second) == 0) {
      live_per_tenant_.erase(it);
    }
    drain_cv_.notify_all();
    throw;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    session->id = next_id_++;
    sessions_.emplace(session->id, session);
    pending_opens_--;
    opened_++;
    // Seeding finished inside the stepper constructor, so the per-session
    // count is final here.
    seeded_rows_ += session->stats.seeded_rows;
  }
  OpenSessionResponse response;
  std::lock_guard<std::mutex> lock(session->mutex);
  response.session_id = session->id;
  response.info = info_of(*session);
  return response;
}

SuggestResponse TuningService::suggest(const SuggestRequest& request) {
  const auto session = find(request.session_id);
  std::lock_guard<std::mutex> lock(session->mutex);
  // Enforce the per-session evaluation cap lazily: the first ask past the
  // cap cancels the optimizer and reports the session finished.
  if (!session->stepper->finished() && eval_cap_reached(*session)) {
    session->stepper->cancel();
  }
  std::optional<Suggestion> ask;
  if (!session->stepper->finished()) ask = session->stepper->suggest();
  SuggestResponse response;
  response.session_id = session->id;
  if (ask.has_value()) {
    response.config_id = ask->row;
    response.parent_row = ask->parent_row;
    response.config = named_config(session->stepper->param_names(), ask->config);
  } else {
    response.finished = true;
  }
  response.now_seconds = session->stepper->now();
  response.evaluations = session->stepper->run().evaluations;
  return response;
}

ReportResponse TuningService::report(const ReportRequest& request) {
  const auto session = find(request.session_id);
  std::lock_guard<std::mutex> lock(session->mutex);
  const double best_before = session->stepper->run().best_score;
  const bool had_best = !session->stepper->run().trajectory.empty();
  // v2 clients fill the full measurement vector; v1 clients fill only the
  // scalar gflops field (an all-zero vector marks it unset).
  if (request.measurement != Measurement{}) {
    session->stepper->report(request.measurement, request.measure_seconds);
  } else {
    session->stepper->report(request.gflops, request.measure_seconds);
  }
  ReportResponse response;
  response.session_id = session->id;
  response.best_gflops = session->stepper->run().best_gflops;
  response.best_score = session->stepper->run().best_score;
  response.best = session->stepper->run().best;
  response.improved = !had_best || response.best_score > best_before;
  response.finished =
      session->stepper->finished() || eval_cap_reached(*session);
  response.now_seconds = session->stepper->now();
  response.evaluations = session->stepper->run().evaluations;
  return response;
}

BestResponse TuningService::best(const BestRequest& request) {
  const auto session = find(request.session_id);
  std::lock_guard<std::mutex> lock(session->mutex);
  BestResponse response;
  response.session_id = session->id;
  response.best_gflops = session->stepper->run().best_gflops;
  response.best_score = session->stepper->run().best_score;
  response.best = session->stepper->run().best;
  if (session->stepper->best().has_value()) {
    response.config = named_config(session->stepper->param_names(),
                                   session->stepper->best()->config);
  }
  response.now_seconds = session->stepper->now();
  response.evaluations = session->stepper->run().evaluations;
  response.finished =
      session->stepper->finished() || eval_cap_reached(*session);
  return response;
}

SessionInfo TuningService::info(std::uint64_t session_id) {
  const auto session = find(session_id);
  std::lock_guard<std::mutex> lock(session->mutex);
  return info_of(*session);
}

CloseSessionResponse TuningService::close(const CloseSessionRequest& request) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(request.session_id);
    if (it == sessions_.end()) {
      throw ServiceError(ErrorCode::kUnknownSession,
                         "unknown session id " + std::to_string(request.session_id));
    }
    session = std::move(it->second);
    sessions_.erase(it);
    const auto tenant = live_per_tenant_.find(session->tenant);
    if (tenant != live_per_tenant_.end() && --(tenant->second) == 0) {
      live_per_tenant_.erase(tenant);
    }
    closed_++;
    drain_cv_.notify_all();
  }
  std::lock_guard<std::mutex> lock(session->mutex);
  session->stepper->cancel();  // no-op if the session already finished
  {
    // The stepper is quiescent after cancel, so the refit counter is final.
    std::lock_guard<std::mutex> registry(mutex_);
    surrogate_refits_ += session->stats.surrogate_refits;
  }
  CloseSessionResponse response;
  response.session_id = request.session_id;
  response.run = summarize(session->stepper->run());
  return response;
}

ServiceStats TuningService::stats() const {
  ServiceStats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.live_sessions = sessions_.size() + pending_opens_;
    stats.total_opened = opened_;
    stats.total_closed = closed_;
    stats.total_rejected = rejected_;
    stats.draining = draining_;
    stats.seeded_rows = seeded_rows_;
    stats.surrogate_refits = surrogate_refits_;
  }
  const SharedEvalCache& cache = manager_.eval_cache();
  stats.cache_entries = cache.size();
  stats.cache_hits = cache.hits();
  stats.cache_misses = cache.misses();
  stats.spaces_built = manager_.spaces_built();
  stats.spaces_shared = manager_.spaces_shared();
  return stats;
}

void TuningService::begin_drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
  drain_cv_.notify_all();
}

bool TuningService::wait_drained(double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto quiesced = [this] {
    return draining_ && sessions_.empty() && pending_opens_ == 0;
  };
  if (timeout_seconds < 0) {
    drain_cv_.wait(lock, quiesced);
  } else {
    drain_cv_.wait_for(lock, std::chrono::duration<double>(timeout_seconds),
                       quiesced);
  }
  return quiesced();
}

bool TuningService::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

bool TuningService::drained() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_ && sessions_.empty() && pending_opens_ == 0;
}

std::string TuningService::eval_cache_path() const {
  return options_.state_dir + "/eval_cache.tsv";
}

void TuningService::save_state() const {
  if (options_.state_dir.empty()) return;
  save_shared_eval_cache(manager_.eval_cache(), eval_cache_path());
}

void TuningService::load_eval_cache() {
  load_shared_eval_cache(manager_.eval_cache(), eval_cache_path());
}

std::shared_ptr<TuningService::Session> TuningService::find(
    std::uint64_t session_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    throw ServiceError(ErrorCode::kUnknownSession,
                       "unknown session id " + std::to_string(session_id));
  }
  return it->second;
}

SessionInfo TuningService::info_of(Session& session) const {
  SessionInfo info;
  info.session_id = session.id;
  info.tenant = session.tenant;
  info.kernel = session.kernel;
  info.optimizer = session.optimizer->name();
  info.method = session.method_name;
  info.space_rows = session.view.size();
  info.param_names = session.stepper->param_names();
  info.shared_space = session.stats.shared_space;
  info.awaiting_report = session.stepper->awaiting_report();
  info.finished = session.stepper->finished() || eval_cap_reached(session);
  info.now_seconds = session.stepper->now();
  info.budget_seconds = session.stepper->run().budget_seconds;
  info.best_gflops = session.stepper->run().best_gflops;
  info.evaluations = session.stepper->run().evaluations;
  info.shared_cache_hits = session.stats.shared_cache_hits;
  info.model_evaluations = session.stats.model_evaluations;
  info.objectives = session.stepper->run().objectives;
  info.best_score = session.stepper->run().best_score;
  info.best = session.stepper->run().best;
  info.seeded_rows = session.stats.seeded_rows;
  info.surrogate_refits = session.stats.surrogate_refits;
  return info;
}

bool TuningService::eval_cap_reached(const Session& session) const {
  const std::uint64_t cap = options_.limits.max_evaluations_per_session;
  return cap > 0 && session.stepper->run().evaluations >= cap;
}

}  // namespace tunespace::tuner
