#include "tunespace/tuner/api.hpp"

#include <array>
#include <utility>

namespace tunespace {

namespace {

// Wire-stable (code, name) pairs: appending is safe, renaming is not.
constexpr std::array<std::pair<ErrorCode, const char*>, 12> kCodeNames{{
    {ErrorCode::kOk, "ok"},
    {ErrorCode::kInvalidArgument, "invalid_argument"},
    {ErrorCode::kUnknownSession, "unknown_session"},
    {ErrorCode::kAdmissionLimit, "admission_limit"},
    {ErrorCode::kDraining, "draining"},
    {ErrorCode::kWrongState, "wrong_state"},
    {ErrorCode::kSessionFinished, "session_finished"},
    {ErrorCode::kSpaceBuildFailed, "space_build_failed"},
    {ErrorCode::kProtocol, "protocol"},
    {ErrorCode::kIo, "io"},
    {ErrorCode::kInternal, "internal"},
    {ErrorCode::kUnsupportedVersion, "unsupported_version"},
}};

}  // namespace

const char* error_code_name(ErrorCode code) {
  for (const auto& [c, name] : kCodeNames) {
    if (c == code) return name;
  }
  return "internal";
}

ErrorCode error_code_from_name(std::string_view name) {
  for (const auto& [code, n] : kCodeNames) {
    if (name == n) return code;
  }
  return ErrorCode::kInternal;
}

}  // namespace tunespace
