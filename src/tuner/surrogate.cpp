#include "tunespace/tuner/surrogate.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "tunespace/searchspace/neighbors.hpp"
#include "tunespace/searchspace/sampling.hpp"
#include "tunespace/tuner/optimizers.hpp"
#include "tunespace/util/rng.hpp"

namespace tunespace::tuner {

namespace {

/// Solve (A + lambda*I) w = b by Cholesky decomposition, in place.  A is the
/// accumulated Gram matrix (symmetric PSD), so the ridge term makes the
/// system positive definite and the factorization cannot fail; every
/// operation is a fixed-order scalar loop, so the solution is
/// bit-reproducible from (A, b, lambda).
std::vector<double> ridge_solve(std::vector<double> a, std::vector<double> b,
                                std::size_t d, double lambda) {
  for (std::size_t i = 0; i < d; ++i) a[i * d + i] += lambda;
  // Lower-triangular Cholesky factor, stored over A.
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a[i * d + j];
      for (std::size_t k = 0; k < j; ++k) sum -= a[i * d + k] * a[j * d + k];
      if (i == j) {
        a[i * d + i] = std::sqrt(std::max(sum, lambda));
      } else {
        a[i * d + j] = sum / a[j * d + j];
      }
    }
  }
  // Forward substitution L y = b, then backward L^T w = y.
  for (std::size_t i = 0; i < d; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= a[i * d + k] * b[k];
    b[i] = sum / a[i * d + i];
  }
  for (std::size_t ri = d; ri > 0; --ri) {
    const std::size_t i = ri - 1;
    double sum = b[i];
    for (std::size_t k = i + 1; k < d; ++k) sum -= a[k * d + i] * b[k];
    b[i] = sum / a[i * d + i];
  }
  return b;
}

}  // namespace

std::vector<double> Surrogate::encode(const searchspace::SubSpace& view,
                                      std::size_t row) const {
  const std::size_t params = view.num_params();
  std::vector<double> x(2 * params + 1);
  for (std::size_t p = 0; p < params; ++p) {
    const auto& present = view.present_values(p);
    const std::uint32_t vi = view.value_index(row, p);
    const auto it = std::lower_bound(present.begin(), present.end(), vi);
    const double pos = static_cast<double>(it - present.begin());
    const double ordinal =
        present.size() > 1 ? pos / static_cast<double>(present.size() - 1) : 0.0;
    x[2 * p] = ordinal;
    const csp::Value& value = view.problem().domain(p)[vi];
    if (value.is_numeric() && value_hi_[p] > value_lo_[p]) {
      x[2 * p + 1] =
          (value.as_real() - value_lo_[p]) / (value_hi_[p] - value_lo_[p]);
    } else {
      x[2 * p + 1] = ordinal;
    }
  }
  x[2 * params] = 1.0;  // intercept
  return x;
}

void Surrogate::fit(
    const searchspace::SubSpace& view,
    const std::vector<std::pair<std::size_t, Measurement>>& observations) {
  const std::size_t params = view.num_params();
  dims_ = 2 * params + 1;
  trained_ = false;
  observation_count_ = 0;

  // Canonicalize the training set: sort by row, first observation of a row
  // wins (SharedEvalCache semantics).  Everything after this point is a
  // fixed-order scan, so the fit is independent of arrival order.
  std::vector<std::pair<std::size_t, Measurement>> rows(observations);
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  rows.erase(std::unique(rows.begin(), rows.end(),
                         [](const auto& a, const auto& b) {
                           return a.first == b.first;
                         }),
             rows.end());
  if (rows.empty()) return;

  // Per-parameter numeric range over the view's present values, the
  // min-max normalization encode() applies.
  value_lo_.assign(params, std::numeric_limits<double>::infinity());
  value_hi_.assign(params, -std::numeric_limits<double>::infinity());
  for (std::size_t p = 0; p < params; ++p) {
    for (const std::uint32_t vi : view.present_values(p)) {
      const csp::Value& value = view.problem().domain(p)[vi];
      if (!value.is_numeric()) continue;
      value_lo_[p] = std::min(value_lo_[p], value.as_real());
      value_hi_[p] = std::max(value_hi_[p], value.as_real());
    }
  }

  // Normal equations accumulated in row order: A = X^T X, b_c = X^T y_c.
  std::vector<double> a(dims_ * dims_, 0.0);
  std::vector<double> b_gflops(dims_, 0.0);
  std::vector<double> b_watts(dims_, 0.0);
  for (const auto& [row, measurement] : rows) {
    const std::vector<double> x = encode(view, row);
    for (std::size_t i = 0; i < dims_; ++i) {
      for (std::size_t j = 0; j < dims_; ++j) a[i * dims_ + j] += x[i] * x[j];
      b_gflops[i] += x[i] * measurement.gflops;
      b_watts[i] += x[i] * measurement.watts;
    }
  }
  weights_gflops_ = ridge_solve(a, b_gflops, dims_, params_.ridge_lambda);
  weights_watts_ = ridge_solve(std::move(a), b_watts, dims_, params_.ridge_lambda);
  observation_count_ = rows.size();
  trained_ = true;
}

Measurement Surrogate::predict(const searchspace::SubSpace& view,
                               std::size_t row) const {
  Measurement m;
  if (!trained_) return m;
  const std::vector<double> x = encode(view, row);
  for (std::size_t i = 0; i < dims_; ++i) {
    m.gflops += weights_gflops_[i] * x[i];
    m.watts += weights_watts_[i] * x[i];
  }
  return m;
}

std::vector<std::size_t> Surrogate::rank(const searchspace::SubSpace& view,
                                         std::vector<std::size_t> candidates,
                                         const ObjectiveSpec& objectives) const {
  if (!trained_) {
    std::sort(candidates.begin(), candidates.end());
    return candidates;
  }
  struct Scored {
    double score;
    std::size_t row;
  };
  std::vector<Scored> scored;
  scored.reserve(candidates.size());
  for (const std::size_t row : candidates) {
    scored.push_back({objectives.scalarize(predict(view, row)), row});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.row < b.row;
  });
  for (std::size_t i = 0; i < scored.size(); ++i) candidates[i] = scored[i].row;
  return candidates;
}

std::uint64_t Surrogate::fingerprint() const {
  std::uint64_t h = util::mix64(0x53555247ULL /* "SURG" */, dims_);
  h = util::mix64(h, trained_ ? 1 : 0);
  h = util::mix64(h, observation_count_);
  for (const double w : weights_gflops_) {
    h = util::mix64(h, std::bit_cast<std::uint64_t>(w));
  }
  for (const double w : weights_watts_) {
    h = util::mix64(h, std::bit_cast<std::uint64_t>(w));
  }
  return h;
}

// ---------------------------------------------------------------------------
// SurrogateGuided: the model-based portfolio member
// ---------------------------------------------------------------------------

void SurrogateGuided::run(EvalContext& ctx) {
  using searchspace::NeighborMethod;
  const searchspace::SubSpace& space = ctx.space;
  const std::size_t n = space.size();
  if (n == 0) return;
  const ObjectiveSpec fallback_spec;  // legacy single objective
  const ObjectiveSpec& spec = ctx.objectives ? *ctx.objectives : fallback_spec;
  const auto measure = [&ctx](std::size_t row) {
    // Hand-rolled contexts may lack the vector channel; the scalar is then
    // the whole vector (its gflops component).
    return ctx.measure ? ctx.measure(row) : Measurement{ctx.evaluate(row), 0.0};
  };

  std::vector<std::pair<std::size_t, Measurement>> observations;
  std::unordered_set<std::size_t> seen;
  double best_score = -std::numeric_limits<double>::infinity();
  std::size_t best_row = 0;
  const auto record = [&](std::size_t row, const Measurement& m) {
    observations.emplace_back(row, m);
    seen.insert(row);
    const double score = spec.scalarize(m);
    if (score > best_score) {
      best_score = score;
      best_row = row;
    }
  };

  // Transfer: warm-start seeds are training data the session already paid
  // for — they prime the first fit without further budget.
  if (ctx.seeded) {
    for (const auto& [row, m] : *ctx.seeded) record(row, m);
  }

  // Initial design: a uniform sample gives the first fit global coverage
  // (already-seeded rows are skipped — re-measuring them teaches nothing).
  const std::size_t design = std::min<std::size_t>(params_.initial_design, n);
  if (observations.size() < design) {
    for (const std::size_t row :
         searchspace::random_sample(space, design, *ctx.rng)) {
      if (ctx.exhausted()) return;
      if (seen.contains(row)) continue;
      record(row, measure(row));
    }
  }
  if (observations.empty()) return;  // budget gone before the first design point

  Surrogate model({params_.ridge_lambda});
  const auto refit = [&] {
    model.fit(space, observations);
    if (ctx.on_surrogate_refit) ctx.on_surrogate_refit();
  };
  refit();

  std::size_t since_refit = 0;
  while (!ctx.exhausted()) {
    // Candidate batch: uniform samples for exploration plus the incumbent's
    // Hamming-1 neighbourhood for exploitation, deduped in generation order.
    std::vector<std::size_t> candidates;
    std::unordered_set<std::size_t> batch;
    for (const std::size_t row : searchspace::random_sample(
             space, std::min<std::size_t>(params_.batch, n), *ctx.rng)) {
      if (!seen.contains(row) && batch.insert(row).second) {
        candidates.push_back(row);
      }
    }
    for (const std::size_t row :
         searchspace::neighbors_of(space, best_row, NeighborMethod::Hamming1)) {
      if (!seen.contains(row) && batch.insert(row).second) {
        candidates.push_back(row);
      }
    }
    if (candidates.empty()) {
      // Everything in reach is measured: re-request a random row (memoized,
      // so it costs only the per-request overhead) to keep draining the
      // budget toward termination, like a converged genetic population.
      measure(ctx.rng->index(n));
      continue;
    }
    candidates = model.rank(space, std::move(candidates), spec);
    const std::size_t take =
        std::min<std::size_t>(params_.evals_per_round, candidates.size());
    for (std::size_t i = 0; i < take; ++i) {
      if (ctx.exhausted()) return;
      record(candidates[i], measure(candidates[i]));
      if (++since_refit >= params_.refit_every) {
        refit();
        since_refit = 0;
      }
    }
  }
}

}  // namespace tunespace::tuner
