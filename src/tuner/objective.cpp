#include "tunespace/tuner/objective.hpp"

#include "tunespace/util/rng.hpp"

namespace tunespace::tuner {

namespace {

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (char c : s) h = (h ^ static_cast<std::uint64_t>(c)) * 0x100000001B3ULL;
  return h;
}

/// Direction-adjusted value: larger is always better.
double oriented(const Objective& objective, const Measurement& m) {
  const double value = ObjectiveSpec::component(m, objective.name);
  return objective.direction == Direction::kMinimize ? -value : value;
}

}  // namespace

ObjectiveSpec ObjectiveSpec::single() { return ObjectiveSpec{}; }

ObjectiveSpec ObjectiveSpec::perf_and_power(double gflops_weight,
                                            double watts_weight) {
  ObjectiveSpec spec;
  spec.objectives = {{"gflops", Direction::kMaximize, gflops_weight},
                     {"watts", Direction::kMinimize, watts_weight}};
  return spec;
}

bool ObjectiveSpec::is_single() const {
  return objectives.size() == 1 && objectives[0].name == "gflops" &&
         objectives[0].direction == Direction::kMaximize &&
         objectives[0].weight == 1.0;
}

double ObjectiveSpec::component(const Measurement& m, const std::string& name) {
  if (name == "gflops") return m.gflops;
  if (name == "watts") return m.watts;
  return 0.0;
}

Measurement ObjectiveSpec::mask(const Measurement& m) const {
  Measurement masked;
  for (const Objective& objective : objectives) {
    if (objective.name == "gflops") masked.gflops = m.gflops;
    if (objective.name == "watts") masked.watts = m.watts;
  }
  return masked;
}

double ObjectiveSpec::scalarize(const Measurement& m) const {
  // The single-objective hot path must reproduce the legacy scalar exactly:
  // 1.0 * m.gflops would already be bit-exact, but returning the component
  // directly keeps the contract self-evident.
  if (objectives.size() == 1 && objectives[0].weight == 1.0 &&
      objectives[0].direction == Direction::kMaximize) {
    return component(m, objectives[0].name);
  }
  double score = 0;
  for (const Objective& objective : objectives) {
    score += objective.weight * oriented(objective, m);
  }
  return score;
}

bool ObjectiveSpec::dominates(const Measurement& a, const Measurement& b) const {
  bool strictly_better = false;
  for (const Objective& objective : objectives) {
    const double av = oriented(objective, a);
    const double bv = oriented(objective, b);
    if (av < bv) return false;
    if (av > bv) strictly_better = true;
  }
  return strictly_better;
}

bool ObjectiveSpec::dominates_or_equal(const Measurement& a,
                                       const Measurement& b) const {
  for (const Objective& objective : objectives) {
    if (oriented(objective, a) < oriented(objective, b)) return false;
  }
  return true;
}

std::uint64_t ObjectiveSpec::fingerprint() const {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const Objective& objective : objectives) {
    h = fnv1a(h, objective.name);
    h = util::mix64(h, static_cast<std::uint64_t>(objective.direction));
    h = util::mix64(h, std::hash<double>{}(objective.weight));
  }
  return h;
}

}  // namespace tunespace::tuner
