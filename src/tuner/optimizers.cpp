#include "tunespace/tuner/optimizers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "tunespace/searchspace/neighbors.hpp"
#include "tunespace/searchspace/sampling.hpp"
#include "tunespace/tuner/api.hpp"

namespace tunespace::tuner {

std::vector<std::string> optimizer_names() {
  return {"random-sampling", "genetic-algorithm", "simulated-annealing",
          "hill-climbing", "differential-evolution", "nsga2", "surrogate"};
}

std::unique_ptr<Optimizer> make_optimizer(const std::string& name) {
  if (name == "random-sampling") return std::make_unique<RandomSearch>();
  if (name == "genetic-algorithm") return std::make_unique<GeneticAlgorithm>();
  if (name == "simulated-annealing") return std::make_unique<SimulatedAnnealing>();
  if (name == "hill-climbing") return std::make_unique<HillClimber>();
  if (name == "differential-evolution") {
    return std::make_unique<DifferentialEvolution>();
  }
  if (name == "nsga2") return std::make_unique<Nsga2>();
  if (name == "surrogate") return std::make_unique<SurrogateGuided>();
  throw ServiceError(ErrorCode::kInvalidArgument,
                     "unknown optimizer '" + name + "'");
}

using searchspace::NeighborMethod;
using searchspace::SubSpace;

void RandomSearch::run(EvalContext& ctx) {
  const std::size_t n = ctx.space.size();
  if (n == 0) return;
  // Shuffled sweep = sampling without replacement, with the Fisher–Yates
  // permutation generated incrementally: position i draws its element from
  // the not-yet-visited suffix, and only displaced suffix entries live in
  // the journal.  A budget-limited run therefore allocates O(evaluated)
  // instead of shuffling an O(n) index vector before the first evaluation.
  std::unordered_map<std::size_t, std::size_t> displaced;
  const auto slot = [&](std::size_t k) {
    const auto it = displaced.find(k);
    return it == displaced.end() ? k : it->second;
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (ctx.exhausted()) return;
    const std::size_t j = i + ctx.rng->index(n - i);
    const std::size_t pick = slot(j);
    displaced[j] = slot(i);
    displaced.erase(i);  // positions < i are never drawn again
    ctx.evaluate(pick);
  }
}

void GeneticAlgorithm::run(EvalContext& ctx) {
  const SubSpace& space = ctx.space;
  const std::size_t n = space.size();
  if (n == 0) return;
  const std::size_t pop_size = std::min(params_.population, n);

  struct Member {
    std::size_t row;
    double fitness;
  };
  std::vector<Member> population;
  for (std::size_t row : searchspace::random_sample(space, pop_size, *ctx.rng)) {
    if (ctx.exhausted()) return;
    population.push_back({row, ctx.evaluate(row)});
  }

  auto tournament_pick = [&]() -> const Member& {
    const Member* best = &population[ctx.rng->index(population.size())];
    for (std::size_t t = 1; t < params_.tournament; ++t) {
      const Member& cand = population[ctx.rng->index(population.size())];
      if (cand.fitness > best->fitness) best = &cand;
    }
    return *best;
  };

  while (!ctx.exhausted()) {
    std::vector<Member> next;
    // Elitism: carry the best member over.
    const auto best_it =
        std::max_element(population.begin(), population.end(),
                         [](const Member& a, const Member& b) {
                           return a.fitness < b.fitness;
                         });
    next.push_back(*best_it);
    while (next.size() < pop_size && !ctx.exhausted()) {
      const Member& pa = tournament_pick();
      const Member& pb = tournament_pick();
      // Uniform crossover in index space, snapped to a valid configuration.
      std::vector<std::uint32_t> child(space.num_params());
      for (std::size_t p = 0; p < space.num_params(); ++p) {
        child[p] = ctx.rng->chance(0.5) ? space.value_index(pa.row, p)
                                        : space.value_index(pb.row, p);
      }
      std::size_t row = searchspace::snap_to_valid(space, child);
      // Mutation: jump to a random valid Hamming-1 neighbour.
      if (ctx.rng->chance(params_.mutation_rate)) {
        auto neigh = searchspace::neighbors_of(space, row, NeighborMethod::Hamming1);
        if (!neigh.empty()) row = neigh[ctx.rng->index(neigh.size())];
      }
      next.push_back({row, ctx.evaluate(row)});
    }
    population = std::move(next);
  }
}

void SimulatedAnnealing::run(EvalContext& ctx) {
  const SubSpace& space = ctx.space;
  if (space.empty()) return;
  std::size_t current = ctx.rng->index(space.size());
  if (ctx.exhausted()) return;
  double current_perf = ctx.evaluate(current);
  double temperature = params_.initial_temperature * std::max(current_perf, 1.0);

  while (!ctx.exhausted()) {
    auto neigh = searchspace::neighbors_of(space, current, NeighborMethod::Hamming1);
    if (neigh.empty()) {
      // Isolated configuration: restart from a random point.
      current = ctx.rng->index(space.size());
      current_perf = ctx.evaluate(current);
      continue;
    }
    const std::size_t cand = neigh[ctx.rng->index(neigh.size())];
    const double cand_perf = ctx.evaluate(cand);
    const double delta = cand_perf - current_perf;
    if (delta >= 0 ||
        ctx.rng->uniform() < std::exp(delta / std::max(temperature, 1e-9))) {
      current = cand;
      current_perf = cand_perf;
    }
    temperature *= params_.cooling;
    if (temperature < 1e-6) {
      // Reheat with a random restart to keep exploring within the budget.
      current = ctx.rng->index(space.size());
      current_perf = ctx.evaluate(current);
      temperature = params_.initial_temperature * std::max(current_perf, 1.0);
    }
  }
}

void DifferentialEvolution::run(EvalContext& ctx) {
  const SubSpace& space = ctx.space;
  const std::size_t n = space.size();
  const std::size_t d = space.num_params();
  if (n == 0) return;
  const std::size_t pop_size = std::min(std::max<std::size_t>(4, params_.population), n);

  // Work in "present-value position" coordinates per parameter, so the
  // difference vectors stay inside the true bounds (§4.4).
  auto position_of = [&](std::size_t row, std::size_t p) -> double {
    const auto& present = space.present_values(p);
    const std::uint32_t vi = space.value_index(row, p);
    const auto it = std::lower_bound(present.begin(), present.end(), vi);
    return static_cast<double>(it - present.begin());
  };

  struct Member {
    std::size_t row;
    double fitness;
  };
  std::vector<Member> population;
  for (std::size_t row : searchspace::random_sample(space, pop_size, *ctx.rng)) {
    if (ctx.exhausted()) return;
    population.push_back({row, ctx.evaluate(row)});
  }

  std::vector<std::uint32_t> candidate(d);
  while (!ctx.exhausted()) {
    for (std::size_t i = 0; i < population.size() && !ctx.exhausted(); ++i) {
      // Pick three distinct members a, b, c different from i.
      std::size_t a, b, c;
      do { a = ctx.rng->index(population.size()); } while (a == i);
      do { b = ctx.rng->index(population.size()); } while (b == i || b == a);
      do { c = ctx.rng->index(population.size()); } while (c == i || c == a || c == b);

      const std::size_t forced = ctx.rng->index(d);  // at least one crossover dim
      for (std::size_t p = 0; p < d; ++p) {
        const auto& present = space.present_values(p);
        if (p == forced || ctx.rng->chance(params_.crossover_rate)) {
          const double pos = position_of(population[a].row, p) +
                             params_.differential_weight *
                                 (position_of(population[b].row, p) -
                                  position_of(population[c].row, p));
          const auto clamped = std::clamp<long long>(
              std::llround(pos), 0, static_cast<long long>(present.size()) - 1);
          candidate[p] = present[static_cast<std::size_t>(clamped)];
        } else {
          candidate[p] = space.value_index(population[i].row, p);
        }
      }
      const std::size_t row = searchspace::snap_to_valid(space, candidate);
      const double fitness = ctx.evaluate(row);
      if (fitness > population[i].fitness) population[i] = {row, fitness};
    }
  }
}

void Nsga2::run(EvalContext& ctx) {
  const SubSpace& space = ctx.space;
  const std::size_t n = space.size();
  const std::size_t d = space.num_params();
  if (n == 0) return;
  const ObjectiveSpec fallback_spec;  // legacy single objective
  const ObjectiveSpec& spec = ctx.objectives ? *ctx.objectives : fallback_spec;
  const auto measure = [&ctx](std::size_t row) {
    // Hand-rolled contexts may lack the vector channel; the scalar is then
    // the whole vector (its gflops component).
    return ctx.measure ? ctx.measure(row) : Measurement{ctx.evaluate(row), 0.0};
  };
  const std::size_t pop_size =
      std::min(std::max<std::size_t>(4, params_.population), n);

  struct Member {
    std::size_t row = 0;
    Measurement m;
    std::size_t rank = 0;
    double crowding = 0;
  };

  // Fast non-dominated sort (Deb et al.) + crowding distance.  All sorts
  // are stable and ties keep insertion order, so the whole pass is a pure
  // function of the member sequence — determinism comes free.
  const auto rank_and_crowd = [&spec](std::vector<Member>& members) {
    const std::size_t k = members.size();
    std::vector<std::vector<std::size_t>> dominated(k);
    std::vector<std::size_t> dominators(k, 0);
    std::vector<std::vector<std::size_t>> fronts(1);
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        if (i == j) continue;
        if (spec.dominates(members[i].m, members[j].m)) {
          dominated[i].push_back(j);
        } else if (spec.dominates(members[j].m, members[i].m)) {
          dominators[i]++;
        }
      }
      if (dominators[i] == 0) {
        members[i].rank = 0;
        fronts[0].push_back(i);
      }
    }
    for (std::size_t f = 0; f < fronts.size(); ++f) {
      std::vector<std::size_t> next;
      for (std::size_t i : fronts[f]) {
        for (std::size_t j : dominated[i]) {
          if (--dominators[j] == 0) {
            members[j].rank = f + 1;
            next.push_back(j);
          }
        }
      }
      if (!next.empty()) fronts.push_back(std::move(next));
    }
    const double inf = std::numeric_limits<double>::infinity();
    for (auto& member : members) member.crowding = 0;
    for (const auto& front : fronts) {
      if (front.size() <= 2) {
        for (std::size_t i : front) members[i].crowding = inf;
        continue;
      }
      for (const Objective& objective : spec.objectives) {
        std::vector<std::size_t> order(front);
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                           return ObjectiveSpec::component(members[a].m,
                                                           objective.name) <
                                  ObjectiveSpec::component(members[b].m,
                                                           objective.name);
                         });
        const double lo =
            ObjectiveSpec::component(members[order.front()].m, objective.name);
        const double hi =
            ObjectiveSpec::component(members[order.back()].m, objective.name);
        members[order.front()].crowding = inf;
        members[order.back()].crowding = inf;
        if (hi <= lo) continue;  // degenerate axis: no spread to reward
        for (std::size_t s = 1; s + 1 < order.size(); ++s) {
          members[order[s]].crowding +=
              (ObjectiveSpec::component(members[order[s + 1]].m,
                                        objective.name) -
               ObjectiveSpec::component(members[order[s - 1]].m,
                                        objective.name)) /
              (hi - lo);
        }
      }
    }
  };

  std::vector<Member> population;
  for (std::size_t row : searchspace::random_sample(space, pop_size, *ctx.rng)) {
    if (ctx.exhausted()) return;
    population.push_back({row, measure(row), 0, 0});
  }
  rank_and_crowd(population);

  const auto better = [](const Member& a, const Member& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.crowding > b.crowding;
  };
  // Binary tournament on (rank, crowding); the first draw wins ties.
  const auto tournament = [&]() -> const Member& {
    const Member& a = population[ctx.rng->index(population.size())];
    const Member& b = population[ctx.rng->index(population.size())];
    return better(b, a) ? b : a;
  };

  std::vector<std::uint32_t> child(d);
  while (!ctx.exhausted()) {
    std::vector<Member> combined = population;
    while (combined.size() < 2 * pop_size && !ctx.exhausted()) {
      const Member& pa = tournament();
      const Member& pb = tournament();
      // Variation as in the plain GA: uniform crossover in index space
      // snapped to a valid configuration, Hamming-1 mutation.
      for (std::size_t p = 0; p < d; ++p) {
        child[p] = ctx.rng->chance(0.5) ? space.value_index(pa.row, p)
                                        : space.value_index(pb.row, p);
      }
      std::size_t row = searchspace::snap_to_valid(space, child);
      if (ctx.rng->chance(params_.mutation_rate)) {
        auto neigh =
            searchspace::neighbors_of(space, row, NeighborMethod::Hamming1);
        if (!neigh.empty()) row = neigh[ctx.rng->index(neigh.size())];
      }
      combined.push_back({row, measure(row), 0, 0});
    }
    // Environmental selection: survivors by (front, crowding), elitist over
    // parents + offspring; stable_sort keeps insertion order on exact ties.
    rank_and_crowd(combined);
    std::stable_sort(combined.begin(), combined.end(),
                     [&better](const Member& a, const Member& b) {
                       return better(a, b);
                     });
    combined.resize(std::min(pop_size, combined.size()));
    population = std::move(combined);
    rank_and_crowd(population);
  }
}

void HillClimber::run(EvalContext& ctx) {
  const SubSpace& space = ctx.space;
  if (space.empty()) return;
  while (!ctx.exhausted()) {
    std::size_t current = ctx.rng->index(space.size());
    double current_perf = ctx.evaluate(current);
    bool improved = true;
    while (improved && !ctx.exhausted()) {
      improved = false;
      for (std::size_t cand :
           searchspace::neighbors_of(space, current, NeighborMethod::Adjacent)) {
        if (ctx.exhausted()) return;
        const double perf = ctx.evaluate(cand);
        if (perf > current_perf) {
          current = cand;
          current_perf = perf;
          improved = true;
          break;  // first-improvement ascent
        }
      }
    }
    // Local optimum reached: random restart.
  }
}

}  // namespace tunespace::tuner
