#include "tunespace/tuner/server.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "tunespace/tuner/net.hpp"
#include "tunespace/tuner/protocol.hpp"

namespace tunespace::tuner {

using util::json::Value;

namespace {

// epoll_event.data.u64 tags for the fds that are not connections;
// connection ids start at kFirstConnId and only grow.
constexpr std::uint64_t kFrameListenerTag = 0;
constexpr std::uint64_t kHttpListenerTag = 1;
constexpr std::uint64_t kWakeTag = 2;
constexpr std::uint64_t kFirstConnId = 3;

// Pause accepting this long after an EMFILE-class failure; pending backlog
// entries are retried once the pressure has had a moment to clear.
constexpr int kAcceptBackoffMs = 50;

// Per-connection inbound buffer cap: one maximal frame (prefix + payload)
// or one maximal gateway request (headers + body).  A connection that
// buffers this much without completing a message stops being read until
// its in-flight request finishes — TCP backpressure does the rest.
constexpr std::size_t kReadCap =
    wire::kMaxFrameBytes + wire::kMaxHttpHeaderBytes + 4;

/// wire::ByteStream that appends into a string (reply framing).
class StringSink : public wire::ByteStream {
 public:
  void write_all(const void* data, std::size_t n) override {
    out.append(static_cast<const char*>(data), n);
  }
  bool read_all(void*, std::size_t) override { return false; }

  std::string out;
};

std::string frame_bytes(std::string_view payload) {
  StringSink sink;
  wire::write_frame(sink, payload);
  return std::move(sink.out);
}

std::uint32_t be32(const char* p) {
  return (static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) << 24) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 8) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3]));
}

}  // namespace

struct ServiceServer::Impl {
  TuningService& service;
  ServiceServerOptions options;

  int frame_listen_fd = -1;
  int http_listen_fd = -1;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::uint16_t bound_port = 0;
  std::uint16_t bound_http_port = 0;
  std::thread loop_thread;
  std::vector<std::thread> workers;

  enum class Proto : std::uint8_t { kFrame, kHttp };

  /// Owned and touched exclusively by the event-loop thread.
  struct Conn {
    std::uint64_t id = 0;
    int fd = -1;
    Proto proto = Proto::kFrame;
    std::string rbuf;          ///< unconsumed inbound bytes
    std::string wbuf;          ///< reply bytes not yet on the wire
    std::size_t woff = 0;      ///< flushed prefix of wbuf
    bool busy = false;         ///< one request is at a worker
    bool peer_eof = false;
    bool close_after_flush = false;
    bool drain_exit_after_flush = false;
    bool sent_continue = false;   ///< interim 100 Continue already queued
    std::uint32_t armed = 0;      ///< epoll events currently registered
    std::uint64_t last_active = 0;  ///< event-loop tick of last traffic
  };

  // Guarded by `mutex`: the public wait/stop surface.
  std::mutex mutex;
  std::condition_variable cv;
  bool stopping = false;
  bool drain_exit = false;

  std::atomic<bool> shutdown{false};
  std::atomic<std::size_t> live_conns{0};

  struct Task {
    std::uint64_t conn_id = 0;
    Proto proto = Proto::kFrame;
    std::string payload;    ///< frame payload, or HTTP body JSON
    std::string op;         ///< HTTP only: op extracted from the target
    bool keep_alive = true;  ///< HTTP only
  };
  struct Reply {
    std::uint64_t conn_id = 0;
    std::string bytes;  ///< ready-to-send wire bytes (frame or HTTP)
    bool exit_after_reply = false;
    bool close_after = false;
  };
  std::mutex work_mutex;
  std::condition_variable work_cv;
  std::deque<Task> tasks;
  std::mutex reply_mutex;
  std::deque<Reply> replies;

  // Event-loop-thread state.
  std::unordered_map<std::uint64_t, Conn> conns;
  std::uint64_t next_conn_id = kFirstConnId;
  std::uint64_t tick = 0;
  bool accept_paused = false;
  std::chrono::steady_clock::time_point accept_resume{};

  explicit Impl(TuningService& s, ServiceServerOptions o)
      : service(s), options(std::move(o)) {}

  // -- Request dispatch (worker threads) -------------------------------------

  std::string dispatch(const std::string& op, const Value& body,
                       bool& exit_after_reply) {
    // Version gate: a request stamped with a "v" beyond what this server
    // speaks gets the typed error instead of a silent misparse.  An absent
    // "v" means 1, which every v2 reader accepts by construction.
    const int v = static_cast<int>(body.at("v").as_int(1));
    if (v > wire::kProtocolVersion) {
      throw ServiceError(ErrorCode::kUnsupportedVersion,
                         "request version " + std::to_string(v) +
                             " exceeds server protocol version " +
                             std::to_string(wire::kProtocolVersion));
    }
    if (op == "hello") {
      const wire::HelloRequest request = wire::hello_request_from_json(body);
      if (request.max_version < 1) {
        throw ServiceError(ErrorCode::kUnsupportedVersion,
                           "client max_version must be >= 1");
      }
      wire::HelloResponse response;
      response.version = std::min(request.max_version, wire::kProtocolVersion);
      response.server_version = wire::kProtocolVersion;
      return wire::encode_ok(wire::to_json(response));
    }
    if (op == "ping") {
      Value reply = Value::object();
      reply.set("pong", true);
      return wire::encode_ok(reply);
    }
    if (op == "open") {
      return wire::encode_ok(wire::to_json(
          service.open(wire::open_session_request_from_json(body))));
    }
    if (op == "suggest") {
      return wire::encode_ok(wire::to_json(
          service.suggest({body.at("session_id").as_uint()})));
    }
    if (op == "report") {
      return wire::encode_ok(
          wire::to_json(service.report(wire::report_request_from_json(body))));
    }
    if (op == "best") {
      return wire::encode_ok(
          wire::to_json(service.best({body.at("session_id").as_uint()})));
    }
    if (op == "info") {
      return wire::encode_ok(
          wire::to_json(service.info(body.at("session_id").as_uint())));
    }
    if (op == "stats") {
      return wire::encode_ok(wire::to_json(service.stats()));
    }
    if (op == "close") {
      return wire::encode_ok(
          wire::to_json(service.close({body.at("session_id").as_uint()})));
    }
    if (op == "drain") {
      const DrainRequest request = wire::drain_request_from_json(body);
      service.begin_drain();
      if (request.wait) service.wait_drained(request.timeout_seconds);
      DrainResponse response;
      response.draining = service.draining();
      response.drained = service.drained();
      response.live_sessions = service.stats().live_sessions;
      // Signal only after the reply bytes reach the wire (the event loop
      // raises drain_exit once the flush completes), or stop() could shut
      // the socket down under the in-flight drain response.
      exit_after_reply = response.drained && options.exit_when_drained;
      return wire::encode_ok(wire::to_json(response));
    }
    throw ServiceError(ErrorCode::kProtocol, "unknown op '" + op + "'");
  }

  std::string handle_frame(const std::string& frame, bool& exit_after_reply,
                           ErrorCode& code) {
    code = ErrorCode::kOk;
    try {
      const auto [op, body] = wire::decode_request(frame);
      return dispatch(op, body, exit_after_reply);
    } catch (const ServiceError& e) {
      code = e.code();
      return wire::encode_error(e.code(), e.what());
    } catch (const std::exception& e) {
      code = ErrorCode::kInternal;
      return wire::encode_error(ErrorCode::kInternal, e.what());
    }
  }

  std::string handle_http(const Task& task, bool& exit_after_reply) {
    ErrorCode code = ErrorCode::kOk;
    std::string reply_json;
    try {
      Value body =
          task.payload.empty() ? Value::object() : Value::parse(task.payload);
      if (!body.is_object()) {
        throw ServiceError(ErrorCode::kProtocol,
                           "request body must be a JSON object");
      }
      reply_json = dispatch(task.op, body, exit_after_reply);
    } catch (const ServiceError& e) {
      code = e.code();
      reply_json = wire::encode_error(e.code(), e.what());
    } catch (const std::exception& e) {
      code = ErrorCode::kInternal;
      reply_json = wire::encode_error(ErrorCode::kInternal, e.what());
    }
    return wire::encode_http_response(wire::http_status_for(code), reply_json,
                                      task.keep_alive);
  }

  void worker_loop() {
    while (true) {
      Task task;
      {
        std::unique_lock<std::mutex> lock(work_mutex);
        work_cv.wait(lock, [this] { return shutdown.load() || !tasks.empty(); });
        if (tasks.empty()) return;  // shutdown with the queue drained
        task = std::move(tasks.front());
        tasks.pop_front();
      }
      Reply reply;
      reply.conn_id = task.conn_id;
      if (task.proto == Proto::kFrame) {
        ErrorCode code = ErrorCode::kOk;
        reply.bytes =
            frame_bytes(handle_frame(task.payload, reply.exit_after_reply, code));
      } else {
        reply.bytes = handle_http(task, reply.exit_after_reply);
        reply.close_after = !task.keep_alive;
      }
      {
        std::lock_guard<std::mutex> lock(reply_mutex);
        replies.push_back(std::move(reply));
      }
      wake();
    }
  }

  // -- Event loop ------------------------------------------------------------

  void wake() noexcept {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd, &one, sizeof one);
  }

  void arm(int fd, std::uint64_t tag, std::uint32_t events, int op) noexcept {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = tag;
    ::epoll_ctl(epoll_fd, op, fd, &ev);
  }

  /// Keep a connection's epoll registration in sync with what it needs:
  /// EPOLLIN unless its read buffer is saturated behind an in-flight
  /// request, EPOLLOUT only while unflushed reply bytes remain.
  void update_interest(Conn& conn) noexcept {
    std::uint32_t want = 0;
    if (!(conn.busy && conn.rbuf.size() >= kReadCap) && !conn.peer_eof) {
      want |= EPOLLIN;
    }
    if (conn.woff < conn.wbuf.size()) want |= EPOLLOUT;
    if (want != conn.armed) {
      arm(conn.fd, conn.id, want, EPOLL_CTL_MOD);
      conn.armed = want;
    }
  }

  void close_conn(std::uint64_t id) noexcept {
    const auto it = conns.find(id);
    if (it == conns.end()) return;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, it->second.fd, nullptr);
    net::close_fd(it->second.fd);
    conns.erase(it);
    live_conns.store(conns.size(), std::memory_order_relaxed);
  }

  void add_conn(int fd, Proto proto) {
    const std::uint64_t id = next_conn_id++;
    Conn conn;
    conn.id = id;
    conn.fd = fd;
    conn.proto = proto;
    conn.armed = EPOLLIN;
    conn.last_active = tick;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      net::close_fd(fd);
      return;
    }
    conns.emplace(id, std::move(conn));
    live_conns.store(conns.size(), std::memory_order_relaxed);
  }

  /// Under fd exhaustion, closing the oldest idle connection both frees a
  /// descriptor for the incoming peer and sheds the connection most likely
  /// to be abandoned.  Sessions survive — a shed client reconnects and
  /// resumes by session id.
  void shed_oldest_idle() {
    const Conn* victim = nullptr;
    for (const auto& [id, conn] : conns) {
      if (conn.busy || conn.woff < conn.wbuf.size()) continue;  // in flight
      if (victim == nullptr || conn.last_active < victim->last_active) {
        victim = &conn;
      }
    }
    if (victim != nullptr) close_conn(victim->id);
  }

  void pause_accept() {
    if (accept_paused) return;
    // Deregister the listeners: with level-triggered epoll a pending
    // backlog would otherwise re-report readiness every iteration and turn
    // the backoff into a busy loop.
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, frame_listen_fd, nullptr);
    if (http_listen_fd >= 0) {
      ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, http_listen_fd, nullptr);
    }
    accept_paused = true;
    accept_resume = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(kAcceptBackoffMs);
  }

  void resume_accept() {
    if (!accept_paused) return;
    arm(frame_listen_fd, kFrameListenerTag, EPOLLIN, EPOLL_CTL_ADD);
    if (http_listen_fd >= 0) {
      arm(http_listen_fd, kHttpListenerTag, EPOLLIN, EPOLL_CTL_ADD);
    }
    accept_paused = false;
  }

  void accept_ready(int listen_fd, Proto proto) {
    while (true) {
      int err = 0;
      const int fd = net::accept_nonblocking(listen_fd, err);
      if (fd >= 0) {
        add_conn(fd, proto);
        continue;
      }
      if (err == 0) return;  // backlog empty
      if (net::transient_accept_errno(err)) {
        // The one absolute rule of this loop: accept failures never kill
        // it.  Under fd exhaustion shed an idle connection so the next
        // round can succeed, and back off briefly instead of spinning.
        if (err == EMFILE || err == ENFILE || err == ENOBUFS ||
            err == ENOMEM) {
          shed_oldest_idle();
          pause_accept();
        }
        return;
      }
      // Non-transient (the listener fd itself is broken): stop watching it
      // but keep serving live connections.
      ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
      return;
    }
  }

  void enqueue_task(Task task) {
    {
      std::lock_guard<std::mutex> lock(work_mutex);
      tasks.push_back(std::move(task));
    }
    work_cv.notify_one();
  }

  void signal_drain_exit() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      drain_exit = true;
    }
    cv.notify_all();
  }

  /// Flush as much of wbuf as the socket accepts.  Returns false when the
  /// connection was closed (write failure, or close-after-flush).
  bool flush(Conn& conn) {
    while (conn.woff < conn.wbuf.size()) {
      const ssize_t sent = ::send(conn.fd, conn.wbuf.data() + conn.woff,
                                  conn.wbuf.size() - conn.woff, MSG_NOSIGNAL);
      if (sent >= 0) {
        conn.woff += static_cast<std::size_t>(sent);
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        update_interest(conn);
        return true;  // EPOLLOUT will finish the job
      }
      close_conn(conn.id);  // peer is gone; sessions survive in the service
      return false;
    }
    conn.wbuf.clear();
    conn.woff = 0;
    if (conn.drain_exit_after_flush) {
      // The drain reply is fully on the wire: now it is safe to release
      // wait() and let the host stop the server.
      conn.drain_exit_after_flush = false;
      signal_drain_exit();
    }
    if (conn.close_after_flush ||
        (conn.peer_eof && !conn.busy && conn.rbuf.empty())) {
      close_conn(conn.id);
      return false;
    }
    update_interest(conn);
    return true;
  }

  /// Queue bytes on a connection and try to flush them immediately.
  bool send_bytes(Conn& conn, std::string_view bytes) {
    conn.wbuf.append(bytes);
    return flush(conn);
  }

  /// Cut complete requests out of rbuf until one is in flight at a worker
  /// or the buffer holds only a partial message.  Returns false when the
  /// connection was closed.
  bool parse_input(Conn& conn) {
    while (!conn.busy) {
      bool progressed = false;
      const bool alive = conn.proto == Proto::kFrame
                             ? parse_frame_input(conn, progressed)
                             : parse_http_input(conn, progressed);
      if (!alive) return false;
      if (!progressed) break;
    }
    // A half-delivered message can never complete once the peer is gone.
    if (conn.peer_eof && !conn.busy && conn.woff >= conn.wbuf.size()) {
      close_conn(conn.id);
      return false;
    }
    update_interest(conn);
    return true;
  }

  bool parse_frame_input(Conn& conn, bool& progressed) {
    if (conn.rbuf.size() < 4) return true;
    const std::uint32_t n = be32(conn.rbuf.data());
    if (n > wire::kMaxFrameBytes) {
      // A desynchronized or hostile peer (this is also what ASCII — e.g.
      // an HTTP request line — looks like as a length prefix).  Same
      // policy as the blocking server: drop the connection.
      close_conn(conn.id);
      return false;
    }
    if (conn.rbuf.size() < 4 + static_cast<std::size_t>(n)) return true;
    Task task;
    task.conn_id = conn.id;
    task.proto = Proto::kFrame;
    task.payload = conn.rbuf.substr(4, n);
    conn.rbuf.erase(0, 4 + static_cast<std::size_t>(n));
    conn.busy = true;
    progressed = true;
    enqueue_task(std::move(task));
    return true;
  }

  bool parse_http_input(Conn& conn, bool& progressed) {
    if (conn.rbuf.empty()) return true;
    wire::HttpRequest request;
    std::size_t consumed = 0;
    int error_status = 400;
    std::string error;
    const wire::HttpParse verdict = wire::parse_http_request(
        conn.rbuf, request, consumed, error_status, error);
    if (verdict == wire::HttpParse::kBad) {
      conn.rbuf.clear();
      conn.close_after_flush = true;
      return send_bytes(conn,
                        wire::encode_http_response(
                            error_status,
                            wire::encode_error(ErrorCode::kProtocol, error),
                            /*keep_alive=*/false));
    }
    if (verdict == wire::HttpParse::kNeedMore) {
      if (request.headers_complete && request.expect_continue &&
          !conn.sent_continue) {
        conn.sent_continue = true;
        return send_bytes(conn, "HTTP/1.1 100 Continue\r\n\r\n");
      }
      return true;
    }
    conn.rbuf.erase(0, consumed);
    conn.sent_continue = false;
    progressed = true;
    if (request.method != "POST") {
      return send_bytes(
          conn, wire::encode_http_response(
                    405,
                    wire::encode_error(ErrorCode::kProtocol,
                                       "gateway ops are POST-only"),
                    request.keep_alive));
    }
    const std::string op = wire::http_op_from_target(request.target);
    if (op.empty()) {
      return send_bytes(
          conn, wire::encode_http_response(
                    404,
                    wire::encode_error(ErrorCode::kProtocol,
                                       "no such resource; ops live at /v1/{op}"),
                    request.keep_alive));
    }
    Task task;
    task.conn_id = conn.id;
    task.proto = Proto::kHttp;
    task.payload = std::move(request.body);
    task.op = op;
    task.keep_alive = request.keep_alive;
    conn.busy = true;
    enqueue_task(std::move(task));
    return true;
  }

  void conn_event(std::uint64_t id, std::uint32_t events) {
    const auto it = conns.find(id);
    if (it == conns.end()) return;
    Conn& conn = it->second;
    conn.last_active = tick;
    if ((events & (EPOLLHUP | EPOLLERR)) != 0) conn.peer_eof = true;
    if ((events & EPOLLIN) != 0) {
      char buf[64 * 1024];
      while (conn.rbuf.size() < kReadCap) {
        const ssize_t r = ::recv(conn.fd, buf, sizeof buf, 0);
        if (r > 0) {
          conn.rbuf.append(buf, static_cast<std::size_t>(r));
          continue;
        }
        if (r == 0) {
          conn.peer_eof = true;
          break;
        }
        if (errno == EINTR) continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK) conn.peer_eof = true;
        break;
      }
    }
    if (!parse_input(conn)) return;  // connection closed
    if ((events & EPOLLOUT) != 0) flush(conn);
  }

  void drain_replies() {
    std::deque<Reply> batch;
    {
      std::lock_guard<std::mutex> lock(reply_mutex);
      batch.swap(replies);
    }
    for (Reply& reply : batch) {
      const auto it = conns.find(reply.conn_id);
      if (it == conns.end()) continue;
      Conn& conn = it->second;
      conn.busy = false;
      if (reply.close_after) conn.close_after_flush = true;
      if (reply.exit_after_reply) conn.drain_exit_after_flush = true;
      if (!send_bytes(conn, reply.bytes)) continue;  // closed
      // The reply may have unblocked a pipelined request already buffered.
      if (conns.find(reply.conn_id) != conns.end()) parse_input(conn);
    }
  }

  void event_loop() {
    while (!shutdown.load()) {
      int timeout_ms = 100;
      if (accept_paused) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                              accept_resume - std::chrono::steady_clock::now())
                              .count();
        timeout_ms = static_cast<int>(std::clamp<long long>(left, 1, 100));
      }
      epoll_event events[64];
      const int n = ::epoll_wait(epoll_fd, events, 64, timeout_ms);
      ++tick;
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // epoll itself failed; nothing left to serve
      }
      if (accept_paused &&
          std::chrono::steady_clock::now() >= accept_resume) {
        resume_accept();
      }
      for (int i = 0; i < n; ++i) {
        if (shutdown.load()) break;
        const std::uint64_t tag = events[i].data.u64;
        if (tag == kFrameListenerTag) {
          accept_ready(frame_listen_fd, Proto::kFrame);
        } else if (tag == kHttpListenerTag) {
          accept_ready(http_listen_fd, Proto::kHttp);
        } else if (tag == kWakeTag) {
          std::uint64_t counter = 0;
          [[maybe_unused]] const ssize_t r =
              ::read(wake_fd, &counter, sizeof counter);
          drain_replies();
        } else {
          conn_event(tag, events[i].events);
        }
      }
    }
    // Shutdown: the loop owns every connection fd, so it closes them.
    for (auto& [id, conn] : conns) net::close_fd(conn.fd);
    conns.clear();
    live_conns.store(0, std::memory_order_relaxed);
  }
};

ServiceServer::ServiceServer(TuningService& service, ServiceServerOptions options)
    : impl_(std::make_unique<Impl>(service, std::move(options))) {}

ServiceServer::~ServiceServer() { stop(); }

void ServiceServer::start() {
  Impl* impl = impl_.get();
  impl->frame_listen_fd = net::listen_tcp(impl->options.host, impl->options.port);
  impl->bound_port = net::local_port(impl->frame_listen_fd);
  net::set_nonblocking(impl->frame_listen_fd);
  if (impl->options.enable_http) {
    impl->http_listen_fd =
        net::listen_tcp(impl->options.host, impl->options.http_port);
    impl->bound_http_port = net::local_port(impl->http_listen_fd);
    net::set_nonblocking(impl->http_listen_fd);
  }
  impl->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (impl->epoll_fd < 0) {
    throw ServiceError(ErrorCode::kIo,
                       std::string("epoll_create1: ") + std::strerror(errno));
  }
  impl->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (impl->wake_fd < 0) {
    throw ServiceError(ErrorCode::kIo,
                       std::string("eventfd: ") + std::strerror(errno));
  }
  impl->arm(impl->frame_listen_fd, kFrameListenerTag, EPOLLIN, EPOLL_CTL_ADD);
  if (impl->http_listen_fd >= 0) {
    impl->arm(impl->http_listen_fd, kHttpListenerTag, EPOLLIN, EPOLL_CTL_ADD);
  }
  impl->arm(impl->wake_fd, kWakeTag, EPOLLIN, EPOLL_CTL_ADD);
  const std::size_t worker_count = std::max<std::size_t>(1, impl->options.workers);
  impl->workers.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    impl->workers.emplace_back([impl] { impl->worker_loop(); });
  }
  impl->loop_thread = std::thread([impl] { impl->event_loop(); });
}

void ServiceServer::wait() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->cv.wait(lock, [this] { return impl_->stopping || impl_->drain_exit; });
}

bool ServiceServer::wait_for(double timeout_seconds) {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  return impl_->cv.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds),
      [this] { return impl_->stopping || impl_->drain_exit; });
}

void ServiceServer::stop() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->stopping) return;
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  impl_->shutdown.store(true);
  impl_->wake();
  if (impl_->loop_thread.joinable()) impl_->loop_thread.join();
  impl_->work_cv.notify_all();
  for (std::thread& worker : impl_->workers) {
    if (worker.joinable()) worker.join();
  }
  net::close_fd(impl_->frame_listen_fd);
  impl_->frame_listen_fd = -1;
  net::close_fd(impl_->http_listen_fd);
  impl_->http_listen_fd = -1;
  net::close_fd(impl_->epoll_fd);
  impl_->epoll_fd = -1;
  net::close_fd(impl_->wake_fd);
  impl_->wake_fd = -1;
}

std::uint16_t ServiceServer::port() const { return impl_->bound_port; }

std::uint16_t ServiceServer::http_port() const { return impl_->bound_http_port; }

std::size_t ServiceServer::active_connections() const {
  return impl_->live_conns.load(std::memory_order_relaxed);
}

}  // namespace tunespace::tuner
