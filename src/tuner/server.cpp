#include "tunespace/tuner/server.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <list>
#include <mutex>
#include <thread>

#include "tunespace/tuner/net.hpp"
#include "tunespace/tuner/protocol.hpp"

namespace tunespace::tuner {

using util::json::Value;

struct ServiceServer::Impl {
  TuningService& service;
  ServiceServerOptions options;

  int listen_fd = -1;
  std::uint16_t bound_port = 0;
  std::thread accept_thread;

  struct Conn {
    int fd = -1;
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> finished;
  };

  std::mutex mutex;
  std::condition_variable cv;
  bool started = false;
  bool stopping = false;
  bool drain_exit = false;
  std::list<Conn> conns;

  explicit Impl(TuningService& s, ServiceServerOptions o)
      : service(s), options(std::move(o)) {}

  std::string dispatch(const std::string& op, const Value& body,
                       bool& exit_after_reply) {
    // Version gate: a request stamped with a "v" beyond what this server
    // speaks gets the typed error instead of a silent misparse.  An absent
    // "v" means 1, which every v2 reader accepts by construction.
    const int v = static_cast<int>(body.at("v").as_int(1));
    if (v > wire::kProtocolVersion) {
      throw ServiceError(ErrorCode::kUnsupportedVersion,
                         "request version " + std::to_string(v) +
                             " exceeds server protocol version " +
                             std::to_string(wire::kProtocolVersion));
    }
    if (op == "hello") {
      const wire::HelloRequest request = wire::hello_request_from_json(body);
      if (request.max_version < 1) {
        throw ServiceError(ErrorCode::kUnsupportedVersion,
                           "client max_version must be >= 1");
      }
      wire::HelloResponse response;
      response.version = std::min(request.max_version, wire::kProtocolVersion);
      response.server_version = wire::kProtocolVersion;
      return wire::encode_ok(wire::to_json(response));
    }
    if (op == "ping") {
      Value reply = Value::object();
      reply.set("pong", true);
      return wire::encode_ok(reply);
    }
    if (op == "open") {
      return wire::encode_ok(wire::to_json(
          service.open(wire::open_session_request_from_json(body))));
    }
    if (op == "suggest") {
      return wire::encode_ok(wire::to_json(
          service.suggest({body.at("session_id").as_uint()})));
    }
    if (op == "report") {
      return wire::encode_ok(
          wire::to_json(service.report(wire::report_request_from_json(body))));
    }
    if (op == "best") {
      return wire::encode_ok(
          wire::to_json(service.best({body.at("session_id").as_uint()})));
    }
    if (op == "info") {
      return wire::encode_ok(
          wire::to_json(service.info(body.at("session_id").as_uint())));
    }
    if (op == "stats") {
      return wire::encode_ok(wire::to_json(service.stats()));
    }
    if (op == "close") {
      return wire::encode_ok(
          wire::to_json(service.close({body.at("session_id").as_uint()})));
    }
    if (op == "drain") {
      const DrainRequest request = wire::drain_request_from_json(body);
      service.begin_drain();
      if (request.wait) service.wait_drained(request.timeout_seconds);
      DrainResponse response;
      response.draining = service.draining();
      response.drained = service.drained();
      response.live_sessions = service.stats().live_sessions;
      // Signal only after the reply frame is on the wire (serve_connection
      // raises drain_exit), or stop() could shut the socket down under the
      // in-flight drain response.
      exit_after_reply = response.drained && options.exit_when_drained;
      return wire::encode_ok(wire::to_json(response));
    }
    throw ServiceError(ErrorCode::kProtocol, "unknown op '" + op + "'");
  }

  std::string handle_frame(const std::string& frame, bool& exit_after_reply) {
    try {
      const auto [op, body] = wire::decode_request(frame);
      return dispatch(op, body, exit_after_reply);
    } catch (const ServiceError& e) {
      return wire::encode_error(e.code(), e.what());
    } catch (const std::exception& e) {
      return wire::encode_error(ErrorCode::kInternal, e.what());
    }
  }

  void serve_connection(int fd, const std::shared_ptr<std::atomic<bool>>& done) {
    net::FdStream stream(fd);
    try {
      while (auto frame = wire::read_frame(stream)) {
        bool exit_after_reply = false;
        wire::write_frame(stream, handle_frame(*frame, exit_after_reply));
        if (exit_after_reply) {
          std::lock_guard<std::mutex> lock(mutex);
          drain_exit = true;
          cv.notify_all();
        }
      }
    } catch (const std::exception&) {
      // Peer went away or desynchronized: drop the connection.  Sessions
      // survive in the service and a reconnect can resume them by id.
    }
    done->store(true);
  }

  void reap_finished() {
    std::lock_guard<std::mutex> lock(mutex);
    for (auto it = conns.begin(); it != conns.end();) {
      if (it->finished->load()) {
        it->thread.join();
        net::close_fd(it->fd);
        it = conns.erase(it);
      } else {
        ++it;
      }
    }
  }

  void accept_loop() {
    while (true) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (stopping) return;
      }
      reap_finished();
      int fd = -1;
      try {
        fd = net::accept_timeout(listen_fd, 100);
      } catch (const std::exception&) {
        return;  // listener closed under us (stop())
      }
      if (fd < 0) continue;
      auto done = std::make_shared<std::atomic<bool>>(false);
      std::lock_guard<std::mutex> lock(mutex);
      if (stopping) {
        net::close_fd(fd);
        return;
      }
      Conn conn;
      conn.fd = fd;
      conn.finished = done;
      conn.thread = std::thread([this, fd, done] { serve_connection(fd, done); });
      conns.push_back(std::move(conn));
    }
  }
};

ServiceServer::ServiceServer(TuningService& service, ServiceServerOptions options)
    : impl_(std::make_unique<Impl>(service, std::move(options))) {}

ServiceServer::~ServiceServer() { stop(); }

void ServiceServer::start() {
  impl_->listen_fd = net::listen_tcp(impl_->options.host, impl_->options.port);
  impl_->bound_port = net::local_port(impl_->listen_fd);
  impl_->started = true;
  impl_->accept_thread = std::thread([impl = impl_.get()] { impl->accept_loop(); });
}

void ServiceServer::wait() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->cv.wait(lock, [this] { return impl_->stopping || impl_->drain_exit; });
}

bool ServiceServer::wait_for(double timeout_seconds) {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  return impl_->cv.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds),
      [this] { return impl_->stopping || impl_->drain_exit; });
}

void ServiceServer::stop() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->stopping) return;
    impl_->stopping = true;
    impl_->cv.notify_all();
  }
  if (impl_->listen_fd >= 0) {
    ::shutdown(impl_->listen_fd, SHUT_RDWR);
  }
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
  net::close_fd(impl_->listen_fd);
  impl_->listen_fd = -1;
  // Unblock every connection reader, then join.
  std::list<Impl::Conn> conns;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    conns.swap(impl_->conns);
  }
  for (auto& conn : conns) ::shutdown(conn.fd, SHUT_RDWR);
  for (auto& conn : conns) {
    conn.thread.join();
    net::close_fd(conn.fd);
  }
}

std::uint16_t ServiceServer::port() const { return impl_->bound_port; }

}  // namespace tunespace::tuner
