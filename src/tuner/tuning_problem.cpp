#include "tunespace/tuner/tuning_problem.hpp"

#include <limits>

namespace tunespace::tuner {

TuningProblem& TuningProblem::add_param(std::string name,
                                        std::vector<csp::Value> values) {
  params_.push_back(TunableParam{std::move(name), std::move(values)});
  return *this;
}

TuningProblem& TuningProblem::add_param(std::string name,
                                        std::vector<std::int64_t> values) {
  std::vector<csp::Value> v;
  v.reserve(values.size());
  for (std::int64_t x : values) v.emplace_back(x);
  return add_param(std::move(name), std::move(v));
}

TuningProblem& TuningProblem::add_param(std::string name,
                                        std::initializer_list<int> values) {
  std::vector<csp::Value> v;
  v.reserve(values.size());
  for (int x : values) v.emplace_back(static_cast<std::int64_t>(x));
  return add_param(std::move(name), std::move(v));
}

TuningProblem& TuningProblem::add_constraint(std::string expression) {
  constraints_.push_back(std::move(expression));
  return *this;
}

TuningProblem& TuningProblem::add_constraint(std::vector<std::string> scope,
                                             csp::LambdaPredicate predicate,
                                             std::string description) {
  lambda_constraints_.push_back(
      LambdaSpec{std::move(scope), std::move(predicate), std::move(description)});
  return *this;
}

std::uint64_t TuningProblem::cartesian_size() const {
  std::uint64_t size = 1;
  for (const auto& p : params_) {
    if (p.values.empty()) return 0;
    const std::uint64_t n = p.values.size();
    if (size > std::numeric_limits<std::uint64_t>::max() / n) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    size *= n;
  }
  return size;
}

}  // namespace tunespace::tuner
