#include "tunespace/tuner/protocol.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace tunespace::tuner::wire {

using util::json::Value;

void write_frame(ByteStream& stream, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw ServiceError(ErrorCode::kProtocol, "frame payload exceeds 16 MiB");
  }
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  unsigned char prefix[4] = {static_cast<unsigned char>(n >> 24),
                             static_cast<unsigned char>(n >> 16),
                             static_cast<unsigned char>(n >> 8),
                             static_cast<unsigned char>(n)};
  stream.write_all(prefix, sizeof prefix);
  if (n > 0) stream.write_all(payload.data(), payload.size());
}

std::optional<std::string> read_frame(ByteStream& stream) {
  unsigned char prefix[4];
  if (!stream.read_all(prefix, sizeof prefix)) return std::nullopt;
  const std::uint32_t n = (static_cast<std::uint32_t>(prefix[0]) << 24) |
                          (static_cast<std::uint32_t>(prefix[1]) << 16) |
                          (static_cast<std::uint32_t>(prefix[2]) << 8) |
                          static_cast<std::uint32_t>(prefix[3]);
  if (n > kMaxFrameBytes) {
    throw ServiceError(ErrorCode::kProtocol, "frame length exceeds 16 MiB");
  }
  std::string payload(n, '\0');
  if (n > 0 && !stream.read_all(payload.data(), n)) {
    throw ServiceError(ErrorCode::kIo, "connection closed mid-frame");
  }
  return payload;
}

// ---------------------------------------------------------------------------
// HTTP/1.1 gateway codec
// ---------------------------------------------------------------------------

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

/// Case-insensitive token search in a comma-separated header value.
bool has_token(std::string_view value, std::string_view token) {
  const std::string haystack = lower(value);
  std::size_t pos = 0;
  while (pos <= haystack.size()) {
    const std::size_t comma = std::min(haystack.find(',', pos), haystack.size());
    if (trim(std::string_view(haystack).substr(pos, comma - pos)) == token) {
      return true;
    }
    pos = comma + 1;
  }
  return false;
}

const char* http_reason(int status) {
  switch (status) {
    case 100: return "Continue";
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Content Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

}  // namespace

HttpParse parse_http_request(std::string_view buffer, HttpRequest& request,
                             std::size_t& consumed, int& error_status,
                             std::string& error) {
  request = HttpRequest{};
  consumed = 0;
  error_status = 400;
  error.clear();

  const std::size_t header_end = buffer.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    if (buffer.size() > kMaxHttpHeaderBytes) {
      error_status = 431;
      error = "request header block exceeds 64 KiB";
      return HttpParse::kBad;
    }
    return HttpParse::kNeedMore;
  }
  if (header_end > kMaxHttpHeaderBytes) {
    error_status = 431;
    error = "request header block exceeds 64 KiB";
    return HttpParse::kBad;
  }

  // Request line: METHOD SP target SP HTTP/1.x
  const std::size_t line_end = buffer.find("\r\n");
  const std::string_view line = buffer.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string_view::npos
                              ? std::string_view::npos
                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    error = "malformed request line";
    return HttpParse::kBad;
  }
  const std::string_view version = line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    error = "unsupported HTTP version";
    return HttpParse::kBad;
  }
  request.method = std::string(line.substr(0, sp1));
  request.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  request.keep_alive = version == "HTTP/1.1";

  std::uint64_t content_length = 0;
  std::size_t pos = line_end + 2;
  while (pos < header_end + 2) {
    const std::size_t eol = buffer.find("\r\n", pos);
    const std::string_view header = buffer.substr(pos, eol - pos);
    pos = eol + 2;
    if (header.empty()) break;
    const std::size_t colon = header.find(':');
    if (colon == std::string_view::npos) {
      error = "malformed header line";
      return HttpParse::kBad;
    }
    const std::string name = lower(trim(header.substr(0, colon)));
    const std::string_view value = trim(header.substr(colon + 1));
    if (name == "content-length") {
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string_view::npos) {
        error = "malformed Content-Length";
        return HttpParse::kBad;
      }
      content_length = 0;
      for (const char c : value) {
        content_length = content_length * 10 + static_cast<std::uint64_t>(c - '0');
        if (content_length > kMaxFrameBytes) break;  // overflow-proof
      }
    } else if (name == "transfer-encoding") {
      error_status = 501;
      error = "chunked transfer encoding is not supported; send Content-Length";
      return HttpParse::kBad;
    } else if (name == "connection") {
      if (has_token(value, "close")) request.keep_alive = false;
      if (has_token(value, "keep-alive")) request.keep_alive = true;
    } else if (name == "expect") {
      if (has_token(value, "100-continue")) request.expect_continue = true;
    }
  }
  request.headers_complete = true;

  if (content_length > kMaxFrameBytes) {
    error_status = 413;
    error = "request body exceeds 16 MiB";
    return HttpParse::kBad;
  }
  const std::size_t total =
      header_end + 4 + static_cast<std::size_t>(content_length);
  if (buffer.size() < total) return HttpParse::kNeedMore;
  request.body = std::string(
      buffer.substr(header_end + 4, static_cast<std::size_t>(content_length)));
  consumed = total;
  return HttpParse::kOk;
}

std::string http_op_from_target(std::string_view target) {
  constexpr std::string_view kPrefix = "/v1/";
  if (target.size() <= kPrefix.size() || target.substr(0, kPrefix.size()) != kPrefix) {
    return {};
  }
  const std::string_view op = target.substr(kPrefix.size());
  if (op.find('/') != std::string_view::npos ||
      op.find('?') != std::string_view::npos) {
    return {};
  }
  return std::string(op);
}

std::string encode_http_response(int status, std::string_view json_body,
                                 bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    http_reason(status) + "\r\n";
  out += "Content-Type: application/json\r\n";
  out += "Content-Length: " + std::to_string(json_body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += json_body;
  return out;
}

int http_status_for(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return 200;
    case ErrorCode::kInvalidArgument:
    case ErrorCode::kProtocol:
    case ErrorCode::kUnsupportedVersion: return 400;
    case ErrorCode::kUnknownSession: return 404;
    case ErrorCode::kWrongState:
    case ErrorCode::kSessionFinished: return 409;
    case ErrorCode::kAdmissionLimit: return 429;
    case ErrorCode::kDraining: return 503;
    case ErrorCode::kSpaceBuildFailed:
    case ErrorCode::kIo:
    case ErrorCode::kInternal: return 500;
  }
  return 500;
}

std::string encode_request(const std::string& op, const Value& body) {
  Value envelope = Value::object();
  envelope.set("op", op);
  for (const auto& [key, value] : body.members()) envelope.set(key, value);
  return envelope.dump();
}

std::pair<std::string, Value> decode_request(const std::string& frame) {
  Value document = Value::parse(frame);
  const std::string& op = document.at("op").as_string();
  if (op.empty()) {
    throw ServiceError(ErrorCode::kProtocol, "request frame carries no op");
  }
  return {op, std::move(document)};
}

std::string encode_ok(const Value& body) {
  Value envelope = Value::object();
  envelope.set("ok", true);
  for (const auto& [key, value] : body.members()) envelope.set(key, value);
  return envelope.dump();
}

std::string encode_error(ErrorCode code, const std::string& message) {
  Value error = Value::object();
  error.set("code", error_code_name(code));
  error.set("message", message);
  Value envelope = Value::object();
  envelope.set("ok", false);
  envelope.set("error", std::move(error));
  return envelope.dump();
}

Value decode_response(const std::string& frame) {
  Value document = Value::parse(frame);
  const Value* ok = document.find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    throw ServiceError(ErrorCode::kProtocol, "response frame carries no ok flag");
  }
  if (ok->as_bool()) return document;
  const Value& error = document.at("error");
  const std::string& message = error.at("message").as_string();
  throw ServiceError(error_code_from_name(error.at("code").as_string()),
                     message.empty() ? "remote error" : message);
}

// ---------------------------------------------------------------------------
// Scalars and configurations
// ---------------------------------------------------------------------------

Value to_json(const csp::Value& value) {
  switch (value.kind()) {
    case csp::ValueKind::Int: return Value(value.as_int());
    case csp::ValueKind::Bool: return Value(value.truthy());
    case csp::ValueKind::Real: return Value(value.as_real());
    case csp::ValueKind::Str: return Value(value.as_str());
  }
  return Value(nullptr);
}

csp::Value csp_value_from_json(const Value& value) {
  switch (value.kind()) {
    case Value::Kind::Bool: return csp::Value(value.as_bool());
    case Value::Kind::Int: return csp::Value(value.as_int());
    case Value::Kind::Double: return csp::Value(value.as_double());
    case Value::Kind::String: return csp::Value(value.as_string());
    default:
      throw ServiceError(ErrorCode::kProtocol,
                         "parameter values must be scalars");
  }
}

Value config_to_json(const std::vector<NamedValue>& config) {
  Value object = Value::object();
  for (const auto& entry : config) object.set(entry.name, to_json(entry.value));
  return object;
}

std::vector<NamedValue> config_from_json(const Value& value) {
  std::vector<NamedValue> config;
  config.reserve(value.members().size());
  for (const auto& [name, member] : value.members()) {
    config.push_back({name, csp_value_from_json(member)});
  }
  return config;
}

// ---------------------------------------------------------------------------
// Objective vectors and specs (protocol v2)
// ---------------------------------------------------------------------------

Value to_json(const Measurement& measurement) {
  Value body = Value::object();
  body.set("gflops", measurement.gflops);
  body.set("watts", measurement.watts);
  return body;
}

Measurement measurement_from_json(const Value& value) {
  Measurement measurement;
  measurement.gflops = value.at("gflops").as_double();
  measurement.watts = value.at("watts").as_double();
  return measurement;
}

Value to_json(const ObjectiveSpec& spec) {
  Value array = Value::array();
  for (const auto& objective : spec.objectives) {
    Value entry = Value::object();
    entry.set("name", objective.name);
    entry.set("direction", objective.direction == Direction::kMinimize
                               ? "minimize"
                               : "maximize");
    entry.set("weight", objective.weight);
    array.push(std::move(entry));
  }
  return array;
}

ObjectiveSpec objective_spec_from_json(const Value& value) {
  ObjectiveSpec spec;
  spec.objectives.clear();
  for (const auto& entry : value.items()) {
    Objective objective;
    objective.name = entry.at("name").as_string();
    objective.direction = entry.at("direction").as_string() == "minimize"
                              ? Direction::kMinimize
                              : Direction::kMaximize;
    objective.weight = entry.at("weight").as_double(objective.weight);
    spec.objectives.push_back(std::move(objective));
  }
  // An empty array is as meaningless as an absent field: both mean v1, the
  // single-objective default.
  if (spec.objectives.empty()) spec = ObjectiveSpec{};
  return spec;
}

Value to_json(const ParetoPoint& point) {
  Value body = Value::object();
  body.set("row", point.row);
  body.set("parent_row", point.parent_row);
  body.set("measurement", to_json(point.measurement));
  body.set("time_seconds", point.time_seconds);
  body.set("evaluations", point.evaluations);
  return body;
}

ParetoPoint pareto_point_from_json(const Value& value) {
  ParetoPoint point;
  point.row = value.at("row").as_uint();
  point.parent_row = value.at("parent_row").as_uint();
  point.measurement = measurement_from_json(value.at("measurement"));
  point.time_seconds = value.at("time_seconds").as_double();
  point.evaluations = value.at("evaluations").as_uint();
  return point;
}

// ---------------------------------------------------------------------------
// api.hpp structs
// ---------------------------------------------------------------------------

Value to_json(const HelloRequest& request) {
  Value body = Value::object();
  body.set("max_version", static_cast<std::int64_t>(request.max_version));
  return body;
}

HelloRequest hello_request_from_json(const Value& value) {
  HelloRequest request;
  request.max_version = static_cast<int>(
      value.at("max_version").as_int(request.max_version));
  return request;
}

Value to_json(const HelloResponse& response) {
  Value body = Value::object();
  body.set("version", static_cast<std::int64_t>(response.version));
  body.set("server_version",
           static_cast<std::int64_t>(response.server_version));
  return body;
}

HelloResponse hello_response_from_json(const Value& value) {
  HelloResponse response;
  response.version =
      static_cast<int>(value.at("version").as_int(response.version));
  response.server_version = static_cast<int>(
      value.at("server_version").as_int(response.server_version));
  return response;
}

Value to_json(const OpenSessionRequest& request) {
  Value body = Value::object();
  body.set("tenant", request.tenant);
  body.set("kernel", request.kernel);
  body.set("optimizer", request.optimizer);
  body.set("method", request.method);
  body.set("seed", request.seed);
  body.set("budget_seconds", request.budget_seconds);
  body.set("overhead_per_request", request.overhead_per_request);
  body.set("fixed_construction_seconds", request.fixed_construction_seconds);
  body.set("construction_time_scale", request.construction_time_scale);
  if (!request.restrictions.empty()) {
    Value restrictions = Value::object();
    for (const auto& filter : request.restrictions) {
      Value values = Value::array();
      for (const auto& v : filter.values) values.push(to_json(v));
      restrictions.set(filter.param, std::move(values));
    }
    body.set("restrictions", std::move(restrictions));
  }
  // Only the non-default spec crosses the wire: a scalar open keeps its v1
  // bytes, and an absent field already means single-objective to v2 readers.
  if (!request.objectives.is_single()) {
    body.set("objectives", to_json(request.objectives));
  }
  // Transfer-learning flags ride the same absent-means-off convention, so a
  // cold open's envelope is byte-identical to the pre-transfer wire.
  if (request.warm_start) body.set("warm_start", true);
  if (request.surrogate) body.set("surrogate", true);
  return body;
}

OpenSessionRequest open_session_request_from_json(const Value& value) {
  OpenSessionRequest request;
  request.tenant = value.at("tenant").as_string();
  request.kernel = value.at("kernel").as_string();
  if (const Value* v = value.find("optimizer")) request.optimizer = v->as_string();
  request.method = value.at("method").as_string();
  request.seed = value.at("seed").as_uint(request.seed);
  request.budget_seconds =
      value.at("budget_seconds").as_double(request.budget_seconds);
  request.overhead_per_request =
      value.at("overhead_per_request").as_double(request.overhead_per_request);
  request.fixed_construction_seconds =
      value.at("fixed_construction_seconds")
          .as_double(request.fixed_construction_seconds);
  request.construction_time_scale =
      value.at("construction_time_scale").as_double(request.construction_time_scale);
  for (const auto& [param, values] : value.at("restrictions").members()) {
    ParamFilter filter;
    filter.param = param;
    for (const auto& v : values.items()) {
      filter.values.push_back(csp_value_from_json(v));
    }
    request.restrictions.push_back(std::move(filter));
  }
  if (const Value* objectives = value.find("objectives")) {
    request.objectives = objective_spec_from_json(*objectives);
  }
  if (const Value* warm = value.find("warm_start")) {
    request.warm_start = warm->as_bool();
  }
  if (const Value* surrogate = value.find("surrogate")) {
    request.surrogate = surrogate->as_bool();
  }
  return request;
}

Value to_json(const SessionInfo& info) {
  Value body = Value::object();
  body.set("session_id", info.session_id);
  body.set("tenant", info.tenant);
  body.set("kernel", info.kernel);
  body.set("optimizer", info.optimizer);
  body.set("method", info.method);
  body.set("space_rows", info.space_rows);
  Value names = Value::array();
  for (const auto& name : info.param_names) names.push(name);
  body.set("param_names", std::move(names));
  body.set("shared_space", info.shared_space);
  body.set("awaiting_report", info.awaiting_report);
  body.set("finished", info.finished);
  body.set("now_seconds", info.now_seconds);
  body.set("budget_seconds", info.budget_seconds);
  body.set("best_gflops", info.best_gflops);
  body.set("evaluations", info.evaluations);
  body.set("shared_cache_hits", info.shared_cache_hits);
  body.set("model_evaluations", info.model_evaluations);
  body.set("objectives", to_json(info.objectives));
  body.set("best_score", info.best_score);
  body.set("best", to_json(info.best));
  body.set("seeded_rows", info.seeded_rows);
  body.set("surrogate_refits", info.surrogate_refits);
  return body;
}

SessionInfo session_info_from_json(const Value& value) {
  SessionInfo info;
  info.session_id = value.at("session_id").as_uint();
  info.tenant = value.at("tenant").as_string();
  info.kernel = value.at("kernel").as_string();
  info.optimizer = value.at("optimizer").as_string();
  info.method = value.at("method").as_string();
  info.space_rows = value.at("space_rows").as_uint();
  for (const auto& name : value.at("param_names").items()) {
    info.param_names.push_back(name.as_string());
  }
  info.shared_space = value.at("shared_space").as_bool();
  info.awaiting_report = value.at("awaiting_report").as_bool();
  info.finished = value.at("finished").as_bool();
  info.now_seconds = value.at("now_seconds").as_double();
  info.budget_seconds = value.at("budget_seconds").as_double();
  info.best_gflops = value.at("best_gflops").as_double();
  info.evaluations = value.at("evaluations").as_uint();
  info.shared_cache_hits = value.at("shared_cache_hits").as_uint();
  info.model_evaluations = value.at("model_evaluations").as_uint();
  // v1-shape reconstruction: a scalar envelope means the single-objective
  // spec with the incumbent's vector rebuilt from best_gflops.
  if (const Value* objectives = value.find("objectives")) {
    info.objectives = objective_spec_from_json(*objectives);
  }
  info.best_score = value.at("best_score").as_double(info.best_gflops);
  if (const Value* best = value.find("best")) {
    info.best = measurement_from_json(*best);
  } else {
    info.best = Measurement{info.best_gflops, 0.0};
  }
  // Absent on envelopes from pre-transfer servers: zero.
  if (const Value* seeded = value.find("seeded_rows")) {
    info.seeded_rows = seeded->as_uint();
  }
  if (const Value* refits = value.find("surrogate_refits")) {
    info.surrogate_refits = refits->as_uint();
  }
  return info;
}

Value to_json(const OpenSessionResponse& response) {
  Value body = Value::object();
  body.set("session_id", response.session_id);
  body.set("info", to_json(response.info));
  return body;
}

OpenSessionResponse open_session_response_from_json(const Value& value) {
  OpenSessionResponse response;
  response.session_id = value.at("session_id").as_uint();
  response.info = session_info_from_json(value.at("info"));
  return response;
}

Value to_json(const SuggestResponse& response) {
  Value body = Value::object();
  body.set("session_id", response.session_id);
  body.set("finished", response.finished);
  if (!response.finished) {
    body.set("config_id", response.config_id);
    body.set("parent_row", response.parent_row);
    body.set("config", config_to_json(response.config));
  }
  body.set("now_seconds", response.now_seconds);
  body.set("evaluations", response.evaluations);
  return body;
}

SuggestResponse suggest_response_from_json(const Value& value) {
  SuggestResponse response;
  response.session_id = value.at("session_id").as_uint();
  response.finished = value.at("finished").as_bool();
  response.config_id = value.at("config_id").as_uint();
  response.parent_row = value.at("parent_row").as_uint();
  response.config = config_from_json(value.at("config"));
  response.now_seconds = value.at("now_seconds").as_double();
  response.evaluations = value.at("evaluations").as_uint();
  return response;
}

Value to_json(const ReportRequest& request) {
  Value body = Value::object();
  body.set("session_id", request.session_id);
  body.set("gflops", request.gflops);
  body.set("measure_seconds", request.measure_seconds);
  // The objective map rides only on vector reports, so scalar reports keep
  // their v1 bytes; the gflops mirror above stays authoritative for v1
  // readers either way.
  if (request.measurement != Measurement{}) {
    body.set("measurement", to_json(request.measurement));
  }
  return body;
}

ReportRequest report_request_from_json(const Value& value) {
  ReportRequest request;
  request.session_id = value.at("session_id").as_uint();
  request.gflops = value.at("gflops").as_double();
  request.measure_seconds =
      value.at("measure_seconds").as_double(request.measure_seconds);
  if (const Value* measurement = value.find("measurement")) {
    request.measurement = measurement_from_json(*measurement);
  }
  return request;
}

Value to_json(const ReportResponse& response) {
  Value body = Value::object();
  body.set("session_id", response.session_id);
  body.set("improved", response.improved);
  body.set("finished", response.finished);
  body.set("best_gflops", response.best_gflops);
  body.set("now_seconds", response.now_seconds);
  body.set("evaluations", response.evaluations);
  body.set("best_score", response.best_score);
  body.set("best", to_json(response.best));
  return body;
}

ReportResponse report_response_from_json(const Value& value) {
  ReportResponse response;
  response.session_id = value.at("session_id").as_uint();
  response.improved = value.at("improved").as_bool();
  response.finished = value.at("finished").as_bool();
  response.best_gflops = value.at("best_gflops").as_double();
  response.now_seconds = value.at("now_seconds").as_double();
  response.evaluations = value.at("evaluations").as_uint();
  response.best_score = value.at("best_score").as_double(response.best_gflops);
  if (const Value* best = value.find("best")) {
    response.best = measurement_from_json(*best);
  } else {
    response.best = Measurement{response.best_gflops, 0.0};
  }
  return response;
}

Value to_json(const BestResponse& response) {
  Value body = Value::object();
  body.set("session_id", response.session_id);
  body.set("best_gflops", response.best_gflops);
  body.set("config", config_to_json(response.config));
  body.set("now_seconds", response.now_seconds);
  body.set("evaluations", response.evaluations);
  body.set("finished", response.finished);
  body.set("best_score", response.best_score);
  body.set("best", to_json(response.best));
  return body;
}

BestResponse best_response_from_json(const Value& value) {
  BestResponse response;
  response.session_id = value.at("session_id").as_uint();
  response.best_gflops = value.at("best_gflops").as_double();
  response.config = config_from_json(value.at("config"));
  response.now_seconds = value.at("now_seconds").as_double();
  response.evaluations = value.at("evaluations").as_uint();
  response.finished = value.at("finished").as_bool();
  response.best_score = value.at("best_score").as_double(response.best_gflops);
  if (const Value* best = value.find("best")) {
    response.best = measurement_from_json(*best);
  } else {
    response.best = Measurement{response.best_gflops, 0.0};
  }
  return response;
}

Value to_json(const RunSummary& run) {
  Value body = Value::object();
  body.set("method_name", run.method_name);
  body.set("construction_seconds", run.construction_seconds);
  body.set("budget_seconds", run.budget_seconds);
  body.set("best_gflops", run.best_gflops);
  body.set("evaluations", run.evaluations);
  Value trajectory = Value::array();
  for (const auto& point : run.trajectory) {
    Value entry = Value::object();
    entry.set("time_seconds", point.time_seconds);
    entry.set("best_gflops", point.best_gflops);
    entry.set("evaluations", point.evaluations);
    entry.set("measurement", to_json(point.measurement));
    trajectory.push(std::move(entry));
  }
  body.set("trajectory", std::move(trajectory));
  body.set("objectives", to_json(run.objectives));
  body.set("best_score", run.best_score);
  body.set("best", to_json(run.best));
  Value front = Value::array();
  for (const auto& point : run.front) front.push(to_json(point));
  body.set("front", std::move(front));
  return body;
}

RunSummary run_summary_from_json(const Value& value) {
  RunSummary run;
  run.method_name = value.at("method_name").as_string();
  run.construction_seconds = value.at("construction_seconds").as_double();
  run.budget_seconds = value.at("budget_seconds").as_double();
  run.best_gflops = value.at("best_gflops").as_double();
  run.evaluations = value.at("evaluations").as_uint();
  for (const auto& entry : value.at("trajectory").items()) {
    RunPoint point;
    point.time_seconds = entry.at("time_seconds").as_double();
    point.best_gflops = entry.at("best_gflops").as_double();
    point.evaluations = entry.at("evaluations").as_uint();
    // v1-shape trajectory entries carry no measurement: the scalar is the
    // whole vector.
    if (const Value* measurement = entry.find("measurement")) {
      point.measurement = measurement_from_json(*measurement);
    } else {
      point.measurement = Measurement{point.best_gflops, 0.0};
    }
    run.trajectory.push_back(std::move(point));
  }
  if (const Value* objectives = value.find("objectives")) {
    run.objectives = objective_spec_from_json(*objectives);
  }
  run.best_score = value.at("best_score").as_double(run.best_gflops);
  if (const Value* best = value.find("best")) {
    run.best = measurement_from_json(*best);
  } else {
    run.best = Measurement{run.best_gflops, 0.0};
  }
  for (const auto& entry : value.at("front").items()) {
    run.front.push_back(pareto_point_from_json(entry));
  }
  return run;
}

Value to_json(const CloseSessionResponse& response) {
  Value body = Value::object();
  body.set("session_id", response.session_id);
  body.set("run", to_json(response.run));
  return body;
}

CloseSessionResponse close_session_response_from_json(const Value& value) {
  CloseSessionResponse response;
  response.session_id = value.at("session_id").as_uint();
  response.run = run_summary_from_json(value.at("run"));
  return response;
}

Value to_json(const ServiceStats& stats) {
  Value body = Value::object();
  body.set("live_sessions", stats.live_sessions);
  body.set("total_opened", stats.total_opened);
  body.set("total_closed", stats.total_closed);
  body.set("total_rejected", stats.total_rejected);
  body.set("draining", stats.draining);
  body.set("cache_entries", stats.cache_entries);
  body.set("cache_hits", stats.cache_hits);
  body.set("cache_misses", stats.cache_misses);
  body.set("spaces_built", stats.spaces_built);
  body.set("spaces_shared", stats.spaces_shared);
  body.set("seeded_rows", stats.seeded_rows);
  body.set("surrogate_refits", stats.surrogate_refits);
  return body;
}

ServiceStats service_stats_from_json(const Value& value) {
  ServiceStats stats;
  stats.live_sessions = value.at("live_sessions").as_uint();
  stats.total_opened = value.at("total_opened").as_uint();
  stats.total_closed = value.at("total_closed").as_uint();
  stats.total_rejected = value.at("total_rejected").as_uint();
  stats.draining = value.at("draining").as_bool();
  stats.cache_entries = value.at("cache_entries").as_uint();
  stats.cache_hits = value.at("cache_hits").as_uint();
  stats.cache_misses = value.at("cache_misses").as_uint();
  stats.spaces_built = value.at("spaces_built").as_uint();
  stats.spaces_shared = value.at("spaces_shared").as_uint();
  // Absent on envelopes from pre-transfer servers: zero.
  if (const Value* seeded = value.find("seeded_rows")) {
    stats.seeded_rows = seeded->as_uint();
  }
  if (const Value* refits = value.find("surrogate_refits")) {
    stats.surrogate_refits = refits->as_uint();
  }
  return stats;
}

Value to_json(const DrainRequest& request) {
  Value body = Value::object();
  body.set("wait", request.wait);
  body.set("timeout_seconds", request.timeout_seconds);
  return body;
}

DrainRequest drain_request_from_json(const Value& value) {
  DrainRequest request;
  request.wait = value.at("wait").as_bool();
  request.timeout_seconds =
      value.at("timeout_seconds").as_double(request.timeout_seconds);
  return request;
}

Value to_json(const DrainResponse& response) {
  Value body = Value::object();
  body.set("draining", response.draining);
  body.set("drained", response.drained);
  body.set("live_sessions", response.live_sessions);
  return body;
}

DrainResponse drain_response_from_json(const Value& value) {
  DrainResponse response;
  response.draining = value.at("draining").as_bool();
  response.drained = value.at("drained").as_bool();
  response.live_sessions = value.at("live_sessions").as_uint();
  return response;
}

}  // namespace tunespace::tuner::wire
