#include "tunespace/tuner/net.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

namespace tunespace::tuner::net {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw ServiceError(ErrorCode::kIo, what + ": " + std::strerror(errno));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw ServiceError(ErrorCode::kIo, "bad IPv4 address '" + host + "'");
  }
  return addr;
}

}  // namespace

int listen_tcp(const std::string& host, std::uint16_t port) {
  const sockaddr_in addr = make_addr(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    fail("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    fail("listen");
  }
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    fail("getsockname");
  }
  return ntohs(addr.sin_port);
}

bool transient_accept_errno(int err) noexcept {
  return err == EMFILE || err == ENFILE || err == ENOBUFS || err == ENOMEM ||
         err == ECONNABORTED || err == EINTR || err == EAGAIN ||
         err == EWOULDBLOCK;
}

bool transient_connect_errno(int err) noexcept {
  return err == ECONNREFUSED || err == EAGAIN || err == ETIMEDOUT ||
         err == EINTR;
}

int connect_tcp(const std::string& host, std::uint16_t port,
                double timeout_seconds) {
  const sockaddr_in addr = make_addr(host, port);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double>(std::max(timeout_seconds, 0.0));
  while (true) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) fail("socket");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return fd;
    }
    const int err = errno;
    ::close(fd);
    // Retry only failures the passage of time can cure, and only while a
    // positive timeout leaves room; everything else fails on this attempt.
    if (!transient_connect_errno(err) || timeout_seconds <= 0 ||
        std::chrono::steady_clock::now() >= deadline) {
      errno = err;
      fail("connect " + host + ":" + std::to_string(port));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

int accept_timeout(int listen_fd, int timeout_ms) {
  pollfd pfd{listen_fd, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return -1;
    fail("poll");
  }
  if (ready == 0) return -1;
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    // Transient pressure (fd exhaustion, an aborted backlog entry, a
    // signal) is "no connection this round", with the caller's poll
    // timeout as the backoff — never a reason to abandon the listener.
    if (transient_accept_errno(errno)) return -1;
    fail("accept");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    fail("fcntl(O_NONBLOCK)");
  }
}

int accept_nonblocking(int listen_fd, int& err_out) noexcept {
  const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK);
  if (fd < 0) {
    err_out = (errno == EAGAIN || errno == EWOULDBLOCK) ? 0 : errno;
    return -1;
  }
  err_out = 0;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

void close_fd(int fd) noexcept {
  if (fd >= 0) ::close(fd);
}

void FdStream::write_all(const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      fail("send");
    }
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
}

bool FdStream::read_all(void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      fail("recv");
    }
    if (r == 0) {
      if (got == 0) return false;  // clean EOF at a message boundary
      throw ServiceError(ErrorCode::kIo, "connection closed mid-read");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace tunespace::tuner::net
