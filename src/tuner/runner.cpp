#include "tunespace/tuner/runner.hpp"

#include <unordered_map>

#include "tunespace/util/timer.hpp"

namespace tunespace::tuner {

double TuningRun::best_at(double time) const {
  double best = 0;
  for (const auto& pt : trajectory) {
    if (pt.time_seconds > time) break;
    best = pt.best_gflops;
  }
  return best;
}

namespace {

/// Drive `optimizer` over `view` with `construction_seconds` already charged
/// to the virtual clock (shared by the build-then-tune and the
/// restrict-then-tune entry points).
TuningRun run_over(const searchspace::SubSpace& view, const std::string& method_name,
                   double construction_seconds, const PerformanceModel& model,
                   Optimizer& optimizer, const TuningOptions& options) {
  TuningRun run;
  run.method_name = method_name;
  run.budget_seconds = options.budget_seconds;
  run.construction_seconds = construction_seconds;

  util::VirtualClock clock;
  clock.advance(construction_seconds * options.construction_time_scale);
  if (clock.now() >= options.budget_seconds || view.empty()) {
    return run;  // budget consumed before the first configuration
  }

  std::vector<std::string> names;
  names.reserve(view.num_params());
  for (std::size_t p = 0; p < view.num_params(); ++p) {
    names.push_back(view.param_name(p));
  }

  util::Rng rng(options.seed);
  std::unordered_map<std::size_t, double> cache;

  EvalContext ctx{
      view,
      /*evaluate=*/
      [&](std::size_t row) -> double {
        clock.advance(options.overhead_per_request);
        auto it = cache.find(row);
        if (it != cache.end()) return it->second;  // cached: overhead only
        if (clock.now() >= options.budget_seconds) return 0.0;
        const csp::Config config = view.config(row);
        const double perf = model.gflops(names, config);
        clock.advance(model.evaluation_cost(perf));
        cache.emplace(row, perf);
        run.evaluations++;
        if (perf > run.best_gflops) {
          run.best_gflops = perf;
          run.trajectory.push_back({clock.now(), perf, run.evaluations});
        }
        return perf;
      },
      /*exhausted=*/
      [&]() { return clock.now() >= options.budget_seconds; },
      &rng};

  optimizer.run(ctx);
  return run;
}

}  // namespace

TuningRun run_tuning(const TuningProblem& spec, const Method& method,
                     const PerformanceModel& model, Optimizer& optimizer,
                     const TuningOptions& options) {
  // Construction: real measured latency, charged to the virtual clock.
  searchspace::SearchSpace space(spec, method);
  return run_over(space, method.name, space.construction_seconds(), model,
                  optimizer, options);
}

TuningRun run_tuning(const searchspace::SubSpace& view, const PerformanceModel& model,
                     Optimizer& optimizer, const TuningOptions& options,
                     const std::string& method_name) {
  return run_over(view, method_name, view.parent().construction_seconds(), model,
                  optimizer, options);
}

}  // namespace tunespace::tuner
