#include "tunespace/tuner/runner.hpp"

#include <algorithm>

#include "tunespace/tuner/session.hpp"

namespace tunespace::tuner {

double TuningRun::best_at(double time) const {
  // Contract: a point exactly at `time` is included (<=, not <); with an
  // empty trajectory or `time` before the first improvement the answer is 0.
  double best = 0;
  for (const auto& pt : trajectory) {
    if (pt.time_seconds > time) break;
    best = pt.best_gflops;
  }
  return best;
}

std::vector<ParetoPoint> TuningRun::pareto() const {
  std::vector<ParetoPoint> sorted = front;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [this](const ParetoPoint& a, const ParetoPoint& b) {
                     const double sa = objectives.scalarize(a.measurement);
                     const double sb = objectives.scalarize(b.measurement);
                     if (sa != sb) return sa > sb;
                     return a.row < b.row;
                   });
  return sorted;
}

// Both deprecated overloads are thin shims over run_session (session.cpp),
// the one canonical stepper-backed entry point: they build the equivalent
// SessionRequest and forward.  The virtual clock, budget and overhead
// accounting live exactly once, in SessionStepper, shared with the
// SessionManager workers, the Portfolio members and the TuningService.

TuningRun run_tuning(const TuningProblem& spec, const Method& method,
                     const PerformanceModel& model, Optimizer& optimizer,
                     const TuningOptions& options) {
  return run_session(
      make_session_request(spec, method, model, optimizer, options));
}

TuningRun run_tuning(const searchspace::SubSpace& view, const PerformanceModel& model,
                     Optimizer& optimizer, const TuningOptions& options,
                     const std::string& method_name) {
  return run_session(
      make_session_request(view, model, optimizer, options, method_name));
}

}  // namespace tunespace::tuner
