#include "tunespace/tuner/runner.hpp"

#include "tunespace/tuner/session.hpp"

namespace tunespace::tuner {

double TuningRun::best_at(double time) const {
  double best = 0;
  for (const auto& pt : trajectory) {
    if (pt.time_seconds > time) break;
    best = pt.best_gflops;
  }
  return best;
}

// Both overloads are thin shims over the one canonical stepper-backed entry
// point, run_session_loop (session.cpp): the spec overload only adds space
// construction, then chains through the view overload.  The virtual clock,
// budget and overhead accounting live exactly once, in SessionStepper,
// shared with the SessionManager workers, the Portfolio members and the
// TuningService.

TuningRun run_tuning(const TuningProblem& spec, const Method& method,
                     const PerformanceModel& model, Optimizer& optimizer,
                     const TuningOptions& options) {
  // Construction: real measured latency, charged to the virtual clock.
  searchspace::SearchSpace space(spec, method);
  return run_tuning(space, model, optimizer, options, method.name);
}

TuningRun run_tuning(const searchspace::SubSpace& view, const PerformanceModel& model,
                     Optimizer& optimizer, const TuningOptions& options,
                     const std::string& method_name) {
  return run_session_loop(view, method_name, view.parent().construction_seconds(),
                          model, optimizer, options);
}

}  // namespace tunespace::tuner
