#include "tunespace/tuner/runner.hpp"

#include <unordered_map>

#include "tunespace/util/timer.hpp"

namespace tunespace::tuner {

double TuningRun::best_at(double time) const {
  double best = 0;
  for (const auto& pt : trajectory) {
    if (pt.time_seconds > time) break;
    best = pt.best_gflops;
  }
  return best;
}

TuningRun run_tuning(const TuningProblem& spec, const Method& method,
                     const PerformanceModel& model, Optimizer& optimizer,
                     const TuningOptions& options) {
  TuningRun run;
  run.method_name = method.name;
  run.budget_seconds = options.budget_seconds;

  // Construction: real measured latency, charged to the virtual clock.
  searchspace::SearchSpace space(spec, method);
  run.construction_seconds = space.construction_seconds();

  util::VirtualClock clock;
  clock.advance(run.construction_seconds * options.construction_time_scale);
  if (clock.now() >= options.budget_seconds || space.empty()) {
    return run;  // budget consumed before the first configuration
  }

  std::vector<std::string> names;
  names.reserve(space.num_params());
  for (std::size_t p = 0; p < space.num_params(); ++p) {
    names.push_back(space.param_name(p));
  }

  util::Rng rng(options.seed);
  std::unordered_map<std::size_t, double> cache;

  EvalContext ctx{
      space,
      /*evaluate=*/
      [&](std::size_t row) -> double {
        clock.advance(options.overhead_per_request);
        auto it = cache.find(row);
        if (it != cache.end()) return it->second;  // cached: overhead only
        if (clock.now() >= options.budget_seconds) return 0.0;
        const csp::Config config = space.config(row);
        const double perf = model.gflops(names, config);
        clock.advance(model.evaluation_cost(perf));
        cache.emplace(row, perf);
        run.evaluations++;
        if (perf > run.best_gflops) {
          run.best_gflops = perf;
          run.trajectory.push_back({clock.now(), perf, run.evaluations});
        }
        return perf;
      },
      /*exhausted=*/
      [&]() { return clock.now() >= options.budget_seconds; },
      &rng};

  optimizer.run(ctx);
  return run;
}

}  // namespace tunespace::tuner
