#include "tunespace/tuner/kernels.hpp"

#include <cmath>

#include "tunespace/util/rng.hpp"

namespace tunespace::tuner {

namespace {

/// Deterministic jitter in [1-amp, 1+amp] from a config fingerprint, giving
/// the surface realistic measurement-like texture without randomness.
/// `salt` decorrelates textures drawn over the same configuration (the
/// power rail does not wiggle in lockstep with throughput).
double jitter(const std::vector<std::string>& names, const csp::Config& config,
              double amp, std::uint64_t salt = 0) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  if (salt != 0) h = util::mix64(h, salt);  // salt 0 = the legacy sequence
  const auto mix = [&h](std::uint64_t v) { h = util::mix64(h, v); };
  for (const auto& n : names) mix(std::hash<std::string>{}(n));
  for (const auto& v : config) mix(v.hash());
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0,1)
  return 1.0 + amp * (2.0 * unit - 1.0);
}

/// Smooth bump peaking at `peak` on a log2 axis with width `width`.
double log2_bump(double x, double peak, double width) {
  if (x <= 0) return 0.0;
  const double d = (std::log2(x) - peak) / width;
  return std::exp(-0.5 * d * d);
}

}  // namespace

double param_or(const std::vector<std::string>& names, const csp::Config& config,
                const std::string& name, double fallback) {
  for (std::size_t i = 0; i < names.size() && i < config.size(); ++i) {
    if (names[i] == name) {
      return config[i].is_numeric() ? config[i].as_real() : fallback;
    }
  }
  return fallback;
}

Measurement PerformanceModel::measure(const std::vector<std::string>& names,
                                      const csp::Config& config) const {
  // One simulated benchmark run: throughput always, power when the model
  // fronts a power rail.  Both samples come from the same (virtual) run, so
  // callers charge the clock once for the whole vector.
  Measurement m;
  m.gflops = gflops(names, config);
  if (const auto* power = dynamic_cast<const PowerModel*>(this)) {
    m.watts = power->watts(names, config);
  }
  return m;
}

std::vector<std::string> PerformanceModel::objective_names() const {
  std::vector<std::string> out{"gflops"};
  if (dynamic_cast<const PowerModel*>(this) != nullptr) out.push_back("watts");
  return out;
}

double PerformanceModel::evaluation_cost(double gflops) const {
  // Compile + launch overhead, plus benchmark repetitions whose duration is
  // inversely proportional to throughput (slow variants take longer to
  // measure), clamped to keep degenerate configurations bounded.
  const double overhead = 0.35;
  const double bench = 120.0 / std::max(gflops, 1.0);
  return overhead + std::min(bench, 5.0);
}

std::uint64_t PerformanceModel::fingerprint() const {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a over the display name
  for (char c : name()) h = (h ^ static_cast<std::uint64_t>(c)) * 0x100000001B3ULL;
  // Mix the measurable objective set: a model that grows a new measured
  // component (e.g. a power rail) must never share cached Measurements with
  // its scalar ancestor, whose cached vectors lack that component.
  for (const std::string& objective : objective_names()) {
    std::uint64_t oh = 0xCBF29CE484222325ULL;
    for (char c : objective) {
      oh = (oh ^ static_cast<std::uint64_t>(c)) * 0x100000001B3ULL;
    }
    h = util::mix64(h, oh);
  }
  return h;
}

// ---------------------------------------------------------------------------
// Hotspot
// ---------------------------------------------------------------------------

double HotspotModel::gflops(const std::vector<std::string>& names,
                            const csp::Config& config) const {
  const double bsx = param_or(names, config, "block_size_x", 32);
  const double bsy = param_or(names, config, "block_size_y", 8);
  const double tsx = param_or(names, config, "tile_size_x", 1);
  const double tsy = param_or(names, config, "tile_size_y", 1);
  const double ttf = param_or(names, config, "temporal_tiling_factor", 1);
  const double unroll = param_or(names, config, "loop_unroll_factor_t", 1);
  const double sh_power = param_or(names, config, "sh_power", 0);
  const double bpsm = param_or(names, config, "blocks_per_sm", 1);

  const double threads = bsx * bsy;
  // Occupancy: sweet spot near 256 threads/block.
  double perf = 950.0 * log2_bump(threads, 8.0, 1.6);
  // Coalescing: global loads want wide rows; saturates at 32.
  perf *= 0.45 + 0.55 * std::min(bsx, 32.0) / 32.0;
  // Work per thread: moderate tiling amortizes index math, large tiles
  // spill registers.
  const double tile = tsx * tsy;
  perf *= 0.55 + 0.45 * log2_bump(tile, 2.0, 1.2);
  // Temporal tiling: fewer kernel launches, but the halo grows with ttf and
  // erodes the benefit for small blocks.
  const double halo_ratio = (bsx * tsx) / (bsx * tsx + 2.0 * ttf);
  perf *= (0.7 + 0.3 * std::log2(1.0 + ttf)) * halo_ratio * halo_ratio;
  // Unrolling the time loop helps if it divides the temporal factor.
  if (unroll > 0 && std::fmod(ttf, unroll) == 0.0) perf *= 1.06;
  // Shared-memory staging of the power grid.
  if (sh_power > 0) perf *= 1.17;
  // Multiple blocks per SM hide latency up to the register budget.
  perf *= 0.8 + 0.2 * std::min(bpsm, 2.0) / 2.0;
  return perf * jitter(names, config, 0.05);
}

double HotspotModel::watts(const std::vector<std::string>& names,
                           const csp::Config& config) const {
  const double bsx = param_or(names, config, "block_size_x", 32);
  const double bsy = param_or(names, config, "block_size_y", 8);
  const double ttf = param_or(names, config, "temporal_tiling_factor", 1);
  const double sh_power = param_or(names, config, "sh_power", 0);
  const double bpsm = param_or(names, config, "blocks_per_sm", 1);

  // Board idle draw plus dynamic power that grows with occupancy faster
  // than throughput does: wide blocks and deep temporal tiling keep more
  // SMs switching per unit of useful work, so the power optimum sits at
  // smaller blocks than the throughput optimum and the Pareto front is
  // nontrivial.
  const double threads = bsx * bsy;
  double draw = 55.0;
  draw += 95.0 * std::min(threads, 1024.0) / 1024.0;
  draw += 22.0 * std::log2(1.0 + ttf);
  // Shared-memory staging trims DRAM traffic, the dominant power sink.
  if (sh_power > 0) draw *= 0.93;
  // Extra resident blocks keep the clock gates open.
  draw *= 1.0 + 0.06 * std::min(bpsm, 4.0);
  return draw * jitter(names, config, 0.03, 0x9E3779B97F4A7C15ULL);
}

// ---------------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------------

double GemmModel::gflops(const std::vector<std::string>& names,
                         const csp::Config& config) const {
  const double mwg = param_or(names, config, "MWG", 64);
  const double nwg = param_or(names, config, "NWG", 64);
  const double kwg = param_or(names, config, "KWG", 16);
  const double mdimc = param_or(names, config, "MDIMC", 16);
  const double ndimc = param_or(names, config, "NDIMC", 16);
  const double vwm = param_or(names, config, "VWM", 2);
  const double vwn = param_or(names, config, "VWN", 2);
  const double kwi = param_or(names, config, "KWI", 2);
  const double sa = param_or(names, config, "SA", 1);
  const double sb = param_or(names, config, "SB", 1);

  const double threads = mdimc * ndimc;
  double perf = 5200.0 * log2_bump(threads, 8.0, 1.5);
  // Register blocking: work per thread wants to be substantial but bounded.
  const double work = (mwg / mdimc) * (nwg / ndimc);
  perf *= 0.35 + 0.65 * log2_bump(work, 5.0, 1.4);
  // Vector widths: wider is better until it starves the scheduler.
  perf *= 0.75 + 0.25 * log2_bump(vwm * vwn, 3.0, 1.5);
  // Shared-memory staging of A/B tiles.
  perf *= 1.0 + 0.09 * sa + 0.07 * sb;
  // K-loop blocking and unrolling.
  perf *= 0.85 + 0.15 * log2_bump(kwg, 5.0, 1.5);
  if (kwi >= 2) perf *= 1.04;
  // Very large workgroup tiles overflow shared memory bandwidth.
  const double tile_bytes = (mwg * kwg + kwg * nwg) * 4.0;
  if (tile_bytes > 32768.0) perf *= 32768.0 / tile_bytes;
  return perf * jitter(names, config, 0.06);
}

double GemmModel::watts(const std::vector<std::string>& names,
                        const csp::Config& config) const {
  const double mwg = param_or(names, config, "MWG", 64);
  const double nwg = param_or(names, config, "NWG", 64);
  const double kwg = param_or(names, config, "KWG", 16);
  const double mdimc = param_or(names, config, "MDIMC", 16);
  const double ndimc = param_or(names, config, "NDIMC", 16);
  const double vwm = param_or(names, config, "VWM", 2);
  const double vwn = param_or(names, config, "VWN", 2);
  const double sa = param_or(names, config, "SA", 1);
  const double sb = param_or(names, config, "SB", 1);

  // FMA-bound kernel: power tracks issue width.  Wide vectors and big
  // register tiles push the rail up even past the throughput sweet spot,
  // while shared-memory staging saves DRAM watts — the perf-per-watt
  // optimum uses narrower vectors than the raw-throughput optimum.
  const double threads = mdimc * ndimc;
  double draw = 70.0;
  draw += 110.0 * std::min(threads, 512.0) / 512.0;
  draw += 18.0 * std::log2(1.0 + vwm * vwn);
  const double tile_bytes = (mwg * kwg + kwg * nwg) * 4.0;
  draw += 25.0 * std::min(tile_bytes, 49152.0) / 49152.0;
  draw *= 1.0 - 0.04 * sa - 0.03 * sb;
  return draw * jitter(names, config, 0.04, 0x9E3779B97F4A7C15ULL);
}

// ---------------------------------------------------------------------------
// Synthetic
// ---------------------------------------------------------------------------

double SyntheticModel::gflops(const std::vector<std::string>& names,
                              const csp::Config& config) const {
  // Mix of per-parameter unimodal preferences (peak position derived from
  // the seed and parameter name) plus pairwise interaction ripples.
  auto name_hash = [this](const std::string& n) {
    std::uint64_t h = seed_ ^ 0x9E3779B97F4A7C15ULL;
    for (char c : n) h = (h ^ static_cast<std::uint64_t>(c)) * 0x100000001B3ULL;
    return h;
  };
  double score = 1.0;
  std::size_t d = 0;
  std::vector<double> xs;
  for (std::size_t i = 0; i < names.size() && i < config.size(); ++i) {
    if (!config[i].is_numeric()) continue;
    const double x = config[i].as_real();
    const std::uint64_t h = name_hash(names[i]);
    const double peak = 1.0 + static_cast<double>(h % 9);  // log2 peak 1..9
    score *= 0.6 + 0.4 * log2_bump(std::fabs(x) + 1.0, peak, 2.0);
    xs.push_back(x);
    ++d;
  }
  // Pairwise ripples make the surface multimodal.
  double ripple = 1.0;
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    ripple *= 1.0 + 0.05 * std::sin(0.7 * std::log2(1.0 + std::fabs(xs[i])) *
                                    std::log2(1.0 + std::fabs(xs[i + 1])));
  }
  const double base = 100.0 * static_cast<double>(d ? d : 1);
  return base * score * ripple * jitter(names, config, 0.04);
}

double SyntheticModel::watts(const std::vector<std::string>& names,
                             const csp::Config& config) const {
  // A second multimodal mix over the same parameters, seeded differently
  // from the throughput surface so high-gflops configurations are not
  // automatically high- or low-power.
  auto name_hash = [this](const std::string& n) {
    std::uint64_t h = util::mix64(seed_, 0xA5A5A5A5A5A5A5A5ULL);
    for (char c : n) h = (h ^ static_cast<std::uint64_t>(c)) * 0x100000001B3ULL;
    return h;
  };
  double load = 1.0;
  for (std::size_t i = 0; i < names.size() && i < config.size(); ++i) {
    if (!config[i].is_numeric()) continue;
    const double x = config[i].as_real();
    const std::uint64_t h = name_hash(names[i]);
    const double peak = 1.0 + static_cast<double>(h % 9);
    load *= 0.75 + 0.25 * log2_bump(std::fabs(x) + 1.0, peak, 2.0);
  }
  return (40.0 + 160.0 * load) *
         jitter(names, config, 0.03, 0x9E3779B97F4A7C15ULL);
}

std::uint64_t SyntheticModel::fingerprint() const {
  // Two SyntheticModels share a name but not a surface; mix the seed so
  // they never share cached measurements.
  return util::mix64(PerformanceModel::fingerprint(), seed_);
}

}  // namespace tunespace::tuner
