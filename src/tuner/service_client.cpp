#include "tunespace/tuner/service_client.hpp"

#include "tunespace/tuner/net.hpp"
#include "tunespace/tuner/protocol.hpp"

namespace tunespace::tuner {

using util::json::Value;

namespace {

Value session_body(std::uint64_t session_id) {
  Value body = Value::object();
  body.set("session_id", session_id);
  return body;
}

}  // namespace

ServiceClient::ServiceClient(const ServiceClientOptions& options) {
  connect(options);
}

ServiceClient::~ServiceClient() { disconnect(); }

void ServiceClient::connect(const ServiceClientOptions& options) {
  disconnect();
  fd_ = net::connect_tcp(options.host, options.port,
                         options.connect_timeout_seconds);
  if (options.force_version > 0) {
    version_ = options.force_version;
    return;
  }
  // Negotiate via hello.  A v1 server answers with kProtocol (unknown op);
  // treat that as "the server speaks v1" rather than a failure.
  version_ = 1;  // requests issued before negotiation completes are v1-shaped
  try {
    const wire::HelloResponse hello = wire::hello_response_from_json(
        call("hello", wire::to_json(wire::HelloRequest{})));
    version_ = hello.version;
  } catch (const ServiceError& e) {
    if (e.code() != ErrorCode::kProtocol) {
      disconnect();
      throw;
    }
  }
}

void ServiceClient::disconnect() noexcept {
  net::close_fd(fd_);
  fd_ = -1;
  version_ = 0;
}

Value ServiceClient::call(const std::string& op, const Value& body) {
  if (fd_ < 0) {
    throw ServiceError(ErrorCode::kIo, "client is not connected");
  }
  net::FdStream stream(fd_);
  // Stamp "v" only above 1 so a v1-negotiated connection emits byte-for-byte
  // v1 envelopes (hello itself is never stamped: it IS the negotiation).
  if (version_ > 1 && op != "hello") {
    Value stamped = body;
    stamped.set("v", static_cast<std::int64_t>(version_));
    wire::write_frame(stream, wire::encode_request(op, stamped));
  } else {
    wire::write_frame(stream, wire::encode_request(op, body));
  }
  auto frame = wire::read_frame(stream);
  if (!frame.has_value()) {
    throw ServiceError(ErrorCode::kIo, "server closed the connection");
  }
  return wire::decode_response(*frame);
}

bool ServiceClient::ping() {
  return call("ping", Value::object()).at("pong").as_bool();
}

OpenSessionResponse ServiceClient::open(const OpenSessionRequest& request) {
  return wire::open_session_response_from_json(
      call("open", wire::to_json(request)));
}

SuggestResponse ServiceClient::suggest(std::uint64_t session_id) {
  return wire::suggest_response_from_json(
      call("suggest", session_body(session_id)));
}

ReportResponse ServiceClient::report(const ReportRequest& request) {
  return wire::report_response_from_json(call("report", wire::to_json(request)));
}

BestResponse ServiceClient::best(std::uint64_t session_id) {
  return wire::best_response_from_json(call("best", session_body(session_id)));
}

SessionInfo ServiceClient::info(std::uint64_t session_id) {
  return wire::session_info_from_json(call("info", session_body(session_id)));
}

ServiceStats ServiceClient::stats() {
  return wire::service_stats_from_json(call("stats", Value::object()));
}

CloseSessionResponse ServiceClient::close_session(std::uint64_t session_id) {
  return wire::close_session_response_from_json(
      call("close", session_body(session_id)));
}

DrainResponse ServiceClient::drain(const DrainRequest& request) {
  return wire::drain_response_from_json(call("drain", wire::to_json(request)));
}

}  // namespace tunespace::tuner
