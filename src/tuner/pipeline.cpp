#include "tunespace/tuner/pipeline.hpp"

#include "tunespace/expr/analysis.hpp"
#include "tunespace/expr/compiler.hpp"
#include "tunespace/expr/parser.hpp"
#include "tunespace/expr/recognizer.hpp"
#include "tunespace/solver/blocking_enumerator.hpp"
#include "tunespace/solver/brute_force.hpp"
#include "tunespace/solver/chain_of_trees.hpp"
#include "tunespace/solver/optimized_backtracking.hpp"
#include "tunespace/solver/original_backtracking.hpp"
#include "tunespace/solver/parallel_backtracking.hpp"
#include "tunespace/util/timer.hpp"

namespace tunespace::tuner {

csp::Problem build_problem(const TuningProblem& spec, const PipelineOptions& options) {
  csp::Problem problem;
  for (const auto& p : spec.params()) {
    problem.add_variable(p.name, csp::Domain(p.values));
  }
  for (const std::string& text : spec.constraints()) {
    const expr::AstPtr ast = expr::parse(text);
    if (options.decompose && options.recognize) {
      for (auto& c : expr::optimize_constraint(ast, options.eval_mode)) {
        problem.add_constraint(std::move(c));
      }
    } else if (options.decompose) {
      for (const auto& conjunct : expr::decompose(expr::fold_constants(ast))) {
        problem.add_constraint(
            std::make_unique<expr::FunctionConstraint>(conjunct, options.eval_mode));
      }
    } else if (options.recognize) {
      problem.add_constraint(expr::recognize(ast, options.eval_mode));
    } else {
      problem.add_constraint(
          std::make_unique<expr::FunctionConstraint>(ast, options.eval_mode));
    }
  }
  // Native lambda constraints bypass the parsing pipeline (KTT-style).
  for (const auto& lc : spec.lambda_constraints()) {
    problem.add_constraint(std::make_unique<csp::LambdaConstraint>(
        lc.scope, lc.predicate, lc.description));
  }
  return problem;
}

std::vector<Method> construction_methods(bool include_blocking) {
  std::vector<Method> methods;
  methods.push_back(Method{"optimized", PipelineOptions::optimized(),
                           std::make_unique<solver::OptimizedBacktracking>()});
  methods.push_back(Method{"ATF", PipelineOptions::compiled_raw(),
                           std::make_unique<solver::ChainOfTrees>("ATF")});
  methods.push_back(Method{"original", PipelineOptions::original(),
                           std::make_unique<solver::OriginalBacktracking>()});
  methods.push_back(Method{"brute-force", PipelineOptions::compiled_raw(),
                           std::make_unique<solver::BruteForce>()});
  methods.push_back(Method{"pyATF", PipelineOptions::original(),
                           std::make_unique<solver::ChainOfTrees>("pyATF")});
  if (include_blocking) {
    methods.push_back(Method{"blocking-smt", PipelineOptions::compiled_raw(),
                             std::make_unique<solver::BlockingEnumerator>()});
  }
  return methods;
}

Method parallel_method(const solver::SolverOptions& options) {
  return Method{"optimized-parallel", PipelineOptions::optimized(),
                std::make_unique<solver::ParallelBacktracking>(options)};
}

solver::SolveResult construct(const TuningProblem& spec, const Method& method) {
  util::WallTimer timer;
  csp::Problem problem = build_problem(spec, method.pipeline);
  const double build_seconds = timer.seconds();
  solver::SolveResult result = method.solver->solve(problem);
  result.stats.preprocess_seconds += build_seconds;
  return result;
}

}  // namespace tunespace::tuner
