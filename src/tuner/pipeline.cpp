#include "tunespace/tuner/pipeline.hpp"

#include <bit>
#include <cstring>

#include "tunespace/expr/analysis.hpp"
#include "tunespace/expr/compiler.hpp"
#include "tunespace/expr/parser.hpp"
#include "tunespace/expr/recognizer.hpp"
#include "tunespace/solver/blocking_enumerator.hpp"
#include "tunespace/solver/brute_force.hpp"
#include "tunespace/solver/chain_of_trees.hpp"
#include "tunespace/solver/optimized_backtracking.hpp"
#include "tunespace/solver/original_backtracking.hpp"
#include "tunespace/solver/parallel_backtracking.hpp"
#include "tunespace/util/timer.hpp"

namespace tunespace::tuner {

csp::Problem build_problem(const TuningProblem& spec, const PipelineOptions& options) {
  csp::Problem problem;
  for (const auto& p : spec.params()) {
    problem.add_variable(p.name, csp::Domain(p.values));
  }
  for (const std::string& text : spec.constraints()) {
    const expr::AstPtr ast = expr::parse(text);
    if (options.decompose && options.recognize) {
      for (auto& c : expr::optimize_constraint(ast, options.eval_mode)) {
        problem.add_constraint(std::move(c));
      }
    } else if (options.decompose) {
      for (const auto& conjunct : expr::decompose(expr::fold_constants(ast))) {
        problem.add_constraint(
            std::make_unique<expr::FunctionConstraint>(conjunct, options.eval_mode));
      }
    } else if (options.recognize) {
      problem.add_constraint(expr::recognize(ast, options.eval_mode));
    } else {
      problem.add_constraint(
          std::make_unique<expr::FunctionConstraint>(ast, options.eval_mode));
    }
  }
  // Native lambda constraints bypass the parsing pipeline (KTT-style).
  for (const auto& lc : spec.lambda_constraints()) {
    problem.add_constraint(std::make_unique<csp::LambdaConstraint>(
        lc.scope, lc.predicate, lc.description));
  }
  return problem;
}

std::vector<Method> construction_methods(bool include_blocking) {
  std::vector<Method> methods;
  methods.push_back(Method{"optimized", PipelineOptions::optimized(),
                           std::make_unique<solver::OptimizedBacktracking>()});
  methods.push_back(Method{"ATF", PipelineOptions::compiled_raw(),
                           std::make_unique<solver::ChainOfTrees>("ATF")});
  methods.push_back(Method{"original", PipelineOptions::original(),
                           std::make_unique<solver::OriginalBacktracking>()});
  methods.push_back(Method{"brute-force", PipelineOptions::compiled_raw(),
                           std::make_unique<solver::BruteForce>()});
  methods.push_back(Method{"pyATF", PipelineOptions::original(),
                           std::make_unique<solver::ChainOfTrees>("pyATF")});
  if (include_blocking) {
    methods.push_back(Method{"blocking-smt", PipelineOptions::compiled_raw(),
                             std::make_unique<solver::BlockingEnumerator>()});
  }
  return methods;
}

Method optimized_method() {
  return Method{"optimized", PipelineOptions::optimized(),
                std::make_unique<solver::OptimizedBacktracking>()};
}

Method parallel_method(const solver::SolverOptions& options) {
  return Method{"optimized-parallel", PipelineOptions::optimized(),
                std::make_unique<solver::ParallelBacktracking>(options)};
}

namespace {

// FNV-1a 64 over a canonical byte rendering of the spec.  The rendering is
// length-prefixed and kind-tagged everywhere, so no two distinct specs
// produce the same byte stream.
struct Fold {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  void bytes(const void* p, std::size_t n) {
    const auto* c = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= c[i];
      h *= 0x100000001B3ULL;
    }
  }
  void u8(std::uint8_t v) { bytes(&v, 1); }
  void u64(std::uint64_t v) { bytes(&v, 8); }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  void value(const csp::Value& v) {
    u8(static_cast<std::uint8_t>(v.kind()));
    switch (v.kind()) {
      case csp::ValueKind::Int:
        u64(static_cast<std::uint64_t>(v.as_int()));
        break;
      case csp::ValueKind::Real:
        u64(std::bit_cast<std::uint64_t>(v.as_real()));
        break;
      case csp::ValueKind::Bool:
        u8(v.truthy() ? 1 : 0);
        break;
      case csp::ValueKind::Str:
        str(v.as_str());
        break;
    }
  }
};

}  // namespace

std::uint64_t spec_fingerprint(const TuningProblem& spec,
                               const std::string& method_name,
                               const PipelineOptions& pipeline) {
  Fold f;
  f.str("tunespace.spec.v1");
  f.u64(spec.num_params());
  for (const auto& p : spec.params()) {
    f.str(p.name);
    f.u64(p.values.size());
    for (const auto& v : p.values) f.value(v);
  }
  f.u64(spec.constraints().size());
  for (const auto& c : spec.constraints()) f.str(c);
  // Lambda constraints are opaque native code: fold their declared shape so
  // differently-shaped specs at least diverge, but callers that cache must
  // refuse specs carrying any (see SearchSpace::load_or_build).
  f.u64(spec.lambda_constraints().size());
  for (const auto& lc : spec.lambda_constraints()) {
    f.u64(lc.scope.size());  // list boundary: scopes must not blur together
    for (const auto& name : lc.scope) f.str(name);
    f.str(lc.description);
  }
  f.str(method_name);
  f.u8(pipeline.decompose ? 1 : 0);
  f.u8(pipeline.recognize ? 1 : 0);
  f.u8(static_cast<std::uint8_t>(pipeline.eval_mode));
  return f.h;
}

std::uint64_t spec_fingerprint(const TuningProblem& spec, const Method& method) {
  return spec_fingerprint(spec, method.name, method.pipeline);
}

solver::SolveResult construct(const TuningProblem& spec, const Method& method) {
  util::WallTimer timer;
  csp::Problem problem = build_problem(spec, method.pipeline);
  const double build_seconds = timer.seconds();
  solver::SolveResult result = method.solver->solve(problem);
  result.stats.preprocess_seconds += build_seconds;
  return result;
}

}  // namespace tunespace::tuner
