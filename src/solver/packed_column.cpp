#include "tunespace/solver/packed_column.hpp"

#include <algorithm>
#include <bit>

namespace tunespace::solver {

unsigned PackedColumn::bits_for_domain(std::size_t domain_size) {
  if (domain_size <= 1) return 0;
  return static_cast<unsigned>(std::bit_width(domain_size - 1));
}

PackedColumn PackedColumn::borrowed(unsigned bits, std::size_t size,
                                    const std::uint64_t* words,
                                    std::shared_ptr<const void> keepalive) {
  PackedColumn col(bits);
  col.size_ = size;
  col.borrowed_ = words;
  col.keepalive_ = std::move(keepalive);
  return col;
}

void PackedColumn::detach() {
  owned_.assign(borrowed_, borrowed_ + word_count());
  borrowed_ = nullptr;
  keepalive_.reset();
}

void PackedColumn::grow_to_words(std::size_t need) {
  if (owned_.capacity() < need) {
    owned_.reserve(std::max(need, owned_.capacity() * 2));
  }
  owned_.resize(need, 0);
}

void PackedColumn::push_back(std::uint32_t v) {
  assert((v & ~static_cast<std::uint64_t>(mask_)) == 0 &&
         "value exceeds column width");
  if (borrowed_) detach();
  if (bits_ == 0) {
    ++size_;
    return;
  }
  const std::uint64_t bit = static_cast<std::uint64_t>(size_) * bits_;
  const std::size_t need = words_needed(size_ + 1);
  if (need > owned_.size()) grow_to_words(need);
  const std::size_t word = static_cast<std::size_t>(bit >> 6);
  const unsigned off = static_cast<unsigned>(bit & 63);
  owned_[word] |= static_cast<std::uint64_t>(v) << off;
  if (off + bits_ > 64) {
    owned_[word + 1] |= static_cast<std::uint64_t>(v) >> (64 - off);
  }
  ++size_;
}

void PackedColumn::append_bits(const std::uint64_t* src, std::uint64_t src_bit,
                               std::uint64_t nbits) {
  std::uint64_t dst_bit = static_cast<std::uint64_t>(size_) * bits_;
  while (nbits > 0) {
    const unsigned chunk = nbits < 64 ? static_cast<unsigned>(nbits) : 64u;
    const std::uint64_t* sw = src + (src_bit >> 6);
    const unsigned soff = static_cast<unsigned>(src_bit & 63);
    std::uint64_t v = sw[0] >> soff;
    // The second source word exists whenever the chunk extends into it.
    if (soff + chunk > 64) v |= sw[1] << (64 - soff);
    if (chunk < 64) v &= (1ULL << chunk) - 1;
    std::uint64_t* dw = owned_.data() + (dst_bit >> 6);
    const unsigned doff = static_cast<unsigned>(dst_bit & 63);
    dw[0] |= v << doff;
    if (doff + chunk > 64) dw[1] |= v >> (64 - doff);
    src_bit += chunk;
    dst_bit += chunk;
    nbits -= chunk;
  }
}

void PackedColumn::append(const PackedColumn& other, std::size_t begin,
                          std::size_t count) {
  assert(begin + count <= other.size_);
  if (count == 0) return;
  if (bits_ != other.bits_) {
    // Width mismatch (e.g. a packed target fed from an unpacked scratch
    // set): element-wise fallback.
    for (std::size_t i = 0; i < count; ++i) push_back(other.get(begin + i));
    return;
  }
  if (borrowed_) detach();
  if (bits_ == 0) {
    size_ += count;
    return;
  }
  const std::size_t need = words_needed(size_ + count);
  if (need > owned_.size()) grow_to_words(need);
  append_bits(other.data(), static_cast<std::uint64_t>(begin) * bits_,
              static_cast<std::uint64_t>(count) * bits_);
  size_ += count;
}

bool PackedColumn::operator==(const PackedColumn& o) const {
  if (size_ != o.size_) return false;
  if (bits_ == o.bits_) {
    // Tail bits past size()*bits() are zero by invariant, so equal-width
    // columns compare word-by-word.
    const std::size_t words = word_count();
    return std::equal(data(), data() + words, o.data());
  }
  for (std::size_t i = 0; i < size_; ++i) {
    if (get(i) != o.get(i)) return false;
  }
  return true;
}

}  // namespace tunespace::solver
