#include "backtracking_core.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>

namespace tunespace::solver::detail {

using csp::Constraint;
using csp::Domain;
using csp::Value;

namespace {

/// Run constraint preprocessing over copied domains until fixpoint (bounded
/// by a small iteration cap; rounds only shrink domains, so the cap bounds
/// wasted work, not correctness).  Returns false on proven unsatisfiability.
bool preprocess_domains(csp::Problem& problem, std::vector<Domain>& domains,
                        SolveStats& stats) {
  constexpr int kMaxRounds = 8;
  for (int round = 0; round < kMaxRounds; ++round) {
    bool changed = false;
    for (const auto& c : problem.constraints()) {
      std::vector<Domain*> scope_domains;
      scope_domains.reserve(c->indices().size());
      std::size_t before = 0;
      for (std::uint32_t idx : c->indices()) {
        scope_domains.push_back(&domains[idx]);
        before += domains[idx].size();
      }
      if (!c->preprocess(scope_domains)) return false;
      std::size_t after = 0;
      for (Domain* d : scope_domains) after += d->size();
      if (after < before) {
        changed = true;
        stats.prunes += before - after;
      }
      for (Domain* d : scope_domains) {
        if (d->empty()) return false;
      }
    }
    if (!changed) break;
  }
  return true;
}

}  // namespace

SearchPlan build_plan(csp::Problem& problem, const OptimizedOptions& options,
                      SolveStats& stats) {
  SearchPlan plan;
  const std::size_t n = problem.num_variables();

  plan.domains = problem.domains();
  if (options.preprocess) {
    if (!preprocess_domains(problem, plan.domains, stats)) {
      plan.unsatisfiable = true;
      return plan;
    }
  }
  for (const Domain& d : plan.domains) {
    if (d.empty()) {
      plan.unsatisfiable = true;
      return plan;
    }
  }

  // Map preprocessed value positions back to original domain indices so the
  // emitted rows are canonical regardless of pruning.
  plan.orig_index.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    plan.orig_index[v].reserve(plan.domains[v].size());
    for (const Value& val : plan.domains[v].values()) {
      plan.orig_index[v].push_back(
          static_cast<std::uint32_t>(problem.domain(v).index_of(val)));
    }
  }

  // Variable ordering: most-constrained first, sorted once (§4.3.1).
  plan.order.resize(n);
  std::iota(plan.order.begin(), plan.order.end(), 0);
  if (options.sort_variables) {
    const std::vector<std::size_t> counts = problem.constraint_counts();
    std::stable_sort(plan.order.begin(), plan.order.end(),
                     [&](std::size_t a, std::size_t b) {
                       if (counts[a] != counts[b]) return counts[a] > counts[b];
                       return plan.domains[a].size() < plan.domains[b].size();
                     });
  }
  plan.pos_of.resize(n);
  for (std::size_t p = 0; p < n; ++p) plan.pos_of[plan.order[p]] = p;

  // Dense int64 mirror of every int-only domain, so fast-path constraints
  // never touch a boxed Value during search.  Skipped entirely when the fast
  // path is disabled, so ablation baselines pay no bookkeeping for it.
  plan.var_is_int.assign(n, 0);
  plan.int_values.resize(n);
  if (options.int_fast_path) {
    for (std::size_t v = 0; v < n; ++v) {
      if (plan.domains[v].int_mirror(plan.int_values[v])) plan.var_is_int[v] = 1;
    }
  }

  // Constraint dispatch tables: full check where the scope completes,
  // partial checks at every earlier scope position (§4.3.1/§4.3.2).
  // Each table is partitioned into an int64 fast tier and a boxed tier.
  plan.full_at.resize(n);
  plan.partial_at.resize(n);
  plan.full_fast_at.resize(n);
  plan.partial_fast_at.resize(n);
  plan.var_needs_boxed.assign(n, 0);
  for (const auto& c : problem.constraints()) {
    std::vector<const Domain*> scope_domains;
    scope_domains.reserve(c->indices().size());
    for (std::uint32_t idx : c->indices()) {
      scope_domains.push_back(&plan.domains[idx]);
    }
    c->prepare(scope_domains);

    if (c->indices().empty()) {
      Value dummy;
      if (!c->satisfied(&dummy)) plan.unsatisfiable = true;
      continue;
    }
    const bool fast = options.int_fast_path && c->try_specialize(scope_domains);
    if (!fast) {
      for (std::uint32_t idx : c->indices()) plan.var_needs_boxed[idx] = 1;
    }
    std::size_t last = 0;
    for (std::uint32_t idx : c->indices()) {
      last = std::max(last, plan.pos_of[idx]);
    }
    (fast ? plan.full_fast_at : plan.full_at)[last].push_back(c.get());
    if (options.partial_checks && c->prunes_partial()) {
      for (std::uint32_t idx : c->indices()) {
        if (plan.pos_of[idx] != last) {
          (fast ? plan.partial_fast_at
                : plan.partial_at)[plan.pos_of[idx]].push_back(c.get());
        }
      }
    }
  }

  // Block tier: positions whose variable has an int mirror and at least one
  // specialized constraint sweep whole lane groups of candidates per
  // dispatch.  TUNESPACE_BLOCK_EVAL=0 forces the scalar path at runtime
  // (CI's differential legs and ablation-style experiments use this).
  const char* block_env = std::getenv("TUNESPACE_BLOCK_EVAL");
  const bool block_enabled =
      options.int_fast_path && options.block_eval &&
      !(block_env && block_env[0] == '0' && block_env[1] == '\0');
  plan.block_at.assign(n, 0);
  if (block_enabled) {
    for (std::size_t p = 0; p < n; ++p) {
      const std::size_t var = plan.order[p];
      plan.block_at[p] =
          plan.var_is_int[var] && (!plan.full_fast_at[p].empty() ||
                                   !plan.partial_fast_at[p].empty());
    }
  }
  return plan;
}

BacktrackingEngine::BacktrackingEngine(const SearchPlan& plan, std::size_t first_lo,
                                       std::size_t first_hi, std::size_t emit_depth)
    : plan_(&plan), first_lo_(first_lo), first_hi_(first_hi) {
  const std::size_t n = plan.order.size();
  emit_depth_ = std::min(emit_depth, n);
  values_.resize(n);
  int_values_.assign(n, 0);
  assigned_.assign(n, 0);
  value_idx_.assign(n, 0);
  row_.resize(n);
  chunk_begin_.assign(n, kNoChunk);
  chunk_mask_.assign(n * kBlockLanes, 0);
  if (n == 0 || plan.unsatisfiable || first_lo_ >= first_hi_ || emit_depth_ == 0) {
    exhausted_ = true;
  } else {
    value_idx_[0] = first_lo_;
  }
}

BacktrackingEngine::BacktrackingEngine(const SearchPlan& plan, PrefixSeed seed)
    : plan_(&plan), base_(seed.length) {
  const std::uint32_t* prefix = seed.values;
  const std::size_t prefix_len = seed.length;
  const std::size_t n = plan.order.size();
  emit_depth_ = n;
  values_.resize(n);
  int_values_.assign(n, 0);
  assigned_.assign(n, 0);
  value_idx_.assign(n, 0);
  row_.resize(n);
  chunk_begin_.assign(n, kNoChunk);
  chunk_mask_.assign(n * kBlockLanes, 0);
  if (n == 0 || plan.unsatisfiable || prefix_len >= n) {
    exhausted_ = true;
    return;
  }
  for (std::size_t q = 0; q < prefix_len; ++q) {
    const std::size_t var = plan.order[q];
    const std::uint32_t vi = prefix[q];
    if (plan.var_is_int[var]) int_values_[var] = plan.int_values[var][vi];
    if (plan.var_needs_boxed[var]) values_[var] = plan.domains[var][vi];
    assigned_[var] = 1;
    row_[var] = plan.orig_index[var][vi];
    value_idx_[q] = vi + 1;  // keep the chosen_index invariant for seeds too
  }
  p_ = base_;
  first_lo_ = 0;
  first_hi_ = plan.domains[plan.order[base_]].size();
}

bool BacktrackingEngine::next() {
  if (exhausted_) return false;
  const SearchPlan& plan = *plan_;

  while (true) {
    const std::size_t var = plan.order[p_];
    const Domain& dom = plan.domains[var];
    const std::size_t limit = p_ == base_ ? first_hi_ : dom.size();
    const bool blocked = plan.block_at[p_] != 0;
    bool descended = false;
    while (value_idx_[p_] < limit) {
      const std::size_t vi = value_idx_[p_]++;
      assigned_[var] = 1;
      ++nodes_;
      bool ok = true;
      if (blocked) {
        // Block tier: the lane-group verdicts for this position are computed
        // once per kBlockLanes candidates and consumed from the cached mask.
        // The mask stays valid for the whole sweep of this position (the
        // assignment above p_ cannot change without descending back into it,
        // which invalidates the chunk).
        if (chunk_begin_[p_] == kNoChunk || vi < chunk_begin_[p_] ||
            vi - chunk_begin_[p_] >= kBlockLanes) {
          compute_chunk(p_, vi, limit);
        }
        ok = chunk_mask_[p_ * kBlockLanes + (vi - chunk_begin_[p_])] != 0;
        if (ok) {
          // compute_chunk() used the assignment slots as lane scratch;
          // rewrite them with this candidate for the descent below.
          int_values_[var] = plan.int_values[var][vi];
          if (plan.var_needs_boxed[var]) values_[var] = dom[vi];
        }
      } else {
        if (plan.var_is_int[var]) int_values_[var] = plan.int_values[var][vi];
        // Boxed Values are only materialized for variables the boxed tier
        // actually reads; all-integer problems skip this copy entirely.
        if (plan.var_needs_boxed[var]) values_[var] = dom[vi];
        for (const Constraint* c : plan.full_fast_at[p_]) {
          ++checks_;
          ++fast_checks_;
          if (!c->satisfied_fast(int_values_.data())) {
            ok = false;
            break;
          }
        }
        if (ok) {
          for (const Constraint* c : plan.full_at[p_]) {
            ++checks_;
            if (!c->satisfied(values_.data())) {
              ok = false;
              break;
            }
          }
        }
        if (ok) {
          for (const Constraint* c : plan.partial_fast_at[p_]) {
            ++checks_;
            ++fast_checks_;
            if (!c->consistent_fast(int_values_.data(), assigned_.data())) {
              ok = false;
              ++prunes_;
              break;
            }
          }
        }
        if (ok) {
          for (const Constraint* c : plan.partial_at[p_]) {
            ++checks_;
            if (!c->consistent(values_.data(), assigned_.data())) {
              ok = false;
              ++prunes_;
              break;
            }
          }
        }
      }
      if (!ok) {
        assigned_[var] = 0;
        continue;
      }
      row_[var] = plan.orig_index[var][vi];
      if (p_ + 1 == emit_depth_) {
        assigned_[var] = 0;
        return true;  // resume at this position on the next call
      }
      ++p_;
      value_idx_[p_] = 0;
      chunk_begin_[p_] = kNoChunk;  // new parent assignment: stale lane masks
      descended = true;
      break;
    }
    if (descended) continue;
    assigned_[var] = 0;
    if (p_ == base_) {
      exhausted_ = true;
      return false;
    }
    --p_;
    assigned_[plan.order[p_]] = 0;
  }
}

void BacktrackingEngine::compute_chunk(std::size_t p, std::size_t vi0,
                                       std::size_t limit) {
  const SearchPlan& plan = *plan_;
  const std::size_t var = plan.order[p];
  const std::size_t m = std::min(kBlockLanes, limit - vi0);
  unsigned char* mask = &chunk_mask_[p * kBlockLanes];
  for (std::size_t i = 0; i < kBlockLanes; ++i) mask[i] = i < m ? 1 : 0;
  chunk_begin_[p] = vi0;
  const std::int64_t* cand = plan.int_values[var].data() + vi0;

  const auto alive = [&]() {
    std::uint64_t a = 0;
    for (std::size_t i = 0; i < m; ++i) a += mask[i] != 0;
    return a;
  };

  // Tier order and effort accounting mirror the scalar sweep per candidate:
  // a lane is charged one check per constraint it is still alive for, full
  // tiers run before partial tiers, and a lane killed by a constraint is
  // never charged for the ones after it.
  for (const Constraint* c : plan.full_fast_at[p]) {
    const std::uint64_t a = alive();
    if (a == 0) return;
    checks_ += a;
    fast_checks_ += a;
    ++block_checks_;
    block_lanes_ += a;
    c->satisfied_block(int_values_.data(), static_cast<std::uint32_t>(var),
                       cand, m, mask);
  }
  if (!plan.full_at[p].empty()) {
    for (std::size_t i = 0; i < m; ++i) {
      if (!mask[i]) continue;
      values_[var] = plan.domains[var][vi0 + i];
      for (const Constraint* c : plan.full_at[p]) {
        ++checks_;
        if (!c->satisfied(values_.data())) {
          mask[i] = 0;
          break;
        }
      }
    }
  }
  for (const Constraint* c : plan.partial_fast_at[p]) {
    const std::uint64_t before = alive();
    if (before == 0) return;
    checks_ += before;
    fast_checks_ += before;
    ++block_checks_;
    block_lanes_ += before;
    c->consistent_block(int_values_.data(), assigned_.data(),
                        static_cast<std::uint32_t>(var), cand, m, mask);
    prunes_ += before - alive();
  }
  if (!plan.partial_at[p].empty()) {
    for (std::size_t i = 0; i < m; ++i) {
      if (!mask[i]) continue;
      values_[var] = plan.domains[var][vi0 + i];
      for (const Constraint* c : plan.partial_at[p]) {
        ++checks_;
        if (!c->consistent(values_.data(), assigned_.data())) {
          mask[i] = 0;
          ++prunes_;
          break;
        }
      }
    }
  }
}

}  // namespace tunespace::solver::detail
