#include "tunespace/solver/optimized_backtracking.hpp"

#include "backtracking_core.hpp"
#include "tunespace/util/timer.hpp"

namespace tunespace::solver {

SolveResult OptimizedBacktracking::solve(csp::Problem& problem) const {
  SolveResult result;
  const std::size_t n = problem.num_variables();
  result.solutions = SolutionSet(problem);
  util::WallTimer timer;
  if (n == 0) return result;

  detail::SearchPlan plan = detail::build_plan(problem, options_, result.stats);
  result.stats.preprocess_seconds = timer.seconds();
  if (plan.unsatisfiable) return result;

  timer.reset();
  detail::BacktrackingEngine engine(plan, 0, plan.domains[plan.order[0]].size());
  while (engine.next()) result.solutions.append(engine.row().data());
  result.stats.nodes = engine.nodes();
  result.stats.constraint_checks = engine.constraint_checks();
  result.stats.fast_checks = engine.fast_checks();
  result.stats.prunes += engine.prunes();  // += : preprocessing counted some
  result.stats.block_checks = engine.block_checks();
  result.stats.block_lanes = engine.block_lanes();
  result.stats.search_seconds = timer.seconds();
  return result;
}

}  // namespace tunespace::solver
