#include "tunespace/solver/parallel_backtracking.hpp"

#include <algorithm>

#include "backtracking_core.hpp"
#include "tunespace/util/timer.hpp"
#include "work_stealing.hpp"

namespace tunespace::solver {

namespace {

/// Upper bound on auto-chosen prefix candidates: keeps the expanded prefix
/// pool (and per-task bookkeeping) bounded on spaces with huge level fan-out.
constexpr std::uint64_t kMaxAutoCandidates = 1u << 20;

/// Initial guess for the prefix split depth: grow until the Cartesian
/// fan-out of the first `depth` search positions reaches ~tasks_per_thread
/// tasks per worker, staying above the old first-variable-only
/// decomposition (depth 1) and below a full enumeration (depth n-1).  The
/// solve loop deepens further when pruning leaves too few *valid* prefixes
/// at this depth.
std::size_t initial_split_depth(const detail::SearchPlan& plan,
                                const SolverOptions& options,
                                std::size_t workers) {
  const std::size_t n = plan.order.size();
  std::size_t depth = options.split_depth;
  if (depth == 0) {
    const std::uint64_t target =
        workers * std::max<std::size_t>(options.tasks_per_thread, 1);
    std::uint64_t product = 1;
    while (depth + 1 < n && product < target) {
      const std::uint64_t next =
          product * plan.domains[plan.order[depth]].size();
      if (depth > 0 && next > kMaxAutoCandidates) break;
      product = next;
      ++depth;
    }
  }
  return std::clamp<std::size_t>(depth, 1, n - 1);
}

}  // namespace

SolveResult ParallelBacktracking::solve(csp::Problem& problem) const {
  SolveResult result;
  const std::size_t n = problem.num_variables();
  result.solutions = SolutionSet(problem);
  util::WallTimer timer;
  if (n == 0) return result;

  detail::SearchPlan plan = detail::build_plan(problem, options_, result.stats);
  result.stats.preprocess_seconds = timer.seconds();
  if (plan.unsatisfiable) return result;

  timer.reset();
  const std::size_t workers = parallel_.resolve_threads();

  if (n == 1) {
    // No prefix to split on: a single-variable search is one flat scan.
    detail::BacktrackingEngine engine(plan, 0, plan.domains[plan.order[0]].size());
    while (engine.next()) result.solutions.append(engine.row().data());
    result.stats.nodes = engine.nodes();
    result.stats.constraint_checks = engine.constraint_checks();
    result.stats.fast_checks = engine.fast_checks();
    result.stats.prunes += engine.prunes();
    result.stats.block_checks = engine.block_checks();
    result.stats.block_lanes = engine.block_lanes();
    result.stats.parallel_tasks = 1;
    result.stats.parallel_workers = 1;
    result.stats.search_seconds = timer.seconds();
    return result;
  }

  // --- Phase 1: sequential prefix expansion over the top `depth` levels ----
  // When constraints prune the top of the tree so hard that fewer valid
  // prefixes than the task target survive (the old first-variable clamp's
  // failure mode, triggered by *invalid* rather than small first domains),
  // discard the probe and deepen: re-expansions are cheap exactly when they
  // trigger, because the surviving top tree is narrow.  Only the accepted
  // expansion's counters are recorded, so expansion + task counters still
  // sum to the sequential totals.
  std::size_t depth = initial_split_depth(plan, parallel_, workers);
  const std::size_t task_target =
      workers * std::max<std::size_t>(parallel_.tasks_per_thread, 1);
  std::vector<std::uint32_t> prefixes;  // depth entries per task, rank order
  for (;;) {
    prefixes.clear();
    detail::BacktrackingEngine expander(
        plan, 0, plan.domains[plan.order[0]].size(), depth);
    while (expander.next()) {
      for (std::size_t q = 0; q < depth; ++q) {
        prefixes.push_back(expander.chosen_index(q));
      }
    }
    const std::size_t tasks = prefixes.size() / depth;
    if (parallel_.split_depth == 0 && depth + 1 < n && tasks > 0 &&
        tasks < task_target && tasks < kMaxAutoCandidates) {
      ++depth;
      continue;
    }
    result.stats.nodes += expander.nodes();
    result.stats.constraint_checks += expander.constraint_checks();
    result.stats.fast_checks += expander.fast_checks();
    result.stats.prunes += expander.prunes();
    result.stats.block_checks += expander.block_checks();
    result.stats.block_lanes += expander.block_lanes();
    break;
  }
  const std::size_t num_tasks = prefixes.size() / depth;
  result.stats.parallel_tasks = num_tasks;
  if (num_tasks == 0) {
    result.stats.search_seconds = timer.seconds();
    return result;
  }

  // --- Phase 2: work-stealing enumeration of the per-prefix subtrees ------
  // Solutions land in per-worker sharded SolutionSets tagged with their
  // prefix rank; no shared append lock anywhere on the hot path.
  struct Segment {
    std::uint32_t rank = 0;
    std::uint32_t worker = 0;
    std::size_t begin = 0;
    std::size_t count = 0;
  };
  struct WorkerShard {
    SolutionSet solutions;
    std::vector<Segment> segments;
    std::uint64_t nodes = 0, checks = 0, fast_checks = 0, prunes = 0;
    std::uint64_t block_checks = 0, block_lanes = 0;
  };

  detail::WorkStealingScheduler scheduler(num_tasks, workers, parallel_.steal);
  std::vector<WorkerShard> shards(scheduler.workers());
  for (auto& shard : shards) shard.solutions = SolutionSet(problem);

  scheduler.run([&](std::size_t w, std::uint32_t task) {
    WorkerShard& shard = shards[w];
    detail::BacktrackingEngine engine(
        plan, detail::BacktrackingEngine::PrefixSeed{&prefixes[task * depth], depth});
    const std::size_t begin = shard.solutions.size();
    while (engine.next()) shard.solutions.append(engine.row().data());
    shard.segments.push_back(Segment{task, static_cast<std::uint32_t>(w), begin,
                                     shard.solutions.size() - begin});
    shard.nodes += engine.nodes();
    shard.checks += engine.constraint_checks();
    shard.fast_checks += engine.fast_checks();
    shard.prunes += engine.prunes();
    shard.block_checks += engine.block_checks();
    shard.block_lanes += engine.block_lanes();
  });
  result.stats.parallel_workers = static_cast<std::uint32_t>(scheduler.workers());

  // --- Phase 3: deterministic merge in prefix-rank order ------------------
  std::vector<Segment> segments;
  segments.reserve(num_tasks);
  for (const WorkerShard& shard : shards) {
    segments.insert(segments.end(), shard.segments.begin(), shard.segments.end());
    result.stats.nodes += shard.nodes;
    result.stats.constraint_checks += shard.checks;
    result.stats.fast_checks += shard.fast_checks;
    result.stats.prunes += shard.prunes;
    result.stats.block_checks += shard.block_checks;
    result.stats.block_lanes += shard.block_lanes;
  }
  std::sort(segments.begin(), segments.end(),
            [](const Segment& a, const Segment& b) { return a.rank < b.rank; });
  for (const Segment& seg : segments) {
    if (seg.count == 0) continue;
    result.solutions.append_range(shards[seg.worker].solutions, seg.begin,
                                  seg.count);
  }
  result.stats.search_seconds = timer.seconds();
  return result;
}

}  // namespace tunespace::solver
