#include "tunespace/solver/parallel_backtracking.hpp"

#include <atomic>
#include <thread>

#include "backtracking_core.hpp"
#include "tunespace/util/timer.hpp"

namespace tunespace::solver {

SolveResult ParallelBacktracking::solve(csp::Problem& problem) const {
  SolveResult result;
  const std::size_t n = problem.num_variables();
  result.solutions = SolutionSet(n);
  util::WallTimer timer;
  if (n == 0) return result;

  detail::SearchPlan plan = detail::build_plan(problem, options_, result.stats);
  result.stats.preprocess_seconds = timer.seconds();
  if (plan.unsatisfiable) return result;

  timer.reset();
  const std::size_t first_domain = plan.domains[plan.order[0]].size();
  std::size_t workers = threads_ ? threads_ : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  workers = std::min(workers, first_domain);

  // Dynamic scheduling: each task is one value of the first search variable
  // (subtree sizes are highly skewed, so static chunking load-imbalances).
  // Per-task solution sets are merged in task order afterwards, preserving
  // the sequential enumeration order deterministically.
  struct TaskState {
    SolutionSet solutions;
    std::uint64_t nodes = 0, checks = 0, fast_checks = 0, prunes = 0;
  };
  std::vector<TaskState> tasks(first_domain);
  for (auto& t : tasks) t.solutions = SolutionSet(n);
  std::atomic<std::size_t> next_task{0};

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&plan, &tasks, &next_task, first_domain] {
      for (;;) {
        const std::size_t task = next_task.fetch_add(1, std::memory_order_relaxed);
        if (task >= first_domain) return;
        detail::BacktrackingEngine engine(plan, task, task + 1);
        TaskState& state = tasks[task];
        while (engine.next()) state.solutions.append(engine.row().data());
        state.nodes = engine.nodes();
        state.checks = engine.constraint_checks();
        state.fast_checks = engine.fast_checks();
        state.prunes = engine.prunes();
      }
    });
  }
  for (auto& t : pool) t.join();

  for (auto& state : tasks) {
    result.solutions.append_all(state.solutions);
    result.stats.nodes += state.nodes;
    result.stats.constraint_checks += state.checks;
    result.stats.fast_checks += state.fast_checks;
    result.stats.prunes += state.prunes;
  }
  result.stats.search_seconds = timer.seconds();
  return result;
}

}  // namespace tunespace::solver
