#include "tunespace/solver/brute_force.hpp"

#include "tunespace/util/timer.hpp"

namespace tunespace::solver {

using csp::Constraint;
using csp::Value;

SolveResult BruteForce::solve(csp::Problem& problem) const {
  SolveResult result;
  const std::size_t n = problem.num_variables();
  result.solutions = SolutionSet(problem);
  util::WallTimer timer;

  for (const auto& d : problem.domains()) {
    if (d.empty()) return result;
  }
  // Collect raw constraint pointers once; constant constraints are evaluated
  // on every combination too (that is what brute force does).
  std::vector<const Constraint*> constraints;
  constraints.reserve(problem.constraints().size());
  for (const auto& c : problem.constraints()) constraints.push_back(c.get());

  std::vector<Value> values(n);
  std::vector<std::uint32_t> idx(n, 0);
  for (std::size_t v = 0; v < n; ++v) values[v] = problem.domain(v)[0];

  if (n == 0) {
    result.stats.search_seconds = timer.seconds();
    return result;
  }

  std::uint64_t nodes = 0, checks = 0;
  for (;;) {
    ++nodes;
    bool ok = true;
    for (const Constraint* c : constraints) {
      ++checks;
      if (!c->satisfied(values.data())) {
        ok = false;
        break;
      }
    }
    if (ok) result.solutions.append(idx.data());

    // Advance the odometer (last variable fastest).
    std::size_t v = n;
    while (v > 0) {
      --v;
      if (++idx[v] < problem.domain(v).size()) {
        values[v] = problem.domain(v)[idx[v]];
        break;
      }
      idx[v] = 0;
      values[v] = problem.domain(v)[0];
      if (v == 0) {
        result.stats.nodes = nodes;
        result.stats.constraint_checks = checks;
        result.stats.search_seconds = timer.seconds();
        return result;
      }
    }
  }
}

}  // namespace tunespace::solver
