#include "work_stealing.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

namespace tunespace::solver::detail {

void WorkStealingDeque::push_bottom(TaskRange r) {
  std::lock_guard<std::mutex> lock(mutex_);
  ranges_.push_back(r);
}

bool WorkStealingDeque::pop_bottom(TaskRange& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ranges_.empty()) return false;
  out = ranges_.back();
  ranges_.pop_back();
  return true;
}

bool WorkStealingDeque::steal_top(TaskRange& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ranges_.empty()) return false;
  TaskRange& top = ranges_.front();
  if (top.size() <= 1) {
    out = top;
    ranges_.erase(ranges_.begin());
    return true;
  }
  const std::uint32_t mid = top.lo + top.size() / 2;
  out = TaskRange{mid, top.hi};
  top.hi = mid;  // victim keeps the front half in place
  return true;
}

WorkStealingScheduler::WorkStealingScheduler(std::size_t num_tasks,
                                             std::size_t num_workers,
                                             StealPolicy policy)
    : tasks_(num_tasks),
      workers_(std::max<std::size_t>(
          1, std::min(num_workers ? num_workers : 1, num_tasks))),
      policy_(policy) {}

void WorkStealingScheduler::run(
    const std::function<void(std::size_t, std::uint32_t)>& fn) {
  if (tasks_ == 0) return;

  std::vector<WorkStealingDeque> deques(workers_);
  for (std::size_t w = 0; w < workers_; ++w) {
    const auto lo = static_cast<std::uint32_t>(tasks_ * w / workers_);
    const auto hi = static_cast<std::uint32_t>(tasks_ * (w + 1) / workers_);
    if (lo < hi) deques[w].push_bottom(TaskRange{lo, hi});
  }

  std::atomic<std::size_t> done{0};
  auto worker = [&](std::size_t w) {
    // Deterministically-seeded xorshift for the random steal policy (victim
    // choice never affects results, only which thread computes them).
    std::uint64_t rng = 0x9E3779B97F4A7C15ULL * (w + 2);
    auto execute = [&](TaskRange r) {
      // Take the front task; re-expose the rest so thieves can split it.
      if (r.size() > 1) deques[w].push_bottom(TaskRange{r.lo + 1, r.hi});
      fn(w, r.lo);
      done.fetch_add(1, std::memory_order_release);
    };
    // Back off when repeated steal sweeps come up dry (typically the tail of
    // a skewed run): sleeping idle workers stop burning cores the remaining
    // busy workers — possibly time-sharing the same cores — need.
    int dry_sweeps = 0;
    while (done.load(std::memory_order_acquire) < tasks_) {
      TaskRange r;
      if (deques[w].pop_bottom(r)) {
        dry_sweeps = 0;
        execute(r);
        continue;
      }
      bool found = false;
      for (std::size_t i = 1; i < workers_ && !found; ++i) {
        std::size_t victim;
        if (policy_ == StealPolicy::kSequential) {
          victim = (w + i) % workers_;
        } else {
          rng ^= rng << 13;
          rng ^= rng >> 7;
          rng ^= rng << 17;
          // Draw from the nonzero offsets so every attempt targets a real
          // victim instead of wasting sweep iterations on self-picks.
          victim = (w + 1 + rng % (workers_ - 1)) % workers_;
        }
        if (victim == w) continue;
        if (deques[victim].steal_top(r)) {
          execute(r);
          found = true;
        }
      }
      if (found) {
        dry_sweeps = 0;
      } else if (++dry_sweeps < 16) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
  };

  if (workers_ == 1) {
    worker(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers_);
  for (std::size_t w = 0; w < workers_; ++w) pool.emplace_back(worker, w);
  for (auto& t : pool) t.join();
}

}  // namespace tunespace::solver::detail
