#include "tunespace/solver/chain_of_trees.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "tunespace/util/timer.hpp"

namespace tunespace::solver {

using csp::Constraint;
using csp::Value;

namespace {

/// Minimal union-find over variable indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

/// One tree node: a chosen value index plus valid child subtrees.
struct TreeNode {
  std::uint32_t value_idx = 0;
  std::vector<TreeNode> children;
};

struct GroupBuild {
  std::vector<std::size_t> vars;                    // declaration order
  std::vector<std::vector<const Constraint*>> check_at;       // boxed tier
  std::vector<std::vector<const Constraint*>> check_fast_at;  // int64 tier
  std::vector<TreeNode> roots;
  std::size_t tree_nodes = 0;
  std::vector<std::vector<std::uint32_t>> combos;   // enumerated leaves
};

}  // namespace

std::vector<std::vector<std::size_t>> ChainOfTrees::interdependence_groups(
    const csp::Problem& problem) {
  const std::size_t n = problem.num_variables();
  UnionFind uf(n);
  for (const auto& c : problem.constraints()) {
    const auto& idx = c->indices();
    for (std::size_t i = 1; i < idx.size(); ++i) uf.unite(idx[0], idx[i]);
  }
  std::vector<std::vector<std::size_t>> groups;
  std::vector<std::ptrdiff_t> group_of(n, -1);
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t root = uf.find(v);
    if (group_of[root] < 0) {
      group_of[root] = static_cast<std::ptrdiff_t>(groups.size());
      groups.emplace_back();
    }
    groups[static_cast<std::size_t>(group_of[root])].push_back(v);
  }
  return groups;
}

SolveResult ChainOfTrees::solve(csp::Problem& problem) const {
  SolveResult result;
  const std::size_t n = problem.num_variables();
  result.solutions = SolutionSet(n);
  util::WallTimer timer;
  for (const auto& d : problem.domains()) {
    if (d.empty()) return result;
  }

  // --- Group parameters by constraint interdependence ----------------------
  auto groups_vars = interdependence_groups(problem);
  std::vector<std::size_t> group_of(n), pos_in_group(n);
  for (std::size_t g = 0; g < groups_vars.size(); ++g) {
    for (std::size_t p = 0; p < groups_vars[g].size(); ++p) {
      group_of[groups_vars[g][p]] = g;
      pos_in_group[groups_vars[g][p]] = p;
    }
  }

  std::vector<GroupBuild> groups(groups_vars.size());
  for (std::size_t g = 0; g < groups_vars.size(); ++g) {
    groups[g].vars = std::move(groups_vars[g]);
    groups[g].check_at.resize(groups[g].vars.size());
    groups[g].check_fast_at.resize(groups[g].vars.size());
  }

  // Int64 mirror of the int-only domains; the pyATF-overhead mode keeps the
  // fully boxed data flow it is modelling.
  const bool fast_enabled = !interpreter_overhead_;
  std::vector<unsigned char> var_is_int(n, 0);
  std::vector<std::vector<std::int64_t>> int_dom(n);
  if (fast_enabled) {
    for (std::size_t v = 0; v < n; ++v) {
      if (problem.domain(v).int_mirror(int_dom[v])) var_is_int[v] = 1;
    }
  }

  // Assign each constraint to the depth where its scope completes within its
  // group (all scope variables share one group by construction), partitioned
  // into the int64 fast tier and the boxed tier.  Boxed Values are only
  // materialized for variables the boxed tier (or the pyATF-overhead data
  // flow) actually reads, mirroring the backtracking engine's var_needs_boxed.
  std::vector<unsigned char> needs_boxed(n, interpreter_overhead_ ? 1 : 0);
  bool unsatisfiable_constant = false;
  for (const auto& c : problem.constraints()) {
    if (c->indices().empty()) {
      Value dummy;
      if (!c->satisfied(&dummy)) unsatisfiable_constant = true;
      continue;
    }
    const std::size_t g = group_of[c->indices()[0]];
    std::size_t depth = 0;
    for (std::uint32_t idx : c->indices()) depth = std::max(depth, pos_in_group[idx]);
    bool fast = false;
    if (fast_enabled) {
      std::vector<const csp::Domain*> scope_domains;
      scope_domains.reserve(c->indices().size());
      for (std::uint32_t idx : c->indices()) {
        scope_domains.push_back(&problem.domain(idx));
      }
      // try_specialize's contract requires prepare() first (specializations
      // may consume prepared bounds, as consistent_fast does).
      c->prepare(scope_domains);
      fast = c->try_specialize(scope_domains);
    }
    if (!fast) {
      for (std::uint32_t idx : c->indices()) needs_boxed[idx] = 1;
    }
    (fast ? groups[g].check_fast_at : groups[g].check_at)[depth].push_back(c.get());
  }
  result.stats.preprocess_seconds = timer.seconds();
  if (unsatisfiable_constant) return result;

  // --- Build one tree per group ---------------------------------------------
  timer.reset();
  std::vector<Value> values(n);
  std::vector<std::int64_t> int_values(n, 0);
  std::vector<unsigned char> assigned(n, 0);
  std::uint64_t nodes = 0, checks = 0, fast_checks = 0;

  // pyATF-mode sink: the most recent name-keyed configuration dictionary.
  // A *fresh* dictionary is allocated per visited node / emitted solution,
  // matching the Python implementation's per-node dict objects.
  std::unordered_map<std::string, Value> py_config;

  // Recursive lambda building the subtree rooted at `depth`; returns the
  // valid children for the current partial assignment.
  auto build_children = [&](auto&& self, GroupBuild& group,
                            std::size_t depth) -> std::vector<TreeNode> {
    std::vector<TreeNode> out;
    const std::size_t var = group.vars[depth];
    const csp::Domain& dom = problem.domain(var);
    for (std::uint32_t vi = 0; vi < dom.size(); ++vi) {
      if (needs_boxed[var]) values[var] = dom[vi];
      if (var_is_int[var]) int_values[var] = int_dom[var][vi];
      assigned[var] = 1;
      ++nodes;
      if (interpreter_overhead_) {
        // Model the Python data flow: materialize the partial configuration
        // as a fresh name->value dictionary object for this node.
        std::unordered_map<std::string, Value> node_config;
        for (std::size_t dd = 0; dd <= depth; ++dd) {
          node_config[problem.name(group.vars[dd])] = values[group.vars[dd]];
        }
        py_config = std::move(node_config);
      }
      bool ok = true;
      for (const Constraint* c : group.check_fast_at[depth]) {
        ++checks;
        ++fast_checks;
        if (!c->satisfied_fast(int_values.data())) {
          ok = false;
          break;
        }
      }
      if (ok) {
        for (const Constraint* c : group.check_at[depth]) {
          ++checks;
          if (!c->satisfied(values.data())) {
            ok = false;
            break;
          }
        }
      }
      if (!ok) {
        assigned[var] = 0;
        continue;
      }
      TreeNode node;
      node.value_idx = vi;
      if (depth + 1 < group.vars.size()) {
        node.children = self(self, group, depth + 1);
        if (node.children.empty()) {
          // No valid completion below: the node is not part of the tree.
          assigned[var] = 0;
          continue;
        }
      }
      group.tree_nodes++;
      out.push_back(std::move(node));
      assigned[var] = 0;
    }
    assigned[var] = 0;
    return out;
  };

  for (GroupBuild& group : groups) {
    group.roots = build_children(build_children, group, 0);
    if (group.roots.empty()) {
      // One empty group empties the whole chain.
      result.stats.nodes = nodes;
      result.stats.constraint_checks = checks;
      result.stats.fast_checks = fast_checks;
      result.stats.search_seconds = timer.seconds();
      return result;
    }
  }

  // --- Enumerate each tree's leaves into per-group combination lists -------
  for (GroupBuild& group : groups) {
    std::vector<std::uint32_t> path(group.vars.size());
    auto walk = [&](auto&& self, const std::vector<TreeNode>& level,
                    std::size_t depth) -> void {
      for (const TreeNode& node : level) {
        path[depth] = node.value_idx;
        if (depth + 1 == group.vars.size()) {
          group.combos.push_back(path);
        } else {
          self(self, node.children, depth + 1);
        }
      }
    };
    walk(walk, group.roots, 0);
  }

  // --- Link the chain: cross product of per-group combinations -------------
  std::vector<std::size_t> pick(groups.size(), 0);
  std::vector<std::uint32_t> row(n);
  for (;;) {
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const auto& combo = groups[g].combos[pick[g]];
      for (std::size_t p = 0; p < groups[g].vars.size(); ++p) {
        row[groups[g].vars[p]] = combo[p];
      }
    }
    if (interpreter_overhead_) {
      // pyATF yields each configuration as a freshly-allocated dictionary.
      std::unordered_map<std::string, Value> solution_config;
      for (std::size_t v = 0; v < n; ++v) {
        solution_config[problem.name(v)] = problem.domain(v)[row[v]];
      }
      py_config = std::move(solution_config);
    }
    result.solutions.append(row.data());
    std::size_t g = groups.size();
    for (;;) {
      if (g == 0) goto done;
      --g;
      if (++pick[g] < groups[g].combos.size()) break;
      pick[g] = 0;
    }
  }
done:
  result.stats.nodes = nodes;
  result.stats.constraint_checks = checks;
  result.stats.fast_checks = fast_checks;
  result.stats.search_seconds = timer.seconds();
  return result;
}

}  // namespace tunespace::solver
