#include "tunespace/solver/chain_of_trees.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "tunespace/util/timer.hpp"
#include "work_stealing.hpp"

namespace tunespace::solver {

using csp::Constraint;
using csp::Value;

namespace {

/// Minimal union-find over variable indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

/// One tree node: a chosen value index plus valid child subtrees.
struct TreeNode {
  std::uint32_t value_idx = 0;
  std::vector<TreeNode> children;
};

struct GroupBuild {
  std::vector<std::size_t> vars;                    // declaration order
  std::vector<std::vector<const Constraint*>> check_at;       // boxed tier
  std::vector<std::vector<const Constraint*>> check_fast_at;  // int64 tier
  std::vector<TreeNode> roots;
  std::vector<std::vector<std::uint32_t>> combos;   // enumerated leaves
};

/// Per-worker mutable state of the tree build.  The sequential construction
/// uses one; the parallel construction gives each worker its own, so root
/// subtrees build concurrently without sharing any assignment scratch.
struct BuildCtx {
  explicit BuildCtx(std::size_t n)
      : values(n), int_values(n, 0), assigned(n, 0) {}
  std::vector<Value> values;
  std::vector<std::int64_t> int_values;
  std::vector<unsigned char> assigned;
  std::uint64_t nodes = 0, checks = 0, fast_checks = 0;
  // pyATF-mode sink: the most recent name-keyed configuration dictionary.
  // A *fresh* dictionary is allocated per visited node / emitted solution,
  // matching the Python implementation's per-node dict objects.
  std::unordered_map<std::string, Value> py_config;
};

}  // namespace

std::vector<std::vector<std::size_t>> ChainOfTrees::interdependence_groups(
    const csp::Problem& problem) {
  const std::size_t n = problem.num_variables();
  UnionFind uf(n);
  for (const auto& c : problem.constraints()) {
    const auto& idx = c->indices();
    for (std::size_t i = 1; i < idx.size(); ++i) uf.unite(idx[0], idx[i]);
  }
  std::vector<std::vector<std::size_t>> groups;
  std::vector<std::ptrdiff_t> group_of(n, -1);
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t root = uf.find(v);
    if (group_of[root] < 0) {
      group_of[root] = static_cast<std::ptrdiff_t>(groups.size());
      groups.emplace_back();
    }
    groups[static_cast<std::size_t>(group_of[root])].push_back(v);
  }
  return groups;
}

SolveResult ChainOfTrees::solve(csp::Problem& problem) const {
  SolveResult result;
  const std::size_t n = problem.num_variables();
  result.solutions = SolutionSet(problem);
  util::WallTimer timer;
  for (const auto& d : problem.domains()) {
    if (d.empty()) return result;
  }

  // --- Group parameters by constraint interdependence ----------------------
  auto groups_vars = interdependence_groups(problem);
  std::vector<std::size_t> group_of(n), pos_in_group(n);
  for (std::size_t g = 0; g < groups_vars.size(); ++g) {
    for (std::size_t p = 0; p < groups_vars[g].size(); ++p) {
      group_of[groups_vars[g][p]] = g;
      pos_in_group[groups_vars[g][p]] = p;
    }
  }

  std::vector<GroupBuild> groups(groups_vars.size());
  for (std::size_t g = 0; g < groups_vars.size(); ++g) {
    groups[g].vars = std::move(groups_vars[g]);
    groups[g].check_at.resize(groups[g].vars.size());
    groups[g].check_fast_at.resize(groups[g].vars.size());
  }

  // Int64 mirror of the int-only domains; the pyATF-overhead mode keeps the
  // fully boxed data flow it is modelling.
  const bool fast_enabled = !interpreter_overhead_;
  std::vector<unsigned char> var_is_int(n, 0);
  std::vector<std::vector<std::int64_t>> int_dom(n);
  if (fast_enabled) {
    for (std::size_t v = 0; v < n; ++v) {
      if (problem.domain(v).int_mirror(int_dom[v])) var_is_int[v] = 1;
    }
  }

  // Assign each constraint to the depth where its scope completes within its
  // group (all scope variables share one group by construction), partitioned
  // into the int64 fast tier and the boxed tier.  Boxed Values are only
  // materialized for variables the boxed tier (or the pyATF-overhead data
  // flow) actually reads, mirroring the backtracking engine's var_needs_boxed.
  std::vector<unsigned char> needs_boxed(n, interpreter_overhead_ ? 1 : 0);
  bool unsatisfiable_constant = false;
  for (const auto& c : problem.constraints()) {
    if (c->indices().empty()) {
      Value dummy;
      if (!c->satisfied(&dummy)) unsatisfiable_constant = true;
      continue;
    }
    const std::size_t g = group_of[c->indices()[0]];
    std::size_t depth = 0;
    for (std::uint32_t idx : c->indices()) depth = std::max(depth, pos_in_group[idx]);
    bool fast = false;
    if (fast_enabled) {
      std::vector<const csp::Domain*> scope_domains;
      scope_domains.reserve(c->indices().size());
      for (std::uint32_t idx : c->indices()) {
        scope_domains.push_back(&problem.domain(idx));
      }
      // try_specialize's contract requires prepare() first (specializations
      // may consume prepared bounds, as consistent_fast does).
      c->prepare(scope_domains);
      fast = c->try_specialize(scope_domains);
    }
    if (!fast) {
      for (std::uint32_t idx : c->indices()) needs_boxed[idx] = 1;
    }
    (fast ? groups[g].check_fast_at : groups[g].check_at)[depth].push_back(c.get());
  }
  result.stats.preprocess_seconds = timer.seconds();
  if (unsatisfiable_constant) return result;

  // --- Build one tree per group ---------------------------------------------
  timer.reset();

  // Recursive lambda building (and validating) the node for value `vi` of
  // position `depth`; returns false when the node fails its checks or has no
  // valid completion below.  All mutable state lives in the BuildCtx, so the
  // parallel construction can run one instance per worker.
  auto build_node = [&](auto&& self, BuildCtx& ctx, const GroupBuild& group,
                        std::size_t depth, std::uint32_t vi,
                        TreeNode& out) -> bool {
    const std::size_t var = group.vars[depth];
    const csp::Domain& dom = problem.domain(var);
    if (needs_boxed[var]) ctx.values[var] = dom[vi];
    if (var_is_int[var]) ctx.int_values[var] = int_dom[var][vi];
    ctx.assigned[var] = 1;
    ++ctx.nodes;
    if (interpreter_overhead_) {
      // Model the Python data flow: materialize the partial configuration
      // as a fresh name->value dictionary object for this node.
      std::unordered_map<std::string, Value> node_config;
      for (std::size_t dd = 0; dd <= depth; ++dd) {
        node_config[problem.name(group.vars[dd])] = ctx.values[group.vars[dd]];
      }
      ctx.py_config = std::move(node_config);
    }
    bool ok = true;
    for (const Constraint* c : group.check_fast_at[depth]) {
      ++ctx.checks;
      ++ctx.fast_checks;
      if (!c->satisfied_fast(ctx.int_values.data())) {
        ok = false;
        break;
      }
    }
    if (ok) {
      for (const Constraint* c : group.check_at[depth]) {
        ++ctx.checks;
        if (!c->satisfied(ctx.values.data())) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) {
      ctx.assigned[var] = 0;
      return false;
    }
    out.value_idx = vi;
    if (depth + 1 < group.vars.size()) {
      const csp::Domain& child_dom = problem.domain(group.vars[depth + 1]);
      for (std::uint32_t ci = 0; ci < child_dom.size(); ++ci) {
        TreeNode child;
        if (self(self, ctx, group, depth + 1, ci, child)) {
          out.children.push_back(std::move(child));
        }
      }
      if (out.children.empty()) {
        // No valid completion below: the node is not part of the tree.
        ctx.assigned[var] = 0;
        return false;
      }
    }
    ctx.assigned[var] = 0;
    return true;
  };

  const bool use_parallel = parallel_enabled_ && !interpreter_overhead_;
  const std::size_t workers = use_parallel ? parallel_.resolve_threads() : 1;
  std::uint64_t nodes = 0, checks = 0, fast_checks = 0;

  if (use_parallel) {
    // One task per chain block subtree: each root value of each group's tree
    // builds independently; results are collected back in (group, root) rank
    // order, so the trees are identical to the sequential construction.
    // (Corner case: when some group turns out unsatisfiable, the sequential
    // build stops at that group while this path has already built the rest,
    // so effort counters can exceed the sequential ones — the result is
    // still identical: empty.)
    struct RootTask {
      std::uint32_t group = 0;
      std::uint32_t vi = 0;
    };
    std::vector<RootTask> root_tasks;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const csp::Domain& dom = problem.domain(groups[g].vars[0]);
      for (std::uint32_t vi = 0; vi < dom.size(); ++vi) {
        root_tasks.push_back(
            RootTask{static_cast<std::uint32_t>(g), vi});
      }
    }
    std::vector<std::pair<unsigned char, TreeNode>> built(root_tasks.size());
    detail::WorkStealingScheduler scheduler(root_tasks.size(), workers,
                                            parallel_.steal);
    std::vector<BuildCtx> ctxs(scheduler.workers(), BuildCtx(n));
    scheduler.run([&](std::size_t w, std::uint32_t t) {
      const RootTask& task = root_tasks[t];
      TreeNode node;
      if (build_node(build_node, ctxs[w], groups[task.group], 0, task.vi,
                     node)) {
        built[t] = {1, std::move(node)};
      }
    });
    result.stats.parallel_tasks += root_tasks.size();
    result.stats.parallel_workers =
        static_cast<std::uint32_t>(scheduler.workers());
    for (const BuildCtx& ctx : ctxs) {
      nodes += ctx.nodes;
      checks += ctx.checks;
      fast_checks += ctx.fast_checks;
    }
    std::size_t t = 0;
    for (GroupBuild& group : groups) {
      const csp::Domain& dom = problem.domain(group.vars[0]);
      for (std::uint32_t vi = 0; vi < dom.size(); ++vi, ++t) {
        if (built[t].first) group.roots.push_back(std::move(built[t].second));
      }
    }
  } else {
    BuildCtx ctx(n);
    for (GroupBuild& group : groups) {
      const csp::Domain& dom = problem.domain(group.vars[0]);
      for (std::uint32_t vi = 0; vi < dom.size(); ++vi) {
        TreeNode node;
        if (build_node(build_node, ctx, group, 0, vi, node)) {
          group.roots.push_back(std::move(node));
        }
      }
      if (group.roots.empty()) break;  // one empty group empties the chain
    }
    nodes = ctx.nodes;
    checks = ctx.checks;
    fast_checks = ctx.fast_checks;
  }

  for (const GroupBuild& group : groups) {
    if (group.roots.empty()) {
      // One empty group empties the whole chain.
      result.stats.nodes = nodes;
      result.stats.constraint_checks = checks;
      result.stats.fast_checks = fast_checks;
      result.stats.search_seconds = timer.seconds();
      return result;
    }
  }

  // --- Enumerate each tree's leaves into per-group combination lists -------
  for (GroupBuild& group : groups) {
    std::vector<std::uint32_t> path(group.vars.size());
    auto walk = [&](auto&& self, const std::vector<TreeNode>& level,
                    std::size_t depth) -> void {
      for (const TreeNode& node : level) {
        path[depth] = node.value_idx;
        if (depth + 1 == group.vars.size()) {
          group.combos.push_back(path);
        } else {
          self(self, node.children, depth + 1);
        }
      }
    };
    walk(walk, group.roots, 0);
  }

  // --- Link the chain: cross product of per-group combinations -------------
  // The last group is the fastest-cycling odometer digit, so global row
  // index r decomposes into per-group picks by mod/div from the back.
  std::uint64_t total = 1;
  for (const GroupBuild& group : groups) total *= group.combos.size();

  // Compose the row for the current picks / advance the odometer.
  auto compose = [&](const std::vector<std::size_t>& pick,
                     std::vector<std::uint32_t>& row) {
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const auto& combo = groups[g].combos[pick[g]];
      for (std::size_t p = 0; p < groups[g].vars.size(); ++p) {
        row[groups[g].vars[p]] = combo[p];
      }
    }
  };
  auto advance = [&](std::vector<std::size_t>& pick) {
    std::size_t g = groups.size();
    while (g-- > 0) {
      if (++pick[g] < groups[g].combos.size()) break;
      pick[g] = 0;
    }
  };

  if (use_parallel && workers > 1 && total > 1) {
    // Chunked materialization: each chunk decodes its starting picks from
    // the global row index and fills a private SolutionSet; chunk-order
    // concatenation reproduces the sequential enumeration byte-for-byte.
    const std::size_t num_chunks =
        static_cast<std::size_t>(std::min<std::uint64_t>(total, workers * 4));
    std::vector<SolutionSet> chunk_sets(num_chunks);
    for (auto& set : chunk_sets) set = SolutionSet(problem);
    detail::WorkStealingScheduler scheduler(num_chunks, workers, parallel_.steal);
    scheduler.run([&](std::size_t, std::uint32_t c) {
      const std::uint64_t lo = total * c / num_chunks;
      const std::uint64_t hi = total * (c + 1) / num_chunks;
      std::vector<std::size_t> pick(groups.size(), 0);
      std::uint64_t r = lo;
      for (std::size_t g = groups.size(); g-- > 0;) {
        pick[g] = static_cast<std::size_t>(r % groups[g].combos.size());
        r /= groups[g].combos.size();
      }
      std::vector<std::uint32_t> row(n);
      for (std::uint64_t i = lo; i < hi; ++i) {
        compose(pick, row);
        chunk_sets[c].append(row.data());
        advance(pick);
      }
    });
    result.stats.parallel_tasks += num_chunks;
    result.stats.parallel_workers =
        std::max(result.stats.parallel_workers,
                 static_cast<std::uint32_t>(scheduler.workers()));
    for (const SolutionSet& set : chunk_sets) result.solutions.append_all(set);
  } else {
    BuildCtx py_ctx(0);  // pyATF per-solution dictionary sink
    std::vector<std::size_t> pick(groups.size(), 0);
    std::vector<std::uint32_t> row(n);
    for (std::uint64_t i = 0; i < total; ++i) {
      compose(pick, row);
      if (interpreter_overhead_) {
        // pyATF yields each configuration as a freshly-allocated dictionary.
        std::unordered_map<std::string, Value> solution_config;
        for (std::size_t v = 0; v < n; ++v) {
          solution_config[problem.name(v)] = problem.domain(v)[row[v]];
        }
        py_ctx.py_config = std::move(solution_config);
      }
      result.solutions.append(row.data());
      advance(pick);
    }
  }
  result.stats.nodes = nodes;
  result.stats.constraint_checks = checks;
  result.stats.fast_checks = fast_checks;
  result.stats.search_seconds = timer.seconds();
  return result;
}

}  // namespace tunespace::solver
