#include "tunespace/solver/validate.hpp"

#include "tunespace/solver/blocking_enumerator.hpp"
#include "tunespace/solver/brute_force.hpp"
#include "tunespace/solver/chain_of_trees.hpp"
#include "tunespace/solver/optimized_backtracking.hpp"
#include "tunespace/solver/original_backtracking.hpp"

namespace tunespace::solver {

ValidationReport validate_against(const Solver& solver, csp::Problem& problem,
                                  const SolutionSet& reference) {
  ValidationReport report;
  report.solver_name = solver.name();
  SolveResult result = solver.solve(problem);
  report.solver_count = result.solutions.size();
  report.reference_count = reference.size();
  report.matches = result.solutions.same_solutions(reference);
  return report;
}

std::vector<SolverPtr> all_solvers(bool include_blocking) {
  std::vector<SolverPtr> out;
  out.push_back(std::make_unique<OptimizedBacktracking>());
  out.push_back(std::make_unique<OriginalBacktracking>());
  out.push_back(std::make_unique<BruteForce>());
  out.push_back(std::make_unique<ChainOfTrees>());
  if (include_blocking) out.push_back(std::make_unique<BlockingEnumerator>());
  return out;
}

}  // namespace tunespace::solver
