#include "tunespace/solver/original_backtracking.hpp"

#include <algorithm>
#include <unordered_map>

#include "tunespace/util/timer.hpp"

namespace tunespace::solver {

using csp::Constraint;
using csp::Value;

namespace {

struct SearchState {
  csp::Problem* problem;
  // Name-keyed assignment map, deliberately mirroring the python dict the
  // original implementation threads through every call.
  std::unordered_map<std::string, Value> assignment;
  // Dense mirrors kept in sync for the Constraint interface.
  std::vector<Value> values;
  std::vector<unsigned char> assigned;
  // Per-variable constraint lists (vconstraints in python-constraint).
  std::vector<std::vector<const Constraint*>> var_constraints;
  std::vector<std::size_t> constraint_count;
  std::vector<std::uint32_t> row;
  SolutionSet* out = nullptr;
  SolveStats* stats = nullptr;
};

void search(SearchState& st) {
  csp::Problem& problem = *st.problem;
  const std::size_t n = problem.num_variables();

  // Rebuild and sort the candidate list at every node, exactly like the
  // original solver: most constraints first, then smallest domain.
  std::vector<std::size_t> candidates;
  candidates.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    if (!st.assigned[v]) candidates.push_back(v);
  }
  if (candidates.empty()) {
    // Solution: convert the assignment to original-domain indices (the
    // python version copies the dict here; we pay an analogous cost).
    for (std::size_t v = 0; v < n; ++v) {
      st.row[v] = static_cast<std::uint32_t>(
          problem.domain(v).index_of(st.values[v]));
    }
    st.out->append(st.row.data());
    return;
  }
  std::sort(candidates.begin(), candidates.end(), [&](std::size_t a, std::size_t b) {
    if (st.constraint_count[a] != st.constraint_count[b]) {
      return st.constraint_count[a] > st.constraint_count[b];
    }
    if (problem.domain(a).size() != problem.domain(b).size()) {
      return problem.domain(a).size() < problem.domain(b).size();
    }
    return a < b;
  });
  const std::size_t var = candidates.front();

  for (std::size_t vi = 0; vi < problem.domain(var).size(); ++vi) {
    const Value& value = problem.domain(var)[vi];
    st.assignment[problem.name(var)] = value;  // dict write
    st.values[var] = value;
    st.assigned[var] = 1;
    st.stats->nodes++;

    bool ok = true;
    for (const Constraint* c : st.var_constraints[var]) {
      st.stats->constraint_checks++;
      // Original semantics: evaluate only when fully assigned; otherwise
      // the check trivially passes (default consistent()).
      if (!c->consistent(st.values.data(), st.assigned.data())) {
        ok = false;
        break;
      }
    }
    if (ok) search(st);
    st.assigned[var] = 0;
  }
  st.assignment.erase(problem.name(var));  // dict erase on unwind
}

}  // namespace

SolveResult OriginalBacktracking::solve(csp::Problem& problem) const {
  SolveResult result;
  const std::size_t n = problem.num_variables();
  result.solutions = SolutionSet(problem);
  for (const auto& d : problem.domains()) {
    if (d.empty()) return result;
  }
  util::WallTimer timer;

  SearchState st;
  st.problem = &problem;
  st.values.resize(n);
  st.assigned.assign(n, 0);
  st.row.resize(n);
  st.var_constraints.resize(n);
  st.constraint_count.assign(n, 0);
  bool unsatisfiable_constant = false;
  for (const auto& c : problem.constraints()) {
    if (c->indices().empty()) {
      Value dummy;
      if (!c->satisfied(&dummy)) unsatisfiable_constant = true;
      continue;
    }
    for (std::uint32_t idx : c->indices()) {
      st.var_constraints[idx].push_back(c.get());
      st.constraint_count[idx]++;
    }
  }
  st.out = &result.solutions;
  st.stats = &result.stats;
  if (!unsatisfiable_constant && n > 0) {
    search(st);
  } else if (!unsatisfiable_constant && n == 0) {
    // Zero-variable problem with satisfiable constraints: empty solution.
  }
  result.stats.search_seconds = timer.seconds();
  return result;
}

}  // namespace tunespace::solver
