#pragma once
// Internal shared core of the optimized backtracking search (not installed;
// used by OptimizedBacktracking, ParallelBacktracking and SolutionIterator).
//
// A SearchPlan captures everything derived from the Problem before search:
// preprocessed domain copies, the original-domain index mapping, the
// variable order, and the per-position constraint dispatch tables.
// A BacktrackingEngine then enumerates solutions resumably over a plan,
// optionally restricted to a sub-range of the first search variable's
// values — the unit of work the parallel solver distributes across threads.

#include <cstdint>
#include <vector>

#include "tunespace/csp/problem.hpp"
#include "tunespace/solver/optimized_backtracking.hpp"
#include "tunespace/solver/solver.hpp"

namespace tunespace::solver::detail {

/// Precomputed search strategy for one problem.
///
/// Constraint dispatch is two-tier: constraints that specialized for the
/// int64 fast path (Constraint::try_specialize) land in the *_fast tables
/// and are evaluated against a dense int64 mirror of the assignment;
/// everything else stays in the boxed tables.  Boxed Values are only
/// written for variables some boxed constraint actually reads
/// (var_needs_boxed), so all-integer problems never touch a Value on the
/// hot path.
struct SearchPlan {
  std::vector<csp::Domain> domains;                    ///< preprocessed copies
  std::vector<std::vector<std::uint32_t>> orig_index;  ///< pruned -> original
  std::vector<std::size_t> order;                      ///< position -> variable
  std::vector<std::size_t> pos_of;                     ///< variable -> position
  std::vector<std::vector<const csp::Constraint*>> full_at;     ///< boxed tier
  std::vector<std::vector<const csp::Constraint*>> partial_at;  ///< boxed tier
  std::vector<std::vector<const csp::Constraint*>> full_fast_at;
  std::vector<std::vector<const csp::Constraint*>> partial_fast_at;
  std::vector<std::vector<std::int64_t>> int_values;   ///< per int var: domain mirror
  std::vector<unsigned char> var_is_int;               ///< domain is int/bool only
  std::vector<unsigned char> var_needs_boxed;          ///< boxed tier reads this var
  bool unsatisfiable = false;  ///< proven empty during preprocessing
};

/// Build a plan: preprocess domains (per options), order variables, prepare
/// constraints, and build dispatch tables.  Adds preprocessing effort to
/// `stats`.  The plan references the problem's constraints; the problem must
/// outlive the plan.
SearchPlan build_plan(csp::Problem& problem, const OptimizedOptions& options,
                      SolveStats& stats);

/// Resumable depth-first enumeration over a plan.
class BacktrackingEngine {
 public:
  /// Restrict the first search position's value indices to [first_lo,
  /// first_hi) — pass 0 and the full domain size for a complete search.
  BacktrackingEngine(const SearchPlan& plan, std::size_t first_lo,
                     std::size_t first_hi);

  /// Advance to the next solution; false when exhausted.  On success the
  /// solution is available via row() (original-domain value indices).
  bool next();

  const std::vector<std::uint32_t>& row() const { return row_; }

  std::uint64_t nodes() const { return nodes_; }
  std::uint64_t constraint_checks() const { return checks_; }
  std::uint64_t fast_checks() const { return fast_checks_; }
  std::uint64_t prunes() const { return prunes_; }

 private:
  const SearchPlan* plan_;
  std::size_t first_lo_, first_hi_;
  std::vector<csp::Value> values_;
  std::vector<std::int64_t> int_values_;  ///< dense int64 assignment mirror
  std::vector<unsigned char> assigned_;
  std::vector<std::size_t> value_idx_;
  std::vector<std::uint32_t> row_;
  std::size_t p_ = 0;
  bool exhausted_ = false;
  std::uint64_t nodes_ = 0, checks_ = 0, fast_checks_ = 0, prunes_ = 0;
};

}  // namespace tunespace::solver::detail
