#pragma once
// Internal shared core of the optimized backtracking search (not installed;
// used by OptimizedBacktracking, ParallelBacktracking and SolutionIterator).
//
// A SearchPlan captures everything derived from the Problem before search:
// preprocessed domain copies, the original-domain index mapping, the
// variable order, and the per-position constraint dispatch tables.
// A BacktrackingEngine then enumerates solutions resumably over a plan.
// Two restrictions compose into the parallel decomposition:
//   * an emit depth D < n turns the engine into a *prefix expander* that
//     yields every valid depth-D assignment prefix (and charges exactly the
//     nodes/checks the sequential search spends on the top D levels);
//   * a prefix seed fixes positions [0, D) to one expanded prefix and
//     enumerates only the subtree below it, never backtracking above D.
// Together they let the work-stealing parallel solver split the search tree
// at any depth while keeping the union of all engines' effort counters
// exactly equal to a single sequential enumeration.

#include <cstdint>
#include <vector>

#include "tunespace/csp/problem.hpp"
#include "tunespace/solver/optimized_backtracking.hpp"
#include "tunespace/solver/solver.hpp"

namespace tunespace::solver::detail {

/// Precomputed search strategy for one problem.
///
/// Constraint dispatch is two-tier: constraints that specialized for the
/// int64 fast path (Constraint::try_specialize) land in the *_fast tables
/// and are evaluated against a dense int64 mirror of the assignment;
/// everything else stays in the boxed tables.  Boxed Values are only
/// written for variables some boxed constraint actually reads
/// (var_needs_boxed), so all-integer problems never touch a Value on the
/// hot path.
struct SearchPlan {
  std::vector<csp::Domain> domains;                    ///< preprocessed copies
  std::vector<std::vector<std::uint32_t>> orig_index;  ///< pruned -> original
  std::vector<std::size_t> order;                      ///< position -> variable
  std::vector<std::size_t> pos_of;                     ///< variable -> position
  std::vector<std::vector<const csp::Constraint*>> full_at;     ///< boxed tier
  std::vector<std::vector<const csp::Constraint*>> partial_at;  ///< boxed tier
  std::vector<std::vector<const csp::Constraint*>> full_fast_at;
  std::vector<std::vector<const csp::Constraint*>> partial_fast_at;
  std::vector<std::vector<std::int64_t>> int_values;   ///< per int var: domain mirror
  std::vector<unsigned char> var_is_int;               ///< domain is int/bool only
  std::vector<unsigned char> var_needs_boxed;          ///< boxed tier reads this var
  std::vector<unsigned char> block_at;                 ///< block tier on at position
  bool unsatisfiable = false;  ///< proven empty during preprocessing
};

/// Build a plan: preprocess domains (per options), order variables, prepare
/// constraints, and build dispatch tables.  Adds preprocessing effort to
/// `stats`.  The plan references the problem's constraints; the problem must
/// outlive the plan.
SearchPlan build_plan(csp::Problem& problem, const OptimizedOptions& options,
                      SolveStats& stats);

/// Resumable depth-first enumeration over a plan.
class BacktrackingEngine {
 public:
  /// Restrict the first search position's value indices to [first_lo,
  /// first_hi) — pass 0 and the full domain size for a complete search.
  /// `emit_depth` < n turns the engine into a prefix expander: next()
  /// returns once per valid assignment of positions [0, emit_depth) and
  /// never descends (or counts effort) below that depth.
  BacktrackingEngine(const SearchPlan& plan, std::size_t first_lo,
                     std::size_t first_hi,
                     std::size_t emit_depth = static_cast<std::size_t>(-1));

  /// A fixed assignment prefix: `length` pruned-domain value indices, one
  /// per search position, as produced by a prefix expander via chosen_index.
  struct PrefixSeed {
    const std::uint32_t* values = nullptr;
    std::size_t length = 0;
  };

  /// Seed positions [0, seed.length) and enumerate the subtree below.  The
  /// seeded positions are assumed already validated by the expansion; no
  /// effort is counted for them, and the engine never backtracks above the
  /// prefix.
  BacktrackingEngine(const SearchPlan& plan, PrefixSeed seed);

  /// Advance to the next solution; false when exhausted.  On success the
  /// solution is available via row() (original-domain value indices).
  bool next();

  const std::vector<std::uint32_t>& row() const { return row_; }

  /// Pruned-domain value index currently chosen at search position `pos`.
  /// Valid for pos < emit_depth after next() returned true; used to capture
  /// the prefix a depth-limited expander stopped at.
  std::uint32_t chosen_index(std::size_t pos) const {
    return static_cast<std::uint32_t>(value_idx_[pos] - 1);
  }

  std::uint64_t nodes() const { return nodes_; }
  std::uint64_t constraint_checks() const { return checks_; }
  std::uint64_t fast_checks() const { return fast_checks_; }
  std::uint64_t prunes() const { return prunes_; }
  std::uint64_t block_checks() const { return block_checks_; }
  std::uint64_t block_lanes() const { return block_lanes_; }

 private:
  /// One candidate lane group per block-enabled position (matches the
  /// Constraint block contract and expr::IntProgramBlock).
  static constexpr std::size_t kBlockLanes = csp::Constraint::kMaxBlockLanes;
  /// chunk_begin_ sentinel: no valid lane-group mask cached at a position.
  static constexpr std::size_t kNoChunk = static_cast<std::size_t>(-1);

  /// Evaluate the lane group [vi0, min(vi0 + kBlockLanes, limit)) of search
  /// position `p` against the current partial assignment, filling
  /// chunk_mask_.  Charges checks_/fast_checks_/prunes_ exactly as the
  /// scalar per-candidate sweep would (lanes count as individual checks;
  /// dead lanes stop being charged), so solver stats are independent of
  /// whether the block tier is on.
  void compute_chunk(std::size_t p, std::size_t vi0, std::size_t limit);

  const SearchPlan* plan_;
  std::size_t first_lo_, first_hi_;
  std::size_t base_ = 0;        ///< backtracking floor (prefix length)
  std::size_t emit_depth_ = 0;  ///< position count after which next() yields
  std::vector<csp::Value> values_;
  std::vector<std::int64_t> int_values_;  ///< dense int64 assignment mirror
  std::vector<unsigned char> assigned_;
  std::vector<std::size_t> value_idx_;
  std::vector<std::uint32_t> row_;
  std::vector<std::size_t> chunk_begin_;  ///< per position: first lane index
  std::vector<unsigned char> chunk_mask_; ///< per position: kBlockLanes verdicts
  std::size_t p_ = 0;
  bool exhausted_ = false;
  std::uint64_t nodes_ = 0, checks_ = 0, fast_checks_ = 0, prunes_ = 0;
  std::uint64_t block_checks_ = 0, block_lanes_ = 0;
};

}  // namespace tunespace::solver::detail
