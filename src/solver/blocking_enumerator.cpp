#include "tunespace/solver/blocking_enumerator.hpp"

#include <algorithm>

#include "tunespace/util/timer.hpp"

namespace tunespace::solver {

using csp::Constraint;
using csp::Value;

SolveResult BlockingEnumerator::solve(csp::Problem& problem) const {
  SolveResult result;
  const std::size_t n = problem.num_variables();
  result.solutions = SolutionSet(problem);
  util::WallTimer timer;
  if (n == 0) return result;
  for (const auto& d : problem.domains()) {
    if (d.empty()) return result;
  }

  // Constraint dispatch: full check when the last scope variable (in
  // declaration order, which is the search order here) is assigned.
  std::vector<std::vector<const Constraint*>> full_at(n);
  bool unsatisfiable_constant = false;
  for (const auto& c : problem.constraints()) {
    if (c->indices().empty()) {
      Value dummy;
      if (!c->satisfied(&dummy)) unsatisfiable_constant = true;
      continue;
    }
    std::uint32_t last = 0;
    for (std::uint32_t idx : c->indices()) last = std::max(last, idx);
    full_at[last].push_back(c.get());
  }
  if (unsatisfiable_constant) return result;

  std::vector<Value> values(n);
  std::vector<std::uint32_t> idx(n, 0);
  std::vector<std::vector<std::uint32_t>> blocking_clauses;

  std::uint64_t nodes = 0, checks = 0, clause_checks = 0;
  std::size_t p = 0;
  while (true) {
    const csp::Domain& dom = problem.domain(p);
    bool descended = false;
    while (idx[p] < dom.size()) {
      values[p] = dom[idx[p]];
      ++nodes;
      bool ok = true;
      for (const Constraint* c : full_at[p]) {
        ++checks;
        if (!c->satisfied(values.data())) {
          ok = false;
          break;
        }
      }
      if (!ok) {
        ++idx[p];
        continue;
      }
      if (p + 1 == n) {
        // Candidate model found: an SMT enumerator must verify it against
        // every blocking clause accumulated so far before reporting it.
        std::vector<std::uint32_t> model(idx);
        bool blocked = false;
        for (const auto& clause : blocking_clauses) {
          ++clause_checks;
          if (std::equal(clause.begin(), clause.end(), model.begin())) {
            blocked = true;  // unreachable in a non-revisiting sweep
            break;
          }
        }
        if (!blocked) {
          result.solutions.append(model.data());
          blocking_clauses.push_back(std::move(model));
        }
        ++idx[p];
        continue;
      }
      ++p;
      idx[p] = 0;
      descended = true;
      break;
    }
    if (descended) continue;
    if (p == 0) break;
    idx[p] = 0;
    --p;
    ++idx[p];
  }

  result.stats.nodes = nodes;
  result.stats.constraint_checks = checks + clause_checks;
  result.stats.search_seconds = timer.seconds();
  return result;
}

}  // namespace tunespace::solver
