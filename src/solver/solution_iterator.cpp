#include "tunespace/solver/solution_iterator.hpp"

#include "backtracking_core.hpp"

namespace tunespace::solver {

struct SolutionIterator::Impl {
  detail::SearchPlan plan;
  std::unique_ptr<detail::BacktrackingEngine> engine;
  SolveStats stats;  // preprocessing effort (unused further, kept for symmetry)
};

SolutionIterator::SolutionIterator(csp::Problem& problem, OptimizedOptions options)
    : impl_(std::make_unique<Impl>()), problem_(&problem) {
  impl_->plan = detail::build_plan(problem, options, impl_->stats);
  const std::size_t first =
      impl_->plan.order.empty()
          ? 0
          : impl_->plan.domains[impl_->plan.order[0]].size();
  impl_->engine =
      std::make_unique<detail::BacktrackingEngine>(impl_->plan, 0, first);
}

SolutionIterator::~SolutionIterator() = default;
SolutionIterator::SolutionIterator(SolutionIterator&&) noexcept = default;
SolutionIterator& SolutionIterator::operator=(SolutionIterator&&) noexcept = default;

std::optional<std::vector<std::uint32_t>> SolutionIterator::next() {
  if (!impl_->engine->next()) return std::nullopt;
  ++count_;
  return impl_->engine->row();
}

std::optional<csp::Config> SolutionIterator::next_config() {
  auto row = next();
  if (!row) return std::nullopt;
  csp::Config config;
  config.reserve(row->size());
  for (std::size_t v = 0; v < row->size(); ++v) {
    config.push_back(problem_->domain(v)[(*row)[v]]);
  }
  return config;
}

}  // namespace tunespace::solver
