#include "tunespace/solver/solver.hpp"

#include <algorithm>

namespace tunespace::solver {

SolutionSet::SolutionSet(const csp::Problem& problem) {
  columns_.reserve(problem.num_variables());
  for (std::size_t v = 0; v < problem.num_variables(); ++v) {
    columns_.emplace_back(PackedColumn::bits_for_domain(problem.domain(v).size()));
  }
}

std::size_t SolutionSet::memory_bytes() const {
  std::size_t total = 0;
  for (const auto& c : columns_) total += c.memory_bytes();
  return total;
}

csp::Config SolutionSet::config(std::size_t row, const csp::Problem& problem) const {
  csp::Config out;
  out.reserve(columns_.size());
  for (std::size_t v = 0; v < columns_.size(); ++v) {
    out.push_back(problem.domain(v)[columns_[v].get(row)]);
  }
  return out;
}

std::vector<std::uint32_t> SolutionSet::index_row(std::size_t row) const {
  std::vector<std::uint32_t> out(columns_.size());
  for (std::size_t v = 0; v < columns_.size(); ++v) out[v] = columns_[v].get(row);
  return out;
}

std::vector<std::vector<std::uint32_t>> SolutionSet::sorted_rows() const {
  std::vector<std::vector<std::uint32_t>> rows;
  rows.reserve(size());
  for (std::size_t r = 0; r < size(); ++r) rows.push_back(index_row(r));
  std::sort(rows.begin(), rows.end());
  return rows;
}

bool SolutionSet::same_solutions(const SolutionSet& other) const {
  if (num_vars() != other.num_vars() || size() != other.size()) return false;
  return sorted_rows() == other.sorted_rows();
}

}  // namespace tunespace::solver
