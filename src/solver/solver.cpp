#include "tunespace/solver/solver.hpp"

#include <algorithm>

namespace tunespace::solver {

csp::Config SolutionSet::config(std::size_t row, const csp::Problem& problem) const {
  csp::Config out;
  out.reserve(columns_.size());
  for (std::size_t v = 0; v < columns_.size(); ++v) {
    out.push_back(problem.domain(v)[columns_[v][row]]);
  }
  return out;
}

std::vector<std::uint32_t> SolutionSet::index_row(std::size_t row) const {
  std::vector<std::uint32_t> out(columns_.size());
  for (std::size_t v = 0; v < columns_.size(); ++v) out[v] = columns_[v][row];
  return out;
}

std::vector<std::vector<std::uint32_t>> SolutionSet::sorted_rows() const {
  std::vector<std::vector<std::uint32_t>> rows;
  rows.reserve(size());
  for (std::size_t r = 0; r < size(); ++r) rows.push_back(index_row(r));
  std::sort(rows.begin(), rows.end());
  return rows;
}

bool SolutionSet::same_solutions(const SolutionSet& other) const {
  if (num_vars() != other.num_vars() || size() != other.size()) return false;
  return sorted_rows() == other.sorted_rows();
}

}  // namespace tunespace::solver
