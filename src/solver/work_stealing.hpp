#pragma once
// Work-stealing task scheduler shared by the parallel solvers (internal, not
// installed; used by ParallelBacktracking and the parallel ChainOfTrees).
//
// The unit of distribution is an index into an externally-owned, rank-ordered
// task array.  Each worker owns a deque seeded with one contiguous block of
// task indices:
//
//   * the owner pops single tasks from the BOTTOM of its deque, so a worker
//     drains its block in ascending rank order — cache-friendly and nearly
//     sequential;
//   * an idle worker steals from the TOP of a victim's deque, and a steal
//     takes only the back half of the victim's oldest range, leaving the
//     front half in place — skewed subtrees therefore keep splitting
//     adaptively instead of serializing the tail.
//
// The deque stores ranges and is mutex-guarded behind the classic Chase–Lev
// owner/thief interface (push_bottom / pop_bottom / steal_top).  Because the
// granularity is a whole solver subtree, lock traffic is a few operations per
// task; the mutex is effectively uncontended and keeps the structure
// trivially TSan-clean.  A lock-free Chase–Lev circular array can be dropped
// in behind the same interface if task granularity ever shrinks.
//
// Determinism note: the scheduler never orders *results* — callers tag every
// produced segment with its task rank and merge by rank afterwards, so the
// output is byte-identical no matter which worker ran which task.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "tunespace/solver/solver.hpp"

namespace tunespace::solver::detail {

/// Half-open range of task indices [lo, hi).
struct TaskRange {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  std::uint32_t size() const { return hi - lo; }
};

/// Mutex-guarded deque of disjoint task ranges with Chase–Lev semantics.
class WorkStealingDeque {
 public:
  /// Owner side: push a range onto the bottom (newest end).
  void push_bottom(TaskRange r);
  /// Owner side: remove the newest range.
  bool pop_bottom(TaskRange& out);
  /// Thief side: split the oldest range, taking its back half (the whole
  /// range when it holds a single task).
  bool steal_top(TaskRange& out);

 private:
  std::mutex mutex_;
  std::vector<TaskRange> ranges_;  // front = top (steal end), back = bottom
};

/// Runs `num_tasks` tasks over up to `num_workers` threads with work
/// stealing.  `fn(worker, task)` is invoked exactly once per task index in
/// [0, num_tasks); each worker's initially-assigned block is executed in
/// ascending index order.  run() returns after all tasks completed and all
/// spawned threads joined, so every write made by `fn` is visible.
class WorkStealingScheduler {
 public:
  WorkStealingScheduler(std::size_t num_tasks, std::size_t num_workers,
                        StealPolicy policy);

  /// Worker count actually used (capped at the task count, at least 1).
  std::size_t workers() const { return workers_; }

  void run(const std::function<void(std::size_t, std::uint32_t)>& fn);

 private:
  std::size_t tasks_;
  std::size_t workers_;
  StealPolicy policy_;
};

}  // namespace tunespace::solver::detail
