#include "tunespace/spaces/realworld.hpp"

namespace tunespace::spaces {

using tuner::TuningProblem;

namespace {

std::vector<std::int64_t> iota_values(std::int64_t lo, std::int64_t hi) {
  std::vector<std::int64_t> v;
  for (std::int64_t x = lo; x <= hi; ++x) v.push_back(x);
  return v;
}

std::vector<std::int64_t> pow2_values(std::int64_t lo, std::int64_t hi) {
  std::vector<std::int64_t> v;
  for (std::int64_t x = lo; x <= hi; x *= 2) v.push_back(x);
  return v;
}

}  // namespace

RealWorldSpace dedispersion() {
  TuningProblem spec("Dedispersion");
  // 29 x-dim values, Listing-3 style: small powers then multiples of 32.
  std::vector<std::int64_t> bsx = {1, 2, 4, 8, 16};
  for (std::int64_t i = 1; i <= 24; ++i) bsx.push_back(32 * i);
  spec.add_param("block_size_x", bsx)
      .add_param("block_size_y", {4, 8, 16})
      .add_param("tile_size_x", {1, 2, 4, 8})
      .add_param("tile_size_y", {1, 2, 4, 8})
      .add_param("loop_unroll", {1, 2, 4, 8})
      .add_param("blocks_per_sm", {1, 2, 3, 4})
      .add_param("precision", std::vector<csp::Value>{csp::Value("float")})
      .add_param("use_texture_mem", {0});
  spec.add_constraint("16 <= block_size_x * block_size_y <= 3072")
      .add_constraint("tile_size_x * tile_size_y <= 48")
      .add_constraint("loop_unroll <= tile_size_x * tile_size_y");
  return {"Dedispersion", std::move(spec), {22272, 11130, 8, 3, 49.973}};
}

RealWorldSpace expdist() {
  TuningProblem spec("ExpDist");
  spec.add_param("block_size_x", pow2_values(1, 1024))  // 11 values
      .add_param("block_size_y", iota_values(1, 8))
      .add_param("tile_size_x", iota_values(1, 8))
      .add_param("tile_size_y", iota_values(1, 8))
      .add_param("loop_unroll_x", iota_values(1, 8))
      .add_param("reduce_block_size", pow2_values(32, 1024))  // 6 values
      .add_param("num_blocks", {1, 2, 4, 8, 16, 32})
      .add_param("loop_unroll_y", iota_values(1, 6))
      .add_param("precision", std::vector<csp::Value>{csp::Value("double")})
      .add_param("use_shared_mem", {1});
  spec.add_constraint("32 <= block_size_x * block_size_y <= 1024")
      .add_constraint("tile_size_x * tile_size_y <= 12")
      .add_constraint("tile_size_x % loop_unroll_x == 0")
      .add_constraint(
          "block_size_x * block_size_y * tile_size_x * tile_size_y * 8 <= 16384");
  return {"ExpDist", std::move(spec), {9732096, 294000, 10, 4, 3.021}};
}

RealWorldSpace hotspot() {
  TuningProblem spec("Hotspot");
  // 37 x-dim values: every width up to 32, then powers of two to 1024.
  std::vector<std::int64_t> bsx = iota_values(1, 32);
  for (std::int64_t x : {64, 128, 256, 512, 1024}) bsx.push_back(x);
  spec.add_param("block_size_x", bsx)
      .add_param("block_size_y", {1, 2, 4, 8, 16})
      .add_param("tile_size_x", iota_values(1, 5))
      .add_param("tile_size_y", iota_values(1, 5))
      .add_param("temporal_tiling_factor", iota_values(1, 5))
      .add_param("loop_unroll_factor_t", iota_values(1, 5))
      .add_param("blocks_per_sm", {1, 2, 3, 4, 5, 6, 7, 8})
      .add_param("loop_unroll_factor_x", {1, 2, 4, 8})
      .add_param("shared_padding", {0, 1, 2})
      .add_param("sh_power", {0, 1})
      .add_param("use_double_buffer", {0});
  spec.add_constraint("32 <= block_size_x * block_size_y <= 1024")
      .add_constraint("temporal_tiling_factor % loop_unroll_factor_t == 0")
      .add_constraint(
          "(block_size_x * tile_size_x + 2 * temporal_tiling_factor)"
          " * (block_size_y * tile_size_y + 2 * temporal_tiling_factor)"
          " * (2 + 2 * sh_power + use_double_buffer) * 4 <= 6144")
      .add_constraint("tile_size_x * tile_size_y % loop_unroll_factor_x == 0")
      .add_constraint("block_size_x * tile_size_x <= 256");
  return {"Hotspot", std::move(spec), {22200000, 349853, 11, 5, 1.576}};
}

RealWorldSpace gemm() {
  TuningProblem spec("GEMM");
  spec.add_param("MWG", {16, 32, 64, 128})
      .add_param("NWG", {16, 32, 64, 128})
      .add_param("KWG", {16, 32, 64, 128})
      .add_param("VWM", {1, 2, 4, 8})
      .add_param("VWN", {1, 2, 4, 8})
      .add_param("KREG", {1, 2, 4, 8})
      .add_param("MDIMC", {8, 16, 32})
      .add_param("NDIMC", {8, 16, 32})
      .add_param("MDIMA", {8, 16, 32})
      .add_param("NDIMB", {8, 16, 32})
      .add_param("KWI", {2, 8})
      .add_param("STRM", {0})
      .add_param("STRN", {0})
      .add_param("SA", {1})
      .add_param("SB", {1})
      .add_param("PRECISION", {32})
      .add_param("GEMMK", {0});
  spec.add_constraint("KWG % KWI == 0")
      .add_constraint("MWG % (MDIMC * VWM) == 0")
      .add_constraint("NWG % (NDIMC * VWN) == 0")
      .add_constraint("MWG % (MDIMA * VWM) == 0")
      .add_constraint("NWG % (NDIMB * VWN) == 0")
      .add_constraint("KREG <= VWM * VWN")
      .add_constraint("MDIMC * NDIMC <= 1024")
      .add_constraint("(KWG * MWG + KWG * NWG) * 4 <= 98304");
  return {"GEMM", std::move(spec), {663552, 116928, 17, 8, 17.622}};
}

RealWorldSpace microhh() {
  TuningProblem spec("MicroHH");
  spec.add_param("block_size_x", pow2_values(1, 512))   // 10 values
      .add_param("block_size_y", pow2_values(1, 256))   // 9 values
      .add_param("block_size_z", pow2_values(1, 128))   // 8 values
      .add_param("tile_factor_x", iota_values(1, 6))
      .add_param("tile_factor_y", iota_values(1, 6))
      .add_param("tile_factor_z", iota_values(1, 5))
      .add_param("loop_unroll_x", {1, 2, 4})
      .add_param("loop_unroll_y", {1, 2, 4})
      .add_param("use_smem", {0})
      .add_param("swap_strides", {0})
      .add_param("precision", std::vector<csp::Value>{csp::Value("double")})
      .add_param("blocks_per_sm", {1})
      .add_param("use_const_mem", {1});
  spec.add_constraint("32 <= block_size_x * block_size_y * block_size_z")
      .add_constraint("block_size_x * block_size_y * block_size_z <= 1024")
      .add_constraint("tile_factor_x % loop_unroll_x == 0")
      .add_constraint("tile_factor_y % loop_unroll_y == 0")
      .add_constraint("block_size_x * tile_factor_x <= 2048")
      .add_constraint("block_size_y * tile_factor_y <= 1024")
      .add_constraint("block_size_z * tile_factor_z <= 256")
      .add_constraint("tile_factor_x * tile_factor_y * tile_factor_z <= 144");
  return {"MicroHH", std::move(spec), {1166400, 138600, 13, 8, 11.883}};
}

RealWorldSpace atf_prl(int input_size) {
  TuningProblem spec("ATF PRL " + std::to_string(input_size) + "x" +
                     std::to_string(input_size));
  // Per-dimension (rows r / columns c) cache-blocking hierarchy; domain
  // shapes depend on the input size as in the ATF evaluation.
  const bool n2 = input_size == 2, n4 = input_size == 4;
  auto sizes = [&](const char*) -> std::vector<std::int64_t> {
    if (n2) return {1, 2};
    if (n4) return {1, 2, 4, 8};
    return {1, 2, 4, 8, 16, 32, 64, 128};
  };
  for (const std::string d : {"r", "c"}) {
    spec.add_param("wg_" + d, sizes("wg"));   // work-groups
    spec.add_param("wi_" + d, sizes("wi"));   // work-items
    spec.add_param("t1_" + d, sizes("t1"));   // level-1 tile
    spec.add_param("t2_" + d, sizes("t2"));   // level-2 tile
  }
  // Cache blocks: for 8x8 the column cache block is restricted to {1,2}
  // (the asymmetric domain reported for that instance).
  spec.add_param("cb_r", sizes("cb"));
  spec.add_param("cb_c", input_size == 8 ? std::vector<std::int64_t>{1, 2}
                                         : sizes("cb"));
  spec.add_param("layout_r", {0, 1, 2});
  spec.add_param("layout_c", {0, 1, 2});
  // Swap flags are tunable only for the 2x2 instance (binary), fixed
  // otherwise — this yields the twelve 2-valued parameters of that row.
  if (n2) {
    spec.add_param("swap_r", {0, 1});
    spec.add_param("swap_c", {0, 1});
  } else {
    spec.add_param("swap_r", {0});
    spec.add_param("swap_c", {0});
  }
  spec.add_param("use_local", {1})
      .add_param("unroll_outer", {1})
      .add_param("unroll_inner", {1})
      .add_param("vector_width", {1})
      .add_param("batch", {1})
      .add_param("format", std::vector<csp::Value>{csp::Value("csv")});

  const std::int64_t wg_wi_cap = n2 ? 4 : (n4 ? 16 : 64);
  for (const std::string d : {"r", "c"}) {
    spec.add_constraint("wg_" + d + " % wi_" + d + " == 0");
    spec.add_constraint("wi_" + d + " % t1_" + d + " == 0");
    spec.add_constraint("t1_" + d + " % t2_" + d + " == 0");
    spec.add_constraint("cb_" + d + " % t1_" + d + " == 0");
    spec.add_constraint("wg_" + d + " * wi_" + d + " <= " +
                        std::to_string(wg_wi_cap));
    spec.add_constraint("cb_" + d + " <= wg_" + d + " * t1_" + d);
    spec.add_constraint("layout_" + d + " == 0 or t1_" + d + " == t2_" + d);
  }

  Table2Row paper;
  paper.num_params = 20;
  paper.num_constraints = 14;
  if (n2) {
    paper = {36864, 1200, 20, 14, 3.255};
  } else if (n4) {
    paper = {9437184, 10800, 20, 14, 0.114};
  } else {
    paper = {2415919104ULL, 48720, 20, 14, 0.002};
  }
  return {spec.name(), std::move(spec), paper};
}

std::vector<RealWorldSpace> all_realworld() {
  std::vector<RealWorldSpace> out;
  out.push_back(dedispersion());
  out.push_back(expdist());
  out.push_back(hotspot());
  out.push_back(gemm());
  out.push_back(microhh());
  out.push_back(atf_prl(2));
  out.push_back(atf_prl(4));
  out.push_back(atf_prl(8));
  return out;
}

}  // namespace tunespace::spaces
