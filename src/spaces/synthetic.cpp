#include "tunespace/spaces/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "tunespace/solver/optimized_backtracking.hpp"
#include "tunespace/tuner/pipeline.hpp"
#include "tunespace/util/rng.hpp"

namespace tunespace::spaces {

using tuner::TuningProblem;

std::vector<std::uint64_t> synthetic_size_targets() {
  return {10000, 20000, 50000, 100000, 200000, 500000, 1000000};
}

namespace {

/// Threshold for "lhs <= theta"-style constraints: an empirical quantile of
/// the template's metric over sampled assignments, so each constraint keeps
/// a controlled fraction of the space.
std::int64_t sampled_quantile(util::Rng& rng, double keep_fraction,
                              const std::vector<std::int64_t>& dim_sizes,
                              const std::vector<std::size_t>& vars,
                              std::int64_t (*metric)(const std::vector<std::int64_t>&)) {
  constexpr int kSamples = 512;
  std::vector<std::int64_t> samples(kSamples);
  std::vector<std::int64_t> point(vars.size());
  for (int s = 0; s < kSamples; ++s) {
    for (std::size_t i = 0; i < vars.size(); ++i) {
      point[i] = rng.uniform_int(1, dim_sizes[vars[i]]);
    }
    samples[s] = metric(point);
  }
  std::sort(samples.begin(), samples.end());
  const std::size_t idx = std::min<std::size_t>(
      kSamples - 1, static_cast<std::size_t>(keep_fraction * kSamples));
  return samples[idx];
}

std::int64_t metric_product(const std::vector<std::int64_t>& p) {
  std::int64_t r = 1;
  for (std::int64_t x : p) r *= x;
  return r;
}

std::int64_t metric_sum(const std::vector<std::int64_t>& p) {
  std::int64_t r = 0;
  for (std::int64_t x : p) r += x;
  return r;
}

}  // namespace

namespace {

/// Single generation attempt; see make_synthetic for the retry wrapper.
SyntheticSpace make_synthetic_attempt(std::size_t dims,
                                      std::uint64_t target_cartesian,
                                      std::size_t num_constraints,
                                      std::uint64_t seed) {
  SyntheticSpace space;
  space.dims = dims;
  space.target_cartesian = target_cartesian;
  space.num_constraints = num_constraints;
  space.name = "synthetic_d" + std::to_string(dims) + "_s" +
               std::to_string(target_cartesian) + "_c" + std::to_string(num_constraints);

  util::Rng rng(seed ^ (dims * 0x9E3779B97F4A7C15ULL) ^
                (target_cartesian * 0xC2B2AE3D27D4EB4FULL) ^
                (num_constraints * 0x165667B19E3779F9ULL));

  // Approximately-uniform values per dimension: v = s^(1/d); the last
  // dimension compensates rounding to land closest to the target size.
  const double v = std::pow(static_cast<double>(target_cartesian),
                            1.0 / static_cast<double>(dims));
  std::vector<std::int64_t> dim_sizes(dims);
  double realized = 1.0;
  for (std::size_t i = 0; i + 1 < dims; ++i) {
    dim_sizes[i] = std::max<std::int64_t>(2, std::llround(v));
    realized *= static_cast<double>(dim_sizes[i]);
  }
  dim_sizes[dims - 1] = std::max<std::int64_t>(
      2, std::llround(static_cast<double>(target_cartesian) / realized));

  TuningProblem spec(space.name);
  for (std::size_t i = 0; i < dims; ++i) {
    std::vector<std::int64_t> values;
    for (std::int64_t x = 1; x <= dim_sizes[i]; ++x) values.push_back(x);
    spec.add_param("p" + std::to_string(i), std::move(values));
  }

  // Constraint templates over randomly chosen dimension subsets.  Thresholds
  // keep 35-70% each so that stacking several yields the Fig. 2 sparsity
  // profile (valid count averaging one order of magnitude below the
  // Cartesian size, with wide variation).
  for (std::size_t c = 0; c < num_constraints; ++c) {
    const int tmpl = static_cast<int>(rng.index(6));
    const double keep = rng.uniform(0.35, 0.7);
    auto pick_vars = [&](std::size_t k) {
      k = std::min(k, dims);
      return rng.sample_indices(dims, k);
    };
    auto pname = [&](std::size_t i) { return "p" + std::to_string(i); };
    switch (tmpl) {
      case 0: {  // product upper bound
        auto vars = pick_vars(2);
        const auto theta = sampled_quantile(rng, keep, dim_sizes, vars, metric_product);
        spec.add_constraint(pname(vars[0]) + " * " + pname(vars[1]) +
                            " <= " + std::to_string(theta));
        break;
      }
      case 1: {  // product lower bound
        auto vars = pick_vars(2);
        const auto theta =
            sampled_quantile(rng, 1.0 - keep, dim_sizes, vars, metric_product);
        spec.add_constraint(pname(vars[0]) + " * " + pname(vars[1]) +
                            " >= " + std::to_string(theta));
        break;
      }
      case 2: {  // sum upper bound
        auto vars = pick_vars(2);
        const auto theta = sampled_quantile(rng, keep, dim_sizes, vars, metric_sum);
        spec.add_constraint(pname(vars[0]) + " + " + pname(vars[1]) +
                            " <= " + std::to_string(theta));
        break;
      }
      case 3: {  // ordering between two dimensions
        auto vars = pick_vars(2);
        spec.add_constraint(pname(vars[0]) + " <= " + pname(vars[1]));
        break;
      }
      case 4: {  // chained two-sided product bound (exercises decomposition)
        auto vars = pick_vars(2);
        const auto lo =
            sampled_quantile(rng, (1.0 - keep) / 2.0, dim_sizes, vars, metric_product);
        const auto hi = sampled_quantile(rng, 0.5 + keep / 2.0, dim_sizes, vars,
                                         metric_product);
        spec.add_constraint(std::to_string(lo) + " <= " + pname(vars[0]) + " * " +
                            pname(vars[1]) + " <= " + std::to_string(std::max(lo, hi)));
        break;
      }
      default: {  // ternary mixed expression (generic function constraint)
        auto vars = pick_vars(3);
        if (vars.size() < 3) {
          auto theta = sampled_quantile(rng, keep, dim_sizes, vars, metric_sum);
          spec.add_constraint(pname(vars[0]) + " + " + pname(vars[1]) +
                              " <= " + std::to_string(theta));
        } else {
          std::vector<std::size_t> two{vars[0], vars[1]};
          const auto theta =
              sampled_quantile(rng, keep, dim_sizes, two, metric_product);
          spec.add_constraint(pname(vars[0]) + " * " + pname(vars[1]) + " + " +
                              pname(vars[2]) + " <= " +
                              std::to_string(theta + dim_sizes[vars[2]] / 2));
        }
        break;
      }
    }
  }

  space.spec = std::move(spec);
  return space;
}

}  // namespace

SyntheticSpace make_synthetic(std::size_t dims, std::uint64_t target_cartesian,
                              std::size_t num_constraints, std::uint64_t seed) {
  // Randomly stacked constraints can occasionally contradict (e.g. a product
  // lower bound above an upper bound); the evaluation suite requires
  // non-empty spaces, so retry with a derived seed until one solution
  // exists.  Deterministic: the retry chain depends only on the inputs.
  for (std::uint64_t attempt = 0;; ++attempt) {
    SyntheticSpace space = make_synthetic_attempt(
        dims, target_cartesian, num_constraints,
        seed + attempt * 0x9E3779B97F4A7C15ULL);
    if (attempt >= 32) return space;  // give up; callers see the empty space
    auto problem =
        tuner::build_problem(space.spec, tuner::PipelineOptions::optimized());
    solver::OptimizedBacktracking probe;
    if (!probe.solve(problem).solutions.empty()) return space;
  }
}

std::vector<SyntheticSpace> synthetic_suite(const SyntheticOptions& options) {
  // 28 (dims, size) pairs x up to 3 constraint-count variants = 78 spaces.
  std::vector<SyntheticSpace> out;
  const auto targets = synthetic_size_targets();
  std::size_t pair_index = 0;
  for (std::size_t dims = 2; dims <= 5; ++dims) {
    for (std::uint64_t target : targets) {
      const std::uint64_t scaled = std::max<std::uint64_t>(
          16, static_cast<std::uint64_t>(static_cast<double>(target) *
                                         options.size_scale));
      const std::size_t c1 = 1 + (pair_index * 2) % 6;
      const std::size_t c2 = 1 + (pair_index * 2 + 3) % 6;
      out.push_back(make_synthetic(dims, scaled, c1, options.seed));
      out.push_back(make_synthetic(dims, scaled, c2, options.seed + 1));
      if (pair_index < 22) {  // 28 + 28 + 22 = 78 spaces total
        const std::size_t c3 = 1 + (pair_index + 5) % 6;
        out.push_back(make_synthetic(dims, scaled, c3, options.seed + 2));
      }
      ++pair_index;
    }
  }
  return out;
}

}  // namespace tunespace::spaces
