#include "tunespace/expr/parser.hpp"

namespace tunespace::expr {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  AstPtr parse_full() {
    AstPtr e = parse_expr();
    expect(TokKind::End, "end of expression");
    return e;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  const Token& peek(std::size_t ahead = 1) const {
    const std::size_t i = pos_ + ahead;
    return toks_[i < toks_.size() ? i : toks_.size() - 1];
  }
  bool at(TokKind k) const { return cur().kind == k; }
  Token take() { return toks_[pos_++]; }
  void expect(TokKind k, const char* what) {
    if (!at(k)) throw SyntaxError(std::string("expected ") + what, cur().offset);
    ++pos_;
  }

  // Conditional expressions bind loosest, as in Python:
  //   expr := or_expr ['if' or_expr 'else' expr]      (right-associative)
  AstPtr parse_expr() {
    AstPtr value = parse_or();
    if (!at(TokKind::KwIf)) return value;
    take();
    AstPtr cond = parse_or();
    expect(TokKind::KwElse, "'else' in conditional expression");
    AstPtr otherwise = parse_expr();
    return make_if_else(std::move(value), std::move(cond), std::move(otherwise));
  }

  AstPtr parse_or() {
    AstPtr lhs = parse_and();
    if (!at(TokKind::KwOr)) return lhs;
    std::vector<AstPtr> operands{std::move(lhs)};
    while (at(TokKind::KwOr)) {
      take();
      operands.push_back(parse_and());
    }
    return make_bool_op(/*is_and=*/false, std::move(operands));
  }

  AstPtr parse_and() {
    AstPtr lhs = parse_not();
    if (!at(TokKind::KwAnd)) return lhs;
    std::vector<AstPtr> operands{std::move(lhs)};
    while (at(TokKind::KwAnd)) {
      take();
      operands.push_back(parse_not());
    }
    return make_bool_op(/*is_and=*/true, std::move(operands));
  }

  AstPtr parse_not() {
    if (at(TokKind::KwNot)) {
      take();
      return make_unary(UnOp::Not, parse_not());
    }
    return parse_comparison();
  }

  bool at_cmp_op() const {
    switch (cur().kind) {
      case TokKind::Lt:
      case TokKind::Le:
      case TokKind::Gt:
      case TokKind::Ge:
      case TokKind::EqEq:
      case TokKind::NotEq:
      case TokKind::KwIn:
        return true;
      case TokKind::KwNot:
        return peek().kind == TokKind::KwIn;
      default:
        return false;
    }
  }

  CompareOp take_cmp_op() {
    const Token t = take();
    switch (t.kind) {
      case TokKind::Lt: return CompareOp::Lt;
      case TokKind::Le: return CompareOp::Le;
      case TokKind::Gt: return CompareOp::Gt;
      case TokKind::Ge: return CompareOp::Ge;
      case TokKind::EqEq: return CompareOp::Eq;
      case TokKind::NotEq: return CompareOp::Ne;
      case TokKind::KwIn: return CompareOp::In;
      case TokKind::KwNot:
        expect(TokKind::KwIn, "'in' after 'not'");
        return CompareOp::NotIn;
      default:
        throw SyntaxError("expected comparison operator", t.offset);
    }
  }

  AstPtr parse_comparison() {
    AstPtr first = parse_arith();
    if (!at_cmp_op()) return first;
    std::vector<AstPtr> operands{std::move(first)};
    std::vector<CompareOp> ops;
    while (at_cmp_op()) {
      ops.push_back(take_cmp_op());
      operands.push_back(parse_arith());
    }
    return make_compare(std::move(operands), std::move(ops));
  }

  AstPtr parse_arith() {
    AstPtr lhs = parse_term();
    for (;;) {
      if (at(TokKind::Plus)) {
        take();
        lhs = make_binary(BinOp::Add, std::move(lhs), parse_term());
      } else if (at(TokKind::Minus)) {
        take();
        lhs = make_binary(BinOp::Sub, std::move(lhs), parse_term());
      } else {
        return lhs;
      }
    }
  }

  AstPtr parse_term() {
    AstPtr lhs = parse_factor();
    for (;;) {
      BinOp op;
      if (at(TokKind::Star)) op = BinOp::Mul;
      else if (at(TokKind::Slash)) op = BinOp::TrueDiv;
      else if (at(TokKind::DoubleSlash)) op = BinOp::FloorDiv;
      else if (at(TokKind::Percent)) op = BinOp::Mod;
      else return lhs;
      take();
      lhs = make_binary(op, std::move(lhs), parse_factor());
    }
  }

  AstPtr parse_factor() {
    if (at(TokKind::Minus)) {
      take();
      return make_unary(UnOp::Neg, parse_factor());
    }
    if (at(TokKind::Plus)) {
      take();
      return make_unary(UnOp::Pos, parse_factor());
    }
    return parse_power();
  }

  AstPtr parse_power() {
    AstPtr base = parse_atom();
    if (at(TokKind::DoubleStar)) {
      take();
      // Right-associative; exponent may carry a unary sign (2 ** -1).
      return make_binary(BinOp::Pow, std::move(base), parse_factor());
    }
    return base;
  }

  AstPtr parse_atom() {
    const Token& t = cur();
    switch (t.kind) {
      case TokKind::Number:
      case TokKind::Str:
      case TokKind::KwTrue:
      case TokKind::KwFalse: {
        Token tok = take();
        return make_literal(std::move(tok.value));
      }
      case TokKind::Ident: {
        Token tok = take();
        if (at(TokKind::LParen)) {
          take();
          std::vector<AstPtr> args;
          if (!at(TokKind::RParen)) {
            args.push_back(parse_expr());
            while (at(TokKind::Comma)) {
              take();
              if (at(TokKind::RParen)) break;  // trailing comma
              args.push_back(parse_expr());
            }
          }
          expect(TokKind::RParen, "')'");
          return make_call(std::move(tok.text), std::move(args));
        }
        if (at(TokKind::LBracket)) {
          // Kernel Tuner lambda style: p["block_size_x"] is the parameter
          // named by the string literal.
          take();
          if (!at(TokKind::Str)) {
            throw SyntaxError("subscript must be a string literal", cur().offset);
          }
          Token key = take();
          expect(TokKind::RBracket, "']'");
          return make_var(std::move(key.text));
        }
        return make_var(std::move(tok.text));
      }
      case TokKind::LParen:
      case TokKind::LBracket: {
        const TokKind open = t.kind;
        const TokKind close =
            open == TokKind::LParen ? TokKind::RParen : TokKind::RBracket;
        take();
        if (at(close)) {
          // Empty tuple/list.
          take();
          return make_tuple({});
        }
        std::vector<AstPtr> items;
        items.push_back(parse_expr());
        bool is_tuple = open == TokKind::LBracket;  // lists are always sequences
        while (at(TokKind::Comma)) {
          is_tuple = true;
          take();
          if (at(close)) break;  // trailing comma
          items.push_back(parse_expr());
        }
        expect(close, open == TokKind::LParen ? "')'" : "']'");
        if (!is_tuple) return items[0];  // plain parenthesized group
        return make_tuple(std::move(items));
      }
      default:
        throw SyntaxError("expected expression", t.offset);
    }
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

AstPtr parse(const std::string& source) {
  return Parser(tokenize(source)).parse_full();
}

}  // namespace tunespace::expr
