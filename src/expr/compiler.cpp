#include "tunespace/expr/compiler.hpp"

#include <unordered_map>

#include "tunespace/expr/interpreter.hpp"

namespace tunespace::expr {

using csp::Value;

namespace {

bool has_variables(const Ast& node) {
  if (node.kind == AstKind::Var) return true;
  for (const auto& c : node.children) {
    if (has_variables(*c)) return true;
  }
  return false;
}

const Env& empty_env() {
  static const Env env = [](const std::string& name) -> Value {
    throw EvalError("unbound variable in constant context: " + name);
  };
  return env;
}

}  // namespace

AstPtr fold_constants(const AstPtr& node) {
  // Fold children first.
  std::vector<AstPtr> folded;
  folded.reserve(node->children.size());
  bool changed = false;
  for (const auto& c : node->children) {
    AstPtr f = fold_constants(c);
    changed |= (f != c);
    folded.push_back(std::move(f));
  }

  auto rebuilt = [&]() -> AstPtr {
    if (!changed) return node;
    auto copy = std::make_shared<Ast>(*node);
    copy->children = folded;
    return copy;
  };

  AstPtr out = rebuilt();
  if (out->kind == AstKind::Literal || out->kind == AstKind::Var ||
      out->kind == AstKind::Tuple) {
    return out;
  }
  if (has_variables(*out)) return out;
  // Pure constant subtree: evaluate now; keep unfolded if evaluation raises.
  try {
    return make_literal(eval(*out, empty_env()));
  } catch (const EvalError&) {
    return out;
  }
}

namespace {

class Compiler {
 public:
  Program run(const AstPtr& root) {
    emit_expr(*root);
    emit(Op::Return);
    return Program(std::move(code_), std::move(consts_), std::move(tuples_),
                   std::move(var_names_), static_cast<std::size_t>(max_depth_));
  }

 private:
  void emit(Op op, std::int32_t arg = 0) { code_.push_back(Instr{op, arg}); }

  // Track stack depth conservatively as we emit.
  void push(int n = 1) {
    depth_ += n;
    if (depth_ > max_depth_) max_depth_ = depth_;
  }
  void pop(int n = 1) { depth_ -= n; }

  std::int32_t const_index(const Value& v) {
    consts_.push_back(v);
    return static_cast<std::int32_t>(consts_.size() - 1);
  }

  std::int32_t var_slot(const std::string& name) {
    auto it = slot_.find(name);
    if (it != slot_.end()) return it->second;
    const auto s = static_cast<std::int32_t>(var_names_.size());
    var_names_.push_back(name);
    slot_.emplace(name, s);
    return s;
  }

  std::int32_t tuple_const(const Ast& tuple) {
    std::vector<Value> items;
    items.reserve(tuple.children.size());
    for (const auto& el : tuple.children) {
      if (el->kind != AstKind::Literal) {
        throw CompileError("membership tuple must be constant: " + tuple.to_string());
      }
      items.push_back(el->literal);
    }
    tuples_.push_back(std::move(items));
    return static_cast<std::int32_t>(tuples_.size() - 1);
  }

  void patch(std::size_t at) {
    code_[at].arg = static_cast<std::int32_t>(code_.size());
  }

  void emit_expr(const Ast& node) {
    switch (node.kind) {
      case AstKind::Literal:
        emit(Op::PushConst, const_index(node.literal));
        push();
        return;
      case AstKind::Var:
        emit(Op::LoadVar, var_slot(node.name));
        push();
        return;
      case AstKind::Unary:
        emit_expr(*node.children[0]);
        switch (node.un_op) {
          case UnOp::Neg: emit(Op::Neg); break;
          case UnOp::Not: emit(Op::Not); break;
          case UnOp::Pos: break;  // no-op (type check deferred to runtime ops)
        }
        return;
      case AstKind::Binary: {
        emit_expr(*node.children[0]);
        emit_expr(*node.children[1]);
        switch (node.bin_op) {
          case BinOp::Add: emit(Op::Add); break;
          case BinOp::Sub: emit(Op::Sub); break;
          case BinOp::Mul: emit(Op::Mul); break;
          case BinOp::TrueDiv: emit(Op::TrueDiv); break;
          case BinOp::FloorDiv: emit(Op::FloorDiv); break;
          case BinOp::Mod: emit(Op::Mod); break;
          case BinOp::Pow: emit(Op::Pow); break;
        }
        pop();
        return;
      }
      case AstKind::Compare:
        emit_compare(node);
        return;
      case AstKind::BoolOp:
        emit_bool_op(node);
        return;
      case AstKind::Call:
        emit_call(node);
        return;
      case AstKind::Tuple:
        throw CompileError("tuple outside of membership test: " + node.to_string());
      case AstKind::IfElse: {
        // cond; PopJumpIfFalse else; then; Jump end; else: otherwise; end:
        emit_expr(*node.children[1]);
        const std::size_t jump_else = code_.size();
        emit(Op::PopJumpIfFalse, 0);
        pop();
        emit_expr(*node.children[0]);
        const std::size_t jump_end = code_.size();
        emit(Op::Jump, 0);
        pop();  // only one branch's value is live at `end`
        patch(jump_else);
        emit_expr(*node.children[2]);
        patch(jump_end);
        return;
      }
    }
  }

  void emit_cmp_op(CompareOp op, const Ast& rhs_node) {
    switch (op) {
      case CompareOp::Lt: emit(Op::CmpLt); pop(); return;
      case CompareOp::Le: emit(Op::CmpLe); pop(); return;
      case CompareOp::Gt: emit(Op::CmpGt); pop(); return;
      case CompareOp::Ge: emit(Op::CmpGe); pop(); return;
      case CompareOp::Eq: emit(Op::CmpEq); pop(); return;
      case CompareOp::Ne: emit(Op::CmpNe); pop(); return;
      case CompareOp::In:
      case CompareOp::NotIn:
        // lhs is on the stack; the tuple is an immediate.
        emit(op == CompareOp::In ? Op::InConst : Op::NotInConst,
             tuple_const(rhs_node));
        return;
    }
  }

  void emit_compare(const Ast& node) {
    const std::size_t n_ops = node.cmp_ops.size();
    if (n_ops == 1) {
      const CompareOp op = node.cmp_ops[0];
      emit_expr(*node.children[0]);
      if (op == CompareOp::In || op == CompareOp::NotIn) {
        if (node.children[1]->kind != AstKind::Tuple) {
          throw CompileError("'in' requires a tuple/list literal");
        }
        emit_cmp_op(op, *node.children[1]);
      } else {
        emit_expr(*node.children[1]);
        emit_cmp_op(op, *node.children[1]);
      }
      return;
    }
    // Chained comparison, CPython pattern:
    //   emit a; for each middle operand b: emit b, Dup, Rot3, Cmp,
    //   JumpIfFalseOrPop cleanup; final: emit z, Cmp, Jump end;
    //   cleanup: Rot2, Pop; end:
    std::vector<std::size_t> to_cleanup;
    emit_expr(*node.children[0]);
    for (std::size_t i = 0; i + 1 < n_ops; ++i) {
      const CompareOp op = node.cmp_ops[i];
      if (op == CompareOp::In || op == CompareOp::NotIn) {
        throw CompileError("membership cannot appear mid-chain");
      }
      emit_expr(*node.children[i + 1]);
      emit(Op::Dup);
      push();
      emit(Op::Rot3);
      emit_cmp_op(op, *node.children[i + 1]);
      to_cleanup.push_back(code_.size());
      emit(Op::JumpIfFalseOrPop, 0);
      pop();  // taken-branch keeps one; fallthrough pops the bool
    }
    {
      const CompareOp op = node.cmp_ops[n_ops - 1];
      const Ast& rhs = *node.children[n_ops];
      if (op == CompareOp::In || op == CompareOp::NotIn) {
        if (rhs.kind != AstKind::Tuple) {
          throw CompileError("'in' requires a tuple/list literal");
        }
        emit_cmp_op(op, rhs);
      } else {
        emit_expr(rhs);
        emit_cmp_op(op, rhs);
      }
    }
    const std::size_t jump_end = code_.size();
    emit(Op::Jump, 0);
    // cleanup: the intermediate operand sits under the false result.
    for (std::size_t at : to_cleanup) patch(at);
    emit(Op::Rot2);
    emit(Op::Pop);
    patch(jump_end);
    emit(Op::ToBool);
  }

  void emit_bool_op(const Ast& node) {
    // Short-circuit: for and, JumpIfFalseOrPop to end; for or, JumpIfTrueOrPop.
    std::vector<std::size_t> jumps;
    for (std::size_t i = 0; i < node.children.size(); ++i) {
      emit_expr(*node.children[i]);
      if (i + 1 < node.children.size()) {
        jumps.push_back(code_.size());
        emit(node.is_and ? Op::JumpIfFalseOrPop : Op::JumpIfTrueOrPop, 0);
        pop();  // fallthrough pops; taken branch keeps one (counted by last operand)
      }
    }
    for (std::size_t at : jumps) patch(at);
    emit(Op::ToBool);
  }

  void emit_call(const Ast& node) {
    const std::size_t argc = node.children.size();
    auto emit_args = [&] {
      for (const auto& a : node.children) emit_expr(*a);
    };
    if (node.name == "min" || node.name == "max") {
      if (argc == 0) throw CompileError("min()/max() needs arguments");
      emit_args();
      emit(node.name == "min" ? Op::CallMin : Op::CallMax,
           static_cast<std::int32_t>(argc));
      pop(static_cast<int>(argc) - 1);
      return;
    }
    if (node.name == "abs" || node.name == "int" || node.name == "float") {
      if (argc != 1) throw CompileError(node.name + "() needs one argument");
      emit_args();
      emit(node.name == "abs" ? Op::CallAbs
                              : (node.name == "int" ? Op::CallInt : Op::CallFloat));
      return;
    }
    if (node.name == "pow" || node.name == "gcd") {
      if (argc != 2) throw CompileError(node.name + "() needs two arguments");
      emit_args();
      emit(node.name == "pow" ? Op::CallPow : Op::CallGcd);
      pop();
      return;
    }
    throw CompileError("unknown function: " + node.name);
  }

  std::vector<Instr> code_;
  std::vector<Value> consts_;
  std::vector<std::vector<Value>> tuples_;
  std::vector<std::string> var_names_;
  std::unordered_map<std::string, std::int32_t> slot_;
  int depth_ = 0;
  int max_depth_ = 0;
};

}  // namespace

Program compile(const AstPtr& node) {
  return Compiler{}.run(fold_constants(node));
}

}  // namespace tunespace::expr
