#include "tunespace/expr/bytecode.hpp"

#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "tunespace/expr/interpreter.hpp"

namespace tunespace::expr {

using csp::Value;

Program::Program(std::vector<Instr> code, std::vector<Value> consts,
                 std::vector<std::vector<Value>> tuple_consts,
                 std::vector<std::string> var_names, std::size_t max_stack)
    : code_(std::move(code)),
      consts_(std::move(consts)),
      tuple_consts_(std::move(tuple_consts)),
      var_names_(std::move(var_names)),
      identity_slots_(var_names_.size()),
      max_stack_(max_stack) {
  for (std::size_t i = 0; i < identity_slots_.size(); ++i) {
    identity_slots_[i] = static_cast<std::uint32_t>(i);
  }
}

Value Program::run(const Value* values, const std::uint32_t* slot_map) const {
  // Stack storage sized to the compiler-computed maximum depth: a tiny
  // inline buffer for the common short constraint, a medium one for larger
  // expressions, heap only for pathological depths.  Constructing exactly
  // as many Values as can be touched keeps short-program dispatch cheap.
  if (max_stack_ <= 6) {
    Value stack[6];
    return run_on(stack, values, slot_map);
  }
  if (max_stack_ <= 24) {
    Value stack[24];
    return run_on(stack, values, slot_map);
  }
  std::vector<Value> heap_stack(max_stack_);
  return run_on(heap_stack.data(), values, slot_map);
}

Value Program::run_on(Value* stack, const Value* values,
                      const std::uint32_t* slot_map) const {
  std::size_t sp = 0;  // next free slot

  const Instr* code = code_.data();
  const std::size_t n = code_.size();
  for (std::size_t pc = 0; pc < n; ++pc) {
    const Instr ins = code[pc];
    switch (ins.op) {
      case Op::PushConst:
        stack[sp++] = consts_[static_cast<std::size_t>(ins.arg)];
        break;
      case Op::LoadVar:
        stack[sp++] = values[slot_map[static_cast<std::size_t>(ins.arg)]];
        break;
      case Op::Add:
        stack[sp - 2] = value_add(stack[sp - 2], stack[sp - 1]);
        --sp;
        break;
      case Op::Sub:
        stack[sp - 2] = value_sub(stack[sp - 2], stack[sp - 1]);
        --sp;
        break;
      case Op::Mul:
        stack[sp - 2] = value_mul(stack[sp - 2], stack[sp - 1]);
        --sp;
        break;
      case Op::TrueDiv:
        stack[sp - 2] = value_truediv(stack[sp - 2], stack[sp - 1]);
        --sp;
        break;
      case Op::FloorDiv:
        stack[sp - 2] = value_floordiv(stack[sp - 2], stack[sp - 1]);
        --sp;
        break;
      case Op::Mod:
        stack[sp - 2] = value_mod(stack[sp - 2], stack[sp - 1]);
        --sp;
        break;
      case Op::Pow:
        stack[sp - 2] = value_pow(stack[sp - 2], stack[sp - 1]);
        --sp;
        break;
      case Op::Neg:
        stack[sp - 1] = value_neg(stack[sp - 1]);
        break;
      case Op::Not:
        stack[sp - 1] = Value(!stack[sp - 1].truthy());
        break;
      case Op::ToBool:
        stack[sp - 1] = Value(stack[sp - 1].truthy());
        break;
      case Op::CmpLt:
        stack[sp - 2] = Value(value_compare(CompareOp::Lt, stack[sp - 2], stack[sp - 1]));
        --sp;
        break;
      case Op::CmpLe:
        stack[sp - 2] = Value(value_compare(CompareOp::Le, stack[sp - 2], stack[sp - 1]));
        --sp;
        break;
      case Op::CmpGt:
        stack[sp - 2] = Value(value_compare(CompareOp::Gt, stack[sp - 2], stack[sp - 1]));
        --sp;
        break;
      case Op::CmpGe:
        stack[sp - 2] = Value(value_compare(CompareOp::Ge, stack[sp - 2], stack[sp - 1]));
        --sp;
        break;
      case Op::CmpEq:
        stack[sp - 2] = Value(stack[sp - 2] == stack[sp - 1]);
        --sp;
        break;
      case Op::CmpNe:
        stack[sp - 2] = Value(stack[sp - 2] != stack[sp - 1]);
        --sp;
        break;
      case Op::InConst:
      case Op::NotInConst: {
        const auto& tuple = tuple_consts_[static_cast<std::size_t>(ins.arg)];
        bool found = false;
        for (const Value& v : tuple) {
          if (stack[sp - 1] == v) {
            found = true;
            break;
          }
        }
        stack[sp - 1] = Value(ins.op == Op::InConst ? found : !found);
        break;
      }
      case Op::Dup:
        stack[sp] = stack[sp - 1];
        ++sp;
        break;
      case Op::Rot2:
        std::swap(stack[sp - 1], stack[sp - 2]);
        break;
      case Op::Rot3: {
        Value top = std::move(stack[sp - 1]);
        stack[sp - 1] = std::move(stack[sp - 2]);
        stack[sp - 2] = std::move(stack[sp - 3]);
        stack[sp - 3] = std::move(top);
        break;
      }
      case Op::Pop:
        --sp;
        break;
      case Op::Jump:
        pc = static_cast<std::size_t>(ins.arg) - 1;  // -1: loop increments
        break;
      case Op::JumpIfFalseOrPop:
        if (!stack[sp - 1].truthy()) {
          pc = static_cast<std::size_t>(ins.arg) - 1;
        } else {
          --sp;
        }
        break;
      case Op::JumpIfTrueOrPop:
        if (stack[sp - 1].truthy()) {
          pc = static_cast<std::size_t>(ins.arg) - 1;
        } else {
          --sp;
        }
        break;
      case Op::PopJumpIfFalse:
        --sp;
        if (!stack[sp].truthy()) pc = static_cast<std::size_t>(ins.arg) - 1;
        break;
      case Op::CallMin:
      case Op::CallMax: {
        const std::size_t argc = static_cast<std::size_t>(ins.arg);
        Value best = stack[sp - argc];
        for (std::size_t i = 1; i < argc; ++i) {
          const Value& v = stack[sp - argc + i];
          int c;
          try {
            c = v.compare(best);
          } catch (const csp::ValueError& e) {
            throw EvalError(e.what());
          }
          if (ins.op == Op::CallMin ? c < 0 : c > 0) best = v;
        }
        sp -= argc;
        stack[sp++] = std::move(best);
        break;
      }
      case Op::CallAbs: {
        Value& v = stack[sp - 1];
        if (!v.is_numeric()) throw EvalError("abs() of non-number");
        if (!v.is_real()) {
          const std::int64_t i = v.as_int();
          if (i == std::numeric_limits<std::int64_t>::min()) {
            v = Value(-static_cast<double>(i));  // 2^63: promote like overflow
          } else {
            v = Value(i < 0 ? -i : i);
          }
        } else {
          v = Value(std::fabs(v.as_real()));
        }
        break;
      }
      case Op::CallPow:
        stack[sp - 2] = value_pow(stack[sp - 2], stack[sp - 1]);
        --sp;
        break;
      case Op::CallGcd:
        stack[sp - 2] = value_gcd(stack[sp - 2], stack[sp - 1]);
        --sp;
        break;
      case Op::CallInt: {
        Value& v = stack[sp - 1];
        if (!v.is_numeric()) throw EvalError("int() of non-number");
        if (v.is_real()) v = Value(static_cast<std::int64_t>(std::trunc(v.as_real())));
        else v = Value(v.as_int());
        break;
      }
      case Op::CallFloat:
        stack[sp - 1] = Value(stack[sp - 1].as_real());
        break;
      case Op::Return:
        return std::move(stack[sp - 1]);
    }
  }
  throw EvalError("program fell off the end without Return");
}

bool Program::run_bool(const Value* values, const std::uint32_t* slot_map) const {
  return run(values, slot_map).truthy();
}

Value Program::run_dense(const std::vector<Value>& values) const {
  return run(values.data(), identity_slots_.data());
}

std::string Program::disassemble() const {
  static const char* kNames[] = {
      "PushConst", "LoadVar", "Add", "Sub", "Mul", "TrueDiv", "FloorDiv",
      "Mod", "Pow", "Neg", "Not", "ToBool", "CmpLt", "CmpLe", "CmpGt",
      "CmpGe", "CmpEq", "CmpNe", "InConst", "NotInConst", "Dup", "Rot2",
      "Rot3", "Pop", "Jump", "JumpIfFalseOrPop", "JumpIfTrueOrPop",
      "PopJumpIfFalse", "CallMin", "CallMax", "CallAbs", "CallPow", "CallGcd",
      "CallInt", "CallFloat", "Return"};
  std::ostringstream ss;
  for (std::size_t pc = 0; pc < code_.size(); ++pc) {
    const Instr& ins = code_[pc];
    ss << pc << ": " << kNames[static_cast<std::size_t>(ins.op)];
    switch (ins.op) {
      case Op::PushConst:
        ss << " " << consts_[static_cast<std::size_t>(ins.arg)].to_string();
        break;
      case Op::LoadVar:
        ss << " " << var_names_[static_cast<std::size_t>(ins.arg)];
        break;
      case Op::Jump:
      case Op::JumpIfFalseOrPop:
      case Op::JumpIfTrueOrPop:
      case Op::PopJumpIfFalse:
        ss << " -> " << ins.arg;
        break;
      case Op::CallMin:
      case Op::CallMax:
        ss << " argc=" << ins.arg;
        break;
      case Op::InConst:
      case Op::NotInConst: {
        ss << " (";
        const auto& t = tuple_consts_[static_cast<std::size_t>(ins.arg)];
        for (std::size_t i = 0; i < t.size(); ++i) {
          if (i) ss << ", ";
          ss << t[i].to_string();
        }
        ss << ")";
        break;
      }
      default:
        break;
    }
    ss << "\n";
  }
  return ss.str();
}

}  // namespace tunespace::expr
