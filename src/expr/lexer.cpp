#include "tunespace/expr/lexer.hpp"

#include <cctype>
#include <cstdlib>

namespace tunespace::expr {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> tokenize(const std::string& src) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto push = [&](TokKind kind, std::size_t at, std::string text = {},
                  csp::Value value = csp::Value{}) {
    out.push_back(Token{kind, std::move(text), std::move(value), at});
  };

  while (i < n) {
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const std::size_t at = i;
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      // Number: integer, or real if it contains '.' or exponent.
      std::size_t j = i;
      bool is_real = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) ++j;
      if (j < n && src[j] == '.') {
        is_real = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) ++j;
      }
      if (j < n && (src[j] == 'e' || src[j] == 'E')) {
        std::size_t k = j + 1;
        if (k < n && (src[k] == '+' || src[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(src[k]))) {
          is_real = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) ++j;
        }
      }
      const std::string text = src.substr(i, j - i);
      if (is_real) {
        push(TokKind::Number, at, text, csp::Value(std::strtod(text.c_str(), nullptr)));
      } else {
        errno = 0;
        const long long v = std::strtoll(text.c_str(), nullptr, 10);
        if (errno != 0) throw SyntaxError("integer literal out of range: " + text, at);
        push(TokKind::Number, at, text, csp::Value(static_cast<std::int64_t>(v)));
      }
      i = j;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      std::string text;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) {
          ++j;
          switch (src[j]) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            case '\\': text += '\\'; break;
            case '\'': text += '\''; break;
            case '"': text += '"'; break;
            default: text += src[j]; break;
          }
        } else {
          text += src[j];
        }
        ++j;
      }
      if (j >= n) throw SyntaxError("unterminated string literal", at);
      push(TokKind::Str, at, text, csp::Value(text));
      i = j + 1;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      const std::string word = src.substr(i, j - i);
      if (word == "and") push(TokKind::KwAnd, at, word);
      else if (word == "or") push(TokKind::KwOr, at, word);
      else if (word == "not") push(TokKind::KwNot, at, word);
      else if (word == "in") push(TokKind::KwIn, at, word);
      else if (word == "True") push(TokKind::KwTrue, at, word, csp::Value(true));
      else if (word == "False") push(TokKind::KwFalse, at, word, csp::Value(false));
      else if (word == "if") push(TokKind::KwIf, at, word);
      else if (word == "else") push(TokKind::KwElse, at, word);
      else push(TokKind::Ident, at, word);
      i = j;
      continue;
    }
    switch (c) {
      case '+': push(TokKind::Plus, at); ++i; break;
      case '-': push(TokKind::Minus, at); ++i; break;
      case '*':
        if (i + 1 < n && src[i + 1] == '*') {
          push(TokKind::DoubleStar, at);
          i += 2;
        } else {
          push(TokKind::Star, at);
          ++i;
        }
        break;
      case '/':
        if (i + 1 < n && src[i + 1] == '/') {
          push(TokKind::DoubleSlash, at);
          i += 2;
        } else {
          push(TokKind::Slash, at);
          ++i;
        }
        break;
      case '%': push(TokKind::Percent, at); ++i; break;
      case '<':
        if (i + 1 < n && src[i + 1] == '=') {
          push(TokKind::Le, at);
          i += 2;
        } else {
          push(TokKind::Lt, at);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && src[i + 1] == '=') {
          push(TokKind::Ge, at);
          i += 2;
        } else {
          push(TokKind::Gt, at);
          ++i;
        }
        break;
      case '=':
        if (i + 1 < n && src[i + 1] == '=') {
          push(TokKind::EqEq, at);
          i += 2;
        } else {
          throw SyntaxError("single '=' is not valid; use '=='", at);
        }
        break;
      case '!':
        if (i + 1 < n && src[i + 1] == '=') {
          push(TokKind::NotEq, at);
          i += 2;
        } else {
          throw SyntaxError("unexpected '!'", at);
        }
        break;
      case '(': push(TokKind::LParen, at); ++i; break;
      case ')': push(TokKind::RParen, at); ++i; break;
      case '[': push(TokKind::LBracket, at); ++i; break;
      case ']': push(TokKind::RBracket, at); ++i; break;
      case ',': push(TokKind::Comma, at); ++i; break;
      default:
        throw SyntaxError(std::string("unexpected character '") + c + "'", at);
    }
  }
  out.push_back(Token{TokKind::End, {}, {}, n});
  return out;
}

}  // namespace tunespace::expr
