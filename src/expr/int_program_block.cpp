#include "tunespace/expr/int_program_block.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <sstream>

namespace tunespace::expr {

using csp::Value;

// Per-lane loops must reach the loop vectorizer: without a directive GCC
// completely unrolls the constant-trip kLanes loops early and the ops end up
// as scalar straight-line code.  -fopenmp-simd is added by the build (no
// OpenMP runtime involved); the pragma is inert when the flag is absent.
#if defined(__GNUC__) || defined(__clang__)
#define TUNESPACE_SIMD _Pragma("omp simd")
#else
#define TUNESPACE_SIMD
#endif

namespace {

constexpr std::int64_t kIntMin = std::numeric_limits<std::int64_t>::min();
constexpr std::uint16_t kNoReg = 0xffff;

/// AST -> three-address lowering with a free-list register allocator.
/// Operand registers are released *before* the destination is allocated, so
/// destinations may alias operands; every op reads all its lanes before
/// writing, which makes that aliasing safe and keeps register pressure at
/// the expression's live width, not its node count.
struct Lowerer {
  const std::vector<std::string>& slots;
  std::vector<BlockInstr> code;
  std::vector<std::int64_t> consts;
  std::vector<csp::IntValueSet> sets;
  std::vector<std::uint16_t> free_regs;
  std::uint32_t next_reg = 0;

  explicit Lowerer(const std::vector<std::string>& var_slots) : slots(var_slots) {}

  std::uint16_t alloc() {
    if (!free_regs.empty()) {
      const std::uint16_t r = free_regs.back();
      free_regs.pop_back();
      return r;
    }
    return static_cast<std::uint16_t>(next_reg++);
  }
  void release(std::uint16_t r) { free_regs.push_back(r); }

  std::uint16_t emit(BlockOp op, std::uint16_t dst, std::uint16_t a = 0,
                     std::uint16_t b = 0, std::uint16_t c = 0,
                     std::int32_t arg = 0) {
    code.push_back(BlockInstr{op, dst, a, b, c, arg});
    return dst;
  }

  std::optional<std::uint16_t> lower_literal(const Value& v) {
    if (v.is_real() || v.is_str()) return std::nullopt;
    const std::uint16_t dst = alloc();
    const std::int32_t idx = static_cast<std::int32_t>(consts.size());
    consts.push_back(v.as_int());
    return emit(BlockOp::Broadcast, dst, 0, 0, 0, idx);
  }

  std::optional<std::uint16_t> lower_membership(std::uint16_t operand,
                                                const Ast& tuple, bool negated) {
    if (tuple.kind != AstKind::Tuple) return std::nullopt;
    std::vector<Value> elements;
    elements.reserve(tuple.children.size());
    for (const AstPtr& e : tuple.children) {
      if (!e || e->kind != AstKind::Literal) return std::nullopt;
      elements.push_back(e->literal);
    }
    csp::IntValueSet set;
    if (!set.lower(elements)) return std::nullopt;  // real element: lossy
    const bool bitset = set.dense();
    const std::int32_t idx = static_cast<std::int32_t>(sets.size());
    sets.push_back(std::move(set));
    release(operand);
    const std::uint16_t dst = alloc();
    const BlockOp op = negated ? (bitset ? BlockOp::NotInBitset : BlockOp::NotInSorted)
                               : (bitset ? BlockOp::InBitset : BlockOp::InSorted);
    return emit(op, dst, operand, 0, 0, idx);
  }

  std::optional<std::uint16_t> lower_compare(const Ast& node) {
    // a op1 b op2 c ... lowers to AND over the individual 0/1 comparisons.
    // The boxed evaluator short-circuits the chain but each link is a plain
    // bool, so eager AND computes the same truth on non-poisoned lanes.
    auto lhs = lower(*node.children[0]);
    if (!lhs) return std::nullopt;
    std::uint16_t chain = *lhs;
    bool chain_live = true;
    std::uint16_t acc = kNoReg;
    for (std::size_t j = 0; j < node.cmp_ops.size(); ++j) {
      const CompareOp op = node.cmp_ops[j];
      std::uint16_t res;
      if (op == CompareOp::In || op == CompareOp::NotIn) {
        // Membership is only defined as the final link (the boxed evaluator
        // raises on anything chained after it).
        if (j + 1 != node.cmp_ops.size()) return std::nullopt;
        auto m = lower_membership(chain, *node.children[j + 1],
                                  op == CompareOp::NotIn);
        if (!m) return std::nullopt;
        res = *m;
        chain_live = false;
      } else {
        auto rhs = lower(*node.children[j + 1]);
        if (!rhs) return std::nullopt;
        BlockOp cmp;
        switch (op) {
          case CompareOp::Lt: cmp = BlockOp::CmpLt; break;
          case CompareOp::Le: cmp = BlockOp::CmpLe; break;
          case CompareOp::Gt: cmp = BlockOp::CmpGt; break;
          case CompareOp::Ge: cmp = BlockOp::CmpGe; break;
          case CompareOp::Eq: cmp = BlockOp::CmpEq; break;
          default: cmp = BlockOp::CmpNe; break;
        }
        release(chain);
        res = alloc();  // may alias `chain`, never `rhs` (still live)
        emit(cmp, res, chain, *rhs);
        chain = *rhs;  // next link compares against this operand
      }
      if (acc == kNoReg) {
        acc = res;
      } else {
        release(acc);
        release(res);
        const std::uint16_t next = alloc();
        emit(BlockOp::And, next, acc, res);
        acc = next;
      }
    }
    if (chain_live) release(chain);
    return acc;
  }

  std::optional<std::uint16_t> lower_call(const Ast& node) {
    std::vector<std::uint16_t> args;
    const auto lower_args = [&](std::size_t expect) {
      if (node.children.size() != expect) return false;
      for (const AstPtr& a : node.children) {
        auto r = lower(*a);
        if (!r) return false;
        args.push_back(*r);
      }
      return true;
    };
    if (node.name == "min" || node.name == "max") {
      if (node.children.empty()) return std::nullopt;
      for (const AstPtr& a : node.children) {
        auto r = lower(*a);
        if (!r) return std::nullopt;
        args.push_back(*r);
      }
      std::uint16_t acc = args[0];
      const BlockOp op = node.name == "min" ? BlockOp::Min2 : BlockOp::Max2;
      for (std::size_t i = 1; i < args.size(); ++i) {
        release(acc);
        release(args[i]);
        const std::uint16_t next = alloc();
        emit(op, next, acc, args[i]);
        acc = next;
      }
      return acc;
    }
    if (node.name == "abs") {
      if (!lower_args(1)) return std::nullopt;
      release(args[0]);
      return emit(BlockOp::Abs, alloc(), args[0]);
    }
    if (node.name == "gcd") {
      if (!lower_args(2)) return std::nullopt;
      release(args[0]);
      release(args[1]);
      return emit(BlockOp::Gcd, alloc(), args[0], args[1]);
    }
    if (node.name == "pow") {
      if (!lower_args(2)) return std::nullopt;
      release(args[0]);
      release(args[1]);
      return emit(BlockOp::Pow, alloc(), args[0], args[1]);
    }
    if (node.name == "int") {
      if (node.children.size() != 1) return std::nullopt;
      return lower(*node.children[0]);  // identity on int64 lanes
    }
    return std::nullopt;  // float() and unknown calls stay boxed
  }

  std::optional<std::uint16_t> lower(const Ast& node) {
    if (next_reg > 0xfff0) return std::nullopt;  // degenerate expression
    switch (node.kind) {
      case AstKind::Literal:
        return lower_literal(node.literal);
      case AstKind::Var: {
        for (std::size_t s = 0; s < slots.size(); ++s) {
          if (slots[s] == node.name) {
            return emit(BlockOp::LoadVar, alloc(), 0, 0, 0,
                        static_cast<std::int32_t>(s));
          }
        }
        return std::nullopt;  // folded differently than the boxed program
      }
      case AstKind::Unary: {
        if (node.un_op == UnOp::Pos) return lower(*node.children[0]);
        auto a = lower(*node.children[0]);
        if (!a) return std::nullopt;
        release(*a);
        return emit(node.un_op == UnOp::Neg ? BlockOp::Neg : BlockOp::Not,
                    alloc(), *a);
      }
      case AstKind::Binary: {
        BlockOp op;
        switch (node.bin_op) {
          case BinOp::Add: op = BlockOp::Add; break;
          case BinOp::Sub: op = BlockOp::Sub; break;
          case BinOp::Mul: op = BlockOp::Mul; break;
          case BinOp::FloorDiv: op = BlockOp::FloorDiv; break;
          case BinOp::Mod: op = BlockOp::Mod; break;
          case BinOp::Pow: op = BlockOp::Pow; break;
          case BinOp::TrueDiv: return std::nullopt;  // always produces a real
          default: return std::nullopt;
        }
        auto a = lower(*node.children[0]);
        if (!a) return std::nullopt;
        auto b = lower(*node.children[1]);
        if (!b) return std::nullopt;
        release(*a);
        release(*b);
        return emit(op, alloc(), *a, *b);
      }
      case AstKind::Compare:
        return lower_compare(node);
      case AstKind::BoolOp: {
        auto acc = lower(*node.children[0]);
        if (!acc) return std::nullopt;
        if (node.children.size() == 1) {
          release(*acc);
          return emit(BlockOp::ToBool, alloc(), *acc);
        }
        const BlockOp op = node.is_and ? BlockOp::And : BlockOp::Or;
        std::uint16_t r = *acc;
        for (std::size_t i = 1; i < node.children.size(); ++i) {
          auto b = lower(*node.children[i]);
          if (!b) return std::nullopt;
          release(r);
          release(*b);
          const std::uint16_t next = alloc();
          emit(op, next, r, *b);
          r = next;
        }
        return r;
      }
      case AstKind::Call:
        return lower_call(node);
      case AstKind::IfElse: {
        // children = {then, cond, otherwise}; eager in all three, Select
        // picks per lane.  Lanes the scalar path would not have evaluated
        // can only add poison, never change non-poisoned truth.
        auto t = lower(*node.children[0]);
        if (!t) return std::nullopt;
        auto c = lower(*node.children[1]);
        if (!c) return std::nullopt;
        auto e = lower(*node.children[2]);
        if (!e) return std::nullopt;
        release(*t);
        release(*c);
        release(*e);
        return emit(BlockOp::Select, alloc(), *c, *t, *e);
      }
      case AstKind::Tuple:
        return std::nullopt;  // only legal as an `in` rhs (handled above)
    }
    return std::nullopt;
  }
};

}  // namespace

std::optional<IntProgramBlock> IntProgramBlock::lower(
    const AstPtr& ast, const std::vector<std::string>& var_slots) {
  if (!ast) return std::nullopt;
  Lowerer lw(var_slots);
  const auto root = lw.lower(*ast);
  if (!root) return std::nullopt;
  IntProgramBlock out;
  out.code_ = std::move(lw.code);
  out.consts_ = std::move(lw.consts);
  out.sets_ = std::move(lw.sets);
  out.num_regs_ = static_cast<std::uint16_t>(lw.next_reg);
  out.root_ = *root;
  return out;
}

void IntProgramBlock::run(const std::int64_t* values,
                          const std::uint32_t* slot_map,
                          std::int32_t varying_slot,
                          const std::int64_t* candidates, std::size_t n,
                          unsigned char* truth, unsigned char* poison) const {
  assert(n >= 1 && n <= kLanes);
  // Pad the candidate slice to full width so every inner loop has a
  // constant trip count; padding lanes compute (and may poison) but are
  // never read back.
  std::int64_t cand[kLanes];
  for (std::size_t i = 0; i < kLanes; ++i) cand[i] = candidates[i < n ? i : n - 1];

  constexpr std::size_t kInlineRegs = 32;
  if (num_regs_ <= kInlineRegs) {
    std::int64_t regs[kInlineRegs * kLanes];
    run_on(regs, values, slot_map, varying_slot, cand, n, truth, poison);
    return;
  }
  std::vector<std::int64_t> regs(static_cast<std::size_t>(num_regs_) * kLanes);
  run_on(regs.data(), values, slot_map, varying_slot, cand, n, truth, poison);
}

void IntProgramBlock::run_on(std::int64_t* regs, const std::int64_t* values,
                             const std::uint32_t* slot_map,
                             std::int32_t varying_slot,
                             const std::int64_t* cand, std::size_t n,
                             unsigned char* truth,
                             unsigned char* poison) const {
  std::int64_t pz[kLanes] = {0, 0, 0, 0, 0, 0, 0, 0};

  for (const BlockInstr& ins : code_) {
    std::int64_t* d = regs + static_cast<std::size_t>(ins.dst) * kLanes;
    const std::int64_t* a = regs + static_cast<std::size_t>(ins.a) * kLanes;
    const std::int64_t* b = regs + static_cast<std::size_t>(ins.b) * kLanes;
    const std::int64_t* c = regs + static_cast<std::size_t>(ins.c) * kLanes;
    switch (ins.op) {
      case BlockOp::Broadcast: {
        const std::int64_t v = consts_[static_cast<std::size_t>(ins.arg)];
        TUNESPACE_SIMD
        for (std::size_t i = 0; i < kLanes; ++i) d[i] = v;
        break;
      }
      case BlockOp::LoadVar:
        if (ins.arg == varying_slot) {
          TUNESPACE_SIMD
          for (std::size_t i = 0; i < kLanes; ++i) d[i] = cand[i];
        } else {
          const std::int64_t v = values[slot_map[static_cast<std::size_t>(ins.arg)]];
          TUNESPACE_SIMD
          for (std::size_t i = 0; i < kLanes; ++i) d[i] = v;
        }
        break;
      case BlockOp::Add:
        TUNESPACE_SIMD
        for (std::size_t i = 0; i < kLanes; ++i) {
          const std::uint64_t ua = static_cast<std::uint64_t>(a[i]);
          const std::uint64_t ub = static_cast<std::uint64_t>(b[i]);
          const std::uint64_t ur = ua + ub;
          pz[i] |= static_cast<std::int64_t>((ua ^ ur) & (ub ^ ur)) < 0;
          d[i] = static_cast<std::int64_t>(ur);
        }
        break;
      case BlockOp::Sub:
        TUNESPACE_SIMD
        for (std::size_t i = 0; i < kLanes; ++i) {
          const std::uint64_t ua = static_cast<std::uint64_t>(a[i]);
          const std::uint64_t ub = static_cast<std::uint64_t>(b[i]);
          const std::uint64_t ur = ua - ub;
          pz[i] |= static_cast<std::int64_t>((ua ^ ub) & (ua ^ ur)) < 0;
          d[i] = static_cast<std::int64_t>(ur);
        }
        break;
      case BlockOp::Mul:
        TUNESPACE_SIMD
        for (std::size_t i = 0; i < kLanes; ++i) {
          const __int128 w = static_cast<__int128>(a[i]) * b[i];
          const std::int64_t lo = static_cast<std::int64_t>(w);
          pz[i] |= w != lo;
          d[i] = lo;
        }
        break;
      case BlockOp::FloorDiv:
        TUNESPACE_SIMD
        for (std::size_t i = 0; i < kLanes; ++i) {
          const std::int64_t x = a[i], y = b[i];
          const std::int64_t bad = (y == 0) | ((x == kIntMin) & (y == -1));
          pz[i] |= bad;
          const std::int64_t safe = bad ? 1 : y;  // also dodges the % -1 trap
          std::int64_t q = x / safe;  // Python floors toward negative infinity
          q -= (x % safe != 0) & ((x < 0) != (safe < 0));
          d[i] = q;
        }
        break;
      case BlockOp::Mod:
        TUNESPACE_SIMD
        for (std::size_t i = 0; i < kLanes; ++i) {
          const std::int64_t x = a[i], y = b[i];
          const std::int64_t bad = (y == 0) | ((x == kIntMin) & (y == -1));
          pz[i] |= bad;
          const std::int64_t safe = bad ? 1 : y;
          std::int64_t r = x % safe;  // Python: result has the divisor's sign
          r += ((r != 0) & ((r < 0) != (safe < 0))) ? safe : 0;
          d[i] = r;
        }
        break;
      case BlockOp::Pow:
        TUNESPACE_SIMD
        for (std::size_t i = 0; i < kLanes; ++i) {
          std::int64_t base = a[i], exp = b[i], acc = 1;
          bool bad = exp < 0;  // boxed path produces a real
          while (!bad && exp > 0) {
            if (exp & 1) bad = __builtin_mul_overflow(acc, base, &acc);
            exp >>= 1;
            if (!bad && exp > 0) bad = __builtin_mul_overflow(base, base, &base);
          }
          pz[i] |= bad;
          d[i] = acc;
        }
        break;
      case BlockOp::Neg:
        TUNESPACE_SIMD
        for (std::size_t i = 0; i < kLanes; ++i) {
          pz[i] |= a[i] == kIntMin;
          d[i] = static_cast<std::int64_t>(0 - static_cast<std::uint64_t>(a[i]));
        }
        break;
      case BlockOp::Not:
        TUNESPACE_SIMD
        for (std::size_t i = 0; i < kLanes; ++i) d[i] = a[i] == 0;
        break;
      case BlockOp::ToBool:
        TUNESPACE_SIMD
        for (std::size_t i = 0; i < kLanes; ++i) d[i] = a[i] != 0;
        break;
      case BlockOp::CmpLt:
        TUNESPACE_SIMD
        for (std::size_t i = 0; i < kLanes; ++i) d[i] = a[i] < b[i];
        break;
      case BlockOp::CmpLe:
        TUNESPACE_SIMD
        for (std::size_t i = 0; i < kLanes; ++i) d[i] = a[i] <= b[i];
        break;
      case BlockOp::CmpGt:
        TUNESPACE_SIMD
        for (std::size_t i = 0; i < kLanes; ++i) d[i] = a[i] > b[i];
        break;
      case BlockOp::CmpGe:
        TUNESPACE_SIMD
        for (std::size_t i = 0; i < kLanes; ++i) d[i] = a[i] >= b[i];
        break;
      case BlockOp::CmpEq:
        TUNESPACE_SIMD
        for (std::size_t i = 0; i < kLanes; ++i) d[i] = a[i] == b[i];
        break;
      case BlockOp::CmpNe:
        TUNESPACE_SIMD
        for (std::size_t i = 0; i < kLanes; ++i) d[i] = a[i] != b[i];
        break;
      case BlockOp::And:
        TUNESPACE_SIMD
        for (std::size_t i = 0; i < kLanes; ++i) d[i] = (a[i] != 0) & (b[i] != 0);
        break;
      case BlockOp::Or:
        TUNESPACE_SIMD
        for (std::size_t i = 0; i < kLanes; ++i) d[i] = (a[i] != 0) | (b[i] != 0);
        break;
      case BlockOp::Select:
        TUNESPACE_SIMD
        for (std::size_t i = 0; i < kLanes; ++i) d[i] = a[i] != 0 ? b[i] : c[i];
        break;
      case BlockOp::InSorted:
      case BlockOp::NotInSorted: {
        const csp::IntValueSet& set = sets_[static_cast<std::size_t>(ins.arg)];
        const bool want = ins.op == BlockOp::InSorted;
        TUNESPACE_SIMD
        for (std::size_t i = 0; i < kLanes; ++i) {
          const bool found =
              std::binary_search(set.sorted.begin(), set.sorted.end(), a[i]);
          d[i] = found == want;
        }
        break;
      }
      case BlockOp::InBitset:
      case BlockOp::NotInBitset: {
        const csp::IntValueSet& set = sets_[static_cast<std::size_t>(ins.arg)];
        const bool want = ins.op == BlockOp::InBitset;
        TUNESPACE_SIMD
        for (std::size_t i = 0; i < kLanes; ++i) {
          d[i] = set.contains(a[i]) == want;
        }
        break;
      }
      case BlockOp::Min2:
        TUNESPACE_SIMD
        for (std::size_t i = 0; i < kLanes; ++i) d[i] = a[i] < b[i] ? a[i] : b[i];
        break;
      case BlockOp::Max2:
        TUNESPACE_SIMD
        for (std::size_t i = 0; i < kLanes; ++i) d[i] = a[i] > b[i] ? a[i] : b[i];
        break;
      case BlockOp::Abs:
        TUNESPACE_SIMD
        for (std::size_t i = 0; i < kLanes; ++i) {
          pz[i] |= a[i] == kIntMin;
          d[i] = a[i] < 0
                     ? static_cast<std::int64_t>(0 - static_cast<std::uint64_t>(a[i]))
                     : a[i];
        }
        break;
      case BlockOp::Gcd:
        TUNESPACE_SIMD
        for (std::size_t i = 0; i < kLanes; ++i) {
          // std::gcd is undefined when |operand| is unrepresentable; poison
          // the lane and feed it zeros so no UB is ever executed.
          const bool bad = (a[i] == kIntMin) | (b[i] == kIntMin);
          pz[i] |= bad;
          d[i] = std::gcd(bad ? 0 : a[i], bad ? 0 : b[i]);
        }
        break;
    }
  }

  const std::int64_t* root = regs + static_cast<std::size_t>(root_) * kLanes;
  for (std::size_t i = 0; i < n; ++i) {
    truth[i] = root[i] != 0;
    poison[i] = pz[i] != 0;
  }
}

std::string IntProgramBlock::disassemble() const {
  static const char* kNames[] = {
      "Broadcast", "LoadVar", "Add", "Sub", "Mul", "FloorDiv", "Mod", "Pow",
      "Neg", "Not", "ToBool", "CmpLt", "CmpLe", "CmpGt", "CmpGe", "CmpEq",
      "CmpNe", "And", "Or", "Select", "InSorted", "NotInSorted", "InBitset",
      "NotInBitset", "Min2", "Max2", "Abs", "Gcd"};
  std::ostringstream ss;
  for (std::size_t pc = 0; pc < code_.size(); ++pc) {
    const BlockInstr& ins = code_[pc];
    ss << pc << ": r" << ins.dst << " = "
       << kNames[static_cast<std::size_t>(ins.op)];
    switch (ins.op) {
      case BlockOp::Broadcast:
        ss << " " << consts_[static_cast<std::size_t>(ins.arg)];
        break;
      case BlockOp::LoadVar:
        ss << " slot" << ins.arg;
        break;
      case BlockOp::Neg:
      case BlockOp::Not:
      case BlockOp::ToBool:
      case BlockOp::Abs:
        ss << " r" << ins.a;
        break;
      case BlockOp::Select:
        ss << " r" << ins.a << " ? r" << ins.b << " : r" << ins.c;
        break;
      case BlockOp::InSorted:
      case BlockOp::NotInSorted:
      case BlockOp::InBitset:
      case BlockOp::NotInBitset: {
        const csp::IntValueSet& set = sets_[static_cast<std::size_t>(ins.arg)];
        ss << " r" << ins.a << (set.dense() ? " bitset(" : " sorted(");
        for (std::size_t i = 0; i < set.sorted.size(); ++i) {
          if (i) ss << ", ";
          ss << set.sorted[i];
        }
        ss << ")";
        break;
      }
      default:
        ss << " r" << ins.a << ", r" << ins.b;
        break;
    }
    ss << "\n";
  }
  ss << "root: r" << root_ << ", regs: " << num_regs_ << "\n";
  return ss.str();
}

}  // namespace tunespace::expr
