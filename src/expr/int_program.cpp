#include "tunespace/expr/int_program.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <sstream>

namespace tunespace::expr {

using csp::Value;
using csp::ValueKind;

namespace {

constexpr std::int64_t kIntMin = std::numeric_limits<std::int64_t>::min();

}  // namespace

std::optional<IntProgram> IntProgram::lower(const Program& program) {
  IntProgram out;
  out.var_names_ = program.var_names();
  out.max_stack_ = program.max_stack();
  out.code_.reserve(program.code().size());

  // 1:1 instruction mapping, so jump targets carry over unchanged.
  for (const Instr& ins : program.code()) {
    IntInstr lowered{IntOp::Nop, ins.arg};
    switch (ins.op) {
      case Op::PushConst: {
        const Value& c = program.consts()[static_cast<std::size_t>(ins.arg)];
        if (c.is_real() || c.is_str()) return std::nullopt;
        lowered.op = IntOp::PushConst;
        lowered.arg = static_cast<std::int32_t>(out.consts_.size());
        out.consts_.push_back(c.as_int());
        break;
      }
      case Op::LoadVar: lowered.op = IntOp::LoadVar; break;
      case Op::Add: lowered.op = IntOp::Add; break;
      case Op::Sub: lowered.op = IntOp::Sub; break;
      case Op::Mul: lowered.op = IntOp::Mul; break;
      case Op::TrueDiv: return std::nullopt;  // always produces a real
      case Op::FloorDiv: lowered.op = IntOp::FloorDiv; break;
      case Op::Mod: lowered.op = IntOp::Mod; break;
      case Op::Pow: lowered.op = IntOp::Pow; break;
      case Op::Neg: lowered.op = IntOp::Neg; break;
      case Op::Not: lowered.op = IntOp::Not; break;
      case Op::ToBool: lowered.op = IntOp::ToBool; break;
      case Op::CmpLt: lowered.op = IntOp::CmpLt; break;
      case Op::CmpLe: lowered.op = IntOp::CmpLe; break;
      case Op::CmpGt: lowered.op = IntOp::CmpGt; break;
      case Op::CmpGe: lowered.op = IntOp::CmpGe; break;
      case Op::CmpEq: lowered.op = IntOp::CmpEq; break;
      case Op::CmpNe: lowered.op = IntOp::CmpNe; break;
      case Op::InConst:
      case Op::NotInConst: {
        IntSet set;
        const auto& tuple =
            program.tuple_consts()[static_cast<std::size_t>(ins.arg)];
        if (!set.lower(tuple)) return std::nullopt;
        const bool bitset = set.dense();
        lowered.op = ins.op == Op::InConst
                         ? (bitset ? IntOp::InBitset : IntOp::InSorted)
                         : (bitset ? IntOp::NotInBitset : IntOp::NotInSorted);
        lowered.arg = static_cast<std::int32_t>(out.sets_.size());
        out.sets_.push_back(std::move(set));
        break;
      }
      case Op::Dup: lowered.op = IntOp::Dup; break;
      case Op::Rot2: lowered.op = IntOp::Rot2; break;
      case Op::Rot3: lowered.op = IntOp::Rot3; break;
      case Op::Pop: lowered.op = IntOp::Pop; break;
      case Op::Jump: lowered.op = IntOp::Jump; break;
      case Op::JumpIfFalseOrPop: lowered.op = IntOp::JumpIfFalseOrPop; break;
      case Op::JumpIfTrueOrPop: lowered.op = IntOp::JumpIfTrueOrPop; break;
      case Op::PopJumpIfFalse: lowered.op = IntOp::PopJumpIfFalse; break;
      case Op::CallMin: lowered.op = IntOp::CallMin; break;
      case Op::CallMax: lowered.op = IntOp::CallMax; break;
      case Op::CallAbs: lowered.op = IntOp::CallAbs; break;
      case Op::CallPow: lowered.op = IntOp::Pow; break;
      case Op::CallGcd: lowered.op = IntOp::CallGcd; break;
      case Op::CallInt: lowered.op = IntOp::Nop; break;  // identity on ints
      case Op::CallFloat: return std::nullopt;  // always produces a real
      case Op::Return: lowered.op = IntOp::Return; break;
    }
    out.code_.push_back(lowered);
  }
  return out;
}

bool IntProgram::run(const std::int64_t* values, const std::uint32_t* slot_map,
                     std::int64_t* result) const {
  if (max_stack_ <= 24) {
    std::int64_t stack[24];
    return run_on(stack, values, slot_map, result);
  }
  std::vector<std::int64_t> heap_stack(max_stack_);
  return run_on(heap_stack.data(), values, slot_map, result);
}

bool IntProgram::run_on(std::int64_t* stack, const std::int64_t* values,
                        const std::uint32_t* slot_map,
                        std::int64_t* result) const {
  std::size_t sp = 0;  // next free slot

  const IntInstr* code = code_.data();
  const std::size_t n = code_.size();
  for (std::size_t pc = 0; pc < n; ++pc) {
    const IntInstr ins = code[pc];
    switch (ins.op) {
      case IntOp::PushConst:
        stack[sp++] = consts_[static_cast<std::size_t>(ins.arg)];
        break;
      case IntOp::LoadVar:
        stack[sp++] = values[slot_map[static_cast<std::size_t>(ins.arg)]];
        break;
      case IntOp::Add:
        if (__builtin_add_overflow(stack[sp - 2], stack[sp - 1], &stack[sp - 2]))
          return false;  // boxed path promotes to real
        --sp;
        break;
      case IntOp::Sub:
        if (__builtin_sub_overflow(stack[sp - 2], stack[sp - 1], &stack[sp - 2]))
          return false;
        --sp;
        break;
      case IntOp::Mul:
        if (__builtin_mul_overflow(stack[sp - 2], stack[sp - 1], &stack[sp - 2]))
          return false;
        --sp;
        break;
      case IntOp::FloorDiv: {
        const std::int64_t x = stack[sp - 2], y = stack[sp - 1];
        if (y == 0 || (x == kIntMin && y == -1)) return false;
        std::int64_t q = x / y;  // Python floors toward negative infinity
        if ((x % y != 0) && ((x < 0) != (y < 0))) --q;
        stack[sp - 2] = q;
        --sp;
        break;
      }
      case IntOp::Mod: {
        const std::int64_t x = stack[sp - 2], y = stack[sp - 1];
        if (y == 0 || (x == kIntMin && y == -1)) return false;
        std::int64_t r = x % y;  // Python: result has the divisor's sign
        if (r != 0 && ((r < 0) != (y < 0))) r += y;
        stack[sp - 2] = r;
        --sp;
        break;
      }
      case IntOp::Pow: {
        std::int64_t base = stack[sp - 2], exp = stack[sp - 1];
        if (exp < 0) return false;  // boxed path produces a real
        std::int64_t acc = 1;
        while (exp > 0) {
          if (exp & 1) {
            if (__builtin_mul_overflow(acc, base, &acc)) return false;
          }
          exp >>= 1;
          if (exp > 0 && __builtin_mul_overflow(base, base, &base)) return false;
        }
        stack[sp - 2] = acc;
        --sp;
        break;
      }
      case IntOp::Neg:
        if (stack[sp - 1] == kIntMin) return false;
        stack[sp - 1] = -stack[sp - 1];
        break;
      case IntOp::Not:
        stack[sp - 1] = stack[sp - 1] == 0;
        break;
      case IntOp::ToBool:
        stack[sp - 1] = stack[sp - 1] != 0;
        break;
      case IntOp::CmpLt:
        stack[sp - 2] = stack[sp - 2] < stack[sp - 1];
        --sp;
        break;
      case IntOp::CmpLe:
        stack[sp - 2] = stack[sp - 2] <= stack[sp - 1];
        --sp;
        break;
      case IntOp::CmpGt:
        stack[sp - 2] = stack[sp - 2] > stack[sp - 1];
        --sp;
        break;
      case IntOp::CmpGe:
        stack[sp - 2] = stack[sp - 2] >= stack[sp - 1];
        --sp;
        break;
      case IntOp::CmpEq:
        stack[sp - 2] = stack[sp - 2] == stack[sp - 1];
        --sp;
        break;
      case IntOp::CmpNe:
        stack[sp - 2] = stack[sp - 2] != stack[sp - 1];
        --sp;
        break;
      case IntOp::InSorted:
      case IntOp::NotInSorted: {
        const IntSet& set = sets_[static_cast<std::size_t>(ins.arg)];
        const bool found = std::binary_search(set.sorted.begin(),
                                              set.sorted.end(), stack[sp - 1]);
        stack[sp - 1] = (ins.op == IntOp::InSorted) == found;
        break;
      }
      case IntOp::InBitset:
      case IntOp::NotInBitset: {
        const bool found =
            sets_[static_cast<std::size_t>(ins.arg)].contains(stack[sp - 1]);
        stack[sp - 1] = (ins.op == IntOp::InBitset) == found;
        break;
      }
      case IntOp::Dup:
        stack[sp] = stack[sp - 1];
        ++sp;
        break;
      case IntOp::Rot2:
        std::swap(stack[sp - 1], stack[sp - 2]);
        break;
      case IntOp::Rot3: {
        const std::int64_t top = stack[sp - 1];
        stack[sp - 1] = stack[sp - 2];
        stack[sp - 2] = stack[sp - 3];
        stack[sp - 3] = top;
        break;
      }
      case IntOp::Pop:
        --sp;
        break;
      case IntOp::Jump:
        pc = static_cast<std::size_t>(ins.arg) - 1;  // -1: loop increments
        break;
      case IntOp::JumpIfFalseOrPop:
        if (stack[sp - 1] == 0) {
          pc = static_cast<std::size_t>(ins.arg) - 1;
        } else {
          --sp;
        }
        break;
      case IntOp::JumpIfTrueOrPop:
        if (stack[sp - 1] != 0) {
          pc = static_cast<std::size_t>(ins.arg) - 1;
        } else {
          --sp;
        }
        break;
      case IntOp::PopJumpIfFalse:
        --sp;
        if (stack[sp] == 0) pc = static_cast<std::size_t>(ins.arg) - 1;
        break;
      case IntOp::CallMin:
      case IntOp::CallMax: {
        const std::size_t argc = static_cast<std::size_t>(ins.arg);
        std::int64_t best = stack[sp - argc];
        for (std::size_t i = 1; i < argc; ++i) {
          const std::int64_t v = stack[sp - argc + i];
          if (ins.op == IntOp::CallMin ? v < best : v > best) best = v;
        }
        sp -= argc;
        stack[sp++] = best;
        break;
      }
      case IntOp::CallAbs:
        if (stack[sp - 1] == kIntMin) return false;
        if (stack[sp - 1] < 0) stack[sp - 1] = -stack[sp - 1];
        break;
      case IntOp::CallGcd:
        // std::gcd is undefined when |operand| is unrepresentable; poison.
        if (stack[sp - 2] == kIntMin || stack[sp - 1] == kIntMin) return false;
        stack[sp - 2] = std::gcd(stack[sp - 2], stack[sp - 1]);
        --sp;
        break;
      case IntOp::Nop:
        break;
      case IntOp::Return:
        *result = stack[sp - 1];
        return true;
    }
  }
  return false;  // fell off the end: treat as poisoned, boxed path reports
}

std::string IntProgram::disassemble() const {
  static const char* kNames[] = {
      "PushConst", "LoadVar", "Add", "Sub", "Mul", "FloorDiv", "Mod", "Pow",
      "Neg", "Not", "ToBool", "CmpLt", "CmpLe", "CmpGt", "CmpGe", "CmpEq",
      "CmpNe", "InSorted", "NotInSorted", "InBitset", "NotInBitset", "Dup",
      "Rot2", "Rot3", "Pop", "Jump", "JumpIfFalseOrPop", "JumpIfTrueOrPop",
      "PopJumpIfFalse", "CallMin", "CallMax", "CallAbs", "CallGcd", "Nop",
      "Return"};
  std::ostringstream ss;
  for (std::size_t pc = 0; pc < code_.size(); ++pc) {
    const IntInstr& ins = code_[pc];
    ss << pc << ": " << kNames[static_cast<std::size_t>(ins.op)];
    switch (ins.op) {
      case IntOp::PushConst:
        ss << " " << consts_[static_cast<std::size_t>(ins.arg)];
        break;
      case IntOp::LoadVar:
        ss << " " << var_names_[static_cast<std::size_t>(ins.arg)];
        break;
      case IntOp::Jump:
      case IntOp::JumpIfFalseOrPop:
      case IntOp::JumpIfTrueOrPop:
      case IntOp::PopJumpIfFalse:
        ss << " -> " << ins.arg;
        break;
      case IntOp::CallMin:
      case IntOp::CallMax:
        ss << " argc=" << ins.arg;
        break;
      case IntOp::InSorted:
      case IntOp::NotInSorted:
      case IntOp::InBitset:
      case IntOp::NotInBitset: {
        const IntSet& set = sets_[static_cast<std::size_t>(ins.arg)];
        ss << (set.bits.empty() ? " sorted(" : " bitset(");
        for (std::size_t i = 0; i < set.sorted.size(); ++i) {
          if (i) ss << ", ";
          ss << set.sorted[i];
        }
        ss << ")";
        break;
      }
      default:
        break;
    }
    ss << "\n";
  }
  return ss.str();
}

}  // namespace tunespace::expr
