#include "tunespace/expr/interpreter.hpp"

#include <cmath>
#include <limits>
#include <numeric>

namespace tunespace::expr {

using csp::Value;

namespace {

bool both_int(const Value& a, const Value& b) {
  return !a.is_real() && !b.is_real() && !a.is_str() && !b.is_str();
}

void require_numeric(const Value& a, const Value& b, const char* op) {
  if (!a.is_numeric() || !b.is_numeric()) {
    throw EvalError(std::string("unsupported operand types for ") + op + ": " +
                    a.to_string() + ", " + b.to_string());
  }
}

}  // namespace

Value value_add(const Value& a, const Value& b) {
  if (a.is_str() && b.is_str()) return Value(a.as_str() + b.as_str());
  require_numeric(a, b, "+");
  if (both_int(a, b)) {
    std::int64_t r;
    if (!__builtin_add_overflow(a.as_int(), b.as_int(), &r)) return Value(r);
  }
  return Value(a.as_real() + b.as_real());
}

Value value_sub(const Value& a, const Value& b) {
  require_numeric(a, b, "-");
  if (both_int(a, b)) {
    std::int64_t r;
    if (!__builtin_sub_overflow(a.as_int(), b.as_int(), &r)) return Value(r);
  }
  return Value(a.as_real() - b.as_real());
}

Value value_mul(const Value& a, const Value& b) {
  require_numeric(a, b, "*");
  if (both_int(a, b)) {
    std::int64_t r;
    if (!__builtin_mul_overflow(a.as_int(), b.as_int(), &r)) return Value(r);
  }
  return Value(a.as_real() * b.as_real());
}

Value value_truediv(const Value& a, const Value& b) {
  require_numeric(a, b, "/");
  const double d = b.as_real();
  if (d == 0.0) throw EvalError("division by zero");
  return Value(a.as_real() / d);
}

Value value_floordiv(const Value& a, const Value& b) {
  require_numeric(a, b, "//");
  if (both_int(a, b)) {
    const std::int64_t x = a.as_int(), y = b.as_int();
    if (y == 0) throw EvalError("integer division by zero");
    if (x == std::numeric_limits<std::int64_t>::min() && y == -1) {
      // Quotient 2^63 is unrepresentable (and x / y traps); promote to real
      // like the other integer overflows.
      return Value(-static_cast<double>(x));
    }
    // Python floors toward negative infinity.
    std::int64_t q = x / y;
    if ((x % y != 0) && ((x < 0) != (y < 0))) --q;
    return Value(q);
  }
  const double d = b.as_real();
  if (d == 0.0) throw EvalError("division by zero");
  return Value(std::floor(a.as_real() / d));
}

Value value_mod(const Value& a, const Value& b) {
  require_numeric(a, b, "%");
  if (both_int(a, b)) {
    const std::int64_t x = a.as_int(), y = b.as_int();
    if (y == 0) throw EvalError("integer modulo by zero");
    if (y == -1) return Value(std::int64_t{0});  // avoids the INT64_MIN % -1 trap
    std::int64_t r = x % y;
    // Python: result has the sign of the divisor.
    if (r != 0 && ((r < 0) != (y < 0))) r += y;
    return Value(r);
  }
  const double d = b.as_real();
  if (d == 0.0) throw EvalError("modulo by zero");
  double r = std::fmod(a.as_real(), d);
  if (r != 0.0 && ((r < 0.0) != (d < 0.0))) r += d;
  return Value(r);
}

Value value_pow(const Value& a, const Value& b) {
  require_numeric(a, b, "**");
  if (both_int(a, b) && b.as_int() >= 0) {
    // Exponentiation by squaring with overflow promotion to real.
    std::int64_t base = a.as_int(), result = 1;
    std::int64_t exp = b.as_int();
    bool overflow = false;
    while (exp > 0 && !overflow) {
      if (exp & 1) overflow |= __builtin_mul_overflow(result, base, &result);
      exp >>= 1;
      if (exp > 0) overflow |= __builtin_mul_overflow(base, base, &base);
    }
    if (!overflow) return Value(result);
  }
  return Value(std::pow(a.as_real(), b.as_real()));
}

Value value_neg(const Value& a) {
  if (!a.is_numeric()) throw EvalError("cannot negate " + a.to_string());
  if (!a.is_real()) {
    const std::int64_t i = a.as_int();
    if (i == std::numeric_limits<std::int64_t>::min()) {
      return Value(-static_cast<double>(i));  // 2^63: promote like overflow
    }
    return Value(-i);
  }
  return Value(-a.as_real());
}

Value value_gcd(const Value& a, const Value& b) {
  if (a.is_real() || a.is_str() || b.is_real() || b.is_str()) {
    throw EvalError("gcd() requires integer arguments");
  }
  const std::int64_t x = a.as_int(), y = b.as_int();
  // Compute on unsigned magnitudes: std::gcd is undefined when |operand| is
  // unrepresentable (INT64_MIN), but |INT64_MIN| fits in uint64.
  const std::uint64_t ux =
      x < 0 ? 0 - static_cast<std::uint64_t>(x) : static_cast<std::uint64_t>(x);
  const std::uint64_t uy =
      y < 0 ? 0 - static_cast<std::uint64_t>(y) : static_cast<std::uint64_t>(y);
  const std::uint64_t g = std::gcd(ux, uy);
  if (g > static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
    throw EvalError("gcd() result out of range");  // gcd = 2^63
  }
  return Value(static_cast<std::int64_t>(g));
}

bool value_compare(CompareOp op, const Value& a, const Value& b) {
  switch (op) {
    case CompareOp::Eq:
      return a == b;
    case CompareOp::Ne:
      return a != b;
    case CompareOp::Lt:
    case CompareOp::Le:
    case CompareOp::Gt:
    case CompareOp::Ge: {
      int c;
      try {
        c = a.compare(b);
      } catch (const csp::ValueError& e) {
        throw EvalError(e.what());
      }
      switch (op) {
        case CompareOp::Lt: return c < 0;
        case CompareOp::Le: return c <= 0;
        case CompareOp::Gt: return c > 0;
        case CompareOp::Ge: return c >= 0;
        default: return false;
      }
    }
    case CompareOp::In:
    case CompareOp::NotIn:
      throw EvalError("membership handled by evaluator");
  }
  return false;
}

Env map_env(const std::unordered_map<std::string, Value>& map) {
  return [&map](const std::string& name) -> Value {
    auto it = map.find(name);
    if (it == map.end()) throw EvalError("unknown variable: " + name);
    return it->second;
  };
}

namespace {

Value eval_call(const Ast& node, const Env& env) {
  const auto& args = node.children;
  auto arg = [&](std::size_t i) { return eval(*args[i], env); };
  if (node.name == "min" || node.name == "max") {
    if (args.empty()) throw EvalError(node.name + "() needs at least one argument");
    Value best = arg(0);
    for (std::size_t i = 1; i < args.size(); ++i) {
      Value v = arg(i);
      int c;
      try {
        c = v.compare(best);
      } catch (const csp::ValueError& e) {
        throw EvalError(e.what());
      }
      const bool better = node.name == "min" ? c < 0 : c > 0;
      if (better) best = std::move(v);
    }
    return best;
  }
  if (node.name == "abs") {
    if (args.size() != 1) throw EvalError("abs() needs exactly one argument");
    Value v = arg(0);
    if (!v.is_numeric()) throw EvalError("abs() of non-number");
    if (!v.is_real()) {
      const std::int64_t i = v.as_int();
      if (i == std::numeric_limits<std::int64_t>::min()) {
        return Value(-static_cast<double>(i));  // 2^63: promote like overflow
      }
      return Value(i < 0 ? -i : i);
    }
    return Value(std::fabs(v.as_real()));
  }
  if (node.name == "pow") {
    if (args.size() != 2) throw EvalError("pow() needs exactly two arguments");
    return value_pow(arg(0), arg(1));
  }
  if (node.name == "gcd") {
    if (args.size() != 2) throw EvalError("gcd() needs exactly two arguments");
    return value_gcd(arg(0), arg(1));
  }
  if (node.name == "int") {
    if (args.size() != 1) throw EvalError("int() needs exactly one argument");
    const Value v = arg(0);
    if (!v.is_numeric()) throw EvalError("int() of non-number");
    if (!v.is_real()) return Value(v.as_int());
    return Value(static_cast<std::int64_t>(std::trunc(v.as_real())));
  }
  if (node.name == "float") {
    if (args.size() != 1) throw EvalError("float() needs exactly one argument");
    return Value(arg(0).as_real());
  }
  throw EvalError("unknown function: " + node.name);
}

}  // namespace

Value eval(const Ast& node, const Env& env) {
  switch (node.kind) {
    case AstKind::Literal:
      return node.literal;
    case AstKind::Var:
      return env(node.name);
    case AstKind::Unary: {
      if (node.un_op == UnOp::Not) return Value(!eval_bool(*node.children[0], env));
      Value v = eval(*node.children[0], env);
      if (node.un_op == UnOp::Neg) return value_neg(v);
      if (!v.is_numeric()) throw EvalError("unary + of non-number");
      return v;
    }
    case AstKind::Binary: {
      const Value a = eval(*node.children[0], env);
      const Value b = eval(*node.children[1], env);
      switch (node.bin_op) {
        case BinOp::Add: return value_add(a, b);
        case BinOp::Sub: return value_sub(a, b);
        case BinOp::Mul: return value_mul(a, b);
        case BinOp::TrueDiv: return value_truediv(a, b);
        case BinOp::FloorDiv: return value_floordiv(a, b);
        case BinOp::Mod: return value_mod(a, b);
        case BinOp::Pow: return value_pow(a, b);
      }
      throw EvalError("corrupt binary op");
    }
    case AstKind::Compare: {
      // Chained, short-circuiting left-to-right as in Python.
      Value left = eval(*node.children[0], env);
      for (std::size_t i = 0; i < node.cmp_ops.size(); ++i) {
        const CompareOp op = node.cmp_ops[i];
        const Ast& rhs_node = *node.children[i + 1];
        if (op == CompareOp::In || op == CompareOp::NotIn) {
          if (rhs_node.kind != AstKind::Tuple) {
            throw EvalError("'in' requires a tuple/list literal on the right");
          }
          bool found = false;
          for (const auto& el : rhs_node.children) {
            if (left == eval(*el, env)) {
              found = true;
              break;
            }
          }
          const bool ok = op == CompareOp::In ? found : !found;
          if (!ok) return Value(false);
          if (i + 1 < node.cmp_ops.size()) {
            throw EvalError("cannot chain after membership test");
          }
          return Value(true);
        }
        Value right = eval(rhs_node, env);
        if (!value_compare(op, left, right)) return Value(false);
        left = std::move(right);
      }
      return Value(true);
    }
    case AstKind::BoolOp: {
      // Python semantics: return the deciding operand's truthiness.
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        const bool truth = eval_bool(*node.children[i], env);
        const bool last = i + 1 == node.children.size();
        if (node.is_and && !truth) return Value(false);
        if (!node.is_and && truth) return Value(true);
        if (last) return Value(truth);
      }
      return Value(node.is_and);
    }
    case AstKind::Call:
      return eval_call(node, env);
    case AstKind::Tuple:
      throw EvalError("tuple is only valid as the right side of 'in'");
    case AstKind::IfElse:
      // Python order: condition first, then only the taken branch.
      return eval_bool(*node.children[1], env) ? eval(*node.children[0], env)
                                               : eval(*node.children[2], env);
  }
  throw EvalError("corrupt AST node");
}

bool eval_bool(const Ast& node, const Env& env) { return eval(node, env).truthy(); }

}  // namespace tunespace::expr
