#include "tunespace/expr/analysis.hpp"

#include <algorithm>
#include <set>

#include "tunespace/expr/int_program.hpp"

namespace tunespace::expr {

namespace {

void collect_vars(const Ast& node, std::set<std::string>& out) {
  if (node.kind == AstKind::Var) out.insert(node.name);
  for (const auto& c : node.children) collect_vars(*c, out);
}

void decompose_into(const AstPtr& node, std::vector<AstPtr>& out) {
  if (node->kind == AstKind::BoolOp && node->is_and) {
    for (const auto& c : node->children) decompose_into(c, out);
    return;
  }
  if (node->kind == AstKind::Compare && node->cmp_ops.size() > 1) {
    // Split a chain into adjacent binary comparisons.  Sound even when the
    // middle operands are compound expressions, because a Python chain
    // "a op1 b op2 c" is defined as "(a op1 b) and (b op2 c)" (with b
    // evaluated once; our expressions are side-effect free, so duplicated
    // evaluation is equivalent).
    for (std::size_t i = 0; i < node->cmp_ops.size(); ++i) {
      decompose_into(make_compare({node->children[i], node->children[i + 1]},
                                  {node->cmp_ops[i]}),
                     out);
    }
    return;
  }
  out.push_back(node);
}

}  // namespace

std::vector<std::string> variables(const Ast& node) {
  std::set<std::string> set;
  collect_vars(node, set);
  return {set.begin(), set.end()};
}

std::size_t variable_count(const Ast& node) {
  std::set<std::string> set;
  collect_vars(node, set);
  return set.size();
}

std::vector<AstPtr> decompose(const AstPtr& node) {
  std::vector<AstPtr> out;
  decompose_into(node, out);
  return out;
}

bool int_closed(const Program& program) {
  // The lowering is the single source of truth for the rejection rules
  // (TrueDiv / CallFloat, real or string constants, real tuple elements);
  // re-stating them here would be a second copy that could silently drift.
  return IntProgram::lower(program).has_value();
}

}  // namespace tunespace::expr
