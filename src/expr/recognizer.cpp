#include "tunespace/expr/recognizer.hpp"

#include <map>
#include <optional>

#include "tunespace/csp/builtin_constraints.hpp"
#include "tunespace/expr/analysis.hpp"
#include "tunespace/expr/compiler.hpp"

namespace tunespace::expr {

using csp::CmpOp;
using csp::ConstraintPtr;
using csp::Value;

namespace {

std::optional<CmpOp> to_csp_op(CompareOp op) {
  switch (op) {
    case CompareOp::Lt: return CmpOp::Lt;
    case CompareOp::Le: return CmpOp::Le;
    case CompareOp::Gt: return CmpOp::Gt;
    case CompareOp::Ge: return CmpOp::Ge;
    case CompareOp::Eq: return CmpOp::Eq;
    case CompareOp::Ne: return CmpOp::Ne;
    default: return std::nullopt;
  }
}

/// Mirror an operator for operand swap: a < b  <=>  b > a.
CmpOp mirror(CmpOp op) {
  switch (op) {
    case CmpOp::Lt: return CmpOp::Gt;
    case CmpOp::Le: return CmpOp::Ge;
    case CmpOp::Gt: return CmpOp::Lt;
    case CmpOp::Ge: return CmpOp::Le;
    default: return op;  // Eq/Ne symmetric
  }
}

bool is_const(const Ast& node) { return node.kind == AstKind::Literal; }
bool is_numeric_const(const Ast& node) {
  return node.kind == AstKind::Literal && node.literal.is_numeric();
}

/// Product form: coeff * var1 * var2 * ... with distinct variables and a
/// strictly positive coefficient.
struct ProductForm {
  double coeff = 1.0;
  std::vector<std::string> vars;
};

std::optional<ProductForm> match_product(const Ast& node) {
  switch (node.kind) {
    case AstKind::Literal:
      if (!node.literal.is_numeric()) return std::nullopt;
      return ProductForm{node.literal.as_real(), {}};
    case AstKind::Var:
      return ProductForm{1.0, {node.name}};
    case AstKind::Unary: {
      if (node.un_op == UnOp::Not) return std::nullopt;
      auto inner = match_product(*node.children[0]);
      if (!inner) return std::nullopt;
      if (node.un_op == UnOp::Neg) inner->coeff = -inner->coeff;
      return inner;
    }
    case AstKind::Binary: {
      if (node.bin_op != BinOp::Mul) return std::nullopt;
      auto lhs = match_product(*node.children[0]);
      auto rhs = match_product(*node.children[1]);
      if (!lhs || !rhs) return std::nullopt;
      for (const auto& v : rhs->vars) {
        for (const auto& u : lhs->vars) {
          if (u == v) return std::nullopt;  // repeated variable: x*x unsupported
        }
        lhs->vars.push_back(v);
      }
      lhs->coeff *= rhs->coeff;
      return lhs;
    }
    default:
      return std::nullopt;
  }
}

/// Weighted-sum form: sum of w_i * x_i plus a constant term, where each
/// addend is itself a product form with at most one variable.
struct SumForm {
  double constant = 0.0;
  std::map<std::string, double> weights;  // ordered for determinism
};

std::optional<SumForm> match_sum(const Ast& node) {
  // Leaf addends: single-variable product forms.
  auto leaf = [&](const Ast& n) -> std::optional<SumForm> {
    auto p = match_product(n);
    if (!p) return std::nullopt;
    SumForm s;
    if (p->vars.empty()) {
      s.constant = p->coeff;
    } else if (p->vars.size() == 1) {
      s.weights[p->vars[0]] = p->coeff;
    } else {
      return std::nullopt;  // product of 2+ vars inside a sum: not linear
    }
    return s;
  };
  switch (node.kind) {
    case AstKind::Binary: {
      if (node.bin_op != BinOp::Add && node.bin_op != BinOp::Sub) return leaf(node);
      auto lhs = match_sum(*node.children[0]);
      auto rhs = match_sum(*node.children[1]);
      if (!lhs || !rhs) return std::nullopt;
      const double sign = node.bin_op == BinOp::Add ? 1.0 : -1.0;
      lhs->constant += sign * rhs->constant;
      for (const auto& [var, w] : rhs->weights) lhs->weights[var] += sign * w;
      return lhs;
    }
    case AstKind::Unary: {
      if (node.un_op == UnOp::Not) return std::nullopt;
      auto inner = match_sum(*node.children[0]);
      if (!inner) return std::nullopt;
      if (node.un_op == UnOp::Neg) {
        inner->constant = -inner->constant;
        for (auto& [var, w] : inner->weights) w = -w;
      }
      return inner;
    }
    default:
      return leaf(node);
  }
}

/// x % y == 0 or x % k == 0 pattern on an Eq comparison against zero.
ConstraintPtr match_divisibility(const Ast& lhs, const Ast& rhs, CmpOp op) {
  if (op != CmpOp::Eq) return nullptr;
  if (!is_numeric_const(rhs) || rhs.literal.as_real() != 0.0) return nullptr;
  if (lhs.kind != AstKind::Binary || lhs.bin_op != BinOp::Mod) return nullptr;
  const Ast& a = *lhs.children[0];
  const Ast& b = *lhs.children[1];
  if (a.kind != AstKind::Var) return nullptr;
  if (b.kind == AstKind::Var) {
    return std::make_unique<csp::Divisibility>(a.name, b.name);
  }
  if (is_numeric_const(b) && b.literal.is_int() && b.literal.as_int() != 0) {
    return std::make_unique<csp::Divisibility>(a.name, b.literal.as_int());
  }
  return nullptr;
}

ConstraintPtr recognize_comparison(const Ast& node, EvalMode fallback_mode,
                                   const AstPtr& original) {
  const CompareOp eop = node.cmp_ops[0];

  // Membership: x in (a, b, c) with a constant tuple.
  if (eop == CompareOp::In || eop == CompareOp::NotIn) {
    const Ast& lhs = *node.children[0];
    const Ast& rhs = *node.children[1];
    if (lhs.kind == AstKind::Var && rhs.kind == AstKind::Tuple) {
      std::vector<Value> items;
      for (const auto& el : rhs.children) {
        if (el->kind != AstKind::Literal) {
          return std::make_unique<FunctionConstraint>(original, fallback_mode);
        }
        items.push_back(el->literal);
      }
      return std::make_unique<csp::InSet>(lhs.name, std::move(items),
                                          eop == CompareOp::NotIn);
    }
    return std::make_unique<FunctionConstraint>(original, fallback_mode);
  }

  auto maybe_op = to_csp_op(eop);
  if (!maybe_op) return std::make_unique<FunctionConstraint>(original, fallback_mode);
  CmpOp op = *maybe_op;

  const Ast* lhs = node.children[0].get();
  const Ast* rhs = node.children[1].get();
  // Normalize: constant on the right.
  if (is_const(*lhs) && !is_const(*rhs)) {
    std::swap(lhs, rhs);
    op = mirror(op);
  }

  // x == 'string' / x != 'string': singleton membership.
  if (lhs->kind == AstKind::Var && rhs->kind == AstKind::Literal &&
      rhs->literal.is_str() && (op == CmpOp::Eq || op == CmpOp::Ne)) {
    return std::make_unique<csp::InSet>(lhs->name, std::vector<Value>{rhs->literal},
                                        op == CmpOp::Ne);
  }

  // x <op> y between two bare variables.
  if (lhs->kind == AstKind::Var && rhs->kind == AstKind::Var) {
    return std::make_unique<csp::VarComparison>(lhs->name, op, rhs->name);
  }

  if (is_numeric_const(*rhs)) {
    const double bound = rhs->literal.as_real();

    if (auto div = match_divisibility(*lhs, *rhs, op)) return div;

    if (auto prod = match_product(*lhs)) {
      if (prod->vars.size() >= 2 && prod->coeff > 0.0) {
        return std::make_unique<csp::ProductConstraint>(op, bound,
                                                        std::move(prod->vars),
                                                        prod->coeff);
      }
      // 0/1-variable products fall through to the sum matcher below, which
      // covers them as weighted sums.
    }

    if (auto sum = match_sum(*lhs)) {
      if (!sum->weights.empty()) {
        std::vector<std::string> scope;
        std::vector<double> weights;
        scope.reserve(sum->weights.size());
        for (const auto& [var, w] : sum->weights) {
          if (w == 0.0) continue;  // cancelled terms leave the constraint
          scope.push_back(var);
          weights.push_back(w);
        }
        if (!scope.empty()) {
          return std::make_unique<csp::SumConstraint>(op, bound - sum->constant,
                                                      std::move(scope),
                                                      std::move(weights));
        }
      }
    }
  }

  return std::make_unique<FunctionConstraint>(original, fallback_mode);
}

}  // namespace

ConstraintPtr recognize(const AstPtr& conjunct, EvalMode fallback_mode) {
  const AstPtr folded = fold_constants(conjunct);
  if (folded->kind == AstKind::Literal) {
    return std::make_unique<csp::ConstBool>(folded->literal.truthy());
  }
  if (folded->kind == AstKind::Compare && folded->cmp_ops.size() == 1) {
    return recognize_comparison(*folded, fallback_mode, folded);
  }
  return std::make_unique<FunctionConstraint>(folded, fallback_mode);
}

std::vector<ConstraintPtr> optimize_constraint(const AstPtr& expression,
                                               EvalMode fallback_mode) {
  std::vector<ConstraintPtr> out;
  for (const AstPtr& conjunct : decompose(fold_constants(expression))) {
    ConstraintPtr c = recognize(conjunct, fallback_mode);
    if (auto* cb = dynamic_cast<csp::ConstBool*>(c.get()); cb && cb->value()) {
      continue;  // always-true conjuncts are dropped
    }
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace tunespace::expr
