#include "tunespace/expr/ast.hpp"

#include <cassert>
#include <sstream>

namespace tunespace::expr {

const char* bin_op_name(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::TrueDiv: return "/";
    case BinOp::FloorDiv: return "//";
    case BinOp::Mod: return "%";
    case BinOp::Pow: return "**";
  }
  return "?";
}

const char* compare_op_name(CompareOp op) {
  switch (op) {
    case CompareOp::Lt: return "<";
    case CompareOp::Le: return "<=";
    case CompareOp::Gt: return ">";
    case CompareOp::Ge: return ">=";
    case CompareOp::Eq: return "==";
    case CompareOp::Ne: return "!=";
    case CompareOp::In: return "in";
    case CompareOp::NotIn: return "not in";
  }
  return "?";
}

namespace {

// Parenthesize children whose precedence could be ambiguous; we keep it
// simple and always parenthesize compound children.
std::string child_str(const AstPtr& c) {
  const bool atomic = c->kind == AstKind::Literal || c->kind == AstKind::Var ||
                      c->kind == AstKind::Call || c->kind == AstKind::Tuple;
  if (atomic) return c->to_string();
  return "(" + c->to_string() + ")";
}

}  // namespace

std::string Ast::to_string() const {
  std::ostringstream ss;
  switch (kind) {
    case AstKind::Literal:
      return literal.to_string();
    case AstKind::Var:
      return name;
    case AstKind::Unary:
      switch (un_op) {
        case UnOp::Neg: return "-" + child_str(children[0]);
        case UnOp::Pos: return "+" + child_str(children[0]);
        case UnOp::Not: return "not " + child_str(children[0]);
      }
      return "?";
    case AstKind::Binary:
      return child_str(children[0]) + " " + bin_op_name(bin_op) + " " +
             child_str(children[1]);
    case AstKind::Compare: {
      ss << child_str(children[0]);
      for (std::size_t i = 0; i < cmp_ops.size(); ++i) {
        ss << " " << compare_op_name(cmp_ops[i]) << " " << child_str(children[i + 1]);
      }
      return ss.str();
    }
    case AstKind::BoolOp: {
      const char* sep = is_and ? " and " : " or ";
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (i) ss << sep;
        ss << child_str(children[i]);
      }
      return ss.str();
    }
    case AstKind::Call: {
      ss << name << "(";
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (i) ss << ", ";
        ss << children[i]->to_string();
      }
      ss << ")";
      return ss.str();
    }
    case AstKind::Tuple: {
      ss << "(";
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (i) ss << ", ";
        ss << children[i]->to_string();
      }
      if (children.size() == 1) ss << ",";
      ss << ")";
      return ss.str();
    }
    case AstKind::IfElse:
      return child_str(children[0]) + " if " + child_str(children[1]) + " else " +
             child_str(children[2]);
  }
  return "?";
}

bool Ast::equals(const Ast& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case AstKind::Literal:
      // Distinguish kinds so 1 != 1.0 at AST level (matters for round-trips).
      if (literal.kind() != other.literal.kind()) return false;
      return literal == other.literal;
    case AstKind::Var:
      return name == other.name;
    case AstKind::Unary:
      if (un_op != other.un_op) return false;
      break;
    case AstKind::Binary:
      if (bin_op != other.bin_op) return false;
      break;
    case AstKind::Compare:
      if (cmp_ops != other.cmp_ops) return false;
      break;
    case AstKind::BoolOp:
      if (is_and != other.is_and) return false;
      break;
    case AstKind::Call:
      if (name != other.name) return false;
      break;
    case AstKind::Tuple:
    case AstKind::IfElse:
      break;
  }
  if (children.size() != other.children.size()) return false;
  for (std::size_t i = 0; i < children.size(); ++i) {
    if (!children[i]->equals(*other.children[i])) return false;
  }
  return true;
}

AstPtr make_literal(csp::Value v) {
  auto node = std::make_shared<Ast>();
  node->kind = AstKind::Literal;
  node->literal = std::move(v);
  return node;
}

AstPtr make_var(std::string name) {
  auto node = std::make_shared<Ast>();
  node->kind = AstKind::Var;
  node->name = std::move(name);
  return node;
}

AstPtr make_unary(UnOp op, AstPtr operand) {
  auto node = std::make_shared<Ast>();
  node->kind = AstKind::Unary;
  node->un_op = op;
  node->children.push_back(std::move(operand));
  return node;
}

AstPtr make_binary(BinOp op, AstPtr lhs, AstPtr rhs) {
  auto node = std::make_shared<Ast>();
  node->kind = AstKind::Binary;
  node->bin_op = op;
  node->children.push_back(std::move(lhs));
  node->children.push_back(std::move(rhs));
  return node;
}

AstPtr make_compare(std::vector<AstPtr> operands, std::vector<CompareOp> ops) {
  assert(operands.size() == ops.size() + 1 && !ops.empty());
  auto node = std::make_shared<Ast>();
  node->kind = AstKind::Compare;
  node->children = std::move(operands);
  node->cmp_ops = std::move(ops);
  return node;
}

AstPtr make_bool_op(bool is_and, std::vector<AstPtr> operands) {
  assert(operands.size() >= 2);
  auto node = std::make_shared<Ast>();
  node->kind = AstKind::BoolOp;
  node->is_and = is_and;
  node->children = std::move(operands);
  return node;
}

AstPtr make_call(std::string name, std::vector<AstPtr> args) {
  auto node = std::make_shared<Ast>();
  node->kind = AstKind::Call;
  node->name = std::move(name);
  node->children = std::move(args);
  return node;
}

AstPtr make_tuple(std::vector<AstPtr> elements) {
  auto node = std::make_shared<Ast>();
  node->kind = AstKind::Tuple;
  node->children = std::move(elements);
  return node;
}

AstPtr make_if_else(AstPtr then, AstPtr cond, AstPtr otherwise) {
  auto node = std::make_shared<Ast>();
  node->kind = AstKind::IfElse;
  node->children.push_back(std::move(then));
  node->children.push_back(std::move(cond));
  node->children.push_back(std::move(otherwise));
  return node;
}

}  // namespace tunespace::expr
