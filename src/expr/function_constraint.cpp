#include "tunespace/expr/function_constraint.hpp"

#include "tunespace/expr/analysis.hpp"
#include "tunespace/expr/compiler.hpp"
#include "tunespace/expr/interpreter.hpp"

namespace tunespace::expr {

using csp::Value;

static_assert(IntProgramBlock::kLanes == csp::Constraint::kMaxBlockLanes,
              "block VM lane width must match the Constraint block contract");

FunctionConstraint::FunctionConstraint(AstPtr expression, EvalMode mode)
    : Constraint(variables(*expression)), expr_(std::move(expression)), mode_(mode) {
  for (std::size_t i = 0; i < scope_.size(); ++i) name_to_scope_[scope_[i]] = i;
  if (mode_ == EvalMode::Compiled) {
    try {
      program_ = compile(expr_);
      program_slot_to_scope_.reserve(program_.var_names().size());
      for (const std::string& name : program_.var_names()) {
        program_slot_to_scope_.push_back(
            static_cast<std::uint32_t>(name_to_scope_.at(name)));
      }
    } catch (const CompileError&) {
      mode_ = EvalMode::Interpreted;  // graceful fallback for rare constructs
    }
  }
}

void FunctionConstraint::on_bound() {
  program_slot_to_global_.clear();
  program_slot_to_global_.reserve(program_slot_to_scope_.size());
  for (std::uint32_t scope_pos : program_slot_to_scope_) {
    program_slot_to_global_.push_back(indices_[scope_pos]);
  }
}

bool FunctionConstraint::satisfied(const Value* values) const {
  try {
    if (mode_ == EvalMode::Compiled) {
      return program_.run_bool(values, program_slot_to_global_.data());
    }
    // Interpreted: per-variable hash lookups, mirroring python dict access.
    const Env env = [&](const std::string& name) -> Value {
      auto it = name_to_scope_.find(name);
      if (it == name_to_scope_.end()) throw EvalError("unknown variable: " + name);
      return values[indices_[it->second]];
    };
    return eval_bool(*expr_, env);
  } catch (const EvalError&) {
    return false;  // raising constraints invalidate the configuration
  }
}

bool FunctionConstraint::try_specialize(const std::vector<const csp::Domain*>& domains) {
  if (mode_ != EvalMode::Compiled) return false;
  if (!csp::domains_all_int(domains)) return false;
  if (!int_program_) {
    // The lowering itself is the type-inference gate (expr::int_closed).
    auto lowered = IntProgram::lower(program_);
    if (!lowered) return false;
    int_program_ = std::move(*lowered);
  }
  if (!block_attempted_) {
    // Best-effort: the block lowering covers a subset of the scalar fast
    // path (jump-free constructs only); a refusal just leaves the inherited
    // scalar-sweep satisfied_block() in place.
    block_attempted_ = true;
    try {
      block_program_ = IntProgramBlock::lower(fold_constants(expr_),
                                              program_.var_names());
    } catch (const CompileError&) {
    }
  }
  return true;
}

void FunctionConstraint::satisfied_block(std::int64_t* values,
                                         std::uint32_t var,
                                         const std::int64_t* candidates,
                                         std::size_t n,
                                         unsigned char* mask) const {
  if (!block_program_) {
    Constraint::satisfied_block(values, var, candidates, n, mask);
    return;
  }
  std::int32_t varying_slot = -1;
  for (std::size_t s = 0; s < program_slot_to_global_.size(); ++s) {
    if (program_slot_to_global_[s] == var) {
      varying_slot = static_cast<std::int32_t>(s);
      break;
    }
  }
  unsigned char truth[IntProgramBlock::kLanes];
  unsigned char poison[IntProgramBlock::kLanes];
  block_program_->run(values, program_slot_to_global_.data(), varying_slot,
                      candidates, n, truth, poison);
  for (std::size_t i = 0; i < n; ++i) {
    if (!mask[i]) continue;
    if (poison[i]) {
      // Lane hit an escape condition (overflow, div-by-zero, ...): replay it
      // through the scalar chain, which ends at the boxed oracle.
      values[var] = candidates[i];
      if (!satisfied_fast(values)) mask[i] = 0;
    } else {
      mask[i] &= truth[i];
    }
  }
}

bool FunctionConstraint::satisfied_fast(const std::int64_t* values) const {
  bool result;
  if (int_program_->run_bool(values, program_slot_to_global_.data(), &result)) {
    return result;
  }
  // Poisoned: replay through the boxed evaluator, which implements the exact
  // escape semantics (EvalError -> configuration invalid, overflow -> real).
  // Poisoning need not be rare (e.g. overflow-heavy Pow domains), so box the
  // scope on the stack for the common small constraint.
  constexpr std::size_t kInlineScope = 8;
  if (scope_.size() <= kInlineScope) {
    Value scope_values[kInlineScope];
    for (std::size_t k = 0; k < scope_.size(); ++k) {
      scope_values[k] = Value(values[indices_[k]]);
    }
    return eval_scope_positional(scope_values);
  }
  std::vector<Value> scope_values(scope_.size());
  for (std::size_t k = 0; k < scope_.size(); ++k) {
    scope_values[k] = Value(values[indices_[k]]);
  }
  return eval_scope_positional(scope_values.data());
}

bool FunctionConstraint::eval_scope_positional(const Value* scope_values) const {
  try {
    if (mode_ == EvalMode::Compiled) {
      return program_.run_bool(scope_values, program_slot_to_scope_.data());
    }
    const Env env = [&](const std::string& name) -> Value {
      auto it = name_to_scope_.find(name);
      if (it == name_to_scope_.end()) throw EvalError("unknown variable: " + name);
      return scope_values[it->second];
    };
    return eval_bool(*expr_, env);
  } catch (const EvalError&) {
    return false;
  }
}

bool FunctionConstraint::preprocess(const std::vector<csp::Domain*>& domains) {
  if (scope_.size() != 1) return true;
  // Unary constraints are fully resolved by filtering the domain.
  domains[0]->filter([&](const Value& v) { return eval_scope_positional(&v); });
  return !domains[0]->empty();
}

std::string FunctionConstraint::describe() const {
  return "fn[" + std::string(mode_ == EvalMode::Compiled ? "compiled" : "interpreted") +
         "](" + expr_->to_string() + ")";
}

}  // namespace tunespace::expr
