#include "tunespace/util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace tunespace::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() <= headers_.size());
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string Table::str() const {
  std::ostringstream ss;
  print(ss);
  return ss.str();
}

void Table::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << quote(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
  return buf;
}

std::string fmt_seconds(double s) {
  char buf[64];
  if (s < 0) return "-" + fmt_seconds(-s);
  if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3g us", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3g ms", s * 1e3);
  } else if (s < 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.3g s", s);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3g h", s / 3600.0);
  }
  return buf;
}

std::string fmt_count(unsigned long long n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out += ',';
    out += digits[i];
  }
  return out;
}

std::string sparkline(const std::vector<double>& values) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty()) return {};
  double lo = values[0], hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double range = hi - lo;
  std::string out;
  for (double v : values) {
    int level = 0;
    if (range > 0) {
      level = static_cast<int>(std::floor((v - lo) / range * 7.999));
      level = std::clamp(level, 0, 7);
    }
    out += kLevels[level];
  }
  return out;
}

}  // namespace tunespace::util
