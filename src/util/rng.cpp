#include "tunespace/util/rng.hpp"

#include <cassert>
#include <cmath>

namespace tunespace::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit range
  // Unbiased rejection sampling (Lemire-style threshold).
  const std::uint64_t threshold = (0 - range) % range;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return lo + static_cast<std::int64_t>(r % range);
  }
}

std::size_t Rng::index(std::size_t n) {
  assert(n > 0);
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

bool Rng::chance(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  assert(k <= n);
  // Partial Fisher-Yates over an index vector; O(n) init, fine at our scales.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::split() {
  Rng child;
  child.reseed((*this)());
  return child;
}

}  // namespace tunespace::util
