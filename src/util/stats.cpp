#include "tunespace/util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tunespace::util {

namespace {

// Regularized incomplete beta function via continued fractions (Lentz),
// sufficient for the t-distribution p-values reported alongside fits.
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 200;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;
  const double qab = a + b, qap = a + 1.0, qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

double ibeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_beta = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b);
  const double front = std::exp(ln_beta + a * std::log(x) + b * std::log(1.0 - x));
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

// Two-sided p-value of a t statistic with df degrees of freedom.
double t_pvalue(double t, double df) {
  if (df <= 0.0) return 1.0;
  const double x = df / (df + t * t);
  return ibeta(df / 2.0, 0.5, x);
}

}  // namespace

LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size());
  LinearFit fit;
  fit.n = x.size();
  if (fit.n < 2) return fit;
  const double n = static_cast<double>(fit.n);
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < fit.n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < fit.n; ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  double ss_res = 0;
  for (std::size_t i = 0; i < fit.n; ++i) {
    const double e = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += e * e;
  }
  fit.r2 = (syy > 0.0) ? 1.0 - ss_res / syy : 1.0;
  if (fit.n > 2) {
    const double df = n - 2.0;
    const double se = std::sqrt((ss_res / df) / sxx);
    fit.p_value = (se > 0.0) ? t_pvalue(fit.slope / se, df) : 0.0;
  }
  return fit;
}

LinearFit loglog_fit(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size());
  std::vector<double> lx, ly;
  lx.reserve(x.size());
  ly.reserve(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] > 0.0 && y[i] > 0.0) {
      lx.push_back(std::log10(x[i]));
      ly.push_back(std::log10(y[i]));
    }
  }
  return linear_fit(lx, ly);
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size() - 1));
}

double quantile(std::vector<double> v, double q) {
  assert(!v.empty());
  std::sort(v.begin(), v.end());
  if (q <= 0.0) return v.front();
  if (q >= 1.0) return v.back();
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= v.size()) return v.back();
  return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

double median(const std::vector<double>& v) { return quantile(v, 0.5); }

Kde kde(const std::vector<double>& samples, std::size_t grid_points) {
  Kde out;
  if (samples.empty() || grid_points == 0) return out;
  const double sd = stddev(samples);
  const double n = static_cast<double>(samples.size());
  // Silverman's rule of thumb; fall back to a small width for degenerate data.
  double h = 1.06 * sd * std::pow(n, -0.2);
  if (h <= 0.0) h = 1e-3;
  out.bandwidth = h;
  double lo = samples[0], hi = samples[0];
  for (double s : samples) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  lo -= 3.0 * h;
  hi += 3.0 * h;
  out.grid.resize(grid_points);
  out.density.resize(grid_points);
  const double step =
      (grid_points > 1) ? (hi - lo) / static_cast<double>(grid_points - 1) : 0.0;
  const double norm = 1.0 / (n * h * std::sqrt(2.0 * M_PI));
  for (std::size_t g = 0; g < grid_points; ++g) {
    const double x = lo + step * static_cast<double>(g);
    double d = 0;
    for (double s : samples) {
      const double u = (x - s) / h;
      d += std::exp(-0.5 * u * u);
    }
    out.grid[g] = x;
    out.density[g] = d * norm;
  }
  return out;
}

Summary summarize(const std::vector<double>& v) {
  assert(!v.empty());
  Summary s;
  s.n = v.size();
  s.min = quantile(v, 0.0);
  s.q25 = quantile(v, 0.25);
  s.median = quantile(v, 0.5);
  s.q75 = quantile(v, 0.75);
  s.max = quantile(v, 1.0);
  s.mean = mean(v);
  return s;
}

}  // namespace tunespace::util
