#include "tunespace/util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

#include "tunespace/tuner/api.hpp"

namespace tunespace::util::json {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw ServiceError(ErrorCode::kProtocol, "json: " + message);
}

const std::string kEmptyString;
const Array kEmptyArray;
const Object kEmptyObject;
const Value kNullValue;

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);  // UTF-8 bytes pass through untouched
        }
    }
  }
  out += '"';
}

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

/// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value document() {
    Value value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(members));
    }
  }

  Value parse_array() {
    expect('[');
    Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (!consume_literal("\\u")) fail("unpaired surrogate");
            const std::uint32_t low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<std::uint32_t>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return cp;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("bad number");
    if (integral) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        return Value(value);
      }
      // Out of int64 range: fall through to double.
    }
    double value = 0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) fail("bad number");
    return Value(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value::Value(std::uint64_t v) {
  if (v <= static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
    kind_ = Kind::Int;
    int_ = static_cast<std::int64_t>(v);
  } else {
    kind_ = Kind::Double;
    double_ = static_cast<double>(v);
  }
}

bool Value::as_bool(bool fallback) const {
  return kind_ == Kind::Bool ? bool_ : fallback;
}

double Value::as_double(double fallback) const {
  if (kind_ == Kind::Int) return static_cast<double>(int_);
  if (kind_ == Kind::Double) return double_;
  return fallback;
}

std::int64_t Value::as_int(std::int64_t fallback) const {
  if (kind_ == Kind::Int) return int_;
  if (kind_ == Kind::Double) return static_cast<std::int64_t>(double_);
  return fallback;
}

std::uint64_t Value::as_uint(std::uint64_t fallback) const {
  if (kind_ == Kind::Int) {
    return int_ < 0 ? fallback : static_cast<std::uint64_t>(int_);
  }
  if (kind_ == Kind::Double) {
    return double_ < 0 ? fallback : static_cast<std::uint64_t>(double_);
  }
  return fallback;
}

const std::string& Value::as_string() const {
  return kind_ == Kind::String ? string_ : kEmptyString;
}

const Array& Value::items() const {
  return kind_ == Kind::Array ? array_ : kEmptyArray;
}

const Object& Value::members() const {
  return kind_ == Kind::Object ? object_ : kEmptyObject;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* value = find(key);
  return value != nullptr ? *value : kNullValue;
}

Value& Value::set(std::string key, Value value) {
  if (kind_ == Kind::Null) *this = Value(Object{});
  if (kind_ != Kind::Object) fail("set() on a non-object");
  for (auto& [name, existing] : object_) {
    if (name == key) {
      existing = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Value& Value::push(Value value) {
  if (kind_ == Kind::Null) *this = Value(Array{});
  if (kind_ != Kind::Array) fail("push() on a non-array");
  array_.push_back(std::move(value));
  return *this;
}

std::string Value::dump() const {
  std::string out;
  switch (kind_) {
    case Kind::Null: out = "null"; break;
    case Kind::Bool: out = bool_ ? "true" : "false"; break;
    case Kind::Int: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(int_));
      out = buf;
      break;
    }
    case Kind::Double: {
      if (!std::isfinite(double_)) {
        out = "null";  // JSON has no Inf/NaN; null is the conventional stand-in
        break;
      }
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g", double_);
      out = buf;
      break;
    }
    case Kind::String: append_escaped(out, string_); break;
    case Kind::Array: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        out += array_[i].dump();
      }
      out += ']';
      break;
    }
    case Kind::Object: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        append_escaped(out, object_[i].first);
        out += ':';
        out += object_[i].second.dump();
      }
      out += '}';
      break;
    }
  }
  return out;
}

Value Value::parse(std::string_view text) { return Parser(text).document(); }

}  // namespace tunespace::util::json
