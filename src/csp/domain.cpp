#include "tunespace/csp/domain.hpp"

#include <cassert>
#include <stdexcept>

namespace tunespace::csp {

Domain Domain::range(std::int64_t lo, std::int64_t hi, std::int64_t stride) {
  assert(stride > 0);
  std::vector<Value> v;
  for (std::int64_t x = lo; x <= hi; x += stride) v.emplace_back(x);
  return Domain(std::move(v));
}

Domain Domain::powers(std::int64_t lo, std::int64_t hi, std::int64_t base) {
  assert(lo > 0 && base > 1);
  std::vector<Value> v;
  for (std::int64_t x = lo; x <= hi; x *= base) v.emplace_back(x);
  return Domain(std::move(v));
}

std::size_t Domain::index_of(const Value& v) const {
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] == v) return i;
  }
  return npos;
}

const Value& Domain::min_value() const {
  if (values_.empty()) throw std::out_of_range("min_value of empty domain");
  std::size_t best = 0;
  for (std::size_t i = 1; i < values_.size(); ++i) {
    if (values_[i].compare(values_[best]) < 0) best = i;
  }
  return values_[best];
}

const Value& Domain::max_value() const {
  if (values_.empty()) throw std::out_of_range("max_value of empty domain");
  std::size_t best = 0;
  for (std::size_t i = 1; i < values_.size(); ++i) {
    if (values_[i].compare(values_[best]) > 0) best = i;
  }
  return values_[best];
}

bool Domain::all_numeric() const {
  for (const auto& v : values_) {
    if (!v.is_numeric()) return false;
  }
  return true;
}

bool Domain::all_positive() const {
  for (const auto& v : values_) {
    if (!v.is_numeric() || v.as_real() <= 0.0) return false;
  }
  return true;
}

bool Domain::int_mirror(std::vector<std::int64_t>& out) const {
  out.clear();
  for (const auto& v : values_) {
    if (v.is_real() || v.is_str()) {
      out.clear();
      return false;
    }
  }
  out.reserve(values_.size());
  for (const auto& v : values_) out.push_back(v.as_int());
  return true;
}

}  // namespace tunespace::csp
