#include "tunespace/csp/int_set.hpp"

#include <algorithm>

namespace tunespace::csp {

namespace {

/// Maximum value span for which a set is lowered to a bitset instead of a
/// sorted array (64 words = 4096 possible values).
constexpr std::int64_t kBitsetSpanLimit = 4096;

}  // namespace

bool IntValueSet::lower(const std::vector<Value>& values) {
  sorted.clear();
  bits.clear();
  base = 0;
  sorted.reserve(values.size());
  for (const Value& v : values) {
    switch (v.kind()) {
      case ValueKind::Int:
      case ValueKind::Bool:
        sorted.push_back(v.as_int());
        break;
      case ValueKind::Str:
        break;  // str == int is exactly false; element is unreachable
      case ValueKind::Real:
        sorted.clear();
        return false;
    }
  }
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  if (!sorted.empty()) {
    const std::int64_t lo = sorted.front(), hi = sorted.back();
    // hi - lo can overflow for extreme elements; guard via unsigned math.
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
    if (span < static_cast<std::uint64_t>(kBitsetSpanLimit)) {
      base = lo;
      bits.assign((span / 64) + 1, 0);
      for (std::int64_t v : sorted) {
        const std::uint64_t off =
            static_cast<std::uint64_t>(v) - static_cast<std::uint64_t>(lo);
        bits[off / 64] |= std::uint64_t{1} << (off % 64);
      }
    }
  }
  return true;
}

bool IntValueSet::contains(std::int64_t v) const {
  if (!bits.empty()) {
    const std::uint64_t off =
        static_cast<std::uint64_t>(v) - static_cast<std::uint64_t>(base);
    if (off >= static_cast<std::uint64_t>(bits.size()) * 64) return false;
    return (bits[off / 64] >> (off % 64)) & 1;
  }
  return std::binary_search(sorted.begin(), sorted.end(), v);
}

}  // namespace tunespace::csp
