#include "tunespace/csp/problem.hpp"

#include <limits>

namespace tunespace::csp {

std::size_t Problem::add_variable(std::string name, Domain domain) {
  if (index_.count(name)) {
    throw std::invalid_argument("duplicate variable: " + name);
  }
  const std::size_t idx = names_.size();
  index_.emplace(name, idx);
  names_.push_back(std::move(name));
  domains_.push_back(std::move(domain));
  return idx;
}

void Problem::add_constraint(ConstraintPtr constraint) {
  std::vector<std::uint32_t> indices;
  indices.reserve(constraint->scope().size());
  for (const std::string& var : constraint->scope()) {
    indices.push_back(static_cast<std::uint32_t>(index_of(var)));
  }
  constraint->bind(std::move(indices));
  constraints_.push_back(std::move(constraint));
}

std::size_t Problem::index_of(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) throw std::out_of_range("unknown variable: " + name);
  return it->second;
}

bool Problem::has_variable(const std::string& name) const {
  return index_.count(name) != 0;
}

std::vector<std::size_t> Problem::constraint_counts() const {
  std::vector<std::size_t> counts(names_.size(), 0);
  for (const auto& c : constraints_) {
    for (std::uint32_t idx : c->indices()) counts[idx]++;
  }
  return counts;
}

std::uint64_t Problem::cartesian_size() const {
  std::uint64_t size = 1;
  for (const auto& d : domains_) {
    if (d.empty()) return 0;
    const std::uint64_t n = d.size();
    if (size > std::numeric_limits<std::uint64_t>::max() / n) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    size *= n;
  }
  return size;
}

std::string Problem::config_to_string(const Config& config) const {
  std::string out;
  for (std::size_t i = 0; i < config.size() && i < names_.size(); ++i) {
    if (i) out += ", ";
    out += names_[i] + "=" + config[i].to_string();
  }
  return out;
}

bool Problem::config_valid(const Config& config) const {
  if (config.size() != names_.size()) return false;
  for (const auto& c : constraints_) {
    if (!c->satisfied(config.data())) return false;
  }
  return true;
}

}  // namespace tunespace::csp
