#include "tunespace/csp/value.hpp"

#include <cmath>
#include <cstdio>

namespace tunespace::csp {

std::int64_t Value::as_int() const {
  switch (kind_) {
    case ValueKind::Int:
      return u_.i;
    case ValueKind::Bool:
      return u_.b ? 1 : 0;
    case ValueKind::Real:
      // Allow exact integral reals to be read as ints (mirrors Python's
      // operator.index tolerance in practice for e.g. 4.0 used as a size).
      if (std::nearbyint(u_.d) == u_.d) return static_cast<std::int64_t>(u_.d);
      throw ValueError("non-integral real used as int: " + to_string());
    case ValueKind::Str:
      throw ValueError("string used as int: " + to_string());
  }
  throw ValueError("corrupt value kind");
}

double Value::as_real() const {
  switch (kind_) {
    case ValueKind::Int:
      return static_cast<double>(u_.i);
    case ValueKind::Real:
      return u_.d;
    case ValueKind::Bool:
      return u_.b ? 1.0 : 0.0;
    case ValueKind::Str:
      throw ValueError("string used as number: " + to_string());
  }
  throw ValueError("corrupt value kind");
}

bool Value::truthy() const {
  switch (kind_) {
    case ValueKind::Int:
      return u_.i != 0;
    case ValueKind::Real:
      return u_.d != 0.0;
    case ValueKind::Bool:
      return u_.b;
    case ValueKind::Str:
      return !s_.empty();
  }
  return false;
}

const std::string& Value::as_str() const {
  if (kind_ != ValueKind::Str) throw ValueError("number used as string: " + to_string());
  return s_;
}

bool Value::operator==(const Value& o) const {
  if (is_str() != o.is_str()) return false;
  if (is_str()) return s_ == o.s_;
  // Fast path for the common int-int case.
  if (kind_ == ValueKind::Int && o.kind_ == ValueKind::Int) return u_.i == o.u_.i;
  return as_real() == o.as_real();
}

int Value::compare(const Value& o) const {
  if (is_str() && o.is_str()) {
    const int c = s_.compare(o.s_);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (is_str() || o.is_str()) {
    throw ValueError("unorderable: " + to_string() + " vs " + o.to_string());
  }
  if (kind_ == ValueKind::Int && o.kind_ == ValueKind::Int) {
    return u_.i < o.u_.i ? -1 : (u_.i > o.u_.i ? 1 : 0);
  }
  const double a = as_real(), b = o.as_real();
  return a < b ? -1 : (a > b ? 1 : 0);
}

std::size_t Value::hash() const {
  if (is_str()) return std::hash<std::string>{}(s_);
  // Hash numerics through double so 1 == 1.0 == true hash equal; integral
  // doubles hash like their int64 counterpart to keep int hashing cheap.
  if (kind_ == ValueKind::Int) return std::hash<std::int64_t>{}(u_.i);
  const double d = as_real();
  if (std::nearbyint(d) == d && std::fabs(d) < 9.2e18) {
    return std::hash<std::int64_t>{}(static_cast<std::int64_t>(d));
  }
  return std::hash<double>{}(d);
}

std::string Value::to_string() const {
  char buf[64];
  switch (kind_) {
    case ValueKind::Int:
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(u_.i));
      return buf;
    case ValueKind::Real:
      std::snprintf(buf, sizeof(buf), "%g", u_.d);
      return buf;
    case ValueKind::Bool:
      return u_.b ? "True" : "False";
    case ValueKind::Str:
      return "'" + s_ + "'";
  }
  return "?";
}

}  // namespace tunespace::csp
