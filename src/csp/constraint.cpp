#include "tunespace/csp/constraint.hpp"

#include <cassert>

namespace tunespace::csp {

void Constraint::bind(std::vector<std::uint32_t> indices) {
  assert(indices.size() == scope_.size());
  indices_ = std::move(indices);
  on_bound();
}

void Constraint::prepare(const std::vector<const Domain*>& domains) {
  (void)domains;
}

bool Constraint::consistent(const Value* values, const unsigned char* assigned) const {
  // Generic constraints can only be evaluated once fully assigned.
  if (!all_assigned(assigned)) return true;
  return satisfied(values);
}

bool Constraint::preprocess(const std::vector<Domain*>& domains) {
  (void)domains;
  return true;
}

}  // namespace tunespace::csp
