#include "tunespace/csp/constraint.hpp"

#include <cassert>

namespace tunespace::csp {

void Constraint::bind(std::vector<std::uint32_t> indices) {
  assert(indices.size() == scope_.size());
  indices_ = std::move(indices);
  on_bound();
}

void Constraint::prepare(const std::vector<const Domain*>& domains) {
  (void)domains;
}

bool Constraint::consistent(const Value* values, const unsigned char* assigned) const {
  // Generic constraints can only be evaluated once fully assigned.
  if (!all_assigned(assigned)) return true;
  return satisfied(values);
}

bool Constraint::preprocess(const std::vector<Domain*>& domains) {
  (void)domains;
  return true;
}

bool Constraint::try_specialize(const std::vector<const Domain*>& domains) {
  (void)domains;
  return false;
}

bool Constraint::satisfied_fast(const std::int64_t* values) const {
  // Only reachable when a solver ignores the try_specialize() contract.
  (void)values;
  assert(false && "satisfied_fast called on a non-specialized constraint");
  return false;
}

bool Constraint::consistent_fast(const std::int64_t* values,
                                 const unsigned char* assigned) const {
  if (!all_assigned(assigned)) return true;
  return satisfied_fast(values);
}

void Constraint::satisfied_block(std::int64_t* values, std::uint32_t var,
                                 const std::int64_t* candidates, std::size_t n,
                                 unsigned char* mask) const {
  // Default: scalar sweep over the fast tier.  Same results as a true block
  // implementation, just without the lane-parallel inner loops.
  for (std::size_t i = 0; i < n; ++i) {
    if (!mask[i]) continue;
    values[var] = candidates[i];
    if (!satisfied_fast(values)) mask[i] = 0;
  }
}

void Constraint::consistent_block(std::int64_t* values,
                                  const unsigned char* assigned,
                                  std::uint32_t var,
                                  const std::int64_t* candidates, std::size_t n,
                                  unsigned char* mask) const {
  for (std::size_t i = 0; i < n; ++i) {
    if (!mask[i]) continue;
    values[var] = candidates[i];
    if (!consistent_fast(values, assigned)) mask[i] = 0;
  }
}

bool domains_all_int(const std::vector<const Domain*>& domains) {
  for (const Domain* d : domains) {
    for (const Value& v : d->values()) {
      if (v.is_real() || v.is_str()) return false;
    }
  }
  return true;
}

}  // namespace tunespace::csp
