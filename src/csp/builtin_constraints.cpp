#include "tunespace/csp/builtin_constraints.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace tunespace::csp {

const char* cmp_op_name(CmpOp op) {
  switch (op) {
    case CmpOp::Lt: return "<";
    case CmpOp::Le: return "<=";
    case CmpOp::Gt: return ">";
    case CmpOp::Ge: return ">=";
    case CmpOp::Eq: return "==";
    case CmpOp::Ne: return "!=";
  }
  return "?";
}

bool cmp_holds(CmpOp op, int three_way) {
  switch (op) {
    case CmpOp::Lt: return three_way < 0;
    case CmpOp::Le: return three_way <= 0;
    case CmpOp::Gt: return three_way > 0;
    case CmpOp::Ge: return three_way >= 0;
    case CmpOp::Eq: return three_way == 0;
    case CmpOp::Ne: return three_way != 0;
  }
  return false;
}

namespace {

int three_way(double a, double b) { return a < b ? -1 : (a > b ? 1 : 0); }

/// Can any total in [lo, hi] satisfy `total <op> bound`?  The partial-check
/// rule shared by the product/sum constraints in both evaluation tiers.
bool range_cmp_holds(CmpOp op, double lo, double hi, double bound) {
  switch (op) {
    case CmpOp::Le: return lo <= bound;
    case CmpOp::Lt: return lo < bound;
    case CmpOp::Ge: return hi >= bound;
    case CmpOp::Gt: return hi > bound;
    case CmpOp::Eq: return lo <= bound && hi >= bound;
    case CmpOp::Ne: return !(lo == bound && hi == bound);
  }
  return true;
}

/// Bound the achievable product range given a partial assignment: assigned
/// variables contribute their value (via `get`, the only difference between
/// the boxed and int64 tiers), unassigned ones their domain extremes.
/// Positivity makes both bounds monotone products.
template <typename GetValue>
bool product_range_ok(CmpOp op, double bound, double coeff,
                      const std::vector<std::uint32_t>& indices,
                      const unsigned char* assigned,
                      const std::vector<double>& min_v,
                      const std::vector<double>& max_v, GetValue get) {
  double lo = coeff, hi = coeff;
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const std::uint32_t idx = indices[k];
    if (assigned[idx]) {
      const double v = get(idx);
      lo *= v;
      hi *= v;
    } else {
      lo *= min_v[k];
      hi *= max_v[k];
    }
  }
  return range_cmp_holds(op, lo, hi, bound);
}

/// Weighted-sum analogue of product_range_ok.
template <typename GetValue>
bool sum_range_ok(CmpOp op, double bound, const std::vector<double>& weights,
                  const std::vector<std::uint32_t>& indices,
                  const unsigned char* assigned,
                  const std::vector<double>& min_c,
                  const std::vector<double>& max_c, GetValue get) {
  double lo = 0, hi = 0;
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const std::uint32_t idx = indices[k];
    if (assigned[idx]) {
      const double c = weights[k] * get(idx);
      lo += c;
      hi += c;
    } else {
      lo += min_c[k];
      hi += max_c[k];
    }
  }
  return range_cmp_holds(op, lo, hi, bound);
}

/// Does b divide a, treating b == 0 as "never" (Python raises on x % 0; the
/// configuration is invalid) and b == -1 as "always" (also avoids the
/// INT64_MIN % -1 hardware trap)?  Shared by every Divisibility check site.
bool int_divides(std::int64_t a, std::int64_t b) {
  if (b == 0) return false;
  if (b == -1) return true;
  return a % b == 0;
}

// --- block-tier lane helpers -----------------------------------------------
// Each helper hoists the operator switch out of the lane loop so the body is
// a constant-trip, branch-free masked update the compiler can vectorize.
// The comparison forms mirror the scalar helpers exactly (cmp_holds over
// three_way, range_cmp_holds), including their NaN behaviour, so block and
// scalar verdicts agree bit-for-bit.

/// mask[i] &= cmp_holds(op, three_way(lane[i], bound)).
void mask_cmp_bound(CmpOp op, const double* lane, double bound, std::size_t n,
                    unsigned char* mask) {
  switch (op) {
    case CmpOp::Lt:
      for (std::size_t i = 0; i < n; ++i)
        mask[i] &= static_cast<unsigned char>(lane[i] < bound);
      break;
    case CmpOp::Le:
      for (std::size_t i = 0; i < n; ++i)
        mask[i] &= static_cast<unsigned char>(!(lane[i] > bound));
      break;
    case CmpOp::Gt:
      for (std::size_t i = 0; i < n; ++i)
        mask[i] &= static_cast<unsigned char>(lane[i] > bound);
      break;
    case CmpOp::Ge:
      for (std::size_t i = 0; i < n; ++i)
        mask[i] &= static_cast<unsigned char>(!(lane[i] < bound));
      break;
    case CmpOp::Eq:
      for (std::size_t i = 0; i < n; ++i)
        mask[i] &= static_cast<unsigned char>(!(lane[i] < bound) && !(lane[i] > bound));
      break;
    case CmpOp::Ne:
      for (std::size_t i = 0; i < n; ++i)
        mask[i] &= static_cast<unsigned char>(lane[i] < bound || lane[i] > bound);
      break;
  }
}

/// mask[i] &= range_cmp_holds(op, lo[i], hi[i], bound).
void mask_range_bound(CmpOp op, const double* lo, const double* hi, double bound,
                      std::size_t n, unsigned char* mask) {
  switch (op) {
    case CmpOp::Le:
      for (std::size_t i = 0; i < n; ++i)
        mask[i] &= static_cast<unsigned char>(lo[i] <= bound);
      break;
    case CmpOp::Lt:
      for (std::size_t i = 0; i < n; ++i)
        mask[i] &= static_cast<unsigned char>(lo[i] < bound);
      break;
    case CmpOp::Ge:
      for (std::size_t i = 0; i < n; ++i)
        mask[i] &= static_cast<unsigned char>(hi[i] >= bound);
      break;
    case CmpOp::Gt:
      for (std::size_t i = 0; i < n; ++i)
        mask[i] &= static_cast<unsigned char>(hi[i] > bound);
      break;
    case CmpOp::Eq:
      for (std::size_t i = 0; i < n; ++i)
        mask[i] &= static_cast<unsigned char>(lo[i] <= bound && hi[i] >= bound);
      break;
    case CmpOp::Ne:
      for (std::size_t i = 0; i < n; ++i)
        mask[i] &= static_cast<unsigned char>(!(lo[i] == bound && hi[i] == bound));
      break;
  }
}

/// mask[i] &= (a[i] <op> b[i]) over int64 lanes.
void mask_cmp_lanes(CmpOp op, const std::int64_t* a, const std::int64_t* b,
                    std::size_t n, unsigned char* mask) {
  switch (op) {
    case CmpOp::Lt:
      for (std::size_t i = 0; i < n; ++i)
        mask[i] &= static_cast<unsigned char>(a[i] < b[i]);
      break;
    case CmpOp::Le:
      for (std::size_t i = 0; i < n; ++i)
        mask[i] &= static_cast<unsigned char>(a[i] <= b[i]);
      break;
    case CmpOp::Gt:
      for (std::size_t i = 0; i < n; ++i)
        mask[i] &= static_cast<unsigned char>(a[i] > b[i]);
      break;
    case CmpOp::Ge:
      for (std::size_t i = 0; i < n; ++i)
        mask[i] &= static_cast<unsigned char>(a[i] >= b[i]);
      break;
    case CmpOp::Eq:
      for (std::size_t i = 0; i < n; ++i)
        mask[i] &= static_cast<unsigned char>(a[i] == b[i]);
      break;
    case CmpOp::Ne:
      for (std::size_t i = 0; i < n; ++i)
        mask[i] &= static_cast<unsigned char>(a[i] != b[i]);
      break;
  }
}

std::string join_scope(const std::vector<std::string>& scope, const char* sep) {
  std::string out;
  for (std::size_t i = 0; i < scope.size(); ++i) {
    if (i) out += sep;
    out += scope[i];
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// ProductConstraint
// ---------------------------------------------------------------------------

ProductConstraint::ProductConstraint(CmpOp op, double bound,
                                     std::vector<std::string> scope, double coeff)
    : Constraint(std::move(scope)), op_(op), bound_(bound), coeff_(coeff) {
  assert(!scope_.empty());
  assert(coeff_ > 0.0 && "negative coefficients flip monotonicity; not supported");
}

void ProductConstraint::prepare(const std::vector<const Domain*>& domains) {
  assert(domains.size() == scope_.size());
  monotone_ = true;
  min_v_.assign(domains.size(), 1.0);
  max_v_.assign(domains.size(), 1.0);
  for (std::size_t i = 0; i < domains.size(); ++i) {
    if (!domains[i]->all_positive() || domains[i]->empty()) {
      monotone_ = false;
      return;
    }
    min_v_[i] = domains[i]->min_value().as_real();
    max_v_[i] = domains[i]->max_value().as_real();
  }
}

double ProductConstraint::product(const Value* values) const {
  double p = coeff_;
  for (std::uint32_t idx : indices_) p *= values[idx].as_real();
  return p;
}

bool ProductConstraint::satisfied(const Value* values) const {
  return cmp_holds(op_, three_way(product(values), bound_));
}

bool ProductConstraint::consistent(const Value* values,
                                   const unsigned char* assigned) const {
  if (!monotone_) {
    if (!all_assigned(assigned)) return true;
    return satisfied(values);
  }
  return product_range_ok(op_, bound_, coeff_, indices_, assigned, min_v_,
                          max_v_,
                          [&](std::uint32_t idx) { return values[idx].as_real(); });
}

bool ProductConstraint::try_specialize(const std::vector<const Domain*>& domains) {
  return domains_all_int(domains);
}

bool ProductConstraint::satisfied_fast(const std::int64_t* values) const {
  // Same double accumulation as the boxed path (as_real of an int64 is the
  // identical conversion), so both paths agree bit-for-bit.
  double p = coeff_;
  for (std::uint32_t idx : indices_) p *= static_cast<double>(values[idx]);
  return cmp_holds(op_, three_way(p, bound_));
}

bool ProductConstraint::consistent_fast(const std::int64_t* values,
                                        const unsigned char* assigned) const {
  if (!monotone_) {
    if (!all_assigned(assigned)) return true;
    return satisfied_fast(values);
  }
  return product_range_ok(
      op_, bound_, coeff_, indices_, assigned, min_v_, max_v_,
      [&](std::uint32_t idx) { return static_cast<double>(values[idx]); });
}

void ProductConstraint::satisfied_block(std::int64_t* values, std::uint32_t var,
                                        const std::int64_t* candidates,
                                        std::size_t n, unsigned char* mask) const {
  double lane[kMaxBlockLanes];
  for (std::size_t i = 0; i < n; ++i) lane[i] = coeff_;
  // Multiply in indices_ order so every lane reproduces satisfied_fast's
  // double rounding bit-for-bit.
  for (std::uint32_t idx : indices_) {
    if (idx == var) {
      for (std::size_t i = 0; i < n; ++i)
        lane[i] *= static_cast<double>(candidates[i]);
    } else {
      const double v = static_cast<double>(values[idx]);
      for (std::size_t i = 0; i < n; ++i) lane[i] *= v;
    }
  }
  mask_cmp_bound(op_, lane, bound_, n, mask);
}

void ProductConstraint::consistent_block(std::int64_t* values,
                                         const unsigned char* assigned,
                                         std::uint32_t var,
                                         const std::int64_t* candidates,
                                         std::size_t n,
                                         unsigned char* mask) const {
  if (!monotone_) {
    if (!all_assigned(assigned)) return;  // no pruning possible yet
    satisfied_block(values, var, candidates, n, mask);
    return;
  }
  double lo[kMaxBlockLanes], hi[kMaxBlockLanes];
  for (std::size_t i = 0; i < n; ++i) {
    lo[i] = coeff_;
    hi[i] = coeff_;
  }
  for (std::size_t k = 0; k < indices_.size(); ++k) {
    const std::uint32_t idx = indices_[k];
    if (idx == var) {
      for (std::size_t i = 0; i < n; ++i) {
        const double v = static_cast<double>(candidates[i]);
        lo[i] *= v;
        hi[i] *= v;
      }
    } else if (assigned[idx]) {
      const double v = static_cast<double>(values[idx]);
      for (std::size_t i = 0; i < n; ++i) {
        lo[i] *= v;
        hi[i] *= v;
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        lo[i] *= min_v_[k];
        hi[i] *= max_v_[k];
      }
    }
  }
  mask_range_bound(op_, lo, hi, bound_, n, mask);
}

bool ProductConstraint::preprocess(const std::vector<Domain*>& domains) {
  assert(domains.size() == scope_.size());
  // Only prune when every domain is strictly positive (monotone case).
  for (const Domain* d : domains) {
    if (!d->all_positive()) return true;
  }
  // For each variable, compute the product of the other variables' domain
  // extremes, then remove values that cannot satisfy the bound even with the
  // most favourable completion.
  for (std::size_t k = 0; k < domains.size(); ++k) {
    double min_rest = coeff_, max_rest = coeff_;
    for (std::size_t j = 0; j < domains.size(); ++j) {
      if (j == k) continue;
      if (domains[j]->empty()) return false;
      min_rest *= domains[j]->min_value().as_real();
      max_rest *= domains[j]->max_value().as_real();
    }
    domains[k]->filter([&](const Value& v) {
      const double x = v.as_real();
      switch (op_) {
        case CmpOp::Le: return x * min_rest <= bound_;
        case CmpOp::Lt: return x * min_rest < bound_;
        case CmpOp::Ge: return x * max_rest >= bound_;
        case CmpOp::Gt: return x * max_rest > bound_;
        case CmpOp::Eq: return x * min_rest <= bound_ && x * max_rest >= bound_;
        case CmpOp::Ne: return true;  // cannot prune pointwise
      }
      return true;
    });
    if (domains[k]->empty()) return false;
  }
  return true;
}

std::string ProductConstraint::describe() const {
  std::ostringstream ss;
  if (coeff_ != 1.0) ss << coeff_ << "*";
  ss << join_scope(scope_, "*") << " " << cmp_op_name(op_) << " " << bound_;
  return ss.str();
}

// ---------------------------------------------------------------------------
// SumConstraint
// ---------------------------------------------------------------------------

SumConstraint::SumConstraint(CmpOp op, double bound, std::vector<std::string> scope)
    : Constraint(std::move(scope)), op_(op), bound_(bound),
      weights_(scope_.size(), 1.0) {
  assert(!scope_.empty());
}

SumConstraint::SumConstraint(CmpOp op, double bound, std::vector<std::string> scope,
                             std::vector<double> weights)
    : Constraint(std::move(scope)), op_(op), bound_(bound),
      weights_(std::move(weights)) {
  assert(weights_.size() == scope_.size());
}

void SumConstraint::prepare(const std::vector<const Domain*>& domains) {
  assert(domains.size() == scope_.size());
  prepared_ = true;
  min_c_.assign(domains.size(), 0.0);
  max_c_.assign(domains.size(), 0.0);
  for (std::size_t i = 0; i < domains.size(); ++i) {
    if (domains[i]->empty() || !domains[i]->all_numeric()) {
      prepared_ = false;
      return;
    }
    const double lo = domains[i]->min_value().as_real();
    const double hi = domains[i]->max_value().as_real();
    const double w = weights_[i];
    // Negative weights swap which extreme minimizes the contribution.
    min_c_[i] = w >= 0 ? w * lo : w * hi;
    max_c_[i] = w >= 0 ? w * hi : w * lo;
  }
}

double SumConstraint::total(const Value* values) const {
  double s = 0;
  for (std::size_t k = 0; k < indices_.size(); ++k) {
    s += weights_[k] * values[indices_[k]].as_real();
  }
  return s;
}

bool SumConstraint::satisfied(const Value* values) const {
  return cmp_holds(op_, three_way(total(values), bound_));
}

bool SumConstraint::consistent(const Value* values,
                               const unsigned char* assigned) const {
  if (!prepared_) {
    if (!all_assigned(assigned)) return true;
    return satisfied(values);
  }
  return sum_range_ok(op_, bound_, weights_, indices_, assigned, min_c_, max_c_,
                      [&](std::uint32_t idx) { return values[idx].as_real(); });
}

bool SumConstraint::try_specialize(const std::vector<const Domain*>& domains) {
  return domains_all_int(domains);
}

bool SumConstraint::satisfied_fast(const std::int64_t* values) const {
  double s = 0;
  for (std::size_t k = 0; k < indices_.size(); ++k) {
    s += weights_[k] * static_cast<double>(values[indices_[k]]);
  }
  return cmp_holds(op_, three_way(s, bound_));
}

bool SumConstraint::consistent_fast(const std::int64_t* values,
                                    const unsigned char* assigned) const {
  if (!prepared_) {
    if (!all_assigned(assigned)) return true;
    return satisfied_fast(values);
  }
  return sum_range_ok(
      op_, bound_, weights_, indices_, assigned, min_c_, max_c_,
      [&](std::uint32_t idx) { return static_cast<double>(values[idx]); });
}

void SumConstraint::satisfied_block(std::int64_t* values, std::uint32_t var,
                                   const std::int64_t* candidates, std::size_t n,
                                   unsigned char* mask) const {
  double lane[kMaxBlockLanes];
  for (std::size_t i = 0; i < n; ++i) lane[i] = 0.0;
  for (std::size_t k = 0; k < indices_.size(); ++k) {
    const std::uint32_t idx = indices_[k];
    if (idx == var) {
      const double w = weights_[k];
      for (std::size_t i = 0; i < n; ++i)
        lane[i] += w * static_cast<double>(candidates[i]);
    } else {
      const double c = weights_[k] * static_cast<double>(values[idx]);
      for (std::size_t i = 0; i < n; ++i) lane[i] += c;
    }
  }
  mask_cmp_bound(op_, lane, bound_, n, mask);
}

void SumConstraint::consistent_block(std::int64_t* values,
                                     const unsigned char* assigned,
                                     std::uint32_t var,
                                     const std::int64_t* candidates,
                                     std::size_t n, unsigned char* mask) const {
  if (!prepared_) {
    if (!all_assigned(assigned)) return;
    satisfied_block(values, var, candidates, n, mask);
    return;
  }
  double lo[kMaxBlockLanes], hi[kMaxBlockLanes];
  for (std::size_t i = 0; i < n; ++i) {
    lo[i] = 0.0;
    hi[i] = 0.0;
  }
  for (std::size_t k = 0; k < indices_.size(); ++k) {
    const std::uint32_t idx = indices_[k];
    if (idx == var) {
      const double w = weights_[k];
      for (std::size_t i = 0; i < n; ++i) {
        const double c = w * static_cast<double>(candidates[i]);
        lo[i] += c;
        hi[i] += c;
      }
    } else if (assigned[idx]) {
      const double c = weights_[k] * static_cast<double>(values[idx]);
      for (std::size_t i = 0; i < n; ++i) {
        lo[i] += c;
        hi[i] += c;
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        lo[i] += min_c_[k];
        hi[i] += max_c_[k];
      }
    }
  }
  mask_range_bound(op_, lo, hi, bound_, n, mask);
}

bool SumConstraint::preprocess(const std::vector<Domain*>& domains) {
  assert(domains.size() == scope_.size());
  for (const Domain* d : domains) {
    if (d->empty() || !d->all_numeric()) return !d->empty();
  }
  for (std::size_t k = 0; k < domains.size(); ++k) {
    double min_rest = 0, max_rest = 0;
    for (std::size_t j = 0; j < domains.size(); ++j) {
      if (j == k) continue;
      const double lo = domains[j]->min_value().as_real();
      const double hi = domains[j]->max_value().as_real();
      const double w = weights_[j];
      min_rest += w >= 0 ? w * lo : w * hi;
      max_rest += w >= 0 ? w * hi : w * lo;
    }
    const double w = weights_[k];
    domains[k]->filter([&](const Value& v) {
      const double c = w * v.as_real();
      switch (op_) {
        case CmpOp::Le: return c + min_rest <= bound_;
        case CmpOp::Lt: return c + min_rest < bound_;
        case CmpOp::Ge: return c + max_rest >= bound_;
        case CmpOp::Gt: return c + max_rest > bound_;
        case CmpOp::Eq: return c + min_rest <= bound_ && c + max_rest >= bound_;
        case CmpOp::Ne: return true;
      }
      return true;
    });
    if (domains[k]->empty()) return false;
  }
  return true;
}

std::string SumConstraint::describe() const {
  std::ostringstream ss;
  for (std::size_t i = 0; i < scope_.size(); ++i) {
    if (i) ss << " + ";
    if (weights_[i] != 1.0) ss << weights_[i] << "*";
    ss << scope_[i];
  }
  ss << " " << cmp_op_name(op_) << " " << bound_;
  return ss.str();
}

// ---------------------------------------------------------------------------
// VarComparison
// ---------------------------------------------------------------------------

VarComparison::VarComparison(std::string a, CmpOp op, std::string b)
    : Constraint({std::move(a), std::move(b)}), op_(op) {}

bool VarComparison::satisfied(const Value* values) const {
  return cmp_holds(op_, values[indices_[0]].compare(values[indices_[1]]));
}

bool VarComparison::preprocess(const std::vector<Domain*>& domains) {
  assert(domains.size() == 2);
  Domain* da = domains[0];
  Domain* db = domains[1];
  if (da->empty() || db->empty()) return false;
  if (!da->all_numeric() || !db->all_numeric()) return true;
  switch (op_) {
    case CmpOp::Lt:
    case CmpOp::Le: {
      const Value b_max = db->max_value();
      const Value a_min = da->min_value();
      const bool strict = op_ == CmpOp::Lt;
      da->filter([&](const Value& v) {
        const int c = v.compare(b_max);
        return strict ? c < 0 : c <= 0;
      });
      db->filter([&](const Value& v) {
        const int c = a_min.compare(v);
        return strict ? c < 0 : c <= 0;
      });
      break;
    }
    case CmpOp::Gt:
    case CmpOp::Ge: {
      const Value b_min = db->min_value();
      const Value a_max = da->max_value();
      const bool strict = op_ == CmpOp::Gt;
      da->filter([&](const Value& v) {
        const int c = v.compare(b_min);
        return strict ? c > 0 : c >= 0;
      });
      db->filter([&](const Value& v) {
        const int c = a_max.compare(v);
        return strict ? c > 0 : c >= 0;
      });
      break;
    }
    case CmpOp::Eq: {
      // Keep only the intersection on both sides.
      da->filter([&](const Value& v) { return db->contains(v); });
      db->filter([&](const Value& v) { return da->contains(v); });
      break;
    }
    case CmpOp::Ne: {
      // Only prunable when the other side is a singleton.
      if (db->size() == 1) {
        const Value only = (*db)[0];
        da->filter([&](const Value& v) { return !(v == only); });
      }
      if (da->size() == 1) {
        const Value only = (*da)[0];
        db->filter([&](const Value& v) { return !(v == only); });
      }
      break;
    }
  }
  return !da->empty() && !db->empty();
}

bool VarComparison::try_specialize(const std::vector<const Domain*>& domains) {
  return domains_all_int(domains);
}

bool VarComparison::satisfied_fast(const std::int64_t* values) const {
  const std::int64_t a = values[indices_[0]], b = values[indices_[1]];
  return cmp_holds(op_, a < b ? -1 : (a > b ? 1 : 0));
}

void VarComparison::satisfied_block(std::int64_t* values, std::uint32_t var,
                                    const std::int64_t* candidates,
                                    std::size_t n, unsigned char* mask) const {
  std::int64_t av[kMaxBlockLanes], bv[kMaxBlockLanes];
  const bool a_var = indices_[0] == var;
  const bool b_var = indices_[1] == var;
  for (std::size_t i = 0; i < n; ++i)
    av[i] = a_var ? candidates[i] : values[indices_[0]];
  for (std::size_t i = 0; i < n; ++i)
    bv[i] = b_var ? candidates[i] : values[indices_[1]];
  mask_cmp_lanes(op_, av, bv, n, mask);
}

std::string VarComparison::describe() const {
  return scope_[0] + " " + cmp_op_name(op_) + " " + scope_[1];
}

// ---------------------------------------------------------------------------
// Divisibility
// ---------------------------------------------------------------------------

Divisibility::Divisibility(std::string a, std::string b)
    : Constraint({std::move(a), std::move(b)}) {}

Divisibility::Divisibility(std::string a, std::int64_t divisor)
    : Constraint({std::move(a)}), const_divisor_(divisor) {
  assert(divisor != 0);
}

bool Divisibility::satisfied(const Value* values) const {
  const std::int64_t a = values[indices_[0]].as_int();
  const std::int64_t b = const_divisor_ ? *const_divisor_ : values[indices_[1]].as_int();
  return int_divides(a, b);
}

bool Divisibility::preprocess(const std::vector<Domain*>& domains) {
  if (const_divisor_) {
    domains[0]->filter([&](const Value& v) {
      return v.is_numeric() && int_divides(v.as_int(), *const_divisor_);
    });
    return !domains[0]->empty();
  }
  // a % b == 0: a must be divisible by at least one b-value, and b must
  // divide at least one a-value.
  Domain* da = domains[0];
  Domain* db = domains[1];
  if (!da->all_numeric() || !db->all_numeric()) return true;
  da->filter([&](const Value& av) {
    const std::int64_t a = av.as_int();
    for (const Value& bv : db->values()) {
      if (int_divides(a, bv.as_int())) return true;
    }
    return false;
  });
  db->filter([&](const Value& bv) {
    const std::int64_t b = bv.as_int();
    if (b == 0) return false;
    for (const Value& av : da->values()) {
      if (int_divides(av.as_int(), b)) return true;
    }
    return false;
  });
  return !da->empty() && !db->empty();
}

bool Divisibility::try_specialize(const std::vector<const Domain*>& domains) {
  return domains_all_int(domains);
}

bool Divisibility::satisfied_fast(const std::int64_t* values) const {
  const std::int64_t a = values[indices_[0]];
  const std::int64_t b = const_divisor_ ? *const_divisor_ : values[indices_[1]];
  return int_divides(a, b);
}

void Divisibility::satisfied_block(std::int64_t* values, std::uint32_t var,
                                   const std::int64_t* candidates,
                                   std::size_t n, unsigned char* mask) const {
  std::int64_t av[kMaxBlockLanes], bv[kMaxBlockLanes];
  const bool a_var = indices_[0] == var;
  for (std::size_t i = 0; i < n; ++i)
    av[i] = a_var ? candidates[i] : values[indices_[0]];
  if (const_divisor_) {
    for (std::size_t i = 0; i < n; ++i) bv[i] = *const_divisor_;
  } else {
    const bool b_var = indices_[1] == var;
    for (std::size_t i = 0; i < n; ++i)
      bv[i] = b_var ? candidates[i] : values[indices_[1]];
  }
  // int_divides(a, b): true for b == -1 (everything divides), false for
  // b == 0; the safe-divisor select keeps both special cases out of the
  // hardware % (b == -1 also guards INT64_MIN % -1).
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t a = av[i];
    const std::int64_t b = bv[i];
    const std::int64_t zero = b == 0;
    const std::int64_t neg1 = b == -1;
    const std::int64_t safe = (zero | neg1) ? 1 : b;
    mask[i] &= static_cast<unsigned char>(neg1 | ((zero ^ 1) & (a % safe == 0)));
  }
}

std::string Divisibility::describe() const {
  if (const_divisor_) {
    return scope_[0] + " % " + std::to_string(*const_divisor_) + " == 0";
  }
  return scope_[0] + " % " + scope_[1] + " == 0";
}

// ---------------------------------------------------------------------------
// InSet
// ---------------------------------------------------------------------------

InSet::InSet(std::string var, std::vector<Value> allowed, bool negated)
    : Constraint({std::move(var)}), set_(std::move(allowed)), negated_(negated) {}

bool InSet::member(const Value& v) const {
  for (const Value& s : set_) {
    if (v == s) return true;
  }
  return false;
}

bool InSet::satisfied(const Value* values) const {
  return member(values[indices_[0]]) != negated_;
}

bool InSet::preprocess(const std::vector<Domain*>& domains) {
  domains[0]->filter([&](const Value& v) { return member(v) != negated_; });
  return !domains[0]->empty();
}

bool InSet::try_specialize(const std::vector<const Domain*>& domains) {
  if (!domains_all_int(domains)) return false;
  if (!int_set_built_) {  // set_ is immutable; lower once
    int_set_built_ = true;
    int_set_ok_ = int_set_.lower(set_);
  }
  return int_set_ok_;
}

bool InSet::satisfied_fast(const std::int64_t* values) const {
  return int_set_.contains(values[indices_[0]]) != negated_;
}

void InSet::satisfied_block(std::int64_t* values, std::uint32_t var,
                            const std::int64_t* candidates, std::size_t n,
                            unsigned char* mask) const {
  if (indices_[0] != var) {
    Constraint::satisfied_block(values, var, candidates, n, mask);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    mask[i] &=
        static_cast<unsigned char>(int_set_.contains(candidates[i]) != negated_);
  }
}

std::string InSet::describe() const {
  std::string out = scope_[0];
  out += negated_ ? " not in (" : " in (";
  for (std::size_t i = 0; i < set_.size(); ++i) {
    if (i) out += ", ";
    out += set_[i].to_string();
  }
  out += ")";
  return out;
}

// ---------------------------------------------------------------------------
// AllDifferent / AllEqual
// ---------------------------------------------------------------------------

AllDifferent::AllDifferent(std::vector<std::string> scope)
    : Constraint(std::move(scope)) {}

bool AllDifferent::satisfied(const Value* values) const {
  for (std::size_t i = 0; i < indices_.size(); ++i) {
    for (std::size_t j = i + 1; j < indices_.size(); ++j) {
      if (values[indices_[i]] == values[indices_[j]]) return false;
    }
  }
  return true;
}

bool AllDifferent::consistent(const Value* values,
                              const unsigned char* assigned) const {
  for (std::size_t i = 0; i < indices_.size(); ++i) {
    if (!assigned[indices_[i]]) continue;
    for (std::size_t j = i + 1; j < indices_.size(); ++j) {
      if (!assigned[indices_[j]]) continue;
      if (values[indices_[i]] == values[indices_[j]]) return false;
    }
  }
  return true;
}

bool AllDifferent::try_specialize(const std::vector<const Domain*>& domains) {
  return domains_all_int(domains);
}

bool AllDifferent::satisfied_fast(const std::int64_t* values) const {
  for (std::size_t i = 0; i < indices_.size(); ++i) {
    for (std::size_t j = i + 1; j < indices_.size(); ++j) {
      if (values[indices_[i]] == values[indices_[j]]) return false;
    }
  }
  return true;
}

bool AllDifferent::consistent_fast(const std::int64_t* values,
                                   const unsigned char* assigned) const {
  for (std::size_t i = 0; i < indices_.size(); ++i) {
    if (!assigned[indices_[i]]) continue;
    for (std::size_t j = i + 1; j < indices_.size(); ++j) {
      if (!assigned[indices_[j]]) continue;
      if (values[indices_[i]] == values[indices_[j]]) return false;
    }
  }
  return true;
}

void AllDifferent::satisfied_block(std::int64_t* values, std::uint32_t var,
                                   const std::int64_t* candidates,
                                   std::size_t n, unsigned char* mask) const {
  // Check the var-independent pairs once, then each candidate only has to be
  // compared against the fixed non-var values — one lane loop per scope var.
  std::size_t var_count = 0;
  for (std::uint32_t idx : indices_) var_count += idx == var;
  if (var_count == 0) {
    Constraint::satisfied_block(values, var, candidates, n, mask);
    return;
  }
  bool uniform_ok = true;
  for (std::size_t i = 0; i < indices_.size() && uniform_ok; ++i) {
    if (indices_[i] == var) continue;
    for (std::size_t j = i + 1; j < indices_.size(); ++j) {
      if (indices_[j] == var) continue;
      if (values[indices_[i]] == values[indices_[j]]) {
        uniform_ok = false;
        break;
      }
    }
  }
  if (!uniform_ok || var_count > 1) {
    // Either the fixed part already clashes, or var appears twice (so it
    // clashes with itself); every candidate fails.
    for (std::size_t i = 0; i < n; ++i) mask[i] = 0;
    return;
  }
  for (std::uint32_t idx : indices_) {
    if (idx == var) continue;
    const std::int64_t v = values[idx];
    for (std::size_t i = 0; i < n; ++i) {
      mask[i] &= static_cast<unsigned char>(candidates[i] != v);
    }
  }
}

void AllDifferent::consistent_block(std::int64_t* values,
                                    const unsigned char* assigned,
                                    std::uint32_t var,
                                    const std::int64_t* candidates,
                                    std::size_t n, unsigned char* mask) const {
  std::size_t var_count = 0;
  for (std::uint32_t idx : indices_) var_count += idx == var;
  if (var_count == 0) {
    Constraint::consistent_block(values, assigned, var, candidates, n, mask);
    return;
  }
  bool uniform_ok = true;
  for (std::size_t i = 0; i < indices_.size() && uniform_ok; ++i) {
    if (indices_[i] == var || !assigned[indices_[i]]) continue;
    for (std::size_t j = i + 1; j < indices_.size(); ++j) {
      if (indices_[j] == var || !assigned[indices_[j]]) continue;
      if (values[indices_[i]] == values[indices_[j]]) {
        uniform_ok = false;
        break;
      }
    }
  }
  if (!uniform_ok || var_count > 1) {
    for (std::size_t i = 0; i < n; ++i) mask[i] = 0;
    return;
  }
  for (std::uint32_t idx : indices_) {
    if (idx == var || !assigned[idx]) continue;
    const std::int64_t v = values[idx];
    for (std::size_t i = 0; i < n; ++i) {
      mask[i] &= static_cast<unsigned char>(candidates[i] != v);
    }
  }
}

std::string AllDifferent::describe() const {
  return "all_different(" + join_scope(scope_, ", ") + ")";
}

AllEqual::AllEqual(std::vector<std::string> scope) : Constraint(std::move(scope)) {}

bool AllEqual::satisfied(const Value* values) const {
  for (std::size_t i = 1; i < indices_.size(); ++i) {
    if (!(values[indices_[0]] == values[indices_[i]])) return false;
  }
  return true;
}

bool AllEqual::consistent(const Value* values, const unsigned char* assigned) const {
  std::size_t first = indices_.size();
  for (std::size_t i = 0; i < indices_.size(); ++i) {
    if (!assigned[indices_[i]]) continue;
    if (first == indices_.size()) {
      first = i;
      continue;
    }
    if (!(values[indices_[first]] == values[indices_[i]])) return false;
  }
  return true;
}

bool AllEqual::try_specialize(const std::vector<const Domain*>& domains) {
  return domains_all_int(domains);
}

bool AllEqual::satisfied_fast(const std::int64_t* values) const {
  for (std::size_t i = 1; i < indices_.size(); ++i) {
    if (values[indices_[0]] != values[indices_[i]]) return false;
  }
  return true;
}

bool AllEqual::consistent_fast(const std::int64_t* values,
                               const unsigned char* assigned) const {
  std::size_t first = indices_.size();
  for (std::size_t i = 0; i < indices_.size(); ++i) {
    if (!assigned[indices_[i]]) continue;
    if (first == indices_.size()) {
      first = i;
      continue;
    }
    if (values[indices_[first]] != values[indices_[i]]) return false;
  }
  return true;
}

void AllEqual::satisfied_block(std::int64_t* values, std::uint32_t var,
                               const std::int64_t* candidates, std::size_t n,
                               unsigned char* mask) const {
  std::size_t var_count = 0;
  for (std::uint32_t idx : indices_) var_count += idx == var;
  if (var_count == 0) {
    Constraint::satisfied_block(values, var, candidates, n, mask);
    return;
  }
  // All fixed values must already agree; each candidate then only has to
  // match the shared reference (var == var lanes are trivially equal).
  bool have_ref = false;
  bool uniform = true;
  std::int64_t ref = 0;
  for (std::uint32_t idx : indices_) {
    if (idx == var) continue;
    if (!have_ref) {
      have_ref = true;
      ref = values[idx];
    } else if (values[idx] != ref) {
      uniform = false;
      break;
    }
  }
  if (!uniform) {
    for (std::size_t i = 0; i < n; ++i) mask[i] = 0;
    return;
  }
  if (!have_ref) return;  // scope is all `var`: trivially equal
  for (std::size_t i = 0; i < n; ++i) {
    mask[i] &= static_cast<unsigned char>(candidates[i] == ref);
  }
}

void AllEqual::consistent_block(std::int64_t* values,
                                const unsigned char* assigned, std::uint32_t var,
                                const std::int64_t* candidates, std::size_t n,
                                unsigned char* mask) const {
  std::size_t var_count = 0;
  for (std::uint32_t idx : indices_) var_count += idx == var;
  if (var_count == 0) {
    Constraint::consistent_block(values, assigned, var, candidates, n, mask);
    return;
  }
  bool have_ref = false;
  bool uniform = true;
  std::int64_t ref = 0;
  for (std::uint32_t idx : indices_) {
    if (idx == var || !assigned[idx]) continue;
    if (!have_ref) {
      have_ref = true;
      ref = values[idx];
    } else if (values[idx] != ref) {
      uniform = false;
      break;
    }
  }
  if (!uniform) {
    for (std::size_t i = 0; i < n; ++i) mask[i] = 0;
    return;
  }
  if (!have_ref) return;
  for (std::size_t i = 0; i < n; ++i) {
    mask[i] &= static_cast<unsigned char>(candidates[i] == ref);
  }
}

std::string AllEqual::describe() const {
  return "all_equal(" + join_scope(scope_, ", ") + ")";
}

// ---------------------------------------------------------------------------
// ConstBool
// ---------------------------------------------------------------------------

ConstBool::ConstBool(bool value) : Constraint({}), value_(value) {}

bool ConstBool::satisfied(const Value* values) const {
  (void)values;
  return value_;
}

bool ConstBool::consistent(const Value* values, const unsigned char* assigned) const {
  (void)values;
  (void)assigned;
  return value_;
}

bool ConstBool::preprocess(const std::vector<Domain*>& domains) {
  (void)domains;
  return value_;
}

std::string ConstBool::describe() const { return value_ ? "True" : "False"; }

}  // namespace tunespace::csp
