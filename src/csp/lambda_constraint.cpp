#include "tunespace/csp/lambda_constraint.hpp"

#include <array>

namespace tunespace::csp {

LambdaConstraint::LambdaConstraint(std::vector<std::string> scope,
                                   LambdaPredicate predicate,
                                   std::string description)
    : Constraint(std::move(scope)),
      predicate_(std::move(predicate)),
      description_(std::move(description)) {}

bool LambdaConstraint::satisfied(const Value* values) const {
  // Gather scope values contiguously (scope sizes are small).
  constexpr std::size_t kInline = 16;
  std::array<Value, kInline> inline_buf;
  std::vector<Value> heap_buf;
  Value* buf = inline_buf.data();
  if (indices_.size() > kInline) {
    heap_buf.resize(indices_.size());
    buf = heap_buf.data();
  }
  for (std::size_t i = 0; i < indices_.size(); ++i) buf[i] = values[indices_[i]];
  try {
    return predicate_(std::span<const Value>(buf, indices_.size()));
  } catch (...) {
    return false;  // raising predicates invalidate the configuration
  }
}

std::string LambdaConstraint::describe() const {
  return description_ + "(" + [this] {
    std::string s;
    for (std::size_t i = 0; i < scope_.size(); ++i) {
      if (i) s += ", ";
      s += scope_[i];
    }
    return s;
  }() + ")";
}

}  // namespace tunespace::csp
